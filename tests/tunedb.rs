//! The tunedb test tier: concurrency determinism and crash recovery for
//! the persistent schedule database + session server.
//!
//! Proves the PR's two headline guarantees end to end:
//!
//! * **Concurrency determinism** — under many sessions and workers, each
//!   unique key is tuned exactly once, every duplicate coalesces onto
//!   that one result, and per-key results and all statistics are
//!   bit-identical to a serial (1-worker) run. Telemetry stats events
//!   replay byte-identically across runs once wall clock is stripped.
//! * **Crash recovery** — a corrupted shard (flipped byte, torn tail)
//!   recovers every record before the first bad line, reports the drop
//!   count, physically truncates the file, and a server over the
//!   recovered store serves the surviving records as hits.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use flextensor::serve::{task_key, ServeOptions, ServeSource, SessionServer, TuneRunner, Tuned};
use flextensor::{OptimizeOptions, Task};
use flextensor_ir::graph::Graph;
use flextensor_ir::ops;
use flextensor_sim::spec::{v100, Device};
use flextensor_telemetry::{MemorySink, Telemetry};
use flextensor_tunedb::{testutil, TuneDb, TuneKey};

/// A deterministic fake tuner that counts how often each key is tuned.
struct KeyCounter {
    counts: Mutex<HashMap<TuneKey, usize>>,
}

impl KeyCounter {
    fn new() -> Arc<KeyCounter> {
        Arc::new(KeyCounter {
            counts: Mutex::new(HashMap::new()),
        })
    }
}

impl TuneRunner for KeyCounter {
    fn tune(&self, task: &Task, _opts: &OptimizeOptions) -> Result<Tuned, String> {
        let key = task_key(&task.graph, &task.device);
        *self.counts.lock().unwrap().entry(key.clone()).or_insert(0) += 1;
        // Deterministic pure function of the key.
        Ok(Tuned {
            config: key.shape.clone(),
            seconds: key.shape.iter().sum::<i64>() as f64 * 1e-6,
        })
    }
}

/// One served request: key, config, cost bits, and how it was classified.
type Served = (TuneKey, Vec<i64>, u64, ServeSource);

fn gemm_pool(n: usize) -> Vec<Graph> {
    (1..=n as i64)
        .map(|i| ops::gemm(16 * i, 16 * i, 16 * i))
        .collect()
}

fn serve_all(server: &SessionServer, sessions: usize, graphs: &[Graph]) -> Vec<Served> {
    let handles: Vec<_> = (0..sessions)
        .map(|i| server.session(&format!("s{i}")))
        .collect();
    let mut tickets = Vec::new();
    for (i, s) in handles.iter().enumerate() {
        // Rotate per session so queues interleave different keys.
        for j in 0..graphs.len() {
            tickets.push(s.submit(graphs[(i + j) % graphs.len()].clone(), Device::Gpu(v100())));
        }
    }
    tickets
        .into_iter()
        .map(|t| {
            let r = t.wait().expect("request failed");
            (r.key, r.config, r.seconds.to_bits(), r.source)
        })
        .collect()
}

#[test]
fn each_unique_key_is_tuned_exactly_once_under_concurrency() {
    let runner = KeyCounter::new();
    let db = Arc::new(TuneDb::open(testutil::temp_dir("stress")).unwrap().0);
    let graphs = gemm_pool(12);
    let server = SessionServer::with_runner(
        Arc::clone(&db),
        ServeOptions {
            workers: 4,
            ..ServeOptions::default()
        },
        Arc::clone(&runner) as Arc<dyn TuneRunner>,
    );
    let results = serve_all(&server, 8, &graphs);
    assert_eq!(results.len(), 8 * graphs.len());

    let counts = runner.counts.lock().unwrap();
    assert_eq!(counts.len(), graphs.len(), "one tune per unique key");
    for (key, n) in counts.iter() {
        assert_eq!(*n, 1, "{} tuned {n} times", key.flat());
    }
    let agg = server.stats();
    assert_eq!(agg.requests, 96);
    assert_eq!(agg.completed, 96);
    assert_eq!(agg.misses, graphs.len());
    assert_eq!(agg.coalesced, 96 - graphs.len());
    assert_eq!(agg.hits, 0);
    drop(server);
    assert_eq!(db.len(), graphs.len());
}

#[test]
fn concurrent_results_are_bit_identical_to_serial() {
    let mut base = OptimizeOptions::quick();
    base.search.trials = 6;
    base.search.starts = 2;
    base.search.initial_samples = 4;
    let graphs = vec![ops::gemm(64, 64, 64), ops::gemv(128, 128)];

    let run = |workers: usize| -> (Vec<Served>, Vec<String>) {
        let db = Arc::new(
            TuneDb::open(testutil::temp_dir(&format!("serial-vs-{workers}")))
                .unwrap()
                .0,
        );
        let server = SessionServer::new(
            Arc::clone(&db),
            ServeOptions {
                workers,
                base: base.clone(),
                commit: "tier".to_string(),
            },
        );
        let mut results = serve_all(&server, 3, &graphs);
        results.sort_by(|a, b| (&a.0, rank(&a.3)).cmp(&(&b.0, rank(&b.3))));
        drop(server);
        let records: Vec<String> = db
            .keys()
            .into_iter()
            .map(|k| db.peek(&k).unwrap().to_jsonl())
            .collect();
        (results, records)
    };

    let (serial, serial_records) = run(1);
    let (concurrent, concurrent_records) = run(4);
    assert_eq!(serial, concurrent, "per-request results diverged");
    assert_eq!(
        serial_records, concurrent_records,
        "persisted records diverged"
    );
}

/// Sort helper: orders a request's source so result vectors compare
/// positionally even though completion order varies.
fn rank(s: &ServeSource) -> u8 {
    match s {
        ServeSource::Hit => 0,
        ServeSource::Fresh { .. } => 1,
        ServeSource::Coalesced => 2,
    }
}

#[test]
fn stats_events_replay_byte_identically_across_runs() {
    let scenario = || -> String {
        let runner = KeyCounter::new();
        let db = Arc::new(TuneDb::open(testutil::temp_dir("stats")).unwrap().0);
        let graphs = gemm_pool(4);
        // Seed two keys so the second server sees snapshot hits.
        {
            let seeder = SessionServer::with_runner(
                Arc::clone(&db),
                ServeOptions {
                    workers: 1,
                    ..ServeOptions::default()
                },
                Arc::clone(&runner) as Arc<dyn TuneRunner>,
            );
            let s = seeder.session("seed");
            let a = s.submit(graphs[0].clone(), Device::Gpu(v100()));
            let b = s.submit(graphs[1].clone(), Device::Gpu(v100()));
            a.wait().unwrap();
            b.wait().unwrap();
        }
        let server = SessionServer::with_runner(
            Arc::clone(&db),
            ServeOptions {
                workers: 4,
                ..ServeOptions::default()
            },
            Arc::clone(&runner) as Arc<dyn TuneRunner>,
        );
        let _ = serve_all(&server, 6, &graphs);
        let sink = Arc::new(MemorySink::default());
        server.emit_stats(&Telemetry::new(sink.clone()));
        sink.events()
            .into_iter()
            .map(|e| e.strip_wall_clock().to_jsonl() + "\n")
            .collect()
    };
    let first = scenario();
    let second = scenario();
    assert!(first.contains("\"type\":\"db_stats\""));
    assert!(first.contains("\"type\":\"session_stats\""));
    assert_eq!(first, second, "stats events are not byte-deterministic");
}

/// Builds a single-shard store through a 1-worker server (so the shard's
/// line order is the deterministic round-robin completion order) and
/// returns the store directory plus the graphs whose keys it holds.
fn seeded_single_shard(tag: &str, n: usize) -> (std::path::PathBuf, Vec<Graph>) {
    let dir = testutil::temp_dir(tag);
    let db = Arc::new(TuneDb::open_with_shards(&dir, 1).unwrap().0);
    let graphs = gemm_pool(n);
    let server = SessionServer::with_runner(
        Arc::clone(&db),
        ServeOptions {
            workers: 1,
            ..ServeOptions::default()
        },
        KeyCounter::new() as Arc<dyn TuneRunner>,
    );
    let s = server.session("seed");
    let tickets: Vec<_> = graphs
        .iter()
        .map(|g| s.submit(g.clone(), Device::Gpu(v100())))
        .collect();
    for t in tickets {
        t.wait().unwrap();
    }
    drop(server);
    (dir, graphs)
}

#[test]
fn corrupted_shard_recovers_the_prefix_and_serves_it_as_hits() {
    let (dir, graphs) = seeded_single_shard("corrupt", 4);
    let shard = dir.join("shard-00.jsonl");
    let text = std::fs::read_to_string(&shard).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 4);

    // Flip one digit inside line 3's checksummed body.
    let mut bad = lines[2].to_string();
    let pos = bad.find("\"seconds\":").unwrap() + "\"seconds\":0.0000".len();
    let original = bad.as_bytes()[pos];
    let flipped = if original == b'9' { b'8' } else { original + 1 };
    bad.replace_range(pos..pos + 1, std::str::from_utf8(&[flipped]).unwrap());
    let rewritten = format!("{}\n{}\n{}\n{}\n", lines[0], lines[1], bad, lines[3]);
    std::fs::write(&shard, rewritten).unwrap();

    // Recovery: replay stops at the first bad record; the intact prefix
    // survives, the rest is dropped and reported, and the file shrinks.
    let (db, report) = TuneDb::open_with_shards(&dir, 1).unwrap();
    assert_eq!(report.lines_dropped, 2);
    assert_eq!(db.len(), 2);
    assert_eq!(
        std::fs::read_to_string(&shard).unwrap().lines().count(),
        2,
        "corrupted shard was not physically truncated"
    );

    // The recovered records are served as snapshot hits; the dropped
    // keys are re-tuned as fresh misses.
    let server = SessionServer::with_runner(
        Arc::new(db),
        ServeOptions {
            workers: 2,
            ..ServeOptions::default()
        },
        KeyCounter::new() as Arc<dyn TuneRunner>,
    );
    let s = server.session("after-crash");
    let sources: Vec<ServeSource> = graphs
        .iter()
        .map(|g| {
            s.submit(g.clone(), Device::Gpu(v100()))
                .wait()
                .unwrap()
                .source
        })
        .collect();
    let hits = sources.iter().filter(|s| **s == ServeSource::Hit).count();
    let fresh = sources
        .iter()
        .filter(|s| matches!(s, ServeSource::Fresh { .. }))
        .count();
    assert_eq!((hits, fresh), (2, 2));
}

#[test]
fn torn_tail_is_dropped_once_and_the_reopen_is_clean() {
    let (dir, _) = seeded_single_shard("torn", 3);
    let shard = dir.join("shard-00.jsonl");
    let bytes = std::fs::read(&shard).unwrap();
    // Tear the last line: cut 10 bytes (losing the trailing newline).
    std::fs::write(&shard, &bytes[..bytes.len() - 10]).unwrap();

    let (db, report) = TuneDb::open_with_shards(&dir, 1).unwrap();
    assert_eq!(report.lines_dropped, 1);
    assert_eq!(db.len(), 2);
    drop(db);

    // The recovery truncated the torn tail, so a second open is clean.
    let (db2, report) = TuneDb::open_with_shards(&dir, 1).unwrap();
    assert_eq!(report.lines_dropped, 0);
    assert_eq!(db2.len(), 2);
}
