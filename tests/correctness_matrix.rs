//! The cross-crate correctness matrix: for small instances of *every*
//! operator in the paper, lower randomly explored schedule configurations
//! for every target and verify the executed loop nest against the
//! mathematical definition.
//!
//! This is the repository's strongest end-to-end guarantee: whatever point
//! the explorer picks, the generated kernel computes the same tensor as
//! the operator's definition.

use flextensor_explore::space::Space;
use flextensor_interp::machine::check_against_reference;
use flextensor_interp::reference::random_inputs;
use flextensor_ir::graph::Graph;
use flextensor_ir::ops::{self, ConvParams};
use flextensor_schedule::config::TargetKind;
use flextensor_schedule::lower::lower;
use rand::rngs::StdRng;
use rand::SeedableRng;

const TOL: f64 = 1e-9;
const TARGETS: [TargetKind; 3] = [TargetKind::Cpu, TargetKind::Gpu, TargetKind::Fpga];

/// Verifies `samples` random schedule points per target.
fn verify_random_schedules(graph: &Graph, samples: usize, seed: u64) {
    let inputs = random_inputs(graph, seed);
    for target in TARGETS {
        let space = Space::new(graph, target);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        // Always include the start point.
        let mut points = vec![space.start_point()];
        for _ in 0..samples {
            points.push(space.random_point(&mut rng));
        }
        // Also walk a few directions from the start point.
        let mut cur = space.start_point();
        for &dir in space.directions().iter().take(12) {
            if let Some(next) = space.apply(&cur, dir) {
                points.push(next.clone());
                cur = next;
            }
        }
        for (i, cfg) in points.iter().enumerate() {
            let kernel = lower(graph, cfg, target)
                .unwrap_or_else(|e| panic!("{}: lowering point {i} failed: {e}", graph.name));
            let diff = check_against_reference(graph, &kernel, &inputs)
                .unwrap_or_else(|e| panic!("{}: executing point {i} failed: {e}", graph.name));
            assert!(
                diff < TOL,
                "{} on {target:?}: point {i} diverges by {diff}",
                graph.name
            );
        }
    }
}

#[test]
fn gemv_schedules_are_correct() {
    verify_random_schedules(&ops::gemv(12, 18), 6, 1);
}

#[test]
fn gemm_schedules_are_correct() {
    verify_random_schedules(&ops::gemm(8, 12, 10), 6, 2);
}

#[test]
fn bilinear_schedules_are_correct() {
    verify_random_schedules(&ops::bilinear(6, 4, 8, 6), 6, 3);
}

#[test]
fn conv1d_schedules_are_correct() {
    verify_random_schedules(&ops::conv1d(ConvParams::same(2, 3, 4, 3), 10), 5, 4);
}

#[test]
fn conv2d_schedules_are_correct() {
    verify_random_schedules(&ops::conv2d(ConvParams::same(1, 3, 4, 3), 6, 6), 5, 5);
}

#[test]
fn conv2d_strided_schedules_are_correct() {
    verify_random_schedules(
        &ops::conv2d(ConvParams::same(1, 2, 4, 3).with_stride(2), 9, 9),
        5,
        6,
    );
}

#[test]
fn conv3d_schedules_are_correct() {
    verify_random_schedules(&ops::conv3d(ConvParams::same(1, 2, 3, 3), 4, 5, 5), 4, 7);
}

#[test]
fn conv_transpose1d_schedules_are_correct() {
    let p = ConvParams {
        batch: 1,
        in_channels: 3,
        out_channels: 2,
        kernel: 4,
        stride: 2,
        padding: 1,
        dilation: 1,
        groups: 1,
    };
    verify_random_schedules(&ops::conv_transpose1d(p, 6), 5, 8);
}

#[test]
fn conv_transpose2d_schedules_are_correct() {
    let p = ConvParams {
        batch: 1,
        in_channels: 2,
        out_channels: 3,
        kernel: 4,
        stride: 2,
        padding: 1,
        dilation: 1,
        groups: 1,
    };
    verify_random_schedules(&ops::conv_transpose2d(p, 4, 4), 4, 9);
}

#[test]
fn conv_transpose3d_schedules_are_correct() {
    let p = ConvParams {
        batch: 1,
        in_channels: 2,
        out_channels: 2,
        kernel: 2,
        stride: 2,
        padding: 0,
        dilation: 1,
        groups: 1,
    };
    verify_random_schedules(&ops::conv_transpose3d(p, 2, 3, 3), 4, 10);
}

#[test]
fn group_conv_schedules_are_correct() {
    verify_random_schedules(
        &ops::group_conv2d(ConvParams::same(1, 4, 8, 3).with_groups(2), 5, 5),
        5,
        11,
    );
}

#[test]
fn depthwise_conv_schedules_are_correct() {
    verify_random_schedules(&ops::depthwise_conv2d(1, 4, 2, 5, 5, 3, 1, 1), 5, 12);
}

#[test]
fn dilated_conv_schedules_are_correct() {
    let p = ConvParams {
        batch: 1,
        in_channels: 2,
        out_channels: 3,
        kernel: 3,
        stride: 1,
        padding: 2,
        dilation: 2,
        groups: 1,
    };
    verify_random_schedules(&ops::dilated_conv2d(p, 7, 7), 5, 13);
}

#[test]
fn bcm_schedules_are_correct() {
    verify_random_schedules(&ops::bcm(2, 3, 2, 4), 5, 14);
}

#[test]
fn shift_schedules_are_correct() {
    verify_random_schedules(&ops::shift2d(1, 9, 5, 5), 5, 15);
}

#[test]
fn materialized_producers_match_inlined_results() {
    // The inline/materialize choice must be invisible in the output.
    let g = ops::conv2d(ConvParams::same(1, 3, 4, 3), 6, 6);
    let inputs = random_inputs(&g, 99);
    let space = Space::new(&g, TargetKind::Gpu);
    let mut inline_cfg = space.start_point();
    inline_cfg.inline_data = true;
    let mut mat_cfg = space.start_point();
    mat_cfg.inline_data = false;
    for cfg in [inline_cfg, mat_cfg] {
        let k = lower(&g, &cfg, TargetKind::Gpu).unwrap();
        assert!(check_against_reference(&g, &k, &inputs).unwrap() < TOL);
    }
}
