//! Property-based tests (proptest) over the core invariants:
//!
//! * any divisible split configuration lowers to a kernel that computes
//!   the operator's definition exactly (the schedule-correctness property);
//! * config encode/decode is a bijection on valid configs;
//! * space directions preserve validity and factor products;
//! * interval analysis soundly bounds concrete index values.

use flextensor_explore::space::Space;
use flextensor_interp::machine::check_against_reference;
use flextensor_interp::reference::random_inputs;
use flextensor_ir::expr::Expr;
use flextensor_ir::ops;
use flextensor_ir::suite;
use flextensor_schedule::config::{NodeConfig, TargetKind};
use flextensor_schedule::interval::{eval_interval, Interval, IntervalEnv};
use flextensor_schedule::lower::lower;
use proptest::prelude::*;

/// Strategy: an ordered 4-way factorization of `n` (by scattering prime
/// factors over the levels).
fn factorization(n: i64, parts: usize) -> impl Strategy<Value = Vec<i64>> {
    let primes = prime_factors(n);
    proptest::collection::vec(0..parts, primes.len()).prop_map(move |slots| {
        let mut f = vec![1i64; parts];
        for (&p, &s) in primes.iter().zip(&slots) {
            f[s] *= p;
        }
        f
    })
}

fn prime_factors(mut n: i64) -> Vec<i64> {
    let mut out = Vec::new();
    let mut d = 2;
    while d * d <= n {
        while n % d == 0 {
            out.push(d);
            n /= d;
        }
        d += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any divisible split of a small GEMM computes the right product on
    /// every target.
    #[test]
    fn scheduled_gemm_is_always_correct(
        fi in factorization(8, 4),
        fj in factorization(12, 4),
        fk in factorization(10, 3),
        reorder_swap in any::<bool>(),
        unroll in any::<bool>(),
        cache in any::<bool>(),
        target_idx in 0usize..3,
    ) {
        let g = ops::gemm(8, 12, 10);
        let mut cfg = NodeConfig::naive(g.root_op());
        cfg.spatial_splits = vec![fi, fj];
        cfg.reduce_splits = vec![fk];
        if reorder_swap {
            cfg.reorder = vec![1, 0];
        }
        cfg.unroll = unroll;
        cfg.cache_shared = cache;
        cfg.vectorize = true;
        let target = [TargetKind::Cpu, TargetKind::Gpu, TargetKind::Fpga][target_idx];
        let kernel = lower(&g, &cfg, target).expect("valid config lowers");
        let inputs = random_inputs(&g, 5);
        let diff = check_against_reference(&g, &kernel, &inputs).expect("runs");
        prop_assert!(diff < 1e-9, "diff {diff}");
    }

    /// Any divisible split of a small padded conv2d is correct (exercises
    /// producer inlining + select-guarded loads under arbitrary tiling).
    #[test]
    fn scheduled_conv_is_always_correct(
        fk in factorization(4, 4),
        fi in factorization(6, 4),
        fj in factorization(6, 4),
        frc in factorization(3, 3),
        inline in any::<bool>(),
    ) {
        let g = ops::conv2d(ops::ConvParams::same(1, 3, 4, 3), 6, 6);
        let mut cfg = NodeConfig::naive(g.root_op());
        cfg.spatial_splits[1] = fk;
        cfg.spatial_splits[2] = fi;
        cfg.spatial_splits[3] = fj;
        cfg.reduce_splits[0] = frc;
        cfg.inline_data = inline;
        let kernel = lower(&g, &cfg, TargetKind::Gpu).expect("valid config lowers");
        let inputs = random_inputs(&g, 6);
        let diff = check_against_reference(&g, &kernel, &inputs).expect("runs");
        prop_assert!(diff < 1e-9, "diff {diff}");
    }

    /// encode -> decode is the identity on valid configs.
    #[test]
    fn config_encoding_roundtrips(
        fi in factorization(16, 4),
        fj in factorization(24, 4),
        fk in factorization(12, 3),
        unroll in any::<bool>(),
        cache in any::<bool>(),
        inline in any::<bool>(),
        fuse in 1usize..=2,
        partition in prop::sample::select(vec![1i64, 2, 4, 8, 16]),
        pipeline in 1i64..=3,
    ) {
        let g = ops::gemm(16, 24, 12);
        let op = g.root_op();
        let mut cfg = NodeConfig::naive(op);
        cfg.spatial_splits = vec![fi, fj];
        cfg.reduce_splits = vec![fk];
        cfg.unroll = unroll;
        cfg.cache_shared = cache;
        cfg.inline_data = inline;
        cfg.fuse_outer = fuse;
        cfg.fpga_partition = partition;
        cfg.fpga_pipeline = pipeline;
        prop_assert!(cfg.validate(op).is_ok());
        let decoded = NodeConfig::decode(op, &cfg.encode()).expect("decodes");
        prop_assert_eq!(cfg, decoded);
    }

    /// Every applicable direction from a random point yields another valid
    /// point, with split products conserved.
    #[test]
    fn directions_preserve_validity(seed in any::<u64>(), target_idx in 0usize..3) {
        use rand::SeedableRng;
        let g = ops::conv2d(ops::ConvParams::same(1, 8, 16, 3), 12, 12);
        let target = [TargetKind::Cpu, TargetKind::Gpu, TargetKind::Fpga][target_idx];
        let space = Space::new(&g, target);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = space.random_point(&mut rng);
        prop_assert!(p.validate(space.op()).is_ok());
        for &d in space.directions() {
            if let Some(n) = space.apply(&p, d) {
                prop_assert!(n.validate(space.op()).is_ok(), "direction {d:?}");
            }
        }
    }

    /// Interval analysis soundly bounds concrete evaluations of affine
    /// conv-style index expressions.
    #[test]
    fn interval_analysis_is_sound_for_affine_indices(
        stride in 1i64..4,
        dil in 1i64..3,
        hi_i in 0i64..8,
        hi_r in 0i64..4,
        offset in -3i64..4,
    ) {
        let e = Expr::var("i") * stride + Expr::var("r") * dil + offset;
        let mut env = IntervalEnv::new();
        env.insert("i".into(), Interval::new(0, hi_i));
        env.insert("r".into(), Interval::new(0, hi_r));
        let iv = eval_interval(&e, &env);
        for i in 0..=hi_i {
            for r in 0..=hi_r {
                let v = i * stride + r * dil + offset;
                prop_assert!(iv.lo <= v && v <= iv.hi, "{v} outside [{}, {}]", iv.lo, iv.hi);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Delta-evaluation properties: incremental features equal fresh features.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary seeded single-move mutation sequences: evaluating each
    /// step's config incrementally from its predecessor (rolling the base
    /// forward through the delta-produced features) is bit-for-bit
    /// identical to a fresh full `features()` computation at every step —
    /// features, costs, and rejection verdicts alike.
    #[test]
    fn delta_features_match_fresh_compute_under_arbitrary_mutations(
        seed in any::<u64>(),
        target_idx in 0usize..3,
        steps in 10usize..40,
    ) {
        use flextensor_schedule::delta::{delta_features_with, DeltaScratch};
        use flextensor_schedule::template::LoweredTemplate;
        use rand::{RngCore, SeedableRng};

        let g = ops::conv2d(ops::ConvParams::same(1, 4, 8, 3), 8, 8);
        let target = [TargetKind::Cpu, TargetKind::Gpu, TargetKind::Fpga][target_idx];
        let template = LoweredTemplate::new(&g, target);
        let space = Space::new(&g, target);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dirs = space.directions();
        let mut scratch = DeltaScratch::new();
        let mut base = space.random_point(&mut rng);
        let mut base_feats = template
            .features(&base)
            .expect("random points are valid");
        for _ in 0..steps {
            let dir = dirs[rng.next_u32() as usize % dirs.len()];
            let Some(next) = space.apply(&base, dir) else { continue };
            let fresh = template.features(&next);
            let delta =
                delta_features_with(&template, &base, &base_feats, &next, &mut scratch);
            match (fresh, delta) {
                (Ok(f), Ok((d, _))) => {
                    prop_assert_eq!(&f, &d, "features diverged");
                    base = next;
                    base_feats = d;
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b, "errors diverged"),
                (f, d) => {
                    prop_assert!(false, "verdicts diverged: fresh {:?} vs delta {:?}", f, d);
                }
            }
        }
    }

    /// Arbitrary seeded neighbor batches through delta pools: outcomes
    /// (costs bit for bit) and delta counters are invariant in the worker
    /// count and match a plain pool on the same candidates.
    #[test]
    fn delta_pool_outcomes_are_worker_count_invariant(
        seed in any::<u64>(),
        n_bases in 2usize..5,
    ) {
        use flextensor_explore::pool::EvalPool;
        use flextensor_sim::model::Evaluator;
        use flextensor_sim::spec::{v100, Device};
        use rand::SeedableRng;

        let g = ops::gemm(32, 32, 32);
        let ev = Evaluator::new(Device::Gpu(v100()));
        let space = Space::new(&g, ev.target());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let bases: Vec<NodeConfig> =
            (0..n_bases).map(|_| space.random_point(&mut rng)).collect();
        let mut cands = Vec::new();
        let mut base_of = Vec::new();
        for (bi, b) in bases.iter().enumerate() {
            for &d in space.directions() {
                if let Some(n) = space.apply(b, d) {
                    cands.push(n);
                    base_of.push(bi);
                }
            }
        }
        prop_assert!(!cands.is_empty());
        let plain = EvalPool::new(&g, &ev, 1, 1 << 16).evaluate_batch(&cands);
        let mut counters = Vec::new();
        for workers in [1usize, 4] {
            let mut pool = EvalPool::new_delta(&g, &ev, workers, 1 << 16, false);
            let out = pool.evaluate_batch_delta(&cands, &base_of, &bases);
            prop_assert_eq!(&out, &plain, "workers {}", workers);
            let s = pool.stats();
            prop_assert_eq!(s.delta_hits + s.delta_full, s.evaluated);
            counters.push((s.delta_hits, s.delta_full, s.evaluated));
        }
        prop_assert_eq!(counters[0], counters[1]);
    }
}

/// The trivial point of the schedule space exists for *every* shape the
/// paper benchmarks: `NodeConfig::naive` validates against the anchor of
/// each suite test case of each operator kind (checked exhaustively, not
/// sampled — this is the floor the explorers start from).
#[test]
fn naive_config_validates_for_every_suite_case() {
    for kind in suite::OperatorKind::all() {
        let cases = suite::test_cases(kind);
        assert!(!cases.is_empty(), "{} has no test cases", kind.abbr());
        for g in cases {
            let op = g.anchor_op();
            let cfg = NodeConfig::naive(op);
            cfg.validate(op).unwrap_or_else(|e| {
                panic!(
                    "naive config invalid for {} case {}: {e}",
                    kind.abbr(),
                    g.name
                )
            });
        }
    }
}

/// A three-op chain of matrix products over all-ones inputs has the
/// closed form `O[i,j] = k1·k2·k3`, computed here independently of any
/// interpreter code path: the reference evaluator must reproduce it
/// bit-exactly (integer-valued sums are exact in f64 at these sizes).
#[test]
fn reference_matches_closed_form_on_a_three_gemm_chain() {
    use flextensor_interp::eval::{Buffer, Store};
    use flextensor_interp::reference::run_reference;
    use flextensor_ir::graph::{Axis, Combiner, GraphBuilder};

    let (n, k1, k2, k3, m) = (3i64, 4i64, 5i64, 6i64, 2i64);
    let mut b = GraphBuilder::new("gemm_chain3");
    b.placeholder("A", vec![n, k1]);
    b.placeholder("B", vec![k1, k2]);
    b.placeholder("C", vec![k2, k3]);
    b.placeholder("D", vec![k3, m]);
    b.compute(
        "t1",
        "T1",
        vec![Axis::new("i", n), Axis::new("j", k2)],
        vec![Axis::new("k", k1)],
        Expr::load("A", vec![Expr::var("i"), Expr::var("k")])
            * Expr::load("B", vec![Expr::var("k"), Expr::var("j")]),
        Combiner::Sum,
    );
    b.compute(
        "t2",
        "T2",
        vec![Axis::new("i", n), Axis::new("j", k3)],
        vec![Axis::new("k", k2)],
        Expr::load("T1", vec![Expr::var("i"), Expr::var("k")])
            * Expr::load("C", vec![Expr::var("k"), Expr::var("j")]),
        Combiner::Sum,
    );
    b.compute(
        "t3",
        "O",
        vec![Axis::new("i", n), Axis::new("j", m)],
        vec![Axis::new("k", k3)],
        Expr::load("T2", vec![Expr::var("i"), Expr::var("k")])
            * Expr::load("D", vec![Expr::var("k"), Expr::var("j")]),
        Combiner::Sum,
    );
    let g = b.finish().expect("chain graph is well-formed");

    let mut inputs = Store::new();
    for (name, shape) in [
        ("A", vec![n, k1]),
        ("B", vec![k1, k2]),
        ("C", vec![k2, k3]),
        ("D", vec![k3, m]),
    ] {
        inputs.insert(name.to_string(), Buffer::filled(&shape, 1.0));
    }
    let store = run_reference(&g, &inputs).expect("reference run succeeds");
    let out = store.get("O").expect("output produced");
    let expect = (k1 * k2 * k3) as f64;
    for i in 0..n {
        for j in 0..m {
            let got = out.get(&[i, j]).expect("in bounds");
            assert_eq!(got, expect, "O[{i},{j}]");
        }
    }
}

// ---------------------------------------------------------------------------
// Tuning-database properties: the neighbor metric and warm-started search.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The shape metric is a deterministic pure function and symmetric —
    /// including across mismatched dimensionality (prefix slices).
    #[test]
    fn shape_distance_is_deterministic_and_symmetric(
        a_full in proptest::collection::vec(1..1024i64, 5),
        b_full in proptest::collection::vec(1..1024i64, 5),
        len_a in 0..5usize,
        len_b in 0..5usize,
    ) {
        use flextensor_tunedb::shape_distance;
        let a = &a_full[..len_a];
        let b = &b_full[..len_b];
        let d1 = shape_distance(a, b);
        let d2 = shape_distance(a, b);
        prop_assert_eq!(d1.to_bits(), d2.to_bits(), "not deterministic");
        prop_assert_eq!(
            d1.to_bits(),
            shape_distance(b, a).to_bits(),
            "not symmetric"
        );
        prop_assert!(d1.is_finite() && d1 >= 0.0);
    }

    /// Exact shape match has distance zero, and a key is always its own
    /// nearest candidate at distance zero (when offered).
    #[test]
    fn exact_key_distance_is_zero(
        shape in proptest::collection::vec(1..1024i64, 4),
        other in proptest::collection::vec(1..1024i64, 4),
    ) {
        use flextensor_tunedb::{key_distance, shape_distance, TuneKey};
        prop_assert_eq!(shape_distance(&shape, &shape), 0.0);
        let key = TuneKey::new("gemm", shape.clone(), "V100");
        prop_assert_eq!(key_distance(&key, &key), 0.0);
        // Mismatched op or target is never a neighbor, whatever the shape.
        let foreign = TuneKey::new("c2d", other, "V100");
        prop_assert!(key_distance(&key, &foreign).is_infinite());
    }
}

proptest! {
    // Each case runs two real searches; keep the count small.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Warm-starting with any stored config is never worse than the cold
    /// run at the same budget and seed: the warm seeds join the trial-0
    /// batch (leaving the RNG sequence untouched), so the cold run's
    /// whole candidate set is still evaluated and the incumbent can only
    /// improve.
    #[test]
    fn warm_started_search_is_never_worse_than_cold(
        size_idx in 0..3usize,
        seed in 0..1000u64,
    ) {
        use flextensor_explore::methods::{search, Method, SearchOptions};
        use flextensor_sim::model::Evaluator;
        use flextensor_sim::spec::{v100, Device};

        let n = [32, 48, 64][size_idx];
        let g = ops::gemm(n, n, n);
        let ev = Evaluator::new(Device::Gpu(v100()));
        let opts = SearchOptions {
            trials: 4,
            starts: 2,
            initial_samples: 4,
            seed,
            ..SearchOptions::default()
        };
        let cold = search(&g, &ev, Method::PMethod, &opts).expect("cold search");
        // Warm-start from the larger sibling's best config (a realistic
        // neighbor transfer), plus the cold best itself (the worst case
        // for the property: it must at least tie).
        let sibling = ops::gemm(2 * n, 2 * n, 2 * n);
        let sib = search(&sibling, &ev, Method::PMethod, &opts).expect("sibling search");
        let warm_opts = SearchOptions {
            warm_start: vec![sib.best.encode(), cold.best.encode()],
            ..opts
        };
        let warm = search(&g, &ev, Method::PMethod, &warm_opts).expect("warm search");
        prop_assert!(warm.warm_seeds >= 1);
        prop_assert!(
            warm.best_cost.seconds <= cold.best_cost.seconds,
            "warm {} worse than cold {}",
            warm.best_cost.seconds,
            cold.best_cost.seconds
        );
    }
}
