//! Failure-injection tests: malformed kernels, configs and inputs must be
//! rejected with errors — never silently produce wrong results or panic.

use flextensor_interp::eval::{Buffer, Store};
use flextensor_interp::machine::run_kernel;
use flextensor_interp::reference::random_inputs;
use flextensor_ir::expr::Expr;
use flextensor_ir::graph::Combiner;
use flextensor_ir::ops::{self, ConvParams};
use flextensor_schedule::config::{NodeConfig, TargetKind};
use flextensor_schedule::lower::{lower, lower_naive, LoweredKernel};
use flextensor_schedule::nest::{LoopKind, Stmt};

fn kernel_with(stmts: Vec<Stmt>) -> LoweredKernel {
    let g = ops::gemm(4, 4, 4);
    let mut k = lower_naive(&g, TargetKind::Cpu);
    k.stmts = stmts;
    k
}

#[test]
fn unbound_variable_is_a_runtime_error() {
    let g = ops::gemm(4, 4, 4);
    let k = kernel_with(vec![Stmt::Store {
        tensor: "O".into(),
        indices: vec![Expr::var("nonexistent"), Expr::int(0)],
        value: Expr::float(1.0),
        reduce: false,
        combiner: Combiner::Sum,
    }]);
    let err = run_kernel(&g, &k, &random_inputs(&g, 0)).unwrap_err();
    assert!(err.0.contains("unbound variable"), "{err}");
}

#[test]
fn unknown_tensor_store_is_a_runtime_error() {
    let g = ops::gemm(4, 4, 4);
    let k = kernel_with(vec![Stmt::Store {
        tensor: "nope".into(),
        indices: vec![Expr::int(0), Expr::int(0)],
        value: Expr::float(1.0),
        reduce: false,
        combiner: Combiner::Sum,
    }]);
    let err = run_kernel(&g, &k, &random_inputs(&g, 0)).unwrap_err();
    assert!(err.0.contains("unknown tensor"), "{err}");
}

#[test]
fn out_of_bounds_store_is_a_runtime_error() {
    let g = ops::gemm(4, 4, 4);
    let k = kernel_with(vec![Stmt::loop_(
        "i",
        10, // extent exceeds the 4x4 output
        LoopKind::Serial,
        vec![Stmt::Store {
            tensor: "O".into(),
            indices: vec![Expr::var("i"), Expr::int(0)],
            value: Expr::float(1.0),
            reduce: false,
            combiner: Combiner::Sum,
        }],
    )]);
    let err = run_kernel(&g, &k, &random_inputs(&g, 0)).unwrap_err();
    assert!(err.0.contains("out of bounds"), "{err}");
}

#[test]
fn rank_mismatch_is_a_runtime_error() {
    let g = ops::gemm(4, 4, 4);
    let k = kernel_with(vec![Stmt::Store {
        tensor: "O".into(),
        indices: vec![Expr::int(0)], // O is 2-D
        value: Expr::float(1.0),
        reduce: false,
        combiner: Combiner::Sum,
    }]);
    let err = run_kernel(&g, &k, &random_inputs(&g, 0)).unwrap_err();
    assert!(err.0.contains("rank mismatch"), "{err}");
}

#[test]
fn wrong_shaped_input_is_rejected() {
    let g = ops::gemm(4, 4, 4);
    let k = lower_naive(&g, TargetKind::Cpu);
    let mut inputs = Store::new();
    inputs.insert("A".into(), Buffer::zeros(&[4, 5])); // wrong k
    inputs.insert("B".into(), Buffer::zeros(&[4, 4]));
    let err = run_kernel(&g, &k, &inputs).unwrap_err();
    assert!(err.0.contains("shape"), "{err}");
}

#[test]
fn invalid_configs_never_reach_execution() {
    let g = ops::conv2d(ConvParams::same(1, 4, 8, 3), 6, 6);
    let op = g.root_op();
    // Factor product mismatch.
    let mut c1 = NodeConfig::naive(op);
    c1.spatial_splits[1] = vec![3, 1, 1, 1];
    assert!(lower(&g, &c1, TargetKind::Gpu).is_err());
    // Bad permutation.
    let mut c2 = NodeConfig::naive(op);
    c2.reorder = vec![0, 0, 1, 2];
    assert!(lower(&g, &c2, TargetKind::Gpu).is_err());
    // Pipeline out of range.
    let mut c3 = NodeConfig::naive(op);
    c3.fpga_pipeline = 9;
    assert!(lower(&g, &c3, TargetKind::Fpga).is_err());
}

#[test]
fn search_rejects_nothing_but_still_converges_under_heavy_infeasibility() {
    // A GPU space where most random points are infeasible (huge single
    // axis forces oversized blocks for many configurations).
    use flextensor_explore::methods::{search, Method, SearchOptions};
    use flextensor_sim::model::Evaluator;
    use flextensor_sim::spec::{v100, Device};
    let g = ops::gemm(4096, 2, 4096);
    let ev = Evaluator::new(Device::Gpu(v100()));
    let r = search(
        &g,
        &ev,
        Method::QMethod,
        &SearchOptions {
            trials: 15,
            ..SearchOptions::default()
        },
    )
    .unwrap();
    assert!(r.best_cost.seconds.is_finite());
    // Infeasible evaluations were recorded but never become "best".
    assert!(r.best_cost.gflops() > 0.0);
}

// ---------------------------------------------------------------------------
// Session-server fault isolation: a tune that errors fails only the
// requests for its key; the server keeps serving every other session and
// never writes a partial record for the failed key.

#[test]
fn failing_tune_is_isolated_to_its_key_and_leaves_no_record() {
    use std::sync::Arc;

    use flextensor::serve::{
        task_key, ServeOptions, ServeSource, SessionServer, TuneRunner, Tuned,
    };
    use flextensor::{OptimizeOptions, Task};
    use flextensor_sim::spec::{v100, Device};
    use flextensor_tunedb::{testutil, TuneDb, TuneKey};

    /// Errors on one poisoned key, answers every other key normally.
    struct PoisonedRunner {
        poisoned: TuneKey,
    }

    impl TuneRunner for PoisonedRunner {
        fn tune(&self, task: &Task, _opts: &OptimizeOptions) -> Result<Tuned, String> {
            let key = task_key(&task.graph, &task.device);
            if key == self.poisoned {
                return Err("injected evaluator failure".to_string());
            }
            Ok(Tuned {
                config: key.shape.clone(),
                seconds: 1e-5,
            })
        }
    }

    let device = Device::Gpu(v100());
    let bad = ops::gemm(32, 32, 32);
    let good = [ops::gemm(64, 64, 64), ops::gemm(96, 96, 96)];
    let db = Arc::new(TuneDb::open(testutil::temp_dir("poison")).unwrap().0);
    let server = SessionServer::with_runner(
        Arc::clone(&db),
        ServeOptions {
            workers: 2,
            ..ServeOptions::default()
        },
        Arc::new(PoisonedRunner {
            poisoned: task_key(&bad, &device),
        }),
    );

    let victim = server.session("victim");
    let bystander = server.session("bystander");
    // The victim asks for the poisoned key twice (fresh + coalesced) and
    // once for a good key; the bystander never touches the poisoned key.
    let v_bad1 = victim.submit(bad.clone(), device.clone());
    let v_bad2 = victim.submit(bad.clone(), device.clone());
    let v_good = victim.submit(good[0].clone(), device.clone());
    let b_good: Vec<_> = good
        .iter()
        .map(|g| bystander.submit(g.clone(), device.clone()))
        .collect();

    // Both poisoned requests fail with the injected error...
    for t in [v_bad1, v_bad2] {
        let err = t.wait().unwrap_err();
        assert!(err.0.contains("injected evaluator failure"), "{err}");
    }
    // ...while every other request, in both sessions, still succeeds.
    assert_eq!(
        v_good.wait().unwrap().source,
        ServeSource::Fresh {
            warm_started: false
        }
    );
    for t in b_good {
        assert!(t.wait().is_ok());
    }

    let stats: std::collections::HashMap<_, _> = server.session_stats().into_iter().collect();
    assert_eq!(stats["victim"].failed, 2);
    assert_eq!(stats["victim"].completed, 1);
    assert_eq!(stats["bystander"].failed, 0);
    assert_eq!(stats["bystander"].completed, 2);

    // No partial record: the failed key is absent from the store; the
    // good keys are all present.
    drop(server);
    assert!(db.peek(&task_key(&bad, &device)).is_none());
    assert_eq!(db.len(), good.len());
    // And the failure is not sticky across servers: a healthy runner
    // tunes the key on the next attempt.
    let server = SessionServer::new(Arc::clone(&db), ServeOptions::default());
    let retry = server.session("retry");
    let r = retry.submit(bad, device).wait().unwrap();
    assert!(matches!(r.source, ServeSource::Fresh { .. }));
}
