//! Integration coverage for the static schedule analyzer.
//!
//! Two halves, matching the analyzer's contract:
//!
//! * **Negative sweep** — the naive schedule of every suite operator on
//!   its small conformance shape is `Error`-free on all three device
//!   models (performance lints are allowed; naive schedules are slow,
//!   not illegal).
//! * **Positive cases** — one hand-built trigger per legality rule (and
//!   the determinism rule), asserting the expected rule id fires with
//!   the expected span.

use flextensor_analyze::{analyze, analyze_schedule, gate_rejects, AnalysisInput, Severity};
use flextensor_ir::expr::Expr;
use flextensor_ir::graph::Combiner;
use flextensor_ir::suite::{small_case, OperatorKind};
use flextensor_schedule::config::NodeConfig;
use flextensor_schedule::lower::lower;
use flextensor_schedule::nest::{LoopKind, Stmt};
use flextensor_sim::spec::{v100, vu9p, xeon_e5_2699_v4, Device};

fn devices() -> [Device; 3] {
    [
        Device::Cpu(xeon_e5_2699_v4()),
        Device::Gpu(v100()),
        Device::Fpga(vu9p()),
    ]
}

#[test]
fn naive_suite_schedules_are_error_free_on_every_target() {
    for kind in OperatorKind::all() {
        let graph = small_case(kind);
        let cfg = NodeConfig::naive(graph.anchor_op());
        for device in devices() {
            let report = analyze_schedule(&graph, &cfg, &device);
            assert_eq!(
                report.error_count(),
                0,
                "{} on {}: {}",
                graph.name,
                device.name(),
                report.render_text()
            );
        }
    }
}

/// Asserts the report's first diagnostic has the given rule and span.
fn assert_first(report: &flextensor_analyze::Report, rule: &str, span: &str) {
    let d = report
        .diagnostics
        .first()
        .unwrap_or_else(|| panic!("expected {rule}, report is clean"));
    assert_eq!(d.rule, rule, "{}", report.render_text());
    assert_eq!(d.span, span, "{}", report.render_text());
    assert_eq!(d.severity, Severity::Error);
}

#[test]
fn split_shape_rule_fires_on_bad_product() {
    let graph = small_case(OperatorKind::Gemm);
    let mut cfg = NodeConfig::naive(graph.anchor_op());
    cfg.spatial_splits[0] = vec![3, 1, 1, 1];
    let report = analyze_schedule(&graph, &cfg, &Device::Gpu(v100()));
    assert_first(&report, "legality/split-shape", "spatial_splits[0]");
}

#[test]
fn reorder_rule_fires_on_duplicate_entry() {
    let graph = small_case(OperatorKind::Gemm);
    let mut cfg = NodeConfig::naive(graph.anchor_op());
    let dup = cfg.reorder[0];
    let last = cfg.reorder.len() - 1;
    cfg.reorder[last] = dup;
    let report = analyze_schedule(&graph, &cfg, &Device::Cpu(xeon_e5_2699_v4()));
    assert_first(&report, "legality/reorder", &format!("reorder[{last}]"));
}

#[test]
fn fuse_depth_rule_fires_out_of_range() {
    let graph = small_case(OperatorKind::Gemm);
    let mut cfg = NodeConfig::naive(graph.anchor_op());
    cfg.fuse_outer = 99;
    let report = analyze_schedule(&graph, &cfg, &Device::Cpu(xeon_e5_2699_v4()));
    assert_first(&report, "legality/fuse-depth", "fuse_outer");
}

#[test]
fn fpga_partition_rule_fires_on_bad_pipeline_depth() {
    let graph = small_case(OperatorKind::Gemm);
    let mut cfg = NodeConfig::naive(graph.anchor_op());
    cfg.fpga_pipeline = 4;
    let report = analyze_schedule(&graph, &cfg, &Device::Fpga(vu9p()));
    assert_first(&report, "legality/fpga-partition", "fpga_pipeline");
}

/// Lowers the naive small-GEMM schedule for `device` and returns its
/// features — a feasible baseline the feature-rule tests then corrupt.
fn baseline_features(device: &Device) -> flextensor_schedule::features::KernelFeatures {
    let graph = small_case(OperatorKind::Gemm);
    let cfg = NodeConfig::naive(graph.anchor_op());
    let kernel = lower(&graph, &cfg, device.target()).expect("naive schedule lowers");
    kernel.features
}

#[test]
fn gpu_thread_count_rule_fires_and_gate_rejects() {
    let device = Device::Gpu(v100());
    let spec = v100();
    let mut f = baseline_features(&device);
    assert!(gate_rejects(&device, &f).is_none());
    f.block_threads = spec.max_threads_per_block + 1;
    let d = gate_rejects(&device, &f).expect("oversized block rejected");
    assert_eq!(d.rule, "legality/gpu-thread-count");
    assert_eq!(d.span, "features.block_threads");
}

#[test]
fn gpu_shared_capacity_rule_fires_and_gate_rejects() {
    let device = Device::Gpu(v100());
    let spec = v100();
    let mut f = baseline_features(&device);
    f.cache_shared = true;
    f.shared_bytes_per_block = spec.shared_per_block + 1;
    let d = gate_rejects(&device, &f).expect("oversized shared staging rejected");
    assert_eq!(d.rule, "legality/gpu-shared-capacity");
    assert_eq!(d.span, "features.shared_bytes_per_block");
}

#[test]
fn gpu_register_pressure_rule_fires_and_gate_rejects() {
    let device = Device::Gpu(v100());
    let spec = v100();
    let mut f = baseline_features(&device);
    // Keep the block itself legal so the earlier rules stay silent; the
    // register file then cannot host even one block.
    f.block_threads = 256;
    f.thread_reg_bytes = spec.regfile_per_sm;
    let d = gate_rejects(&device, &f).expect("register-starved block rejected");
    assert_eq!(d.rule, "legality/gpu-register-pressure");
    assert_eq!(d.span, "features.thread_reg_bytes");
}

#[test]
fn fpga_pe_budget_rule_fires_and_gate_rejects() {
    let device = Device::Fpga(vu9p());
    let spec = vu9p();
    let mut f = baseline_features(&device);
    f.fpga
        .as_mut()
        .expect("FPGA lowering fills fpga features")
        .pe = spec.max_pe() + 1;
    let d = gate_rejects(&device, &f).expect("PE overflow rejected");
    assert_eq!(d.rule, "legality/fpga-pe-budget");
    assert_eq!(d.span, "features.fpga.pe");
}

#[test]
fn fpga_bram_capacity_rule_fires_and_gate_rejects() {
    let device = Device::Fpga(vu9p());
    let spec = vu9p();
    let mut f = baseline_features(&device);
    f.fpga
        .as_mut()
        .expect("FPGA lowering fills fpga features")
        .buffer_bytes = spec.bram_bytes + 1;
    let d = gate_rejects(&device, &f).expect("BRAM overflow rejected");
    assert_eq!(d.rule, "legality/fpga-bram-capacity");
    assert_eq!(d.span, "features.fpga.buffer_bytes");
}

/// Runs the registry on a hand-built nest (config-level context is the
/// clean naive small-GEMM schedule, so only nest rules can fire errors).
fn analyze_nest(nest: &[Stmt]) -> flextensor_analyze::Report {
    let graph = small_case(OperatorKind::Gemm);
    let cfg = NodeConfig::naive(graph.anchor_op());
    let device = Device::Cpu(xeon_e5_2699_v4());
    analyze(&AnalysisInput {
        op: graph.root_op(),
        cfg: &cfg,
        device: &device,
        features: None,
        nest: Some(nest),
    })
}

fn store(reduce: bool) -> Stmt {
    Stmt::Store {
        tensor: "O".into(),
        indices: vec![Expr::int(0)],
        value: Expr::var("i"),
        reduce,
        combiner: Combiner::Sum,
    }
}

#[test]
fn concurrent_write_race_rule_fires_on_unindexed_parallel_store() {
    let nest = vec![Stmt::loop_("i", 4, LoopKind::Parallel, vec![store(false)])];
    let report = analyze_nest(&nest);
    assert_first(&report, "legality/concurrent-write-race", "nest.i");
}

#[test]
fn parallel_reduction_rule_fires_on_unindexed_concurrent_accumulation() {
    let nest = vec![Stmt::loop_("i", 4, LoopKind::ThreadIdx, vec![store(true)])];
    let report = analyze_nest(&nest);
    assert_first(&report, "determinism/parallel-reduction", "nest.i");
}
