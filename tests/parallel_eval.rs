//! The parallel, memoized evaluation layer: determinism in the worker
//! count, cache-key invariants, and statistics plumbing.
//!
//! The central contract under test: `eval_workers` changes *wall-clock
//! time only*. Every search result — best config, best cost, measurement
//! count, modeled exploration time, full trace — must be bit-for-bit
//! identical whether candidates are evaluated serially or fanned out
//! over a worker pool.

use std::collections::BTreeSet;

use flextensor_explore::methods::{search, Method, SearchOptions};
use flextensor_explore::pool::EvalPool;
use flextensor_explore::space::{Direction, Space};
use flextensor_ir::ops;
use flextensor_sim::model::Evaluator;
use flextensor_sim::spec::{v100, Device};
use proptest::prelude::*;
use rand::SeedableRng;

fn opts(trials: usize, eval_workers: usize) -> SearchOptions {
    SearchOptions {
        trials,
        starts: 4,
        initial_samples: 8,
        eval_workers,
        ..SearchOptions::default()
    }
}

/// Searching with 1 worker and with 8 returns identical results — cost,
/// config, measurements, modeled time, and the whole trace — for all
/// three methods. (The pool reduces outcomes in fixed candidate order and
/// evaluation never touches the RNG, so thread scheduling cannot leak in.)
#[test]
fn search_is_deterministic_in_worker_count() {
    let g = ops::gemm(128, 128, 128);
    let ev = Evaluator::new(Device::Gpu(v100()));
    for m in [Method::QMethod, Method::PMethod, Method::RandomWalk] {
        let serial = search(&g, &ev, m, &opts(6, 1)).unwrap();
        let parallel = search(&g, &ev, m, &opts(6, 8)).unwrap();
        assert_eq!(serial.best.encode(), parallel.best.encode(), "{m}");
        assert_eq!(
            serial.best_cost.seconds.to_bits(),
            parallel.best_cost.seconds.to_bits(),
            "{m}"
        );
        assert_eq!(serial.measurements, parallel.measurements, "{m}");
        assert_eq!(
            serial.exploration_time_s.to_bits(),
            parallel.exploration_time_s.to_bits(),
            "{m}"
        );
        assert_eq!(serial.trace, parallel.trace, "{m}");
        assert_eq!(
            serial.eval_stats.evaluated, parallel.eval_stats.evaluated,
            "{m}"
        );
        assert_eq!(
            serial.eval_stats.cache_hits, parallel.eval_stats.cache_hits,
            "{m}"
        );
        assert_eq!(serial.eval_stats.workers, 1, "{m}");
        assert_eq!(parallel.eval_stats.workers, 8, "{m}");
    }
}

/// `eval_workers: 0` means "all cores" and is likewise result-identical.
#[test]
fn auto_worker_count_is_result_identical() {
    let g = ops::gemm(64, 64, 64);
    let ev = Evaluator::new(Device::Gpu(v100()));
    let serial = search(&g, &ev, Method::RandomWalk, &opts(8, 1)).unwrap();
    let auto = search(&g, &ev, Method::RandomWalk, &opts(8, 0)).unwrap();
    assert_eq!(serial.best.encode(), auto.best.encode());
    assert_eq!(serial.trace, auto.trace);
    assert!(auto.eval_stats.workers >= 1);
}

/// On a space where the exploration budget dwarfs the number of distinct
/// reachable points, the stats must show the memo layer working: a
/// positive cache hit rate, and a fresh-evaluation count that equals the
/// distinct-key count (every point pays for evaluation exactly once).
#[test]
fn tiny_space_search_reports_cache_hits() {
    let g = ops::gemm(2, 2, 2);
    let ev = Evaluator::new(Device::Gpu(v100()));
    let r = search(
        &g,
        &ev,
        Method::PMethod,
        &SearchOptions {
            trials: 60,
            starts: 8,
            initial_samples: 64,
            ..SearchOptions::default()
        },
    )
    .unwrap();
    let s = r.eval_stats;
    assert!(s.hit_rate() > 0.0, "expected cache hits, got {s:?}");
    assert!(s.cache_hits > 0, "{s:?}");
    // Every distinct key misses exactly once; repeats are hits. So fresh
    // evaluations == distinct keys == misses, and without early stopping
    // every fresh evaluation is absorbed as a measurement.
    assert_eq!(s.evaluated, s.cache_misses, "{s:?}");
    assert_eq!(s.evaluated, r.measurements, "{s:?}");
    assert_eq!(s.lookups(), s.cache_hits + s.cache_misses);
    assert!(
        s.lookups() > s.evaluated,
        "budget should revisit points: {s:?}"
    );
}

/// Pool-level ground truth for the same property: feeding batches with
/// repeats through an [`EvalPool`] evaluates each distinct key exactly
/// once, whatever the batch boundaries.
#[test]
fn pool_evaluates_each_distinct_key_once() {
    let g = ops::gemm(32, 32, 32);
    let ev = Evaluator::new(Device::Gpu(v100()));
    let space = Space::new(&g, ev.target());
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let points: Vec<_> = (0..30).map(|_| space.random_point(&mut rng)).collect();
    // Three overlapping batches built from the same point set.
    let batches = [&points[0..20], &points[5..25], &points[10..30]];
    let mut pool = EvalPool::new(&g, &ev, 4, 1 << 16);
    for b in batches {
        pool.evaluate_batch(b);
    }
    let distinct: BTreeSet<Vec<i64>> = points.iter().map(|p| p.encode()).collect();
    assert_eq!(pool.stats().evaluated, distinct.len());
    assert_eq!(pool.stats().lookups(), 60);
}

/// The inverse of each direction, where one exists.
fn inverse(d: Direction) -> Direction {
    match d {
        Direction::SplitMove { axis, from, to } => Direction::SplitMove {
            axis,
            from: to,
            to: from,
        },
        Direction::FuseMore => Direction::FuseLess,
        Direction::FuseLess => Direction::FuseMore,
        Direction::PartitionUp => Direction::PartitionDown,
        Direction::PartitionDown => Direction::PartitionUp,
        Direction::PipelineUp => Direction::PipelineDown,
        Direction::PipelineDown => Direction::PipelineUp,
        // Swaps and toggles undo themselves.
        other => other,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A point moved along a direction and back along its inverse encodes
    /// to the original cache key: the memo cache will treat the
    /// round-tripped point as the same point.
    #[test]
    fn direction_roundtrip_preserves_cache_key(seed in any::<u64>(), dir_salt in any::<u64>()) {
        let g = ops::conv2d(ops::ConvParams::same(1, 8, 16, 3), 12, 12);
        let ev = Evaluator::new(Device::Gpu(v100()));
        let space = Space::new(&g, ev.target());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = space.random_point(&mut rng);
        let applicable: Vec<Direction> = space
            .directions()
            .iter()
            .copied()
            .filter(|&d| space.apply(&p, d).is_some())
            .collect();
        prop_assert!(!applicable.is_empty());
        let d = applicable[(dir_salt % applicable.len() as u64) as usize];
        let moved = space.apply(&p, d).expect("applicable");
        prop_assert_ne!(moved.encode(), p.encode(), "direction {:?} must move", d);
        let back = space
            .apply(&moved, inverse(d))
            .expect("inverse of an applied direction applies");
        prop_assert_eq!(back.encode(), p.encode(), "direction {:?}", d);
    }

    /// A cache hit returns exactly the cost the fresh evaluation produced
    /// — bit-for-bit, feasible or not — no matter how often it is asked.
    #[test]
    fn cache_hits_never_change_the_cost(seed in any::<u64>(), repeats in 2usize..5) {
        let g = ops::gemm(64, 64, 64);
        let ev = Evaluator::new(Device::Gpu(v100()));
        let space = Space::new(&g, ev.target());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = space.random_point(&mut rng);
        let mut pool = EvalPool::new(&g, &ev, 2, 1 << 16);
        let first = pool.evaluate(&p);
        prop_assert!(first.fresh);
        for _ in 0..repeats {
            let again = pool.evaluate(&p);
            prop_assert!(!again.fresh);
            match (first.cost, again.cost) {
                (Some(a), Some(b)) => {
                    prop_assert_eq!(a.seconds.to_bits(), b.seconds.to_bits());
                    prop_assert_eq!(a.flops, b.flops);
                }
                (None, None) => {}
                _ => prop_assert!(false, "feasibility changed on a cache hit"),
            }
        }
    }
}
