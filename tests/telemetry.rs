//! The telemetry subsystem end to end: recorded traces are deterministic,
//! serialize losslessly, and replay into the exact recorded summary.
//!
//! The contracts under test:
//!
//! * same seed + same worker count ⇒ byte-identical JSONL, modulo the
//!   wall-clock fields (`wall_s`), which are the only nondeterministic
//!   ones in the schema;
//! * the worker count changes wall-clock only — the replayed summaries
//!   of a serial and a parallel run agree bit-for-bit on every modeled
//!   field;
//! * replaying a trace (a pure fold over the event stream, no evaluator)
//!   reproduces the recorded `run_summary` exactly, for all three
//!   exploration methods and the AutoTVM baseline;
//! * the committed fixture trace still replays exactly — the schema is
//!   stable across writer changes.

use std::sync::Arc;

use flextensor_autotvm::tuner::{tune, TuneOptions};
use flextensor_explore::methods::{search, Method, SearchOptions};
use flextensor_ir::ops;
use flextensor_sim::model::Evaluator;
use flextensor_sim::spec::{v100, Device};
use flextensor_telemetry::replay::replay;
use flextensor_telemetry::{read_trace_file, JsonlSink, MemorySink, Telemetry, TraceEvent};

fn opts(workers: usize, tel: Telemetry) -> SearchOptions {
    SearchOptions {
        trials: 5,
        starts: 4,
        initial_samples: 8,
        eval_workers: workers,
        telemetry: tel,
        ..SearchOptions::default()
    }
}

/// Runs one search with a memory sink attached and returns the events.
fn record(method: Method, workers: usize) -> (Vec<TraceEvent>, f64) {
    let g = ops::gemm(128, 128, 128);
    let ev = Evaluator::new(Device::Gpu(v100()));
    let sink = Arc::new(MemorySink::new());
    let r = search(
        &g,
        &ev,
        method,
        &opts(workers, Telemetry::new(sink.clone())),
    )
    .unwrap();
    (sink.events(), r.best_cost.seconds)
}

/// Serializes events to JSONL with the wall-clock fields zeroed — the
/// deterministic projection of a trace.
fn stripped_jsonl(events: &[TraceEvent]) -> String {
    events
        .iter()
        .map(|e| e.strip_wall_clock().to_jsonl() + "\n")
        .collect()
}

#[test]
fn same_seed_records_byte_identical_jsonl() {
    for m in [Method::QMethod, Method::PMethod, Method::RandomWalk] {
        let (a, _) = record(m, 2);
        let (b, _) = record(m, 2);
        assert_eq!(stripped_jsonl(&a), stripped_jsonl(&b), "{m}");
    }
}

#[test]
fn worker_count_changes_wall_clock_only() {
    for m in [Method::QMethod, Method::PMethod, Method::RandomWalk] {
        let (serial, _) = record(m, 1);
        let (parallel, _) = record(m, 8);
        let a = replay(&serial).unwrap();
        let b = replay(&parallel).unwrap();
        // Everything modeled agrees bit-for-bit; only `workers` and the
        // wall-clock fields may differ.
        let (
            TraceEvent::RunSummary {
                trials: t1,
                measurements: m1,
                exploration_time_s: e1,
                best_seconds: s1,
                best_gflops: g1,
                evaluated: v1,
                cache_hits: h1,
                cache_misses: c1,
                ..
            },
            TraceEvent::RunSummary {
                trials: t2,
                measurements: m2,
                exploration_time_s: e2,
                best_seconds: s2,
                best_gflops: g2,
                evaluated: v2,
                cache_hits: h2,
                cache_misses: c2,
                ..
            },
        ) = (&a.replayed, &b.replayed)
        else {
            panic!("replayed is always a run_summary");
        };
        assert_eq!((t1, m1, v1, h1, c1), (t2, m2, v2, h2, c2), "{m}");
        assert_eq!(e1.to_bits(), e2.to_bits(), "{m}");
        assert_eq!(s1.to_bits(), s2.to_bits(), "{m}");
        assert_eq!(g1.to_bits(), g2.to_bits(), "{m}");
    }
}

#[test]
fn replay_reproduces_live_summary_for_all_explore_methods() {
    for m in [Method::QMethod, Method::PMethod, Method::RandomWalk] {
        let (events, best) = record(m, 2);
        let r = replay(&events).unwrap();
        assert!(r.summary_matches(), "{m}: {:#?}", r);
        let TraceEvent::RunSummary { best_seconds, .. } = r.replayed else {
            unreachable!()
        };
        assert_eq!(best_seconds.to_bits(), best.to_bits(), "{m}");
        assert!(!r.curve.is_empty(), "{m}");
        // The convergence curve never regresses.
        for w in r.curve.windows(2) {
            assert!(w[1].best_seconds <= w[0].best_seconds, "{m}");
        }
    }
}

#[test]
fn replay_reproduces_live_summary_for_autotvm() {
    let g = ops::gemm(128, 128, 128);
    let ev = Evaluator::new(Device::Gpu(v100()));
    let sink = Arc::new(MemorySink::new());
    let topts = TuneOptions {
        rounds: 4,
        batch: 16,
        eval_workers: 2,
        telemetry: Telemetry::new(sink.clone()),
        ..TuneOptions::default()
    };
    let r = tune(&g, &ev, &topts).unwrap();
    let rep = replay(&sink.events()).unwrap();
    assert!(rep.summary_matches(), "{:#?}", rep);
    let TraceEvent::RunSummary {
        best_seconds,
        measurements,
        exploration_time_s,
        ..
    } = rep.replayed
    else {
        unreachable!()
    };
    assert_eq!(best_seconds.to_bits(), r.best_cost.seconds.to_bits());
    assert_eq!(measurements, r.measurements);
    assert_eq!(exploration_time_s.to_bits(), r.exploration_time_s.to_bits());
    assert_eq!(rep.run.method, "autotvm");
}

#[test]
fn jsonl_file_round_trips_the_event_stream() {
    let g = ops::gemm(128, 128, 128);
    let ev = Evaluator::new(Device::Gpu(v100()));
    let path = std::env::temp_dir().join(format!("flextensor_trace_{}.jsonl", std::process::id()));

    let memory = Arc::new(MemorySink::new());
    let (file_events, mem_events) = {
        let sink = JsonlSink::create(&path).unwrap();
        // Drop the search options (and with them the sink) before reading
        // the file back, so the buffered writer flushes.
        let o = opts(1, Telemetry::to_sink(sink));
        search(&g, &ev, Method::QMethod, &o).unwrap();
        drop(o);
        let from_file = read_trace_file(&path).unwrap();
        let om = opts(1, Telemetry::new(memory.clone()));
        search(&g, &ev, Method::QMethod, &om).unwrap();
        (from_file, memory.events())
    };
    let _ = std::fs::remove_file(&path);

    assert_eq!(file_events.len(), mem_events.len());
    assert_eq!(stripped_jsonl(&file_events), stripped_jsonl(&mem_events));
}

#[test]
fn committed_fixture_replays_exactly() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("crates/bench/fixtures/trace_q_gemm256.jsonl");
    let events = read_trace_file(&path).unwrap();
    let r = replay(&events).unwrap();
    assert!(
        r.summary_matches(),
        "fixture no longer replays — schema or fold changed incompatibly: {:#?}",
        r
    );
    assert_eq!(r.run.method, "q-method");
    assert_eq!(r.run.seed, 2024);
    assert_eq!(r.run.trials, 8);
    let TraceEvent::RunSummary { best_seconds, .. } = r.replayed else {
        unreachable!()
    };
    assert!(best_seconds.is_finite() && best_seconds > 0.0);
}

/// The graph-tuning fixture: an ordinary search trace carrying
/// `graph_plan` / `graph_round` events. The replayer must tolerate them
/// (still fold the run exactly) *and* surface them for inspection.
#[test]
fn committed_graph_fixture_replays_and_surfaces_graph_events() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("crates/bench/fixtures/trace_graph_shuffle.jsonl");
    let events = read_trace_file(&path).unwrap();
    let r = replay(&events).unwrap();
    assert!(
        r.summary_matches(),
        "graph fixture no longer replays — schema or fold changed incompatibly: {:#?}",
        r
    );
    let Some(TraceEvent::GraphPlan {
        network,
        occurrences,
        tasks,
        budget,
        ..
    }) = &r.graph_plan
    else {
        panic!("fixture must carry a graph_plan event: {:#?}", r.graph_plan);
    };
    assert_eq!(network, "shufflenet_like_b1");
    assert_eq!(*occurrences, 19);
    assert_eq!(*tasks, 8);
    assert_eq!(*budget, 48);
    // Pilot round plus two refinement rounds, in order, spending the
    // whole budget by the final round.
    assert_eq!(r.graph_rounds.len(), 3);
    let mut spent_last = 0;
    for (i, ev) in r.graph_rounds.iter().enumerate() {
        let TraceEvent::GraphRound {
            round,
            spent,
            network_seconds,
            ..
        } = ev
        else {
            panic!("graph_rounds must hold graph_round events: {ev:?}");
        };
        assert_eq!(*round, i);
        assert!(*spent >= spent_last, "spent trials are cumulative");
        assert!(network_seconds.is_finite() && *network_seconds > 0.0);
        spent_last = *spent;
    }
    assert_eq!(spent_last, *budget, "the run spends its whole budget");
}
