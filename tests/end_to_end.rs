//! End-to-end integration tests: the full `optimize` flow across devices,
//! its interaction with the simulated libraries, and the DNN case-study
//! plumbing.

use flextensor::dnn::{optimize_network, LayerSpec};
use flextensor::{optimize, Method, OptimizeOptions, SearchOptions, Task};
use flextensor_ir::ops::{self, ConvParams};
use flextensor_ir::suite::OperatorKind;
use flextensor_ir::yolo::yolo_layer;
use flextensor_sim::library;
use flextensor_sim::model::Evaluator;
use flextensor_sim::spec::{titan_x, v100, vu9p, xeon_e5_2699_v4, Device};

fn quick() -> OptimizeOptions {
    OptimizeOptions {
        method: Method::QMethod,
        search: SearchOptions {
            trials: 25,
            starts: 6,
            initial_samples: 10,
            ..SearchOptions::default()
        },
    }
}

#[test]
fn every_table3_operator_optimizes_on_gpu() {
    for kind in OperatorKind::table3() {
        let g = flextensor_ir::suite::test_cases(kind).swap_remove(0);
        let task = Task::new(g, Device::Gpu(v100()));
        let r = optimize(&task, &quick()).unwrap_or_else(|e| panic!("{kind}: {e}"));
        assert!(r.cost.seconds > 0.0 && r.cost.seconds.is_finite(), "{kind}");
        r.config
            .validate(task.graph.root_op())
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
    }
}

#[test]
fn optimize_is_deterministic() {
    let g = ops::gemm(128, 128, 128);
    let t = Task::new(g, Device::Gpu(titan_x()));
    let a = optimize(&t, &quick()).unwrap();
    let b = optimize(&t, &quick()).unwrap();
    assert_eq!(a.config.encode(), b.config.encode());
    assert_eq!(a.cost.seconds, b.cost.seconds);
}

#[test]
fn different_devices_pick_different_schedules() {
    let g = ops::conv2d(ConvParams::same(1, 64, 64, 3), 28, 28);
    let gpu = optimize(&Task::new(g.clone(), Device::Gpu(v100())), &quick()).unwrap();
    let cpu = optimize(
        &Task::new(g.clone(), Device::Cpu(xeon_e5_2699_v4())),
        &quick(),
    )
    .unwrap();
    let fpga = optimize(&Task::new(g, Device::Fpga(vu9p())), &quick()).unwrap();
    // The three schedules cannot be identical: targets prune differently.
    assert_ne!(gpu.config.encode(), cpu.config.encode());
    assert!(fpga.kernel.features.fpga.is_some());
    assert!(gpu.kernel.features.fpga.is_none());
}

#[test]
fn explored_schedule_beats_generic_expert_given_budget() {
    // The core value proposition: shape-specific search beats the fixed
    // generic schedule at the same code quality.
    let g = yolo_layer("C9").unwrap().graph(1);
    let task = Task::new(g.clone(), Device::Gpu(v100()));
    let mut opts = quick();
    opts.search.trials = 120;
    let r = optimize(&task, &opts).unwrap();
    let expert = library::hand_tuned_gpu_time(&g, &v100()).unwrap();
    assert!(
        r.cost.seconds < expert,
        "explored {} vs expert {}",
        r.cost.seconds,
        expert
    );
}

#[test]
fn library_baselines_produce_times_for_all_operators() {
    let gpu = v100();
    let cpu = xeon_e5_2699_v4();
    for kind in OperatorKind::table3() {
        let g = flextensor_ir::suite::test_cases(kind).swap_remove(0);
        assert!(
            library::pytorch_gpu_time(&g, &gpu).is_some(),
            "{kind}: pytorch gpu"
        );
        assert!(
            library::pytorch_cpu_time(&g, &cpu).is_some(),
            "{kind}: pytorch cpu"
        );
        match kind {
            OperatorKind::Gemv | OperatorKind::Gemm | OperatorKind::Bilinear => {
                assert!(library::cublas_time(&g, &gpu) > 0.0, "{kind}: cublas");
            }
            _ => {
                assert!(
                    library::cudnn_time(kind, &g, &gpu).is_some(),
                    "{kind}: cudnn"
                );
            }
        }
    }
}

#[test]
fn winograd_makes_cudnn_win_c4_and_c6() {
    // The paper's observed losses: cuDNN's Winograd beats FlexTensor's
    // direct convolution on C4 and C6.
    let gpu = v100();
    let mut opts = quick();
    opts.search.trials = 80;
    for name in ["C4", "C6"] {
        let g = yolo_layer(name).unwrap().graph(1);
        let cudnn = library::cudnn_time(OperatorKind::Conv2d, &g, &gpu).unwrap();
        let task = Task::new(g, Device::Gpu(gpu.clone()));
        let ft = optimize(&task, &opts).unwrap();
        assert!(
            cudnn < ft.cost.seconds,
            "{name}: cudnn {} should beat flextensor {}",
            cudnn,
            ft.cost.seconds
        );
    }
}

#[test]
fn dnn_network_flow_runs() {
    let specs = vec![
        LayerSpec {
            layer: *yolo_layer("C15").unwrap(),
            count: 2,
            epilogue: Some(flextensor_ir::ops::Epilogue::LeakyRelu(0.1)),
        },
        LayerSpec {
            layer: *yolo_layer("C7").unwrap(),
            count: 1,
            epilogue: None,
        },
    ];
    let r = optimize_network(&specs, &Device::Gpu(v100()), 1, &quick()).unwrap();
    assert_eq!(r.layers.len(), 2);
    assert!(r.total_seconds > 0.0);
}

#[test]
fn evaluator_orders_clearly_better_schedules_first() {
    // Sanity on the cost model the search trusts: a tuned expert config
    // must evaluate faster than a deliberately terrible one.
    let g = ops::gemm(512, 512, 512);
    let ev = Evaluator::new(Device::Gpu(v100()));
    let good = library::expert_gpu_config(g.root_op());
    let mut bad = flextensor_schedule::config::NodeConfig::naive(g.root_op());
    bad.spatial_splits = vec![vec![512, 1, 1, 1], vec![512 / 2, 1, 2, 1]];
    let tg = ev.evaluate(&g, &good).unwrap().seconds;
    let tb = ev.evaluate(&g, &bad).unwrap().seconds;
    assert!(tg * 3.0 < tb, "good {tg} vs bad {tb}");
}
