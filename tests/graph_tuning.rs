//! Graph-level tuning end to end: whole networks through
//! [`tune_graph`], over a real on-disk [`TuneDb`] and a real
//! [`SessionServer`].
//!
//! The contracts under test:
//!
//! * **budget conservation** — the sum of per-task trials equals the
//!   global budget exactly, as does the sum of per-round allocations
//!   (never approximately: every split uses integer remainders);
//! * **determinism** — the same seed produces the same plan and the
//!   same modeled outcome, bit for bit, at any worker count;
//! * **deduplication** — structurally identical layers collapse into
//!   one weighted task, so a network with 19 layer occurrences stores
//!   only as many database keys as it has distinct subgraphs, and the
//!   duplicates coalesce inside the server rather than re-searching;
//! * **ablation** — at the committed probe configuration the greedy
//!   planner is no worse than the uniform split at equal budget.

use std::sync::Arc;

use flextensor::optimize::OptimizeOptions;
use flextensor_graph::extract::{extract_tasks, SubgraphTask};
use flextensor_graph::plan::Allocation;
use flextensor_graph::tune::{tune_graph, GraphTuneOptions, GraphTuneReport};
use flextensor_nn::network::{shufflenet_like, yolo_tiny};
use flextensor_sim::spec::{v100, Device};
use flextensor_tunedb::{testutil, TuneDb};

fn gpu() -> Device {
    Device::Gpu(v100())
}

fn fresh_db(tag: &str) -> Arc<TuneDb> {
    Arc::new(TuneDb::open(testutil::temp_dir(tag)).unwrap().0)
}

/// The configuration committed in `results/probe_graph.csv` (probe
/// defaults), with a caller-chosen policy and worker count.
fn probe_opts(allocation: Allocation, workers: usize) -> GraphTuneOptions {
    let mut base = OptimizeOptions::quick();
    base.search.seed = 2024;
    base.search.starts = 2;
    base.search.initial_samples = 6;
    GraphTuneOptions {
        base,
        workers,
        budget: 48,
        rounds: 2,
        pilot: 2,
        chunk: 2,
        allocation,
        ..GraphTuneOptions::default()
    }
}

fn small_opts(budget: usize, workers: usize) -> GraphTuneOptions {
    let mut o = probe_opts(Allocation::Greedy, workers);
    o.base.search.trials = 4;
    o.base.search.initial_samples = 4;
    o.budget = budget;
    o
}

#[test]
fn global_budget_is_conserved_exactly() {
    let db = fresh_db("it-graph-budget");
    // 30 does not divide evenly by tasks or rounds, so every remainder
    // path is exercised.
    let report = tune_graph(&db, &shufflenet_like(1), &gpu(), &small_opts(30, 2)).unwrap();
    assert_eq!(report.spent, report.budget);
    assert_eq!(
        report.tasks.iter().map(|t| t.trials).sum::<usize>(),
        report.budget,
        "per-task trials must sum to the global budget"
    );
    assert_eq!(
        report.rounds.iter().map(|r| r.allocated).sum::<usize>(),
        report.budget,
        "per-round allocations must sum to the global budget"
    );
    for r in &report.rounds {
        assert_eq!(
            r.allocations.iter().sum::<usize>(),
            r.allocated,
            "round {} allocation vector must sum to its total",
            r.round
        );
    }
}

#[test]
fn same_seed_is_deterministic_at_any_worker_count() {
    let reports: Vec<GraphTuneReport> = [1usize, 2, 4]
        .iter()
        .map(|&w| {
            let db = fresh_db(&format!("it-graph-det-{w}"));
            tune_graph(&db, &yolo_tiny(1), &gpu(), &small_opts(24, w)).unwrap()
        })
        .collect();
    let base = &reports[0];
    for r in &reports[1..] {
        assert_eq!(
            r.network_seconds.to_bits(),
            base.network_seconds.to_bits(),
            "worker count must not change the modeled network latency"
        );
        for (a, b) in base.tasks.iter().zip(&r.tasks) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.trials, b.trials);
            assert_eq!(a.seconds.to_bits(), b.seconds.to_bits());
        }
        for (a, b) in base.rounds.iter().zip(&r.rounds) {
            assert_eq!(a.allocations, b.allocations, "plans must agree per round");
            assert_eq!(a.network_seconds.to_bits(), b.network_seconds.to_bits());
        }
    }
}

#[test]
fn duplicate_subgraphs_tune_once_through_the_server() {
    let db = fresh_db("it-graph-dedup");
    let net = shufflenet_like(1);
    let tasks = extract_tasks(&net.export(), &gpu());
    let report = tune_graph(&db, &net, &gpu(), &small_opts(24, 2)).unwrap();
    assert_eq!(report.occurrences, 19);
    assert_eq!(report.tasks.len(), 8);
    // One database key per distinct subgraph — the 11 duplicate layer
    // occurrences coalesced inside the pilot session instead of
    // searching again.
    assert_eq!(db.len(), tasks.len());
    assert_eq!(report.coalesced, report.occurrences - report.tasks.len());
    let mut keys: Vec<String> = report.tasks.iter().map(|t| t.key.flat()).collect();
    keys.sort();
    keys.dedup();
    assert_eq!(keys.len(), report.tasks.len(), "task keys must be distinct");
    // The store saw exactly one search per task per funded round — no
    // per-occurrence writes.
    let puts = db.stats().puts;
    let funded: usize = report
        .rounds
        .iter()
        .map(|r| r.allocations.iter().filter(|&&a| a > 0).count())
        .sum();
    assert_eq!(puts, funded, "one record per task per funded round");
}

#[test]
fn dedup_weights_count_every_occurrence() {
    for (net, distinct) in [(shufflenet_like(1), 8), (yolo_tiny(1), 6)] {
        let occ = net.export();
        let tasks = extract_tasks(&occ, &gpu());
        assert_eq!(tasks.len(), distinct, "{}", net.name);
        assert_eq!(
            tasks.iter().map(SubgraphTask::uses).sum::<usize>(),
            occ.len(),
            "use counts must cover every occurrence of {}",
            net.name
        );
        assert!(
            tasks.iter().any(|t| t.uses() > 1),
            "{} must contain repeated subgraphs",
            net.name
        );
    }
}

#[test]
fn greedy_matches_or_beats_uniform_at_the_committed_configuration() {
    let db_g = fresh_db("it-graph-greedy");
    let db_u = fresh_db("it-graph-uniform");
    let net = shufflenet_like(1);
    let greedy = tune_graph(&db_g, &net, &gpu(), &probe_opts(Allocation::Greedy, 4)).unwrap();
    let uniform = tune_graph(&db_u, &net, &gpu(), &probe_opts(Allocation::Uniform, 4)).unwrap();
    assert_eq!(greedy.spent, uniform.spent, "equal budget");
    assert!(
        greedy.network_seconds <= uniform.network_seconds + 1e-15,
        "greedy must not lose to uniform at the committed configuration: {} > {}",
        greedy.network_seconds,
        uniform.network_seconds
    );
}
