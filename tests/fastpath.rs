//! Differential tests for the split-phase lowering fast path.
//!
//! The invariant: for every operator of the Table 3 suite, every target,
//! and every sampled config, evaluating through a cached
//! [`LoweredTemplate`] must produce *identical* `KernelFeatures` and
//! `Cost` to a full `lower()` — including identical rejections of invalid
//! configs. The exploration layers (EvalPool, search drivers) rely on
//! this to switch to the fast path without changing a single result.

use flextensor_explore::pool::EvalPool;
use flextensor_explore::space::Space;
use flextensor_ir::graph::Graph;
use flextensor_ir::ops;
use flextensor_ir::suite::{small_case, OperatorKind};
use flextensor_schedule::config::{NodeConfig, TargetKind};
use flextensor_schedule::lower::lower;
use flextensor_schedule::template::LoweredTemplate;
use flextensor_sim::model::Evaluator;
use flextensor_sim::spec::{v100, vu9p, xeon_e5_2699_v4, Device};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn device_for(target: TargetKind) -> Device {
    match target {
        TargetKind::Cpu => Device::Cpu(xeon_e5_2699_v4()),
        TargetKind::Gpu => Device::Gpu(v100()),
        TargetKind::Fpga => Device::Fpga(vu9p()),
    }
}

/// Sampled configs for a graph: the naive start point, random points, and
/// the full one-step neighborhood of the start (covers every direction
/// kind, including `inline_data` toggles).
fn sample_configs(graph: &Graph, target: TargetKind, seed: u64) -> Vec<NodeConfig> {
    let space = Space::new(graph, target);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cfgs = vec![space.start_point().clone()];
    for _ in 0..12 {
        cfgs.push(space.random_point(&mut rng));
    }
    let start = space.start_point().clone();
    for &dir in space.directions() {
        if let Some(n) = space.apply(&start, dir) {
            cfgs.push(n);
        }
    }
    cfgs
}

#[test]
fn template_features_match_lower_for_every_suite_op() {
    for kind in OperatorKind::all() {
        let graph = small_case(kind);
        for target in [TargetKind::Cpu, TargetKind::Gpu, TargetKind::Fpga] {
            let template = LoweredTemplate::new(&graph, target);
            for (ci, cfg) in sample_configs(&graph, target, 0xFA57).iter().enumerate() {
                let fast = template.features(cfg);
                let full = lower(&graph, cfg, target).map(|k| k.features);
                assert_eq!(fast, full, "{kind:?} on {target} config #{ci}");
            }
        }
    }
}

#[test]
fn template_evaluation_cost_matches_full_evaluation() {
    for kind in OperatorKind::all() {
        let graph = small_case(kind);
        for target in [TargetKind::Cpu, TargetKind::Gpu, TargetKind::Fpga] {
            let ev = Evaluator::new(device_for(target));
            let template = LoweredTemplate::new(&graph, target);
            for (ci, cfg) in sample_configs(&graph, target, 0xBEEF).iter().enumerate() {
                assert_eq!(
                    ev.evaluate_template(&template, cfg),
                    ev.evaluate(&graph, cfg),
                    "{kind:?} on {target} config #{ci}"
                );
            }
        }
    }
}

#[test]
fn template_rejections_match_lower_rejections() {
    let graph = small_case(OperatorKind::Gemm);
    let template = LoweredTemplate::new(&graph, TargetKind::Gpu);
    let mut bad = NodeConfig::naive(graph.anchor_op());
    bad.spatial_splits[0] = vec![7, 1, 1, 1]; // product mismatch
    assert_eq!(
        template.features(&bad).unwrap_err(),
        lower(&graph, &bad, TargetKind::Gpu).unwrap_err()
    );
}

#[test]
fn pool_fast_path_equals_reference_pool_across_workers() {
    let graph = ops::gemm(64, 64, 64);
    let ev = Evaluator::new(Device::Gpu(v100()));
    let space = Space::new(&graph, ev.target());
    let mut rng = StdRng::seed_from_u64(42);
    let cands: Vec<NodeConfig> = (0..48).map(|_| space.random_point(&mut rng)).collect();
    let baseline = EvalPool::new_reference(&graph, &ev, 1, 1 << 16).evaluate_batch(&cands);
    for workers in [1, 4] {
        let fast = EvalPool::new(&graph, &ev, workers, 1 << 16).evaluate_batch(&cands);
        assert_eq!(fast, baseline, "workers = {workers}");
    }
}
