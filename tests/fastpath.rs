//! Differential tests for the split-phase lowering fast path.
//!
//! The invariant: for every operator of the Table 3 suite, every target,
//! and every sampled config, evaluating through a cached
//! [`LoweredTemplate`] must produce *identical* `KernelFeatures` and
//! `Cost` to a full `lower()` — including identical rejections of invalid
//! configs. The exploration layers (EvalPool, search drivers) rely on
//! this to switch to the fast path without changing a single result.

use flextensor_explore::pool::EvalPool;
use flextensor_explore::space::Space;
use flextensor_ir::graph::Graph;
use flextensor_ir::ops;
use flextensor_ir::suite::{small_case, OperatorKind};
use flextensor_schedule::config::{NodeConfig, TargetKind};
use flextensor_schedule::delta::{delta_features_with, DeltaScratch};
use flextensor_schedule::lower::lower;
use flextensor_schedule::template::LoweredTemplate;
use flextensor_sim::model::Evaluator;
use flextensor_sim::spec::{v100, vu9p, xeon_e5_2699_v4, Device};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

fn device_for(target: TargetKind) -> Device {
    match target {
        TargetKind::Cpu => Device::Cpu(xeon_e5_2699_v4()),
        TargetKind::Gpu => Device::Gpu(v100()),
        TargetKind::Fpga => Device::Fpga(vu9p()),
    }
}

/// Sampled configs for a graph: the naive start point, random points, and
/// the full one-step neighborhood of the start (covers every direction
/// kind, including `inline_data` toggles).
fn sample_configs(graph: &Graph, target: TargetKind, seed: u64) -> Vec<NodeConfig> {
    let space = Space::new(graph, target);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cfgs = vec![space.start_point().clone()];
    for _ in 0..12 {
        cfgs.push(space.random_point(&mut rng));
    }
    let start = space.start_point().clone();
    for &dir in space.directions() {
        if let Some(n) = space.apply(&start, dir) {
            cfgs.push(n);
        }
    }
    cfgs
}

#[test]
fn template_features_match_lower_for_every_suite_op() {
    for kind in OperatorKind::all() {
        let graph = small_case(kind);
        for target in [TargetKind::Cpu, TargetKind::Gpu, TargetKind::Fpga] {
            let template = LoweredTemplate::new(&graph, target);
            for (ci, cfg) in sample_configs(&graph, target, 0xFA57).iter().enumerate() {
                let fast = template.features(cfg);
                let full = lower(&graph, cfg, target).map(|k| k.features);
                assert_eq!(fast, full, "{kind:?} on {target} config #{ci}");
            }
        }
    }
}

#[test]
fn template_evaluation_cost_matches_full_evaluation() {
    for kind in OperatorKind::all() {
        let graph = small_case(kind);
        for target in [TargetKind::Cpu, TargetKind::Gpu, TargetKind::Fpga] {
            let ev = Evaluator::new(device_for(target));
            let template = LoweredTemplate::new(&graph, target);
            for (ci, cfg) in sample_configs(&graph, target, 0xBEEF).iter().enumerate() {
                assert_eq!(
                    ev.evaluate_template(&template, cfg),
                    ev.evaluate(&graph, cfg),
                    "{kind:?} on {target} config #{ci}"
                );
            }
        }
    }
}

#[test]
fn template_rejections_match_lower_rejections() {
    let graph = small_case(OperatorKind::Gemm);
    let template = LoweredTemplate::new(&graph, TargetKind::Gpu);
    let mut bad = NodeConfig::naive(graph.anchor_op());
    bad.spatial_splits[0] = vec![7, 1, 1, 1]; // product mismatch
    assert_eq!(
        template.features(&bad).unwrap_err(),
        lower(&graph, &bad, TargetKind::Gpu).unwrap_err()
    );
}

/// Delta-vs-full differential sweep: for every Table 3 suite operator and
/// every target, walk ~50 seeded single-move neighbor steps and check at
/// each step that the incremental feature patch is **bit-identical** to a
/// full `template.features()` recompute — features, modeled costs, and
/// error verdicts alike. The walk rolls its base forward through the
/// *delta-produced* features, so any drift would compound and be caught.
#[test]
fn delta_walk_matches_full_recompute_for_every_suite_op() {
    for (ki, kind) in OperatorKind::all().into_iter().enumerate() {
        let graph = small_case(kind);
        for target in [TargetKind::Cpu, TargetKind::Gpu, TargetKind::Fpga] {
            let ev = Evaluator::new(device_for(target));
            let template = LoweredTemplate::new(&graph, target);
            let space = Space::new(&graph, target);
            let mut rng = StdRng::seed_from_u64(0xDE17A ^ ((ki as u64) << 8) ^ target as u64);
            let dirs = space.directions();
            let mut scratch = DeltaScratch::new();
            let mut base = space.start_point().clone();
            let mut base_feats = template
                .features(&base)
                .expect("the naive start point always lowers");
            let mut compared = 0usize;
            for step in 0..50 {
                let dir = dirs[rng.next_u32() as usize % dirs.len()];
                let Some(neighbor) = space.apply(&base, dir) else {
                    continue;
                };
                let full = template.features(&neighbor);
                let delta =
                    delta_features_with(&template, &base, &base_feats, &neighbor, &mut scratch);
                match (full, delta) {
                    (Ok(f), Ok((d, _took_delta))) => {
                        assert_eq!(f, d, "{kind:?} on {target} step {step}: features diverged");
                        assert_eq!(
                            ev.time_features(&f).map(f64::to_bits),
                            ev.time_features(&d).map(f64::to_bits),
                            "{kind:?} on {target} step {step}: costs diverged"
                        );
                        base = neighbor;
                        base_feats = d;
                        compared += 1;
                    }
                    (Err(a), Err(b)) => {
                        assert_eq!(a, b, "{kind:?} on {target} step {step}: errors diverged");
                    }
                    (f, d) => panic!(
                        "{kind:?} on {target} step {step}: verdicts diverged \
                         (full {f:?}, delta {d:?})"
                    ),
                }
            }
            assert!(
                compared >= 10,
                "{kind:?} on {target}: walk compared only {compared} steps"
            );
        }
    }
}

#[test]
fn pool_fast_path_equals_reference_pool_across_workers() {
    let graph = ops::gemm(64, 64, 64);
    let ev = Evaluator::new(Device::Gpu(v100()));
    let space = Space::new(&graph, ev.target());
    let mut rng = StdRng::seed_from_u64(42);
    let cands: Vec<NodeConfig> = (0..48).map(|_| space.random_point(&mut rng)).collect();
    let baseline = EvalPool::new_reference(&graph, &ev, 1, 1 << 16).evaluate_batch(&cands);
    for workers in [1, 4] {
        let fast = EvalPool::new(&graph, &ev, workers, 1 << 16).evaluate_batch(&cands);
        assert_eq!(fast, baseline, "workers = {workers}");
    }
}
