//! Integration tests of exploration behavior across crates: method
//! comparisons, AutoTVM interplay, space-size relationships, and the
//! exploration-time accounting the paper's Figs. 6d/7 rely on.

use flextensor_autotvm::template::Template;
use flextensor_autotvm::tuner::{tune, TuneOptions};
use flextensor_explore::methods::{search, Method, SearchOptions};
use flextensor_explore::space::Space;
use flextensor_ir::ops::{self, ConvParams};
use flextensor_ir::yolo::yolo_layer;
use flextensor_schedule::config::TargetKind;
use flextensor_sim::model::Evaluator;
use flextensor_sim::spec::{v100, Device};

fn gpu_eval() -> Evaluator {
    Evaluator::new(Device::Gpu(v100()))
}

#[test]
fn flextensor_space_dwarfs_autotvm_template_space() {
    // §6.5: the paper measures FlexTensor's C2D space 2027x larger than
    // AutoTVM's on average; ours should be at least two orders larger.
    let mut ratios = Vec::new();
    for name in ["C2", "C8", "C13"] {
        let g = yolo_layer(name).unwrap().graph(1);
        let flex = Space::new(&g, TargetKind::Gpu).size();
        let tpl = Template::new(&g, TargetKind::Gpu).size();
        assert!(flex > 1e9, "{name}: flex space {flex:e}");
        ratios.push(flex / tpl);
    }
    let avg = ratios
        .iter()
        .product::<f64>()
        .powf(1.0 / ratios.len() as f64);
    assert!(avg > 100.0, "avg ratio {avg}");
}

#[test]
fn q_method_is_far_cheaper_than_p_method_per_trial() {
    let g = ops::conv2d(ConvParams::same(1, 32, 64, 3), 14, 14);
    let ev = gpu_eval();
    let opts = SearchOptions {
        trials: 8,
        starts: 4,
        initial_samples: 8,
        ..SearchOptions::default()
    };
    let q = search(&g, &ev, Method::QMethod, &opts).unwrap();
    let p = search(&g, &ev, Method::PMethod, &opts).unwrap();
    assert!(p.measurements > 5 * q.measurements);
    assert!(p.exploration_time_s > 5.0 * q.exploration_time_s);
}

#[test]
fn q_method_reaches_autotvm_performance_faster() {
    // The Fig. 6d protocol on one layer: AutoTVM converges, then Q-method
    // reaches the same performance in less modeled time.
    let g = yolo_layer("C9").unwrap().graph(1);
    let ev = gpu_eval();
    let at = tune(
        &g,
        &ev,
        &TuneOptions {
            rounds: 8,
            batch: 64,
            ..TuneOptions::default()
        },
    )
    .unwrap();
    let q = search(
        &g,
        &ev,
        Method::QMethod,
        &SearchOptions {
            trials: 400,
            starts: 8,
            initial_samples: 16,
            stop_when_seconds: Some(at.best_cost.seconds),
            ..SearchOptions::default()
        },
    )
    .unwrap();
    assert!(
        q.best_cost.seconds <= at.best_cost.seconds * 1.001,
        "Q did not reach AutoTVM's level: {} vs {}",
        q.best_cost.seconds,
        at.best_cost.seconds
    );
    assert!(
        q.exploration_time_s < at.exploration_time_s,
        "Q time {} vs AutoTVM {}",
        q.exploration_time_s,
        at.exploration_time_s
    );
}

#[test]
fn exploration_time_grows_with_measurements() {
    let g = ops::gemm(256, 256, 256);
    let ev = gpu_eval();
    let small = search(
        &g,
        &ev,
        Method::RandomWalk,
        &SearchOptions {
            trials: 5,
            ..SearchOptions::default()
        },
    )
    .unwrap();
    let large = search(
        &g,
        &ev,
        Method::RandomWalk,
        &SearchOptions {
            trials: 40,
            ..SearchOptions::default()
        },
    )
    .unwrap();
    assert!(large.measurements > small.measurements);
    assert!(large.exploration_time_s > small.exploration_time_s);
    // Each measurement costs at least the compile+measure overhead.
    assert!(large.exploration_time_s >= 0.8 * large.measurements as f64);
}

#[test]
fn infeasible_heavy_spaces_still_yield_schedules() {
    // A shape whose naive/basic points are mostly infeasible on GPU
    // (gigantic single loops): search must still find feasible points.
    let g = ops::gemv(65536, 1024);
    let ev = gpu_eval();
    let r = search(
        &g,
        &ev,
        Method::QMethod,
        &SearchOptions {
            trials: 20,
            ..SearchOptions::default()
        },
    )
    .unwrap();
    assert!(r.best_cost.seconds.is_finite());
}

#[test]
fn autotvm_and_flextensor_agree_on_cost_model() {
    // Both tuners score with the same evaluator, so their best configs are
    // comparable; FlexTensor's bigger space should never lose badly given
    // a decent budget.
    let g = yolo_layer("C13").unwrap().graph(1);
    let ev = gpu_eval();
    let at = tune(
        &g,
        &ev,
        &TuneOptions {
            rounds: 6,
            batch: 32,
            ..TuneOptions::default()
        },
    )
    .unwrap();
    let ft = search(
        &g,
        &ev,
        Method::QMethod,
        &SearchOptions {
            trials: 120,
            ..SearchOptions::default()
        },
    )
    .unwrap();
    assert!(
        ft.best_cost.seconds < at.best_cost.seconds * 1.5,
        "flextensor {} vs autotvm {}",
        ft.best_cost.seconds,
        at.best_cost.seconds
    );
}
