#!/bin/bash
# Regenerates every table and figure; logs land in results/logs/.
set -x
cd /root/repo
B="cargo run --release -q -p flextensor-bench --bin"
$B fig01_motivation                      > results/logs/fig01.txt 2>&1
$B table03_benchmarks                    > results/logs/table03.txt 2>&1
$B table04_yolo                          > results/logs/table04.txt 2>&1
$B fig06a_gpu_conv2d -- --trials 150     > results/logs/fig06a.txt 2>&1
$B fig06b_cpu_conv2d -- --trials 150     > results/logs/fig06b.txt 2>&1
$B fig06c_fpga_conv2d -- --trials 150    > results/logs/fig06c.txt 2>&1
$B sec64_new_ops -- --trials 100         > results/logs/sec64.txt 2>&1
$B fig05_gpu_overall -- --trials 60      > results/logs/fig05.txt 2>&1
$B sec65_vs_autotvm -- --trials 150 --cases 3 > results/logs/sec65.txt 2>&1
$B fig06d_exploration_time -- --rounds 12 --max-trials 300 > results/logs/fig06d.txt 2>&1
$B fig07_convergence -- --trials 150 --rounds 12 > results/logs/fig07.txt 2>&1
$B sec66_dnn_e2e -- --trials 120 --rounds 10 > results/logs/sec66.txt 2>&1
$B ablation -- --trials 100 --layer C8   > results/logs/ablation.txt 2>&1
echo ALL_EXPERIMENTS_DONE
