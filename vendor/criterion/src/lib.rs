//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the API subset `benches/substrates.rs` uses — the
//! [`criterion_group!`]/[`criterion_main!`] macros, [`Criterion`]
//! builder methods, and [`Bencher::iter`] — as a plain wall-clock runner
//! that prints a median ns/iter per benchmark. No statistics, plots, or
//! baseline comparisons.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark runner configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark and prints its median time per iteration.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        // Warm up and discover iteration cost.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warm_start = Instant::now();
        let mut per_iter = Duration::from_nanos(1);
        while warm_start.elapsed() < self.warm_up_time {
            f(&mut b);
            per_iter = (b.elapsed / b.iters as u32).max(Duration::from_nanos(1));
        }

        // Pick an iteration count so one sample is ~budget/samples.
        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters =
            (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, u32::MAX as u128) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.iters = iters;
            f(&mut b);
            samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, x| a.total_cmp(x));
        let median = samples[samples.len() / 2];
        let lo = samples[0];
        let hi = samples[samples.len() - 1];
        println!("{name:<40} {median:>12.1} ns/iter  (min {lo:.1}, max {hi:.1}, {iters} iters x {} samples)",
                 self.sample_size);
        self
    }

    /// Final report hook (no-op; kept for API compatibility).
    pub fn final_summary(&self) {}
}

/// Times the closure handed to [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the configured iteration count, timing the whole run.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group function (both criterion syntaxes).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $($group();)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut runs = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs > 0);
    }
}
