//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) API subset the workspace actually uses:
//! [`Rng::gen_range`] / [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! and [`rngs::StdRng`]. Everything is deterministic given the seed; the
//! generator is xoshiro256** seeded through SplitMix64, which passes the
//! statistical quality bar these workloads need (uniform sampling for
//! schedule-space exploration, not cryptography).
//!
//! The bit streams do **not** match the real `rand` crate — all
//! reproducibility guarantees in this workspace are stated relative to
//! this implementation.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator whose entire stream is a function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)`; panics when the range is empty.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform sample from `[lo, hi]`; panics when `hi < lo`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// Multiply-shift bounded sampling: maps 64 random bits onto `[0, span)`
/// with bias below 2^-64 — indistinguishable at our sample counts.
#[inline]
fn bounded(span: u64, rng: &mut (impl RngCore + ?Sized)) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(bounded(span, rng) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded(span as u64, rng) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
        let unit = unit_f64(rng);
        lo + unit * (hi - lo)
    }

    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
        let unit = unit_f64(rng);
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        f64::sample_half_open(lo as f64, hi as f64, rng) as f32
    }

    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        f64::sample_inclusive(lo as f64, hi as f64, rng) as f32
    }
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(rng: &mut (impl RngCore + ?Sized)) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`0..n`, `0..=n`, `0.0..x`, …).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (`p` outside `[0, 1]` saturates).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }

    /// A uniform `f64` in `[0, 1)`.
    fn gen(&mut self) -> f64 {
        unit_f64(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // SplitMix64 expansion of the seed into the full state, per
            // the xoshiro authors' recommendation; guarantees a non-zero
            // state for every seed.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..7);
            assert!(v < 7);
            let w: i64 = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&w));
            let f: f64 = rng.gen_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(4);
        let dynr: &mut dyn RngCore = &mut rng;
        let v = dynr.gen_range(0..10usize);
        assert!(v < 10);
    }
}
