//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of proptest the workspace's tests use:
//! the [`proptest!`] macro with `#![proptest_config(...)]`, range and
//! [`any`] strategies, [`Strategy::prop_map`], `collection::vec`,
//! `sample::select`, and the `prop_assert*` macros.
//!
//! Semantics differ from real proptest in one deliberate way: there is
//! no shrinking. A failing case panics with the generated inputs so it
//! can be reproduced, which is enough for a deterministic, seeded runner.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Runner configuration (`proptest::test_runner::Config` stand-in).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` generated cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// The deterministic RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeded from the property's name so each property has a stable,
    /// independent stream.
    pub fn for_property(name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of values for one property argument.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        strategy::Map { inner: self, f }
    }
}

/// Strategy combinators.
pub mod strategy {
    use super::{Strategy, TestRng};

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub use strategy::Just;

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),*)),*) => {$(
        impl<$($s: Strategy),*> Strategy for ($($s,)*) {
            type Value = ($($s::Value,)*);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)*)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A 0, B 1),
    (A 0, B 1, C 2),
    (A 0, B 1, C 2, D 3)
);

/// Types with a canonical whole-domain strategy (for [`any`]).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen_range(-1e9..1e9)
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T` (`any::<bool>()`, `any::<u64>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// `Vec` strategy of fixed length (the only form the workspace uses).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// A strategy for `Vec`s of exactly `len` elements of `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T>(Vec<T>);

    /// A strategy choosing uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }
}

/// `prop::` module alias re-exports (mirrors `proptest::prelude::prop`).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::strategy;
}

/// Everything tests conventionally glob-import.
pub mod prelude {
    pub use crate::strategy::Just;
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Drives one property: `cases` rounds of generate + check.
///
/// `case` returns `Err(message)` on failure (that is what the
/// `prop_assert*` macros expand to); the runner panics with the message
/// and the case number, which — with the deterministic per-property RNG —
/// is enough to reproduce.
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), String>,
{
    let mut rng = TestRng::for_property(name);
    for i in 0..config.cases {
        if let Err(msg) = case(&mut rng) {
            panic!(
                "property `{name}` failed at case {i}/{}: {msg}",
                config.cases
            );
        }
    }
}

/// The property-test entry macro (`proptest! { ... }` stand-in).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                $crate::run_property(stringify!($name), &__config, |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)*),
                        $(&$arg),*
                    );
                    let __run = move || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        Ok(())
                    };
                    __run().map_err(|e| format!("{e}\n  inputs: {}", __inputs))
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),*) $body
            )*
        }
    };
}

/// `prop_assert!` stand-in: early-returns an `Err` from the property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// `prop_assert_eq!` stand-in.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    }};
}

/// `prop_assert_ne!` stand-in.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn runner_is_deterministic() {
        let mut first: Vec<u64> = Vec::new();
        let mut again: Vec<u64> = Vec::new();
        crate::run_property("det", &ProptestConfig::with_cases(10), |rng| {
            first.push(crate::Strategy::generate(&(0u64..1000), rng));
            Ok(())
        });
        crate::run_property("det", &ProptestConfig::with_cases(10), |rng| {
            again.push(crate::Strategy::generate(&(0u64..1000), rng));
            Ok(())
        });
        assert_eq!(first, again);
        assert!(first.iter().any(|&v| v != first[0]), "stream is varied");
    }

    #[test]
    #[should_panic(expected = "property `failing` failed")]
    fn failures_panic_with_context() {
        crate::run_property("failing", &ProptestConfig::with_cases(5), |_rng| {
            Err("boom".to_string())
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro end-to-end: ranges, any, vec, select, prop_map.
        #[test]
        fn macro_smoke(
            a in 0usize..5,
            b in any::<bool>(),
            v in prop::collection::vec(0..3usize, 4),
            s in prop::sample::select(vec![10i64, 20, 30]),
            m in (1u32..4).prop_map(|x| x * 2),
        ) {
            prop_assert!(a < 5);
            prop_assert_ne!(b, !b);
            prop_assert_eq!(v.len(), 4);
            prop_assert!(v.iter().all(|&x| x < 3));
            prop_assert!([10, 20, 30].contains(&s));
            prop_assert!(m % 2 == 0 && (2..8).contains(&m));
        }
    }
}
