//! Tune every distinct YOLO-v1 convolution layer (Table 4) for the V100
//! model and compare against the simulated cuDNN baseline — a miniature of
//! the paper's Fig. 6a experiment, sized for an example.
//!
//! ```sh
//! cargo run --release --example yolo_gpu_sweep            # quick budget
//! cargo run --release --example yolo_gpu_sweep -- 120     # more trials
//! ```

use flextensor::{optimize, Method, OptimizeOptions, SearchOptions, Task};
use flextensor_ir::suite::OperatorKind;
use flextensor_ir::yolo::YOLO_LAYERS;
use flextensor_sim::library;
use flextensor_sim::spec::{v100, Device};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    let gpu = v100();
    let opts = OptimizeOptions {
        method: Method::QMethod,
        search: SearchOptions {
            trials,
            ..SearchOptions::default()
        },
    };
    println!("layer   cuDNN(GF)  FlexTensor(GF)  speedup  best split of k-axis");
    let mut product = 1.0f64;
    let mut wins = 0;
    for layer in &YOLO_LAYERS {
        let g = layer.graph(1);
        let flops = g.flops() as f64;
        let cudnn = library::cudnn_time(OperatorKind::Conv2d, &g, &gpu)
            .map(|t| flops / t / 1e9)
            .unwrap_or(0.0);
        let task = Task::new(g, Device::Gpu(gpu.clone()));
        let r = optimize(&task, &opts)?;
        let speedup = r.gflops() / cudnn;
        product *= speedup;
        if speedup > 1.0 {
            wins += 1;
        }
        println!(
            "{:<6} {:>10.0} {:>15.0} {:>8.2}  {:?}",
            layer.name,
            cudnn,
            r.gflops(),
            speedup,
            r.config.spatial_splits[1]
        );
    }
    let geomean = product.powf(1.0 / YOLO_LAYERS.len() as f64);
    println!("\nFlexTensor beats cuDNN on {wins}/15 layers; geomean speedup {geomean:.2}x");
    Ok(())
}
