//! The §5.2 FPGA story: schedules are evaluated with the analytical
//! three-stage pipeline model (`time = rounds × max(R, C, W)`), under DSP
//! and BRAM resource constraints — synthesis is far too slow to measure.
//!
//! This example sweeps the PE-array shape for one convolution on the VU9P
//! model, prints the R/C/W breakdown and feasibility of each design, and
//! then lets FlexTensor search the same space.
//!
//! ```sh
//! cargo run --release --example fpga_design_space
//! ```

use flextensor::{optimize, OptimizeOptions, Task};
use flextensor_ir::ops::{self, ConvParams};
use flextensor_schedule::config::{NodeConfig, TargetKind};
use flextensor_schedule::lower::lower;
use flextensor_sim::fpga::fpga_time;
use flextensor_sim::spec::{vu9p, Device};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = vu9p();
    let g = ops::conv2d(ConvParams::same(1, 128, 128, 3), 28, 28);
    println!(
        "workload: {} ({:.2} GFLOPs)  device: {} ({} DSPs -> {} PEs max, {} KiB BRAM)\n",
        g.name,
        g.flops() as f64 / 1e9,
        spec.name,
        spec.dsps,
        spec.max_pe(),
        spec.bram_bytes / 1024
    );

    println!("PE-array sweep (PEs over output channels x width, pipeline 3, partition 8):");
    println!(
        "{:>10} {:>8} {:>10} {:>10} {:>10} {:>12}",
        "PEs(kxj)", "rounds", "R(us)", "C(us)", "W(us)", "GFLOPS"
    );
    for (pk, pj) in [(8, 4), (16, 4), (32, 7), (64, 7), (64, 14), (128, 14)] {
        let mut cfg = NodeConfig::naive(g.root_op());
        cfg.spatial_splits = vec![
            vec![1, 1, 1, 1],
            vec![128 / pk, 1, pk, 1],
            vec![28, 1, 1, 1],
            vec![28 / pj, 1, 1, pj],
        ];
        cfg.fpga_pipeline = 3;
        cfg.fpga_partition = 8;
        cfg.unroll = true;
        let kernel = lower(&g, &cfg, TargetKind::Fpga)?;
        let fp = kernel.features.fpga.as_ref().expect("fpga features");
        match fpga_time(&spec, &kernel.features, 0.85) {
            Some(t) => {
                // Reconstruct the per-round stage times the model used.
                let bw = spec
                    .ddr_bw_gbps
                    .min(spec.bank_bw_gbps * fp.partition as f64)
                    * 1e9;
                let r = fp.stream_bytes as f64 / bw * 1e6;
                let c = (kernel.features.flops as f64 / 2.0 / fp.rounds as f64)
                    / (fp.pe as f64 * 0.85)
                    / (spec.clock_ghz * 1e9)
                    * 1e6;
                let w = fp.write_bytes as f64 / bw * 1e6;
                println!(
                    "{:>10} {:>8} {:>10.2} {:>10.2} {:>10.2} {:>12.0}",
                    format!("{pk}x{pj}"),
                    fp.rounds,
                    r,
                    c,
                    w,
                    g.flops() as f64 / t / 1e9
                );
            }
            None => println!(
                "{:>10} {:>8} {:>44}",
                format!("{pk}x{pj}"),
                fp.rounds,
                "INFEASIBLE (exceeds DSP or BRAM budget)"
            ),
        }
    }

    println!("\nletting FlexTensor explore the full FPGA schedule space...");
    let task = Task::new(g, Device::Fpga(spec));
    let r = optimize(&task, &OptimizeOptions::quick())?;
    let fp = r.kernel.features.fpga.as_ref().expect("fpga features");
    println!(
        "found: {} PEs, {} rounds, pipeline {}, partition x{} -> {:.0} GFLOPS",
        fp.pe,
        fp.rounds,
        fp.pipeline,
        fp.partition,
        r.gflops()
    );
    Ok(())
}
