//! Quickstart: optimize a 2D convolution for a V100 GPU model, print what
//! FlexTensor found, and verify the schedule is semantics-preserving.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use flextensor::{optimize, OptimizeOptions, Task};
use flextensor_interp::machine::check_against_reference;
use flextensor_interp::reference::random_inputs;
use flextensor_ir::{analysis, ops};
use flextensor_schedule::lower::lower;
use flextensor_sim::spec::{v100, Device};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the computation mathematically — nothing else.
    //    A YOLO-style convolution: 1x256x28x28 input, 512 3x3 filters.
    let graph = ops::conv2d(ops::ConvParams::same(1, 256, 512, 3), 28, 28);
    println!("computation: {}", graph.name);

    // 2. The front-end analyzes it (statistical + structural info, §4.1).
    let info = analysis::analyze(&graph);
    println!(
        "analysis: {} compute nodes, {} spatial loops total, {} reduce loops, {:.2} GFLOPs",
        info.num_compute_nodes,
        info.total_spatial,
        info.root_reduce,
        info.flops as f64 / 1e9
    );

    // 3. Optimize for a device. No templates, no manual schedule.
    let task = Task::new(graph, Device::Gpu(v100()));
    let result = optimize(&task, &OptimizeOptions::quick())?;

    println!(
        "\nexplored a space of {:.2e} schedules with {} measurements ({:.0} modeled seconds)",
        result.space_size, result.measurements, result.exploration_time_s
    );
    println!("estimated performance: {:.0} GFLOPS\n", result.gflops());
    println!(
        "chosen schedule (Table 2 primitives):\n{}",
        result.schedule_text()
    );
    println!("lowered loop nest:\n{}", result.kernel.render());

    // 4. Prove the found schedule computes the right thing: apply the same
    //    configuration shape to a small instance and compare the executed
    //    loop nest against the mathematical definition.
    let small = ops::conv2d(ops::ConvParams::same(1, 4, 8, 3), 6, 6);
    let small_cfg = flextensor_schedule::config::NodeConfig::naive(small.root_op());
    let kernel = lower(
        &small,
        &small_cfg,
        flextensor_schedule::config::TargetKind::Gpu,
    )?;
    let inputs = random_inputs(&small, 42);
    let max_diff = check_against_reference(&small, &kernel, &inputs)?;
    println!("correctness check on a small instance: max |diff| = {max_diff:.2e}");
    assert!(max_diff < 1e-9);
    Ok(())
}
