//! The paper's opening motivation: a brand-new operator with no library
//! support. Here we define a *scaled bilinear gating* operator from
//! scratch with `GraphBuilder` — an operator no vendor library ships — and
//! FlexTensor optimizes it exactly like a built-in one: template-free.
//!
//! ```sh
//! cargo run --release --example new_operator
//! ```

use flextensor::{optimize, OptimizeOptions, Task};
use flextensor_interp::machine::check_against_reference;
use flextensor_interp::reference::random_inputs;
use flextensor_ir::expr::Expr;
use flextensor_ir::graph::{Axis, Combiner, GraphBuilder};
use flextensor_schedule::lower::lower;
use flextensor_sim::spec::{v100, Device};

/// Defines `O[b, i, j] = Σ_k X[b, i, k] · W[k, j] · G[b, k]` — a batched
/// matmul whose reduction is gated per (batch, k). No BLAS routine does
/// this in one pass.
fn gated_matmul(b: i64, n: i64, m: i64, k: i64) -> flextensor_ir::graph::Graph {
    let v = Expr::var;
    let mut g = GraphBuilder::new(format!("gated_matmul_b{b}_n{n}_m{m}_k{k}"));
    g.placeholder("X", vec![b, n, k]);
    g.placeholder("W", vec![k, m]);
    g.placeholder("G", vec![b, k]);
    g.compute(
        "gated",
        "O",
        vec![Axis::new("b", b), Axis::new("i", n), Axis::new("j", m)],
        vec![Axis::new("k", k)],
        Expr::load("X", vec![v("b"), v("i"), v("k")])
            * Expr::load("W", vec![v("k"), v("j")])
            * Expr::load("G", vec![v("b"), v("k")]),
        Combiner::Sum,
    );
    g.finish().expect("well-formed operator")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = gated_matmul(8, 256, 256, 512);
    println!("new operator: {}", graph.name);
    println!(
        "FLOPs: {:.2}G, inputs: {:?}",
        graph.flops() as f64 / 1e9,
        graph.inputs().map(|t| t.name.clone()).collect::<Vec<_>>()
    );

    // Optimize for a GPU with zero operator-specific code.
    let task = Task::new(graph, Device::Gpu(v100()));
    let result = optimize(&task, &OptimizeOptions::quick())?;
    println!(
        "\nFlexTensor: {:.0} GFLOPS after {} measurements over a {:.1e}-point space",
        result.gflops(),
        result.measurements,
        result.space_size
    );
    println!("schedule:\n{}", result.schedule_text());

    // Verify semantics on a tiny instance with the *optimized* config
    // shape re-derived for the small extents.
    let small = gated_matmul(2, 4, 6, 8);
    let cfg = flextensor_schedule::config::NodeConfig::naive(small.root_op());
    let kernel = lower(&small, &cfg, flextensor_schedule::config::TargetKind::Gpu)?;
    let inputs = random_inputs(&small, 7);
    let diff = check_against_reference(&small, &kernel, &inputs)?;
    println!("correctness on a 2x4x6x8 instance: max |diff| = {diff:.2e}");
    assert!(diff < 1e-9);
    Ok(())
}
