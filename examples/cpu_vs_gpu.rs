//! Platform portability: the *same* mathematical description optimized for
//! a 22-core Xeon, a V100 GPU and a VU9P FPGA — FlexTensor generates a
//! different schedule for each, with no per-platform code from the user
//! (the heterogeneity argument of §2.2/§2.3).
//!
//! ```sh
//! cargo run --release --example cpu_vs_gpu
//! ```

use flextensor::{optimize, OptimizeOptions, Task};
use flextensor_ir::ops;
use flextensor_sim::spec::{v100, vu9p, xeon_e5_2699_v4, Device};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = ops::conv2d(ops::ConvParams::same(1, 128, 256, 3), 56, 56);
    println!("one computation: {}\n", graph.name);

    for device in [
        Device::Cpu(xeon_e5_2699_v4()),
        Device::Gpu(v100()),
        Device::Fpga(vu9p()),
    ] {
        let task = Task::new(graph.clone(), device);
        let r = optimize(&task, &OptimizeOptions::quick())?;
        println!("=== {} ===", task.device.name());
        println!(
            "  estimated: {:.0} GFLOPS ({:.3} ms), explored {} points",
            r.gflops(),
            r.cost.seconds * 1e3,
            r.measurements
        );
        println!("  schedule:");
        for line in r.schedule_text().lines() {
            println!("  {line}");
        }
        let f = &r.kernel.features;
        match task.device {
            Device::Gpu(_) => println!(
                "  -> grid {} x {} threads/block, {}B shared per block\n",
                f.grid, f.block_threads, f.shared_bytes_per_block
            ),
            Device::Cpu(_) => println!(
                "  -> {} parallel chunks, vector length {}, L1 tile {}B\n",
                f.parallel_chunks, f.vector_len, f.l1_tile_bytes
            ),
            Device::Fpga(_) => {
                let fp = f.fpga.as_ref().expect("fpga features");
                println!(
                    "  -> {} PEs, {} rounds, {}-stage pipeline, partition x{}\n",
                    fp.pe, fp.rounds, fp.pipeline, fp.partition
                );
            }
        }
    }
    println!("same math, three different hardware-shaped schedules.");
    Ok(())
}
