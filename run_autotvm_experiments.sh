#!/bin/bash
set -x
cd /root/repo
B="cargo run --release -q -p flextensor-bench --bin"
$B sec65_vs_autotvm -- --trials 150 --cases 4 > results/logs/sec65.txt 2>&1
$B fig06d_exploration_time -- --rounds 12 --max-trials 300 > results/logs/fig06d.txt 2>&1
$B fig07_convergence -- --trials 150 --rounds 12 > results/logs/fig07.txt 2>&1
$B sec66_dnn_e2e -- --trials 120 --rounds 10 > results/logs/sec66.txt 2>&1
$B ablation -- --trials 100 --layer C8 > results/logs/ablation.txt 2>&1
echo AUTOTVM_EXPERIMENTS_DONE
