//! Workspace-level crate: hosts examples and integration tests only.
