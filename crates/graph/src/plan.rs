//! Round-based global trial-budget planning.
//!
//! The dispatcher splits one global budget into rounds
//! ([`round_budgets`]) and, each round, allocates the round's trials
//! across tuning tasks ([`plan_round`]). The greedy policy combines
//! two signals: a capped *marginal-utility* tilt — the expected
//! end-to-end latency reduction per trial, estimated from each task's
//! observed cost-improvement trajectory and weighted by its use count
//! (a trial spent on a subgraph that appears six times is worth six
//! times the per-instance gain) — over a *cost-weighted fair queuing*
//! backbone that tracks where weighted network latency actually lives
//! (`uses × best seconds`). A uniform split is kept as the ablation
//! baseline. See `docs/GRAPH_TUNING.md` for why the exploit share is
//! capped rather than the whole round.
//!
//! Everything here is deterministic: allocations use integer
//! arithmetic with explicit remainders (so a budget is conserved
//! *exactly*, never approximately) and ties break toward the lowest
//! task index.

/// The budget-allocation policy for one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Allocation {
    /// Marginal-utility greedy (the paper-faithful dispatcher).
    Greedy,
    /// Even split across tasks (ablation baseline).
    Uniform,
}

/// Within-round diminishing-returns decay: each chunk assigned to a
/// task halves its estimated utility for the rest of the round, so a
/// single dominant task cannot absorb an entire round before the
/// planner re-observes its actual improvement.
const CHUNK_DECAY: f64 = 0.5;

/// Recency weight halving for trajectory-slope averaging in
/// [`TaskState::rate`].
const RECENCY_DECAY: f64 = 0.5;

/// The planner's view of one tuning task: its weight and what tuning
/// has observed about it so far.
#[derive(Debug, Clone, Default)]
pub struct TaskState {
    /// Use count of the task's subgraph in the network.
    pub weight: usize,
    /// Trials spent on this task so far (across all rounds).
    pub spent: usize,
    /// Observed `(cumulative trials, best seconds)` after each round
    /// that touched the task, in round order. Best seconds are
    /// monotone non-increasing because rounds refine from the stored
    /// best.
    pub trajectory: Vec<(usize, f64)>,
}

impl TaskState {
    /// The task's best per-instance cost so far (infinite before any
    /// observation).
    pub fn best_seconds(&self) -> f64 {
        self.trajectory
            .last()
            .map(|&(_, s)| s)
            .unwrap_or(f64::INFINITY)
    }

    /// Estimated per-trial improvement in seconds.
    ///
    /// - Zero or one observation (the pilot): 0 — a task's *current*
    ///   latency says nothing about how improvable it is, so the first
    ///   refinement round deliberately falls back to the cost-weighted
    ///   fair queue (explore) and the planner only tilts toward a task
    ///   once it has observed real slopes (exploit).
    /// - Two or more: a recency-weighted average of the observed
    ///   per-trial improvement between consecutive observations, so a
    ///   task that stopped improving decays toward zero and frees its
    ///   share for others.
    pub fn rate(&self) -> f64 {
        match self.trajectory.len() {
            0 | 1 => 0.0,
            _ => {
                let mut num = 0.0;
                let mut den = 0.0;
                let mut w = 1.0;
                for pair in self.trajectory.windows(2).rev() {
                    let (t0, b0) = pair[0];
                    let (t1, b1) = pair[1];
                    let dt = (t1.saturating_sub(t0)).max(1) as f64;
                    num += w * ((b0 - b1).max(0.0) / dt);
                    den += w;
                    w *= RECENCY_DECAY;
                }
                num / den
            }
        }
    }
}

/// Splits a total budget into per-round budgets, exactly: the result
/// always sums to `total`, with the remainder going to the earliest
/// rounds.
pub fn round_budgets(total: usize, rounds: usize) -> Vec<usize> {
    if rounds == 0 {
        return Vec::new();
    }
    let q = total / rounds;
    let r = total % rounds;
    (0..rounds).map(|i| q + usize::from(i < r)).collect()
}

/// Fraction of a greedy round that may chase observed slopes: at most
/// `budget / EXPLOIT_DIV` trials go to the highest `weight × rate()`
/// tasks; everything else is allocated by weighted fair queuing.
/// Improvement events in short warm-started refines are too noisy for
/// slopes alone to steer a whole round — diversification is what keeps
/// greedy ahead of the uniform baseline — so exploitation is a capped
/// tilt, not the backbone.
const EXPLOIT_DIV: usize = 4;

/// Allocates one round's budget across tasks.
///
/// Returns a vector parallel to `states` whose sum is exactly
/// `budget`. The greedy policy spends up to a quarter of the round
/// (`EXPLOIT_DIV`) in `chunk`-sized steps on the task with the
/// highest `weight × rate()` marginal utility (ties to the lowest
/// index), halving that task's utility per step (`CHUNK_DECAY`); the
/// rest — and the whole round when no task shows improvement — is
/// allocated by *cost-weighted fair queuing*: fewest trials per unit
/// of weighted network cost (`uses × best seconds`) first, so the
/// budget concentrates where end-to-end latency actually lives — a
/// subgraph appearing six times, or one expensive singleton layer,
/// both attract their proportional share. The uniform policy splits
/// evenly with the remainder to the earliest tasks.
pub fn plan_round(
    states: &[TaskState],
    budget: usize,
    chunk: usize,
    allocation: Allocation,
) -> Vec<usize> {
    let n = states.len();
    let mut alloc = vec![0usize; n];
    if n == 0 || budget == 0 {
        return alloc;
    }
    match allocation {
        Allocation::Uniform => {
            let q = budget / n;
            let r = budget % n;
            for (i, a) in alloc.iter_mut().enumerate() {
                *a = q + usize::from(i < r);
            }
        }
        Allocation::Greedy => {
            let mut util: Vec<f64> = states
                .iter()
                .map(|s| s.weight.max(1) as f64 * s.rate())
                .collect();
            let chunk = chunk.max(1);
            let mut remaining = budget;
            let mut exploit = budget / EXPLOIT_DIV;
            while remaining > 0 {
                let step = chunk.min(remaining);
                let mut pick: Option<usize> = None;
                if exploit > 0 {
                    for (i, &u) in util.iter().enumerate() {
                        if u > 0.0 && pick.is_none_or(|p| u > util[p]) {
                            pick = Some(i);
                        }
                    }
                }
                let i = match pick {
                    Some(i) => {
                        exploit = exploit.saturating_sub(step);
                        util[i] *= CHUNK_DECAY;
                        i
                    }
                    None => {
                        // Cost-weighted fair queuing: fewest trials
                        // per unit of weighted network cost
                        // (`uses × best seconds`) first, so the budget
                        // tracks where latency actually lives.
                        let share = |i: usize| {
                            let cost = states[i].weight.max(1) as f64 * states[i].best_seconds();
                            (states[i].spent + alloc[i]) as f64 / cost.max(f64::MIN_POSITIVE)
                        };
                        let mut best = 0;
                        for i in 1..n {
                            if share(i) < share(best) {
                                best = i;
                            }
                        }
                        best
                    }
                };
                alloc[i] += step;
                remaining -= step;
            }
        }
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn state(weight: usize, trajectory: Vec<(usize, f64)>) -> TaskState {
        let spent = trajectory.last().map(|&(t, _)| t).unwrap_or(0);
        TaskState {
            weight,
            spent,
            trajectory,
        }
    }

    #[test]
    fn round_budgets_sum_exactly_with_remainder_first() {
        assert_eq!(round_budgets(10, 3), vec![4, 3, 3]);
        assert_eq!(round_budgets(9, 3), vec![3, 3, 3]);
        assert_eq!(round_budgets(2, 4), vec![1, 1, 0, 0]);
        assert_eq!(round_budgets(5, 0), Vec::<usize>::new());
    }

    #[test]
    fn uniform_splits_evenly_with_remainder_to_earliest() {
        let states = vec![state(1, vec![(4, 1.0)]); 3];
        assert_eq!(
            plan_round(&states, 10, 4, Allocation::Uniform),
            vec![4, 3, 3]
        );
    }

    #[test]
    fn greedy_prefers_the_improving_heavy_task() {
        // Task 0: weight 6, still improving fast. Task 1: weight 1,
        // improving at the same per-instance rate. Task 2: stalled.
        let states = vec![
            state(6, vec![(4, 1.0e-3), (8, 0.8e-3)]),
            state(1, vec![(4, 1.0e-3), (8, 0.8e-3)]),
            state(1, vec![(4, 1.0e-3), (8, 1.0e-3)]),
        ];
        let alloc = plan_round(&states, 16, 4, Allocation::Greedy);
        assert_eq!(alloc.iter().sum::<usize>(), 16);
        assert!(alloc[0] > alloc[1], "weighted task should lead: {alloc:?}");
        assert_eq!(
            alloc[2], 0,
            "stalled task gets nothing while others improve"
        );
    }

    #[test]
    fn greedy_spreads_by_weighted_cost_when_nothing_improves() {
        // Equal trials-per-cost at the start (12/3e-3 == 8/2e-3), so
        // the queue alternates beginning with the lower index.
        let states = vec![
            state(3, vec![(8, 1.0e-3), (12, 1.0e-3)]),
            state(1, vec![(4, 2.0e-3), (8, 2.0e-3)]),
        ];
        let alloc = plan_round(&states, 6, 2, Allocation::Greedy);
        assert_eq!(alloc, vec![4, 2]);
    }

    #[test]
    fn greedy_ties_break_toward_the_lowest_index() {
        let states = vec![state(2, vec![(4, 1.0e-3)]), state(2, vec![(4, 1.0e-3)])];
        let alloc = plan_round(&states, 4, 4, Allocation::Greedy);
        assert_eq!(alloc, vec![4, 0]);
    }

    #[test]
    fn pilot_only_rate_is_zero_so_the_first_round_explores_by_cost() {
        assert_eq!(state(1, vec![(4, 2.0e-3)]).rate(), 0.0);
        assert_eq!(state(1, vec![]).rate(), 0.0);
        // Task 0 carries 30× the weighted network cost of task 1, so
        // the cost-weighted fair queue sends it the whole first round.
        let states = vec![state(6, vec![(2, 5.0e-3)]), state(1, vec![(2, 1.0e-3)])];
        assert_eq!(plan_round(&states, 8, 2, Allocation::Greedy), vec![8, 0]);
        // Equal weighted costs split the round evenly.
        let even = vec![state(2, vec![(2, 1.0e-3)]), state(1, vec![(2, 2.0e-3)])];
        assert_eq!(plan_round(&even, 8, 2, Allocation::Greedy), vec![4, 4]);
    }

    proptest! {
        #[test]
        fn any_allocation_conserves_the_budget_exactly(
            budget in 0usize..200,
            chunk in 0usize..9,
            n_tasks in 1usize..7,
            weights in proptest::collection::vec(1usize..8, 6),
            greedy in 0usize..2,
        ) {
            let states: Vec<TaskState> = weights
                .iter()
                .take(n_tasks)
                .enumerate()
                .map(|(i, &w)| state(w, vec![(4, 1.0e-3 * (i + 1) as f64), (8, 0.9e-3 * (i + 1) as f64)]))
                .collect();
            let policy = if greedy == 1 { Allocation::Greedy } else { Allocation::Uniform };
            let alloc = plan_round(&states, budget, chunk, policy);
            prop_assert_eq!(alloc.len(), states.len());
            prop_assert_eq!(alloc.iter().sum::<usize>(), budget);
        }

        #[test]
        fn planning_is_deterministic(
            budget in 0usize..120,
            n_tasks in 1usize..6,
            weights in proptest::collection::vec(1usize..8, 5),
        ) {
            let states: Vec<TaskState> = weights
                .iter()
                .take(n_tasks)
                .map(|&w| state(w, vec![(4, 1.0e-3), (8, 0.75e-3)]))
                .collect();
            let a = plan_round(&states, budget, 4, Allocation::Greedy);
            let b = plan_round(&states, budget, 4, Allocation::Greedy);
            prop_assert_eq!(a, b);
        }
    }
}
