//! The end-to-end graph tuning driver.
//!
//! [`tune_graph`] tunes a whole network under one global trial budget:
//!
//! - **Round 0 (pilot)** — every layer occurrence is submitted through
//!   a fresh [`SessionServer`] session. Keys already in the database
//!   answer as hits and spend nothing; duplicate occurrences coalesce
//!   onto one search; fresh tasks run a short pilot (warm-started from
//!   their nearest stored neighbor) that seeds each task's
//!   cost-improvement trajectory.
//! - **Rounds 1..R** — the remaining budget is split across rounds
//!   ([`round_budgets`]) and allocated by [`plan_round`]. Each round
//!   constructs a *new* server (its snapshot sees every earlier
//!   round's results) and re-tunes funded tasks via
//!   [`SubmitOptions::refine`], warm-started from their own stored
//!   best — so per-task cost is monotone non-increasing — with
//!   [`SubmitOptions::anneal_window`] embedding each search in the
//!   task's cumulative budget so the Q-method's ε-anneal continues
//!   across rounds instead of restarting. Round seeds are derived
//!   deterministically from the base seed so a re-tune explores new
//!   ground rather than re-walking the previous round's path.
//!
//! The driver emits [`TraceEvent::GraphPlan`] once and one
//! [`TraceEvent::GraphRound`] per round to the configured telemetry
//! sink, and returns a [`GraphTuneReport`] with per-task and
//! whole-network modeled latency. Results are deterministic for a
//! fixed seed and database state, at any worker count.

use std::sync::Arc;

use flextensor::optimize::OptimizeOptions;
use flextensor::serve::{ServeOptions, ServeSource, SessionServer, SubmitOptions};
use flextensor_nn::network::Network;
use flextensor_sim::spec::Device;
use flextensor_telemetry::{Telemetry, TraceEvent};
use flextensor_tunedb::{TuneDb, TuneKey};

use crate::extract::{extract_tasks, SubgraphTask};
use crate::plan::{plan_round, round_budgets, Allocation, TaskState};

/// Options controlling [`tune_graph`].
#[derive(Debug, Clone)]
pub struct GraphTuneOptions {
    /// Base optimization options for every search (seed, method,
    /// starts; `search.trials` is overridden per round by the
    /// planner).
    pub base: OptimizeOptions,
    /// Session-server worker threads. Results are identical for every
    /// value.
    pub workers: usize,
    /// Global trial budget across all fresh tasks, pilot included.
    pub budget: usize,
    /// Refinement rounds after the pilot (min 1 whenever budget
    /// remains).
    pub rounds: usize,
    /// Pilot trials per fresh task (clamped so the pilot never
    /// overspends the budget).
    pub pilot: usize,
    /// Greedy allocation granularity, in trials.
    pub chunk: usize,
    /// Budget allocation policy.
    pub allocation: Allocation,
    /// Provenance string stored with database records.
    pub commit: String,
    /// Sink for `graph_plan` / `graph_round` events (disabled by
    /// default).
    pub telemetry: Telemetry,
}

impl Default for GraphTuneOptions {
    fn default() -> GraphTuneOptions {
        GraphTuneOptions {
            base: OptimizeOptions::quick(),
            workers: 2,
            budget: 64,
            rounds: 3,
            pilot: 4,
            chunk: 4,
            allocation: Allocation::Greedy,
            commit: "dev".to_string(),
            telemetry: Telemetry::null(),
        }
    }
}

/// Graph tuning failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphTuneError {
    /// The budget cannot give every fresh task even one pilot trial.
    InsufficientBudget {
        /// The requested global budget.
        budget: usize,
        /// Fresh (not-in-database) tasks that need tuning.
        fresh: usize,
    },
    /// A tuning request failed inside the server.
    Serve(String),
}

impl std::fmt::Display for GraphTuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphTuneError::InsufficientBudget { budget, fresh } => write!(
                f,
                "budget {budget} cannot fund one pilot trial for each of {fresh} fresh tasks"
            ),
            GraphTuneError::Serve(e) => write!(f, "graph tuning request failed: {e}"),
        }
    }
}

impl std::error::Error for GraphTuneError {}

/// Per-task outcome in a [`GraphTuneReport`].
#[derive(Debug, Clone)]
pub struct TaskReport {
    /// Label of the task's first occurrence.
    pub label: String,
    /// The task's database key.
    pub key: TuneKey,
    /// Use count in the network.
    pub uses: usize,
    /// Trials this run spent on the task (0 for database hits).
    pub trials: usize,
    /// Best modeled per-instance seconds.
    pub seconds: f64,
    /// Whether the task was answered from the database snapshot
    /// without searching.
    pub hit: bool,
    /// Whether the pilot search was warm-started from a stored
    /// neighbor.
    pub warm_started: bool,
}

/// Per-round outcome in a [`GraphTuneReport`].
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// Round number (0 = pilot).
    pub round: usize,
    /// Trials allocated to each task this round (parallel to
    /// [`GraphTuneReport::tasks`]).
    pub allocations: Vec<usize>,
    /// Total trials allocated this round.
    pub allocated: usize,
    /// Modeled whole-network seconds after the round
    /// (Σ uses × best seconds).
    pub network_seconds: f64,
}

/// The result of tuning one network.
#[derive(Debug, Clone)]
pub struct GraphTuneReport {
    /// Network name.
    pub network: String,
    /// Device model name.
    pub device: String,
    /// Exported layer occurrences.
    pub occurrences: usize,
    /// Deduplicated tuning tasks answered from the database snapshot.
    pub hits: usize,
    /// Pilot-round requests deduplicated onto another occurrence's
    /// search.
    pub coalesced: usize,
    /// Fresh pilots warm-started from a stored neighbor.
    pub warm_starts: usize,
    /// The requested global budget.
    pub budget: usize,
    /// Trials actually spent (equals `budget` whenever any task was
    /// fresh).
    pub spent: usize,
    /// Effective pilot trials per fresh task.
    pub pilot: usize,
    /// Per-task outcomes, in network discovery order.
    pub tasks: Vec<TaskReport>,
    /// Per-round outcomes (round 0 is the pilot).
    pub rounds: Vec<RoundReport>,
    /// Final modeled whole-network seconds (Σ uses × best seconds).
    pub network_seconds: f64,
}

fn network_seconds(tasks: &[SubgraphTask], best: &[f64]) -> f64 {
    tasks
        .iter()
        .zip(best)
        .map(|(t, &s)| t.uses() as f64 * s)
        .sum()
}

/// Mixes a round number into the base seed so each refinement round
/// explores a distinct deterministic trajectory.
fn round_seed(base: u64, round: usize) -> u64 {
    base ^ (round as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Tunes a whole network under a global trial budget. See the module
/// docs for the algorithm.
///
/// # Errors
///
/// [`GraphTuneError::InsufficientBudget`] when the budget cannot give
/// every fresh task one trial; [`GraphTuneError::Serve`] when a
/// request fails inside the server.
pub fn tune_graph(
    db: &Arc<TuneDb>,
    network: &Network,
    device: &Device,
    opts: &GraphTuneOptions,
) -> Result<GraphTuneReport, GraphTuneError> {
    let occurrences = network.export();
    let tasks = extract_tasks(&occurrences, device);
    let n = tasks.len();

    // Classify against the current database before spending anything:
    // fresh tasks need budget, stored tasks answer for free.
    let fresh: Vec<usize> = (0..n)
        .filter(|&i| db.peek(&tasks[i].key).is_none())
        .collect();
    let pilot = if fresh.is_empty() {
        0
    } else {
        if opts.budget < fresh.len() {
            return Err(GraphTuneError::InsufficientBudget {
                budget: opts.budget,
                fresh: fresh.len(),
            });
        }
        (opts.budget / fresh.len()).min(opts.pilot.max(1)).max(1)
    };
    let pilot_total = pilot * fresh.len();

    // --- Round 0: pilot every occurrence through one server session.
    let server = SessionServer::new(
        Arc::clone(db),
        ServeOptions {
            workers: opts.workers.max(1),
            base: opts.base.clone(),
            commit: opts.commit.clone(),
        },
    );
    let session = server.session(&format!("graph:{}", network.name));
    let tickets: Vec<_> = occurrences
        .iter()
        .map(|(_, g)| {
            session.submit_with(
                g.clone(),
                device.clone(),
                SubmitOptions {
                    trials: Some(pilot.max(1)),
                    refine: false,
                    anneal_window: Some((0, opts.budget.max(1))),
                },
            )
        })
        .collect();
    let results: Vec<_> = tickets
        .into_iter()
        .map(|t| t.wait().map_err(|e| GraphTuneError::Serve(e.0)))
        .collect::<Result<_, _>>()?;
    let stats = server.stats();
    drop(server); // drain: every pilot record is now in the database

    // First-occurrence position of each task in the export order.
    let first_pos: Vec<usize> = tasks
        .iter()
        .map(|t| {
            occurrences
                .iter()
                .position(|(l, _)| *l == t.label)
                .expect("task label")
        })
        .collect();
    let mut best: Vec<f64> = (0..n).map(|i| results[first_pos[i]].seconds).collect();
    let hit: Vec<bool> = (0..n)
        .map(|i| results[first_pos[i]].source == ServeSource::Hit)
        .collect();
    let warm: Vec<bool> = (0..n)
        .map(|i| {
            matches!(
                results[first_pos[i]].source,
                ServeSource::Fresh { warm_started: true }
            )
        })
        .collect();
    let mut states: Vec<TaskState> = fresh
        .iter()
        .map(|&i| TaskState {
            weight: tasks[i].uses(),
            spent: pilot,
            trajectory: vec![(pilot, best[i])],
        })
        .collect();

    opts.telemetry.emit(TraceEvent::GraphPlan {
        network: network.name.clone(),
        occurrences: occurrences.len(),
        tasks: n,
        hits: hit.iter().filter(|&&h| h).count(),
        budget: opts.budget,
        rounds: opts.rounds,
        pilot,
    });

    let mut rounds = Vec::new();
    let mut spent = pilot_total;
    let mut pilot_alloc = vec![0usize; n];
    for &i in &fresh {
        pilot_alloc[i] = pilot;
    }
    let net_s = network_seconds(&tasks, &best);
    opts.telemetry.emit(TraceEvent::GraphRound {
        round: 0,
        allocated: pilot_total,
        spent,
        network_seconds: net_s,
    });
    rounds.push(RoundReport {
        round: 0,
        allocations: pilot_alloc,
        allocated: pilot_total,
        network_seconds: net_s,
    });

    // --- Rounds 1..R: re-plan and refine with the remaining budget.
    let remaining = opts.budget - pilot_total;
    let budgets = if fresh.is_empty() || remaining == 0 {
        Vec::new()
    } else {
        round_budgets(remaining, opts.rounds.max(1))
    };
    for (r, &round_budget) in budgets.iter().enumerate() {
        let round = r + 1;
        let alloc = plan_round(&states, round_budget, opts.chunk, opts.allocation);
        let mut full_alloc = vec![0usize; n];
        if round_budget > 0 {
            let mut base = opts.base.clone();
            base.search.seed = round_seed(opts.base.search.seed, round);
            let server = SessionServer::new(
                Arc::clone(db),
                ServeOptions {
                    workers: opts.workers.max(1),
                    base,
                    commit: opts.commit.clone(),
                },
            );
            let session = server.session(&format!("graph:{}:round{round}", network.name));
            let mut tickets = Vec::new();
            for (s, &i) in fresh.iter().enumerate() {
                if alloc[s] == 0 {
                    continue;
                }
                full_alloc[i] = alloc[s];
                tickets.push((
                    s,
                    i,
                    session.submit_with(
                        tasks[i].graph.clone(),
                        device.clone(),
                        SubmitOptions {
                            trials: Some(alloc[s]),
                            refine: true,
                            anneal_window: Some((states[s].spent, opts.budget.max(1))),
                        },
                    ),
                ));
            }
            for (s, i, ticket) in tickets {
                let res = ticket.wait().map_err(|e| GraphTuneError::Serve(e.0))?;
                states[s].spent += alloc[s];
                let total = states[s].spent;
                states[s].trajectory.push((total, res.seconds));
                best[i] = res.seconds;
            }
            drop(server);
        }
        spent += round_budget;
        let net_s = network_seconds(&tasks, &best);
        opts.telemetry.emit(TraceEvent::GraphRound {
            round,
            allocated: round_budget,
            spent,
            network_seconds: net_s,
        });
        rounds.push(RoundReport {
            round,
            allocations: full_alloc,
            allocated: round_budget,
            network_seconds: net_s,
        });
    }

    let mut trials = vec![0usize; n];
    for (s, &i) in fresh.iter().enumerate() {
        trials[i] = states[s].spent;
    }
    let task_reports: Vec<TaskReport> = (0..n)
        .map(|i| TaskReport {
            label: tasks[i].label.clone(),
            key: tasks[i].key.clone(),
            uses: tasks[i].uses(),
            trials: trials[i],
            seconds: best[i],
            hit: hit[i],
            warm_started: warm[i],
        })
        .collect();
    Ok(GraphTuneReport {
        network: network.name.clone(),
        device: device.name().to_string(),
        occurrences: occurrences.len(),
        hits: stats.hits,
        coalesced: stats.coalesced,
        warm_starts: stats.warm_starts,
        budget: opts.budget,
        spent,
        pilot,
        tasks: task_reports,
        rounds,
        network_seconds: network_seconds(&tasks, &best),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextensor_nn::network::{shufflenet_like, yolo_tiny};
    use flextensor_sim::spec::{v100, Device};
    use flextensor_tunedb::testutil;

    fn quick_opts(budget: usize) -> GraphTuneOptions {
        let mut base = OptimizeOptions::quick();
        base.search.trials = 4;
        base.search.starts = 2;
        base.search.initial_samples = 4;
        GraphTuneOptions {
            base,
            workers: 2,
            budget,
            rounds: 2,
            pilot: 2,
            chunk: 2,
            ..GraphTuneOptions::default()
        }
    }

    #[test]
    fn tune_graph_spends_exactly_the_budget_on_fresh_networks() {
        let db = Arc::new(TuneDb::open(testutil::temp_dir("graph-budget")).unwrap().0);
        let net = yolo_tiny(1);
        let report = tune_graph(&db, &net, &Device::Gpu(v100()), &quick_opts(24)).unwrap();
        assert_eq!(report.spent, 24);
        assert_eq!(report.tasks.iter().map(|t| t.trials).sum::<usize>(), 24);
        assert_eq!(report.hits, 0);
        // Duplicate conv blocks coalesce in the pilot round.
        assert!(report.coalesced >= 2, "coalesced={}", report.coalesced);
        assert!(report.network_seconds > 0.0);
        // Per-round allocations also account for every trial.
        let by_rounds: usize = report.rounds.iter().map(|r| r.allocated).sum();
        assert_eq!(by_rounds, 24);
    }

    #[test]
    fn second_run_is_all_hits_and_spends_nothing() {
        let db = Arc::new(TuneDb::open(testutil::temp_dir("graph-hits")).unwrap().0);
        let net = yolo_tiny(1);
        let dev = Device::Gpu(v100());
        let first = tune_graph(&db, &net, &dev, &quick_opts(24)).unwrap();
        let second = tune_graph(&db, &net, &dev, &quick_opts(24)).unwrap();
        assert_eq!(second.spent, 0);
        assert_eq!(second.hits, second.occurrences);
        assert!(second.tasks.iter().all(|t| t.hit && t.trials == 0));
        assert!(second.network_seconds <= first.network_seconds + 1e-12);
    }

    #[test]
    fn refinement_rounds_never_regress_the_network() {
        let db = Arc::new(TuneDb::open(testutil::temp_dir("graph-mono")).unwrap().0);
        let net = shufflenet_like(1);
        let report = tune_graph(&db, &net, &Device::Gpu(v100()), &quick_opts(48)).unwrap();
        for w in report.rounds.windows(2) {
            assert!(
                w[1].network_seconds <= w[0].network_seconds + 1e-12,
                "round {} regressed: {} -> {}",
                w[1].round,
                w[0].network_seconds,
                w[1].network_seconds
            );
        }
        assert_eq!(
            report.network_seconds,
            report.rounds.last().unwrap().network_seconds
        );
    }

    #[test]
    fn insufficient_budget_is_a_clean_error() {
        let db = Arc::new(TuneDb::open(testutil::temp_dir("graph-poor")).unwrap().0);
        let net = yolo_tiny(1);
        let err = tune_graph(&db, &net, &Device::Gpu(v100()), &quick_opts(3)).unwrap_err();
        assert!(matches!(
            err,
            GraphTuneError::InsufficientBudget { budget: 3, fresh } if fresh > 3
        ));
    }
}
