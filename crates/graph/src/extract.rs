//! Subgraph extraction with structural hashing.
//!
//! A network exports one mini-graph per layer occurrence; this module
//! collapses structurally identical occurrences into a single
//! [`SubgraphTask`] carrying a use-count weight. Identity is decided by
//! a *structural fingerprint*: a canonical rendering of the graph in
//! which tensor names are replaced by declaration indices and loop
//! variable names by their axis positions, hashed with FNV-1a. Two
//! layers built at different network positions — with different labels
//! and different tensor naming — therefore fingerprint equal whenever
//! their computations are the same, and one tuning run serves all of
//! them.

use std::collections::HashMap;

use flextensor::serve::task_key;
use flextensor_ir::expr::{Cond, Expr};
use flextensor_ir::graph::{Graph, Op, TensorKind};
use flextensor_sim::spec::Device;
use flextensor_tunedb::TuneKey;

/// One deduplicated tuning task: a representative subgraph plus every
/// network occurrence it stands for.
#[derive(Debug, Clone)]
pub struct SubgraphTask {
    /// Position in discovery (network) order.
    pub index: usize,
    /// Label of the first occurrence (e.g. `"s1.u0.dw"`).
    pub label: String,
    /// The representative subgraph (all occurrences are structurally
    /// identical to it).
    pub graph: Graph,
    /// The task's schedule-database key.
    pub key: TuneKey,
    /// The structural fingerprint all occurrences share.
    pub fingerprint: u64,
    /// Labels of every occurrence, in network order.
    pub occurrences: Vec<String>,
}

impl SubgraphTask {
    /// How many times this subgraph appears in the network — the task's
    /// weight in the budget planner (one trial improves `uses()` layer
    /// instances at once).
    pub fn uses(&self) -> usize {
        self.occurrences.len()
    }
}

/// Deduplicates exported layer occurrences into weighted tuning tasks.
///
/// Occurrences are grouped by `(fingerprint, task_key)` — the
/// fingerprint captures full structure, and including the
/// [`task_key`] guarantees a group never spans two database keys.
/// Task order is first-occurrence (network) order, so the result is
/// deterministic for a fixed export.
pub fn extract_tasks(occurrences: &[(String, Graph)], device: &Device) -> Vec<SubgraphTask> {
    let mut tasks: Vec<SubgraphTask> = Vec::new();
    let mut by_sig: HashMap<(u64, TuneKey), usize> = HashMap::new();
    for (label, graph) in occurrences {
        let fp = fingerprint(graph, device);
        let key = task_key(graph, device);
        match by_sig.entry((fp, key.clone())) {
            std::collections::hash_map::Entry::Occupied(e) => {
                tasks[*e.get()].occurrences.push(label.clone());
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                let index = tasks.len();
                v.insert(index);
                tasks.push(SubgraphTask {
                    index,
                    label: label.clone(),
                    graph: graph.clone(),
                    key,
                    fingerprint: fp,
                    occurrences: vec![label.clone()],
                });
            }
        }
    }
    tasks
}

/// Structural fingerprint of a graph on a device: FNV-1a over
/// [`canonical`].
pub fn fingerprint(graph: &Graph, device: &Device) -> u64 {
    fnv1a64(canonical(graph, device).as_bytes())
}

/// Canonical structural rendering of a graph.
///
/// The rendering covers everything that affects scheduling — tensor
/// shapes and roles, op order, loop extents, body expressions, the
/// combiner, recorded attributes, and the target device — while
/// normalizing away the two spellings that vary between occurrences of
/// the same layer: tensor names become `t<declaration index>` and loop
/// variables become `s<i>`/`r<i>` by axis position. The graph *name* is
/// deliberately excluded (it encodes shape parameters already covered
/// here, and per-occurrence prefixes must not split a group).
pub fn canonical(graph: &Graph, device: &Device) -> String {
    let mut out = String::new();
    out.push_str("target=");
    out.push_str(device.name());
    out.push('\n');
    let tensor_names: HashMap<&str, String> = graph
        .tensors
        .iter()
        .enumerate()
        .map(|(i, t)| (t.name.as_str(), format!("t{i}")))
        .collect();
    for (i, t) in graph.tensors.iter().enumerate() {
        let kind = match t.kind {
            TensorKind::Input => 'i',
            TensorKind::Intermediate => 'm',
            TensorKind::Output => 'o',
        };
        out.push_str(&format!("t{i}:{kind}{:?}\n", t.shape));
    }
    for op in &graph.ops {
        match op {
            Op::Placeholder { tensor } => {
                out.push_str("P ");
                out.push_str(rename(&tensor_names, tensor));
                out.push('\n');
            }
            Op::Compute(c) => {
                let mut axis_names: HashMap<&str, String> = HashMap::new();
                for (i, a) in c.spatial.iter().enumerate() {
                    axis_names.insert(a.name.as_str(), format!("s{i}"));
                }
                for (i, a) in c.reduce.iter().enumerate() {
                    axis_names.insert(a.name.as_str(), format!("r{i}"));
                }
                out.push_str("C ");
                out.push_str(rename(&tensor_names, &c.output));
                out.push_str(" s");
                let s: Vec<i64> = c.spatial.iter().map(|a| a.extent).collect();
                out.push_str(&format!("{s:?}"));
                out.push_str(" r");
                let r: Vec<i64> = c.reduce.iter().map(|a| a.extent).collect();
                out.push_str(&format!("{r:?}"));
                out.push(' ');
                out.push_str(match c.combiner {
                    flextensor_ir::graph::Combiner::Sum => "sum",
                    flextensor_ir::graph::Combiner::Max => "max",
                });
                out.push(' ');
                render_expr(&mut out, &c.body, &tensor_names, &axis_names);
                out.push('\n');
            }
        }
    }
    for (name, value) in &graph.attrs {
        out.push_str(&format!("a:{name}={value}\n"));
    }
    out
}

fn rename<'a>(map: &'a HashMap<&str, String>, name: &'a str) -> &'a str {
    map.get(name).map(String::as_str).unwrap_or(name)
}

fn render_expr(
    out: &mut String,
    e: &Expr,
    tensors: &HashMap<&str, String>,
    axes: &HashMap<&str, String>,
) {
    match e {
        Expr::FConst(v) => out.push_str(&format!("{v}")),
        Expr::IConst(v) => out.push_str(&format!("{v}")),
        Expr::Var(n) => out.push_str(rename(axes, n)),
        Expr::Bin(op, a, b) => {
            out.push('(');
            render_expr(out, a, tensors, axes);
            out.push_str(&format!(" {op} "));
            render_expr(out, b, tensors, axes);
            out.push(')');
        }
        Expr::Select(c, a, b) => {
            out.push_str("select(");
            render_cond(out, c, tensors, axes);
            out.push_str(", ");
            render_expr(out, a, tensors, axes);
            out.push_str(", ");
            render_expr(out, b, tensors, axes);
            out.push(')');
        }
        Expr::Load { tensor, indices } => {
            out.push_str(rename(tensors, tensor));
            out.push('[');
            for (i, ix) in indices.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_expr(out, ix, tensors, axes);
            }
            out.push(']');
        }
    }
}

fn render_cond(
    out: &mut String,
    c: &Cond,
    tensors: &HashMap<&str, String>,
    axes: &HashMap<&str, String>,
) {
    match c {
        Cond::Cmp(op, a, b) => {
            out.push('(');
            render_expr(out, a, tensors, axes);
            out.push_str(&format!(" {op} "));
            render_expr(out, b, tensors, axes);
            out.push(')');
        }
        Cond::And(a, b) => {
            out.push('(');
            render_cond(out, a, tensors, axes);
            out.push_str(" && ");
            render_cond(out, b, tensors, axes);
            out.push(')');
        }
        Cond::Or(a, b) => {
            out.push('(');
            render_cond(out, a, tensors, axes);
            out.push_str(" || ");
            render_cond(out, b, tensors, axes);
            out.push(')');
        }
        Cond::Not(a) => {
            out.push('!');
            render_cond(out, a, tensors, axes);
        }
    }
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextensor_ir::ops;
    use flextensor_nn::network::shufflenet_like;
    use flextensor_sim::spec::{v100, Device};

    fn gpu() -> Device {
        Device::Gpu(v100())
    }

    #[test]
    fn fingerprint_ignores_tensor_names() {
        let a = ops::gemm(64, 64, 64);
        let mut b = a.clone();
        // Rename the output tensor everywhere it appears by name: the
        // declaration and the producing op (gemm's body loads only the
        // two inputs, never the output).
        let old = b.tensors.last().unwrap().name.clone();
        for t in &mut b.tensors {
            if t.name == old {
                t.name = "renamed_out".to_string();
            }
        }
        for op in &mut b.ops {
            if let Op::Compute(c) = op {
                if c.output == old {
                    c.output = "renamed_out".to_string();
                }
            }
        }
        assert_ne!(a, b, "rename must actually change the graph");
        assert_eq!(fingerprint(&a, &gpu()), fingerprint(&b, &gpu()));
    }

    #[test]
    fn fingerprint_separates_shapes_and_targets() {
        let a = ops::gemm(64, 64, 64);
        let b = ops::gemm(64, 64, 32);
        assert_ne!(fingerprint(&a, &gpu()), fingerprint(&b, &gpu()));
        let cpu = Device::Cpu(flextensor_sim::spec::xeon_e5_2699_v4());
        assert_ne!(fingerprint(&a, &gpu()), fingerprint(&a, &cpu));
    }

    #[test]
    fn shufflenet_stage_units_collapse_into_weighted_tasks() {
        let net = shufflenet_like(1);
        let occ = net.export();
        let tasks = extract_tasks(&occ, &gpu());
        // 19 occurrences fold into 8 distinct tasks: stem, stage-1
        // group conv (×6: two per unit × three units), stage-1
        // depthwise (×3), downsample depthwise + group conv, stage-2
        // group conv (×4), stage-2 depthwise (×2), classifier gemm.
        assert_eq!(occ.len(), 19);
        assert_eq!(tasks.len(), 8);
        assert_eq!(tasks.iter().map(SubgraphTask::uses).sum::<usize>(), 19);
        let s1_gc = tasks
            .iter()
            .find(|t| t.occurrences.iter().any(|l| l == "s1.u0.gc1"))
            .expect("stage-1 group conv task");
        assert_eq!(s1_gc.uses(), 6);
        assert!(s1_gc.occurrences.iter().any(|l| l == "s1.u2.gc2"));
        let s1_dw = tasks
            .iter()
            .find(|t| t.occurrences.iter().any(|l| l == "s1.u1.dw"))
            .expect("stage-1 depthwise task");
        assert_eq!(s1_dw.uses(), 3);
        // Discovery order is network order and keys never collide
        // across tasks.
        assert_eq!(tasks[0].label, occ[0].0);
        for (i, t) in tasks.iter().enumerate() {
            assert_eq!(t.index, i);
        }
    }

    #[test]
    fn extraction_is_deterministic() {
        let net = shufflenet_like(2);
        let occ = net.export();
        let a = extract_tasks(&occ, &gpu());
        let b = extract_tasks(&occ, &gpu());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.fingerprint, y.fingerprint);
            assert_eq!(x.occurrences, y.occurrences);
            assert_eq!(x.key, y.key);
        }
    }
}
