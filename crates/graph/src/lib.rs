//! Graph-level scheduling: tune whole networks under one global trial
//! budget.
//!
//! FlexTensor's §6 evaluation tunes real networks (ShuffleNet, YOLO) by
//! optimizing each distinct layer once and reusing the schedule for every
//! repetition. This crate reproduces that workflow on top of the
//! session server ([`flextensor::serve`]) and the persistent schedule
//! database ([`flextensor_tunedb`]):
//!
//! 1. **Extraction** ([`extract`]) — a network definition
//!    ([`flextensor_nn::network`]) is exported as an ordered list of
//!    per-layer subgraphs, then deduplicated by a *structural
//!    fingerprint* (tensor and axis names normalized away), so the three
//!    identical units of a ShuffleNet stage collapse into one tuning
//!    task with a use-count weight of three.
//! 2. **Budget planning** ([`plan`]) — a global trial budget is split
//!    into rounds; each round is allocated across tasks by a
//!    marginal-utility greedy rule (expected end-to-end latency
//!    reduction per trial, estimated from each task's observed
//!    cost-improvement trajectory, weighted by use count), with a
//!    uniform-split mode kept as the ablation baseline.
//! 3. **Driving** ([`tune`]) — [`tune::tune_graph`] submits every layer
//!    occurrence through a [`SessionServer`](flextensor::serve::SessionServer):
//!    database hits spend no budget, duplicate layers coalesce onto one
//!    search, fresh tasks warm-start from their nearest stored neighbor,
//!    and later rounds re-tune via
//!    [`SubmitOptions::refine`](flextensor::serve::SubmitOptions) so the
//!    per-task cost is monotone non-increasing across rounds.
//!
//! Everything is deterministic for a fixed seed: extraction order,
//! allocation (integer arithmetic, explicit tie-breaks), and the
//! searches themselves (bit-deterministic, worker-count independent).
//! `tests/graph_tuning.rs` proves budget conservation, plan determinism,
//! and that duplicated subgraphs are tuned exactly once.
//!
//! See `docs/GRAPH_TUNING.md` for the full architecture.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod extract;
pub mod plan;
pub mod tune;
