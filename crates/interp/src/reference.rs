//! Reference execution of a mini-graph directly from its mathematical
//! definition — the ground truth every scheduled kernel is checked against.

use flextensor_ir::graph::{Combiner, ComputeOp, Graph, TensorKind};

use crate::eval::{eval_expr, Buffer, Env, EvalError, Store};

/// Identity element of a combiner.
fn identity(c: Combiner) -> f64 {
    match c {
        Combiner::Sum => 0.0,
        Combiner::Max => f64::NEG_INFINITY,
    }
}

fn combine(c: Combiner, a: f64, b: f64) -> f64 {
    match c {
        Combiner::Sum => a + b,
        Combiner::Max => a.max(b),
    }
}

/// Evaluates one compute op into a fresh buffer, reading inputs from
/// `store`.
fn eval_op(op: &ComputeOp, store: &Store) -> Result<Buffer, EvalError> {
    let shape: Vec<i64> = op.spatial.iter().map(|a| a.extent).collect();
    let mut out = Buffer::filled(&shape, identity(op.combiner));

    // Odometer over the full iteration domain (spatial then reduce).
    let axes: Vec<(&str, i64)> = op
        .spatial
        .iter()
        .chain(op.reduce.iter())
        .map(|a| (a.name.as_str(), a.extent))
        .collect();
    let nspatial = op.spatial.len();
    let mut counters = vec![0i64; axes.len()];
    loop {
        let mut env = Env::new();
        for ((name, _), &v) in axes.iter().zip(&counters) {
            env.push(name, v);
        }
        let v = eval_expr(&op.body, &env, store)?.as_f64();
        let idx: Vec<i64> = counters[..nspatial].to_vec();
        let cur = out.get(&idx)?;
        let next = if op.reduce.is_empty() {
            v
        } else {
            combine(op.combiner, cur, v)
        };
        out.set(&idx, next)?;

        // Advance odometer.
        let mut d = axes.len();
        loop {
            if d == 0 {
                return Ok(out);
            }
            d -= 1;
            counters[d] += 1;
            if counters[d] < axes[d].1 {
                break;
            }
            counters[d] = 0;
        }
    }
}

/// Executes the whole graph from its inputs, returning the populated store
/// (inputs + every intermediate + the output).
///
/// # Errors
///
/// Fails if `inputs` is missing a graph input or has a wrong shape, or on
/// any evaluation error.
pub fn run_reference(graph: &Graph, inputs: &Store) -> Result<Store, EvalError> {
    let mut store = Store::new();
    for t in graph.tensors.iter().filter(|t| t.kind == TensorKind::Input) {
        let buf = inputs
            .get(&t.name)
            .ok_or_else(|| EvalError(format!("missing input `{}`", t.name)))?;
        if buf.shape != t.shape {
            return Err(EvalError(format!(
                "input `{}` has shape {:?}, expected {:?}",
                t.name, buf.shape, t.shape
            )));
        }
        store.insert(t.name.clone(), buf.clone());
    }
    for op in graph.compute_ops() {
        let buf = eval_op(op, &store)?;
        store.insert(op.output.clone(), buf);
    }
    Ok(store)
}

/// Builds deterministic random inputs for a graph.
pub fn random_inputs(graph: &Graph, seed: u64) -> Store {
    let mut store = Store::new();
    for (i, t) in graph.inputs().enumerate() {
        store.insert(
            t.name.clone(),
            Buffer::random(&t.shape, seed.wrapping_add(i as u64 * 7919)),
        );
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextensor_ir::ops::{self, ConvParams};

    #[test]
    fn gemm_matches_manual_computation() {
        let g = ops::gemm(2, 2, 2);
        let mut inputs = Store::new();
        inputs.insert(
            "A".into(),
            Buffer {
                shape: vec![2, 2],
                data: vec![1.0, 2.0, 3.0, 4.0],
            },
        );
        inputs.insert(
            "B".into(),
            Buffer {
                shape: vec![2, 2],
                data: vec![5.0, 6.0, 7.0, 8.0],
            },
        );
        let store = run_reference(&g, &inputs).unwrap();
        let o = &store["O"];
        assert_eq!(o.data, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn conv2d_padding_zeroes_border() {
        // 1x1x3x3 input of ones, 1 output channel, 3x3 kernel of ones,
        // padding 1: center output = 9, corners = 4, edges = 6.
        let g = ops::conv2d(ConvParams::same(1, 1, 1, 3), 3, 3);
        let mut inputs = Store::new();
        inputs.insert("I".into(), Buffer::filled(&[1, 1, 3, 3], 1.0));
        inputs.insert("W".into(), Buffer::filled(&[1, 1, 3, 3], 1.0));
        let store = run_reference(&g, &inputs).unwrap();
        let o = &store["O"];
        assert_eq!(o.shape, vec![1, 1, 3, 3]);
        assert_eq!(o.data, vec![4.0, 6.0, 4.0, 6.0, 9.0, 6.0, 4.0, 6.0, 4.0]);
    }

    #[test]
    fn transposed_conv_matches_independent_scatter() {
        // All-ones input and weight: O[y,x] counts the (input, kernel-tap)
        // pairs scattering onto that output cell. Compute those counts
        // independently from the transposed-conv definition
        // (y = iy·stride + ky − pad) and compare elementwise.
        let p = ConvParams {
            batch: 1,
            in_channels: 1,
            out_channels: 1,
            kernel: 4,
            stride: 2,
            padding: 1,
            dilation: 1,
            groups: 1,
        };
        let (in_h, in_w) = (2i64, 2i64);
        let g = ops::conv_transpose2d(p, in_h, in_w);
        let mut inputs = Store::new();
        inputs.insert("I".into(), Buffer::filled(&[1, 1, in_h, in_w], 1.0));
        inputs.insert("W".into(), Buffer::filled(&[1, 1, 4, 4], 1.0));
        let store = run_reference(&g, &inputs).unwrap();
        let o = &store["O"];
        assert_eq!(o.shape, vec![1, 1, 4, 4]);
        let taps_along = |out: i64| -> f64 {
            let mut n = 0;
            for i in 0..2 {
                for k in 0..4 {
                    if i * p.stride + k - p.padding == out {
                        n += 1;
                    }
                }
            }
            n as f64
        };
        let mut expected_total = 0.0;
        for y in 0..4 {
            for x in 0..4 {
                let want = taps_along(y) * taps_along(x);
                let got = o.get(&[0, 0, y, x]).unwrap();
                assert_eq!(got, want, "O[{y},{x}]");
                expected_total += want;
            }
        }
        // The uncropped scatter would sum to 4 inputs · 16 taps = 64; the
        // padding crop drops border contributions, hence the strict <.
        let total: f64 = o.data.iter().sum();
        assert_eq!(total, expected_total);
        assert!(total > 0.0 && total < 64.0, "total {total}");
    }

    #[test]
    fn shift_moves_channels() {
        let g = ops::shift2d(1, 9, 3, 3);
        let inputs = random_inputs(&g, 3);
        let store = run_reference(&g, &inputs).unwrap();
        let i = &inputs["I"];
        let o = &store["O"];
        // Channel 4: shifts (4 % 3 - ... ) per definition O[b,c,y,x] =
        // P[b,c,y + c%3, x + (c/3)%3], P padded by 1. For c=4: dy=1, dx=1
        // -> O[.,4,y,x] = P[.,4,y+1,x+1] = I[.,4,y,x].
        for y in 0..3 {
            for x in 0..3 {
                assert_eq!(o.get(&[0, 4, y, x]).unwrap(), i.get(&[0, 4, y, x]).unwrap());
            }
        }
        // Channel 0: dy=0, dx=0 -> O = P[y, x] = padded at border.
        assert_eq!(o.get(&[0, 0, 0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn missing_input_is_error() {
        let g = ops::gemv(4, 4);
        let inputs = Store::new();
        assert!(run_reference(&g, &inputs).is_err());
    }

    #[test]
    fn wrong_shape_is_error() {
        let g = ops::gemv(4, 4);
        let mut inputs = Store::new();
        inputs.insert("A".into(), Buffer::zeros(&[4, 5]));
        inputs.insert("B".into(), Buffer::zeros(&[4]));
        assert!(run_reference(&g, &inputs).is_err());
    }

    #[test]
    fn bcm_equals_dense_circulant_gemv() {
        // Expand the circulant weights into a dense matrix and compare.
        let (pb, qb, k) = (2, 2, 3);
        let g = ops::bcm(1, pb, qb, k);
        let inputs = random_inputs(&g, 11);
        let store = run_reference(&g, &inputs).unwrap();
        let x = &inputs["X"];
        let wc = &inputs["Wc"];
        let o = &store["O"];
        for p in 0..pb {
            for r in 0..k {
                let mut acc = 0.0;
                for q in 0..qb {
                    for s in 0..k {
                        acc += wc.get(&[p, q, (r - s).rem_euclid(k)]).unwrap()
                            * x.get(&[0, q, s]).unwrap();
                    }
                }
                let got = o.get(&[0, p, r]).unwrap();
                assert!((acc - got).abs() < 1e-9, "p={p} r={r}: {acc} vs {got}");
            }
        }
    }
}
