//! Dynamic evaluation of scalar expressions.
//!
//! Expressions are untyped in the IR; the evaluator computes with
//! [`Value`]s: integers for index arithmetic (with truncating division and
//! Euclidean-style remainder on non-negative operands, matching hardware
//! index math) and floats for tensor data. `select` evaluates lazily, so
//! the untaken branch of a padding guard never performs its (possibly
//! out-of-bounds) load.

use std::collections::HashMap;
use std::fmt;

use flextensor_ir::expr::{BinOp, CmpOp, Cond, Expr};

/// A runtime scalar: integer (index) or float (tensor data).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Integer value.
    I(i64),
    /// Floating-point value.
    F(f64),
}

impl Value {
    /// The value as f64 (exact for the integer magnitudes used here).
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::I(v) => *v as f64,
            Value::F(v) => *v,
        }
    }

    /// The value as an integer index.
    ///
    /// # Errors
    ///
    /// Fails if the value is a non-integral float.
    pub fn as_index(&self) -> Result<i64, EvalError> {
        match self {
            Value::I(v) => Ok(*v),
            Value::F(v) if v.fract() == 0.0 => Ok(*v as i64),
            Value::F(v) => Err(EvalError(format!("non-integral index {v}"))),
        }
    }
}

/// Errors raised during evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError(pub String);

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evaluation error: {}", self.0)
    }
}

impl std::error::Error for EvalError {}

/// A tensor buffer: shape + row-major data.
#[derive(Debug, Clone, PartialEq)]
pub struct Buffer {
    /// Dimension extents.
    pub shape: Vec<i64>,
    /// Row-major elements.
    pub data: Vec<f64>,
}

impl Buffer {
    /// Allocates a zero-filled buffer.
    pub fn zeros(shape: &[i64]) -> Buffer {
        let n: i64 = shape.iter().product();
        Buffer {
            shape: shape.to_vec(),
            data: vec![0.0; n as usize],
        }
    }

    /// Allocates a buffer filled with `v`.
    pub fn filled(shape: &[i64], v: f64) -> Buffer {
        let n: i64 = shape.iter().product();
        Buffer {
            shape: shape.to_vec(),
            data: vec![v; n as usize],
        }
    }

    /// Deterministic pseudo-random fill in `[-1, 1)` (xorshift on the seed
    /// and element index) — reproducible test inputs without a RNG
    /// dependency.
    pub fn random(shape: &[i64], seed: u64) -> Buffer {
        let n: i64 = shape.iter().product();
        let mut data = Vec::with_capacity(n as usize);
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        for _ in 0..n {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let u = (s >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
            data.push(u * 2.0 - 1.0);
        }
        Buffer {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Flattens a multi-index to the row-major offset.
    ///
    /// # Errors
    ///
    /// Fails on rank mismatch or out-of-bounds coordinates.
    pub fn offset(&self, idx: &[i64]) -> Result<usize, EvalError> {
        if idx.len() != self.shape.len() {
            return Err(EvalError(format!(
                "rank mismatch: index {idx:?} vs shape {:?}",
                self.shape
            )));
        }
        let mut off = 0i64;
        for (&i, &d) in idx.iter().zip(&self.shape) {
            if i < 0 || i >= d {
                return Err(EvalError(format!(
                    "index {idx:?} out of bounds for shape {:?}",
                    self.shape
                )));
            }
            off = off * d + i;
        }
        Ok(off as usize)
    }

    /// Reads the element at the multi-index.
    pub fn get(&self, idx: &[i64]) -> Result<f64, EvalError> {
        Ok(self.data[self.offset(idx)?])
    }

    /// Writes the element at the multi-index.
    pub fn set(&mut self, idx: &[i64], v: f64) -> Result<(), EvalError> {
        let off = self.offset(idx)?;
        self.data[off] = v;
        Ok(())
    }

    /// Maximum absolute difference against another buffer.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Buffer) -> f64 {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// Named tensor storage.
pub type Store = HashMap<String, Buffer>;

/// Loop-variable environment. Uses a small vector with linear lookup —
/// kernels bind at most a few dozen variables and lookups are name-local.
#[derive(Debug, Default)]
pub struct Env {
    vars: Vec<(String, i64)>,
}

impl Env {
    /// Creates an empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// Binds `name` (shadowing any outer binding) and returns a restore
    /// token for [`Env::pop`].
    pub fn push(&mut self, name: &str, v: i64) {
        self.vars.push((name.to_string(), v));
    }

    /// Rebinds the most recent binding of `name` (loop iteration advance).
    pub fn set_last(&mut self, v: i64) {
        if let Some(last) = self.vars.last_mut() {
            last.1 = v;
        }
    }

    /// Removes the most recent binding.
    pub fn pop(&mut self) {
        self.vars.pop();
    }

    /// Looks up a variable (innermost binding wins).
    pub fn get(&self, name: &str) -> Option<i64> {
        self.vars
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// Evaluates an expression under an environment and tensor store.
pub fn eval_expr(e: &Expr, env: &Env, store: &Store) -> Result<Value, EvalError> {
    match e {
        Expr::FConst(v) => Ok(Value::F(*v)),
        Expr::IConst(v) => Ok(Value::I(*v)),
        Expr::Var(name) => env
            .get(name)
            .map(Value::I)
            .ok_or_else(|| EvalError(format!("unbound variable `{name}`"))),
        Expr::Bin(op, a, b) => {
            let x = eval_expr(a, env, store)?;
            let y = eval_expr(b, env, store)?;
            Ok(apply_bin(*op, x, y))
        }
        Expr::Select(c, a, b) => {
            if eval_cond(c, env, store)? {
                eval_expr(a, env, store)
            } else {
                eval_expr(b, env, store)
            }
        }
        Expr::Load { tensor, indices } => {
            let buf = store
                .get(tensor)
                .ok_or_else(|| EvalError(format!("unknown tensor `{tensor}`")))?;
            let mut idx = Vec::with_capacity(indices.len());
            for ix in indices {
                idx.push(eval_expr(ix, env, store)?.as_index()?);
            }
            buf.get(&idx).map(Value::F)
        }
    }
}

fn apply_bin(op: BinOp, x: Value, y: Value) -> Value {
    match (x, y) {
        (Value::I(a), Value::I(b)) => Value::I(match op {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a.div_euclid(b),
            BinOp::Mod => a.rem_euclid(b),
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
        }),
        _ => {
            let (a, b) = (x.as_f64(), y.as_f64());
            Value::F(match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
                BinOp::Mod => a.rem_euclid(b),
                BinOp::Min => a.min(b),
                BinOp::Max => a.max(b),
            })
        }
    }
}

/// Evaluates a condition.
pub fn eval_cond(c: &Cond, env: &Env, store: &Store) -> Result<bool, EvalError> {
    match c {
        Cond::Cmp(op, a, b) => {
            let x = eval_expr(a, env, store)?.as_f64();
            let y = eval_expr(b, env, store)?.as_f64();
            Ok(match op {
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
            })
        }
        Cond::And(a, b) => Ok(eval_cond(a, env, store)? && eval_cond(b, env, store)?),
        Cond::Or(a, b) => Ok(eval_cond(a, env, store)? || eval_cond(b, env, store)?),
        Cond::Not(a) => Ok(!eval_cond(a, env, store)?),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_div_mod_are_euclidean() {
        let env = Env::new();
        let store = Store::new();
        let e = (Expr::int(-7)).rem(Expr::int(3));
        assert_eq!(eval_expr(&e, &env, &store).unwrap(), Value::I(2));
        let d = Expr::int(-7) / 3;
        assert_eq!(eval_expr(&d, &env, &store).unwrap(), Value::I(-3));
    }

    #[test]
    fn select_is_lazy() {
        // The false branch would load out of bounds; laziness avoids it.
        let mut store = Store::new();
        store.insert("A".into(), Buffer::zeros(&[2]));
        let mut env = Env::new();
        env.push("i", 5);
        let e = Expr::select(
            Expr::var("i").lt(Expr::int(2)),
            Expr::load("A", vec![Expr::var("i")]),
            Expr::float(0.0),
        );
        assert_eq!(eval_expr(&e, &env, &store).unwrap(), Value::F(0.0));
    }

    #[test]
    fn load_out_of_bounds_is_error() {
        let mut store = Store::new();
        store.insert("A".into(), Buffer::zeros(&[2]));
        let mut env = Env::new();
        env.push("i", 5);
        let e = Expr::load("A", vec![Expr::var("i")]);
        assert!(eval_expr(&e, &env, &store).is_err());
    }

    #[test]
    fn env_shadowing() {
        let mut env = Env::new();
        env.push("i", 1);
        env.push("i", 2);
        assert_eq!(env.get("i"), Some(2));
        env.pop();
        assert_eq!(env.get("i"), Some(1));
    }

    #[test]
    fn buffer_roundtrip_and_random_determinism() {
        let mut b = Buffer::zeros(&[2, 3]);
        b.set(&[1, 2], 4.5).unwrap();
        assert_eq!(b.get(&[1, 2]).unwrap(), 4.5);
        let r1 = Buffer::random(&[16], 7);
        let r2 = Buffer::random(&[16], 7);
        assert_eq!(r1, r2);
        assert!(r1.data.iter().all(|v| (-1.0..1.0).contains(v)));
        let r3 = Buffer::random(&[16], 8);
        assert_ne!(r1, r3);
    }

    #[test]
    fn mixed_arithmetic_promotes_to_float() {
        let env = Env::new();
        let store = Store::new();
        let e = Expr::float(1.5) + Expr::int(2);
        assert_eq!(eval_expr(&e, &env, &store).unwrap(), Value::F(3.5));
    }
}
