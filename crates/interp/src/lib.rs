//! # flextensor-interp
//!
//! Reference evaluator and loop-nest interpreter for the FlexTensor
//! reproduction.
//!
//! Auto-scheduling transforms loop nests aggressively — multi-way splits,
//! reorders, fusion, producer inlining. This crate proves those transforms
//! are semantics-preserving by *executing* them:
//!
//! * [`mod@reference`] runs a mini-graph directly from its mathematical
//!   definition (the ground truth).
//! * [`machine`] runs a lowered kernel (`flextensor-schedule`'s `Stmt`
//!   nest) and [`machine::check_against_reference`] compares the two.
//! * [`eval`] is the shared expression evaluator (lazy `select`, so
//!   padding guards never read out of bounds) and tensor [`eval::Buffer`].
//!
//! # Examples
//!
//! ```
//! use flextensor_ir::ops;
//! use flextensor_schedule::{config::TargetKind, lower::lower_naive};
//! use flextensor_interp::{reference::random_inputs, machine::check_against_reference};
//!
//! let g = ops::gemm(8, 8, 8);
//! let kernel = lower_naive(&g, TargetKind::Gpu);
//! let inputs = random_inputs(&g, 42);
//! let max_diff = check_against_reference(&g, &kernel, &inputs)?;
//! assert!(max_diff < 1e-9);
//! # Ok::<(), flextensor_interp::eval::EvalError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eval;
pub mod machine;
pub mod reference;

pub use eval::{Buffer, Env, EvalError, Store, Value};
pub use machine::{check_against_reference, run_kernel};
pub use reference::{random_inputs, run_reference};
