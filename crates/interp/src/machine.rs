//! Execution of lowered kernels (the `Stmt` loop-nest IR).
//!
//! Concurrency annotations (`parallel`, `blockIdx`, `vectorize`, …) are
//! executed sequentially — the interpreter checks *semantics*, not speed;
//! performance is the job of `flextensor-sim`. Reduction stores accumulate
//! into combiner-initialized output buffers, so any split/reordering of
//! reduce loops produced by lowering yields the same result (up to
//! floating-point association).

use flextensor_ir::graph::{Combiner, Graph, TensorKind};
use flextensor_schedule::lower::LoweredKernel;
use flextensor_schedule::nest::Stmt;

use crate::eval::{eval_expr, Buffer, Env, EvalError, Store};
use crate::reference::run_reference;

fn identity(c: Combiner) -> f64 {
    match c {
        Combiner::Sum => 0.0,
        Combiner::Max => f64::NEG_INFINITY,
    }
}

fn exec_stmt(stmt: &Stmt, env: &mut Env, store: &mut Store) -> Result<(), EvalError> {
    match stmt {
        Stmt::For {
            var, extent, body, ..
        } => {
            env.push(var, 0);
            for i in 0..*extent {
                env.set_last(i);
                for s in body {
                    exec_stmt(s, env, store)?;
                }
            }
            env.pop();
            Ok(())
        }
        Stmt::Store {
            tensor,
            indices,
            value,
            reduce,
            combiner,
        } => {
            let mut idx = Vec::with_capacity(indices.len());
            for ix in indices {
                idx.push(eval_expr(ix, env, store)?.as_index()?);
            }
            let v = eval_expr(value, env, store)?.as_f64();
            let buf = store
                .get_mut(tensor)
                .ok_or_else(|| EvalError(format!("unknown tensor `{tensor}`")))?;
            let off = buf.offset(&idx)?;
            if *reduce {
                let cur = buf.data[off];
                buf.data[off] = match combiner {
                    Combiner::Sum => cur + v,
                    Combiner::Max => cur.max(v),
                };
            } else {
                buf.data[off] = v;
            }
            Ok(())
        }
        Stmt::StageIn { .. } => Ok(()), // cost-model annotation only
    }
}

/// Runs a lowered kernel over the given inputs, returning the output
/// buffer.
///
/// Allocates the output and any materialized intermediates
/// (combiner-initialized), executes the statement sequence, and returns the
/// graph output.
///
/// # Errors
///
/// Fails on missing/mis-shaped inputs or any runtime evaluation error
/// (unbound variables, out-of-bounds accesses).
pub fn run_kernel(
    graph: &Graph,
    kernel: &LoweredKernel,
    inputs: &Store,
) -> Result<Buffer, EvalError> {
    let mut store = Store::new();
    for t in graph.inputs() {
        let buf = inputs
            .get(&t.name)
            .ok_or_else(|| EvalError(format!("missing input `{}`", t.name)))?;
        if buf.shape != t.shape {
            return Err(EvalError(format!(
                "input `{}` has shape {:?}, expected {:?}",
                t.name, buf.shape, t.shape
            )));
        }
        store.insert(t.name.clone(), buf.clone());
    }
    // Allocate every non-input tensor the kernel may write (output and
    // materialized intermediates), initialized to the combiner identity of
    // its producer.
    for t in &graph.tensors {
        if t.kind == TensorKind::Input {
            continue;
        }
        let comb = graph
            .compute_ops()
            .find(|c| c.output == t.name)
            .map(|c| c.combiner)
            .unwrap_or(Combiner::Sum);
        store.insert(t.name.clone(), Buffer::filled(&t.shape, identity(comb)));
    }

    let mut env = Env::new();
    for s in &kernel.stmts {
        exec_stmt(s, &mut env, &mut store)?;
    }
    store
        .remove(&graph.output().name)
        .ok_or_else(|| EvalError("output tensor missing after execution".into()))
}

/// Runs both the scheduled kernel and the reference evaluator on the same
/// inputs and returns the maximum absolute difference — the correctness
/// check used throughout the test suite.
///
/// # Errors
///
/// Propagates any execution error from either run.
pub fn check_against_reference(
    graph: &Graph,
    kernel: &LoweredKernel,
    inputs: &Store,
) -> Result<f64, EvalError> {
    let scheduled = run_kernel(graph, kernel, inputs)?;
    let reference = run_reference(graph, inputs)?;
    let expected = &reference[&graph.output().name];
    Ok(scheduled.max_abs_diff(expected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::random_inputs;
    use flextensor_ir::ops::{self, ConvParams};
    use flextensor_schedule::config::{NodeConfig, TargetKind};
    use flextensor_schedule::lower::lower;

    const TOL: f64 = 1e-9;

    fn tiled(
        op: &flextensor_ir::graph::ComputeOp,
        sp: Vec<Vec<i64>>,
        rd: Vec<Vec<i64>>,
    ) -> NodeConfig {
        let mut c = NodeConfig::naive(op);
        c.spatial_splits = sp;
        c.reduce_splits = rd;
        c
    }

    #[test]
    fn naive_gemm_matches_reference_on_all_targets() {
        let g = ops::gemm(8, 6, 10);
        let inputs = random_inputs(&g, 1);
        for target in [TargetKind::Cpu, TargetKind::Gpu, TargetKind::Fpga] {
            let k = flextensor_schedule::lower::lower_naive(&g, target);
            let d = check_against_reference(&g, &k, &inputs).unwrap();
            assert!(d < TOL, "{target}: diff {d}");
        }
    }

    #[test]
    fn tiled_gemm_matches_reference() {
        let g = ops::gemm(8, 6, 12);
        let op = g.root_op().clone();
        let mut cfg = tiled(
            &op,
            vec![vec![2, 2, 2, 1], vec![1, 3, 1, 2]],
            vec![vec![3, 2, 2]],
        );
        cfg.reorder = vec![1, 0];
        cfg.unroll = true;
        cfg.vectorize = true;
        cfg.cache_shared = true;
        let inputs = random_inputs(&g, 2);
        for target in [TargetKind::Cpu, TargetKind::Gpu, TargetKind::Fpga] {
            let k = lower(&g, &cfg, target).unwrap();
            let d = check_against_reference(&g, &k, &inputs).unwrap();
            assert!(d < TOL, "{target}: diff {d}");
        }
    }

    #[test]
    fn tiled_conv2d_with_inlined_padding_matches() {
        let g = ops::conv2d(ConvParams::same(2, 3, 4, 3), 6, 6);
        let op = g.root_op().clone();
        let cfg = tiled(
            &op,
            vec![
                vec![2, 1, 1, 1],
                vec![1, 2, 2, 1],
                vec![2, 1, 3, 1],
                vec![1, 1, 2, 3],
            ],
            vec![vec![3, 1, 1], vec![1, 3, 1], vec![1, 1, 3]],
        );
        let inputs = random_inputs(&g, 3);
        for target in [TargetKind::Cpu, TargetKind::Gpu] {
            let k = lower(&g, &cfg, target).unwrap();
            let d = check_against_reference(&g, &k, &inputs).unwrap();
            assert!(d < TOL, "{target}: diff {d}");
        }
    }

    #[test]
    fn materialized_padding_matches_inlined() {
        let g = ops::conv2d(ConvParams::same(1, 2, 2, 3), 5, 5);
        let op = g.root_op().clone();
        let mut cfg = NodeConfig::naive(&op);
        cfg.inline_data = false;
        let inputs = random_inputs(&g, 4);
        let k = lower(&g, &cfg, TargetKind::Cpu).unwrap();
        let d = check_against_reference(&g, &k, &inputs).unwrap();
        assert!(d < TOL, "diff {d}");
    }

    #[test]
    fn transposed_conv_scheduled_matches() {
        let p = ConvParams {
            batch: 1,
            in_channels: 2,
            out_channels: 3,
            kernel: 4,
            stride: 2,
            padding: 1,
            dilation: 1,
            groups: 1,
        };
        let g = ops::conv_transpose2d(p, 4, 4);
        let op = g.root_op().clone();
        let cfg = tiled(
            &op,
            vec![
                vec![1, 1, 1, 1],
                vec![1, 3, 1, 1],
                vec![2, 1, 2, 2],
                vec![1, 2, 2, 2],
            ],
            vec![vec![2, 1, 1], vec![1, 2, 2], vec![4, 1, 1]],
        );
        let inputs = random_inputs(&g, 5);
        let k = lower(&g, &cfg, TargetKind::Gpu).unwrap();
        let d = check_against_reference(&g, &k, &inputs).unwrap();
        assert!(d < TOL, "diff {d}");
    }

    #[test]
    fn group_and_depthwise_conv_match() {
        let g = ops::group_conv2d(ConvParams::same(1, 4, 8, 3).with_groups(2), 5, 5);
        let inputs = random_inputs(&g, 6);
        let k = flextensor_schedule::lower::lower_naive(&g, TargetKind::Gpu);
        assert!(check_against_reference(&g, &k, &inputs).unwrap() < TOL);

        let g2 = ops::depthwise_conv2d(1, 4, 2, 5, 5, 3, 1, 1);
        let inputs2 = random_inputs(&g2, 7);
        let k2 = flextensor_schedule::lower::lower_naive(&g2, TargetKind::Cpu);
        assert!(check_against_reference(&g2, &k2, &inputs2).unwrap() < TOL);
    }

    #[test]
    fn bcm_and_shift_match() {
        let g = ops::bcm(2, 3, 3, 4);
        let inputs = random_inputs(&g, 8);
        let k = flextensor_schedule::lower::lower_naive(&g, TargetKind::Gpu);
        assert!(check_against_reference(&g, &k, &inputs).unwrap() < TOL);

        let g2 = ops::shift2d(1, 9, 4, 4);
        let inputs2 = random_inputs(&g2, 9);
        let k2 = flextensor_schedule::lower::lower_naive(&g2, TargetKind::Cpu);
        assert!(check_against_reference(&g2, &k2, &inputs2).unwrap() < TOL);
    }

    #[test]
    fn missing_input_is_error() {
        let g = ops::gemv(4, 4);
        let k = flextensor_schedule::lower::lower_naive(&g, TargetKind::Cpu);
        assert!(run_kernel(&g, &k, &Store::new()).is_err());
    }
}

#[cfg(test)]
mod fusion_tests {
    use super::*;
    use crate::reference::random_inputs;
    use flextensor_ir::ops::{self, ConvParams, Epilogue};
    use flextensor_schedule::config::{NodeConfig, TargetKind};
    use flextensor_schedule::lower::lower;

    const TOL: f64 = 1e-9;

    #[test]
    fn fused_relu_conv_matches_reference() {
        let g = ops::fuse_epilogue(
            ops::conv2d(ConvParams::same(1, 3, 4, 3), 6, 6),
            Epilogue::Relu,
        );
        let inputs = random_inputs(&g, 21);
        for target in [TargetKind::Cpu, TargetKind::Gpu, TargetKind::Fpga] {
            let k = flextensor_schedule::lower::lower_naive(&g, target);
            let d = check_against_reference(&g, &k, &inputs).unwrap();
            assert!(d < TOL, "{target}: {d}");
        }
    }

    #[test]
    fn fused_bias_relu_with_tiling_matches_reference() {
        let g = ops::fuse_epilogue(
            ops::conv2d(ConvParams::same(1, 2, 4, 3), 6, 6),
            Epilogue::BiasRelu { channel_axis: 1 },
        );
        let op = g.anchor_op().clone();
        let mut cfg = NodeConfig::naive(&op);
        cfg.spatial_splits = vec![
            vec![1, 1, 1, 1],
            vec![1, 2, 2, 1],
            vec![2, 1, 3, 1],
            vec![1, 1, 2, 3],
        ];
        cfg.reduce_splits = vec![vec![2, 1, 1], vec![1, 3, 1], vec![1, 1, 3]];
        cfg.cache_shared = true;
        let inputs = random_inputs(&g, 22);
        let k = lower(&g, &cfg, TargetKind::Gpu).unwrap();
        let d = check_against_reference(&g, &k, &inputs).unwrap();
        assert!(d < TOL, "{d}");
        // The epilogue actually clamps: the output has no negative values.
        let out = run_kernel(&g, &k, &inputs).unwrap();
        assert!(out.data.iter().all(|&v| v >= 0.0));
        assert!(out.data.iter().any(|&v| v > 0.0));
    }

    #[test]
    fn fused_leaky_relu_gemm_matches_reference() {
        let g = ops::fuse_epilogue(ops::gemm(6, 8, 10), Epilogue::LeakyRelu(0.1));
        let inputs = random_inputs(&g, 23);
        let k = flextensor_schedule::lower::lower_naive(&g, TargetKind::Cpu);
        let d = check_against_reference(&g, &k, &inputs).unwrap();
        assert!(d < TOL, "{d}");
        // Negative pre-activations are scaled by 0.1, not clamped to 0.
        let out = run_kernel(&g, &k, &inputs).unwrap();
        assert!(out.data.iter().any(|&v| v < 0.0));
    }
}
