//! The persistent sharded store: append-only per-shard JSONL logs,
//! corruption-tolerant recovery, and atomic compaction.
//!
//! # Layout
//!
//! A database is a directory of `shard-NN.jsonl` files. Each record is
//! one checksummed JSONL line (see [`TuneRecord`]); a key's shard is
//! `fnv1a64(key.flat()) % shards`. Writes append; the in-memory index
//! keeps the best (lowest-cost) record per key, so the log may hold
//! superseded records until [`TuneDb::compact`] rewrites each shard
//! atomically (write `shard-NN.jsonl.tmp`, then rename over the live
//! file) with exactly one record per key, in key order.
//!
//! # Recovery
//!
//! [`TuneDb::open`] replays every shard log. The first bad line of a
//! shard — malformed JSON, a failed checksum, a torn (truncated) tail —
//! ends that shard's replay: every intact record *before* the corruption
//! is kept, the remainder is dropped, and the shard file is truncated to
//! the good prefix so the next append continues from a clean log. The
//! returned [`RecoveryReport`] states exactly what was kept and dropped.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::neighbor::nearest;
use crate::record::{fnv1a64, TuneKey, TuneRecord};
use crate::TuneError;

/// Default shard-file count for new databases.
pub const DEFAULT_SHARDS: usize = 8;

/// What [`TuneDb::open`] found on disk: how many records survived
/// recovery and how many lines each corrupted shard lost.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Shard files replayed.
    pub shard_files: usize,
    /// Intact records kept (before best-per-key reduction).
    pub records_kept: usize,
    /// Lines dropped: the first bad line of each corrupted shard plus
    /// everything after it.
    pub lines_dropped: usize,
    /// For each corrupted shard: its file name and the parse error of
    /// the first bad line.
    pub corrupt: Vec<(String, String)>,
}

/// Cumulative database counters: lookup hits/misses, warm-start seeds
/// handed out, records appended, and lines dropped by recovery.
///
/// Every field except `lines_dropped` is monotone over the database's
/// lifetime and deterministic given the same request sequence; none of
/// them involve wall-clock time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbStats {
    /// Keys currently in the index.
    pub records: usize,
    /// `get` calls that found their key.
    pub hits: usize,
    /// `get` calls that missed.
    pub misses: usize,
    /// Warm-start seeds served from nearest neighbors.
    pub warm_starts: usize,
    /// Records appended since open.
    pub puts: usize,
    /// Lines dropped by recovery at open.
    pub lines_dropped: usize,
}

/// The persistent, sharded schedule database. Thread-safe: every method
/// takes `&self`, so one `Arc<TuneDb>` serves concurrent sessions.
#[derive(Debug)]
pub struct TuneDb {
    dir: PathBuf,
    shards: usize,
    index: Mutex<BTreeMap<TuneKey, TuneRecord>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    warm_starts: AtomicUsize,
    puts: AtomicUsize,
    lines_dropped: usize,
}

impl TuneDb {
    /// Opens (creating if absent) a database directory with the default
    /// shard count, replaying and repairing every shard log.
    ///
    /// # Errors
    ///
    /// Returns [`TuneError`] on I/O failures (corrupted *records* are not
    /// errors — they are repaired and reported).
    pub fn open(dir: impl AsRef<Path>) -> Result<(TuneDb, RecoveryReport), TuneError> {
        TuneDb::open_with_shards(dir, DEFAULT_SHARDS)
    }

    /// [`TuneDb::open`] with an explicit shard count (new appends go to
    /// `fnv1a64(key) % shards`; recovery replays every `shard-*.jsonl`
    /// present regardless).
    ///
    /// # Errors
    ///
    /// Returns [`TuneError`] on I/O failures or `shards == 0`.
    pub fn open_with_shards(
        dir: impl AsRef<Path>,
        shards: usize,
    ) -> Result<(TuneDb, RecoveryReport), TuneError> {
        if shards == 0 {
            return Err(TuneError("shard count must be at least 1".into()));
        }
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)
            .map_err(|e| TuneError(format!("cannot create {}: {e}", dir.display())))?;

        let mut report = RecoveryReport::default();
        let mut index: BTreeMap<TuneKey, TuneRecord> = BTreeMap::new();
        let mut names: Vec<PathBuf> = fs::read_dir(&dir)
            .map_err(|e| TuneError(format!("cannot read {}: {e}", dir.display())))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("shard-") && n.ends_with(".jsonl"))
            })
            .collect();
        names.sort();

        for path in names {
            report.shard_files += 1;
            let text = fs::read_to_string(&path)
                .map_err(|e| TuneError(format!("cannot read {}: {e}", path.display())))?;
            let mut good_len = 0usize; // byte length of the intact prefix
            let mut bad: Option<String> = None;
            let mut total_lines = 0usize;
            let mut kept_lines = 0usize;
            for line in text.split_inclusive('\n') {
                let trimmed = line.trim_end_matches(['\n', '\r']);
                if trimmed.is_empty() {
                    if bad.is_none() && line.ends_with('\n') {
                        good_len += line.len();
                    }
                    continue;
                }
                total_lines += 1;
                if bad.is_some() {
                    continue; // count the dropped tail
                }
                // A final line without its newline is a torn append: the
                // record may be incomplete even if it happens to parse.
                let torn = !line.ends_with('\n');
                match TuneRecord::from_jsonl(trimmed) {
                    Ok(rec) if !torn => {
                        good_len += line.len();
                        kept_lines += 1;
                        absorb(&mut index, rec);
                    }
                    Ok(_) => bad = Some("torn record (no trailing newline)".into()),
                    Err(e) => bad = Some(e.0),
                }
            }
            report.records_kept += kept_lines;
            if let Some(err) = bad {
                report.lines_dropped += total_lines - kept_lines;
                let name = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .unwrap_or("shard")
                    .to_string();
                report.corrupt.push((name, err));
                // Truncate the shard to its intact prefix so future
                // appends extend a clean log.
                let keep = text.as_bytes()[..good_len].to_vec();
                atomic_write(&path, &keep)?;
            }
        }

        Ok((
            TuneDb {
                dir,
                shards,
                index: Mutex::new(index),
                hits: AtomicUsize::new(0),
                misses: AtomicUsize::new(0),
                warm_starts: AtomicUsize::new(0),
                puts: AtomicUsize::new(0),
                lines_dropped: report.lines_dropped,
            },
            report,
        ))
    }

    /// The database directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of keys in the index.
    pub fn len(&self) -> usize {
        self.index.lock().expect("tunedb index poisoned").len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time copy of the whole index. The session server
    /// classifies and warm-starts against a snapshot taken at
    /// construction, so concurrent puts during a run never change what
    /// any request sees — the precondition for bit-identical
    /// concurrent-vs-serial behavior.
    pub fn snapshot(&self) -> BTreeMap<TuneKey, TuneRecord> {
        self.index.lock().expect("tunedb index poisoned").clone()
    }

    /// Every key in the index, in sorted order.
    pub fn keys(&self) -> Vec<TuneKey> {
        self.index
            .lock()
            .expect("tunedb index poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// The best record for `key`, counting a hit or a miss in
    /// [`DbStats`]. Use [`TuneDb::peek`] for stat-free reads.
    pub fn get(&self, key: &TuneKey) -> Option<TuneRecord> {
        let r = self.peek(key);
        if r.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        r
    }

    /// The best record for `key`, without touching the hit/miss counters.
    pub fn peek(&self, key: &TuneKey) -> Option<TuneRecord> {
        self.index
            .lock()
            .expect("tunedb index poisoned")
            .get(key)
            .cloned()
    }

    /// The stored record nearest to `key` under the warm-start metric
    /// (same operator family and target, smallest log-space shape
    /// distance, ties by key order), excluding `key` itself. Counts a
    /// warm-start in [`DbStats`] when a neighbor exists.
    pub fn nearest_neighbor(&self, key: &TuneKey) -> Option<(TuneRecord, f64)> {
        let index = self.index.lock().expect("tunedb index poisoned");
        let found = nearest(key, index.keys()).map(|(k, d)| (index[k].clone(), d));
        drop(index);
        if found.is_some() {
            self.warm_starts.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Appends a record to its shard log and folds it into the index
    /// (kept only if no cheaper record exists for the key).
    ///
    /// # Errors
    ///
    /// Returns [`TuneError`] when the append cannot be written. The index
    /// is only updated after a successful write, so a failed put leaves
    /// no partial state.
    pub fn put(&self, record: TuneRecord) -> Result<(), TuneError> {
        let path = self.shard_path(self.shard_of(&record.key));
        let line = record.to_jsonl();
        // Hold the index lock across the append so concurrent puts to one
        // shard never interleave partial lines.
        let mut index = self.index.lock().expect("tunedb index poisoned");
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| TuneError(format!("cannot open {}: {e}", path.display())))?;
        writeln!(f, "{line}").map_err(|e| TuneError(format!("append failed: {e}")))?;
        f.flush()
            .map_err(|e| TuneError(format!("flush failed: {e}")))?;
        absorb(&mut index, record);
        drop(index);
        self.puts.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Rewrites every shard to exactly one (best) record per key, in key
    /// order, atomically per shard (tmp file + rename). Returns the
    /// number of log lines removed.
    ///
    /// # Errors
    ///
    /// Returns [`TuneError`] on I/O failures; a failed shard rewrite
    /// leaves its live file untouched.
    pub fn compact(&self) -> Result<usize, TuneError> {
        let index = self.index.lock().expect("tunedb index poisoned");
        let mut per_shard: Vec<String> = vec![String::new(); self.shards];
        for rec in index.values() {
            let s = self.shard_of(&rec.key);
            per_shard[s].push_str(&rec.to_jsonl());
            per_shard[s].push('\n');
        }
        let mut removed = 0usize;
        for (s, content) in per_shard.iter().enumerate() {
            let path = self.shard_path(s);
            let before = match fs::read_to_string(&path) {
                Ok(t) => t.lines().filter(|l| !l.trim().is_empty()).count(),
                Err(_) => 0,
            };
            let after = content.lines().count();
            if before == 0 && after == 0 {
                continue;
            }
            atomic_write(&path, content.as_bytes())?;
            removed += before.saturating_sub(after);
        }
        // Compaction rewrites with `self.shards`; drop any leftover
        // higher-numbered shard files from a previous layout whose
        // records are now re-homed.
        for extra in self.extra_shard_files()? {
            let before = fs::read_to_string(&extra)
                .map(|t| t.lines().filter(|l| !l.trim().is_empty()).count())
                .unwrap_or(0);
            fs::remove_file(&extra)
                .map_err(|e| TuneError(format!("cannot remove {}: {e}", extra.display())))?;
            removed += before;
        }
        Ok(removed)
    }

    /// Current counters.
    pub fn stats(&self) -> DbStats {
        DbStats {
            records: self.len(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            warm_starts: self.warm_starts.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            lines_dropped: self.lines_dropped,
        }
    }

    fn shard_of(&self, key: &TuneKey) -> usize {
        (fnv1a64(key.flat().as_bytes()) % self.shards as u64) as usize
    }

    fn shard_path(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("shard-{shard:02}.jsonl"))
    }

    fn extra_shard_files(&self) -> Result<Vec<PathBuf>, TuneError> {
        let mut extras = Vec::new();
        let entries = fs::read_dir(&self.dir)
            .map_err(|e| TuneError(format!("cannot read {}: {e}", self.dir.display())))?;
        for e in entries.filter_map(|e| e.ok()) {
            let p = e.path();
            let Some(name) = p.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some(num) = name
                .strip_prefix("shard-")
                .and_then(|r| r.strip_suffix(".jsonl"))
                .and_then(|n| n.parse::<usize>().ok())
            else {
                continue;
            };
            if num >= self.shards {
                extras.push(p);
            }
        }
        extras.sort();
        Ok(extras)
    }
}

/// Keeps the cheaper record per key (ties keep the incumbent, so replay
/// order never changes an established answer).
fn absorb(index: &mut BTreeMap<TuneKey, TuneRecord>, rec: TuneRecord) {
    match index.get(&rec.key) {
        Some(old) if old.seconds <= rec.seconds => {}
        _ => {
            index.insert(rec.key.clone(), rec);
        }
    }
}

/// Writes `bytes` to `path` atomically: write a sibling tmp file, flush,
/// then rename over the destination.
fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), TuneError> {
    let tmp = path.with_extension("jsonl.tmp");
    {
        let mut f = fs::File::create(&tmp)
            .map_err(|e| TuneError(format!("cannot create {}: {e}", tmp.display())))?;
        f.write_all(bytes)
            .map_err(|e| TuneError(format!("write failed: {e}")))?;
        f.flush()
            .map_err(|e| TuneError(format!("flush failed: {e}")))?;
    }
    fs::rename(&tmp, path)
        .map_err(|e| TuneError(format!("rename to {} failed: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::temp_dir;

    fn rec(op: &str, shape: Vec<i64>, seconds: f64) -> TuneRecord {
        TuneRecord {
            key: TuneKey::new(op, shape, "gpu"),
            config: vec![1, 2, 3],
            seconds,
            seed: 7,
            trials: 10,
            commit: "test".into(),
        }
    }

    #[test]
    fn put_get_persist_across_reopen() {
        let dir = temp_dir("put_get");
        {
            let (db, rep) = TuneDb::open(&dir).unwrap();
            assert_eq!(rep, RecoveryReport::default());
            db.put(rec("gemm", vec![64, 64], 2.0)).unwrap();
            db.put(rec("gemm", vec![64, 64], 1.0)).unwrap(); // better
            db.put(rec("gemm", vec![64, 64], 3.0)).unwrap(); // worse, ignored by index
            db.put(rec("c2d", vec![8, 8, 8], 5.0)).unwrap();
            assert_eq!(db.len(), 2);
            let got = db.get(&TuneKey::new("gemm", vec![64, 64], "gpu")).unwrap();
            assert_eq!(got.seconds, 1.0);
            assert_eq!(db.stats().hits, 1);
        }
        let (db, rep) = TuneDb::open(&dir).unwrap();
        assert_eq!(rep.records_kept, 4);
        assert_eq!(rep.lines_dropped, 0);
        assert_eq!(db.len(), 2);
        assert_eq!(
            db.peek(&TuneKey::new("gemm", vec![64, 64], "gpu"))
                .unwrap()
                .seconds,
            1.0
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn get_counts_misses_and_nearest_counts_warm_starts() {
        let dir = temp_dir("stats");
        let (db, _) = TuneDb::open(&dir).unwrap();
        db.put(rec("gemm", vec![32, 32], 1.0)).unwrap();
        assert!(db.get(&TuneKey::new("gemm", vec![99, 99], "gpu")).is_none());
        let (nb, d) = db
            .nearest_neighbor(&TuneKey::new("gemm", vec![64, 64], "gpu"))
            .unwrap();
        assert_eq!(nb.key.shape, vec![32, 32]);
        assert!(d > 0.0);
        // No cross-family warm start.
        assert!(db
            .nearest_neighbor(&TuneKey::new("c2d", vec![32, 32], "gpu"))
            .is_none());
        let s = db.stats();
        assert_eq!((s.misses, s.warm_starts, s.puts), (1, 1, 1));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_drops_superseded_lines_and_preserves_the_index() {
        let dir = temp_dir("compact");
        let (db, _) = TuneDb::open(&dir).unwrap();
        for i in 0..5 {
            db.put(rec("gemm", vec![64, 64], (10 - i) as f64)).unwrap();
        }
        db.put(rec("gemm", vec![128, 128], 4.0)).unwrap();
        let before = db.keys();
        let removed = db.compact().unwrap();
        assert_eq!(removed, 4); // five versions of one key -> one line
        let (db2, rep) = TuneDb::open(&dir).unwrap();
        assert_eq!(rep.records_kept, 2);
        assert_eq!(db2.keys(), before);
        assert_eq!(
            db2.peek(&TuneKey::new("gemm", vec![64, 64], "gpu"))
                .unwrap()
                .seconds,
            6.0
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn records_spread_across_shards() {
        let dir = temp_dir("shards");
        let (db, _) = TuneDb::open(&dir).unwrap();
        for i in 1..=32 {
            db.put(rec("gemm", vec![i, i], i as f64)).unwrap();
        }
        let files: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with("shard-"))
            .collect();
        assert!(files.len() > 1, "expected multiple shards, got {files:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_truncates_at_first_bad_record() {
        let dir = temp_dir("recover");
        let (db, _) = TuneDb::open_with_shards(&dir, 1).unwrap();
        for i in 1..=4 {
            db.put(rec("gemm", vec![i * 16, 64], i as f64)).unwrap();
        }
        drop(db);
        let shard = dir.join("shard-00.jsonl");
        let text = fs::read_to_string(&shard).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // Corrupt record 3 (flip a byte inside it); records 1-2 intact,
        // record 4 intact but after the corruption point.
        let mut doctored: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
        doctored[2] = doctored[2].replacen(':', ";", 1);
        fs::write(&shard, doctored.join("\n") + "\n").unwrap();

        let (db, rep) = TuneDb::open_with_shards(&dir, 1).unwrap();
        assert_eq!(rep.records_kept, 2);
        assert_eq!(rep.lines_dropped, 2);
        assert_eq!(rep.corrupt.len(), 1);
        assert_eq!(db.len(), 2);
        assert_eq!(db.stats().lines_dropped, 2);
        // The shard file itself was truncated to the intact prefix.
        let after = fs::read_to_string(&shard).unwrap();
        assert_eq!(after.lines().count(), 2);
        // A fresh reopen sees a clean log.
        let (_, rep2) = TuneDb::open_with_shards(&dir, 1).unwrap();
        assert_eq!(rep2.lines_dropped, 0);
        assert!(rep2.corrupt.is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_dropped() {
        let dir = temp_dir("torn");
        let (db, _) = TuneDb::open_with_shards(&dir, 1).unwrap();
        db.put(rec("gemm", vec![16, 16], 1.0)).unwrap();
        db.put(rec("gemm", vec![32, 32], 2.0)).unwrap();
        drop(db);
        let shard = dir.join("shard-00.jsonl");
        let mut text = fs::read_to_string(&shard).unwrap();
        // Simulate a crash mid-append: cut the last record in half.
        let cut = text.len() - 20;
        text.truncate(cut);
        fs::write(&shard, &text).unwrap();
        let (db, rep) = TuneDb::open_with_shards(&dir, 1).unwrap();
        assert_eq!(rep.records_kept, 1);
        assert_eq!(rep.lines_dropped, 1);
        assert_eq!(db.len(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_shards_is_an_error() {
        let dir = temp_dir("zero");
        assert!(TuneDb::open_with_shards(&dir, 0).is_err());
        fs::remove_dir_all(&dir).ok();
    }
}
