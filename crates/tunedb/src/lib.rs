//! # flextensor-tunedb
//!
//! A persistent, sharded schedule database for the FlexTensor
//! reproduction — the "tuning records" store that amortizes exploration
//! cost across runs (the MetaSchedule database idea applied to the
//! paper's SA + Q-learning explorer).
//!
//! * [`TuneKey`] — canonical problem identity: operator family, shape
//!   vector, device target;
//! * [`TuneRecord`] — a tuned config + cost + provenance (seed, trial
//!   budget, bench commit), serialized as one checksummed, versioned
//!   JSONL line (the `flextensor-telemetry` trace discipline);
//! * [`TuneDb`] — the store: append-only per-shard logs, an in-memory
//!   best-per-key index, atomic compaction, and corruption-tolerant
//!   recovery that keeps every intact record before the first bad line
//!   of a shard (see [`RecoveryReport`]);
//! * [`neighbor`] — the deterministic warm-start metric: log-space L1
//!   distance over shape vectors, infinite across operator families or
//!   targets, ties broken by key order.
//!
//! See `docs/TUNEDB.md` for the on-disk format and recovery semantics.
//!
//! ```
//! use flextensor_tunedb::{testutil, TuneDb, TuneKey, TuneRecord};
//!
//! let dir = testutil::temp_dir("doc");
//! let (db, report) = TuneDb::open(&dir)?;
//! assert_eq!(report.records_kept, 0);
//! db.put(TuneRecord {
//!     key: TuneKey::new("gemm", vec![256, 256, 256], "tesla-v100"),
//!     config: vec![4, 4, 16, 1],
//!     seconds: 1.5e-4,
//!     seed: 2020,
//!     trials: 100,
//!     commit: "bench".into(),
//! })?;
//! assert!(db.get(&TuneKey::new("gemm", vec![256, 256, 256], "tesla-v100")).is_some());
//! // A different shape misses, but warm-starts from the nearest one.
//! let near = db.nearest_neighbor(&TuneKey::new("gemm", vec![512, 256, 256], "tesla-v100"));
//! assert!(near.is_some());
//! std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), flextensor_tunedb::TuneError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod neighbor;
pub mod record;
pub mod store;
pub mod testutil;

pub use neighbor::{key_distance, nearest, shape_distance};
pub use record::{fnv1a64, TuneKey, TuneRecord, TUNEDB_VERSION};
pub use store::{DbStats, RecoveryReport, TuneDb, DEFAULT_SHARDS};

/// Errors from the record layer or the store (I/O, malformed records,
/// checksum mismatches).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuneError(pub String);

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tunedb error: {}", self.0)
    }
}

impl std::error::Error for TuneError {}
