//! The warm-start neighbor metric: a deterministic distance over shape
//! vectors, used to pick which stored record seeds a cold search.
//!
//! The metric compares shapes in log space — tiling structure transfers
//! between shapes that differ by a *ratio*, not an absolute offset, so a
//! 256→512 GEMM is "closer" to 256 than 256→33 is. Missing dimensions
//! (shape vectors of unequal length) are treated as extent 1, which
//! penalizes rank mismatches by the full log magnitude of the unmatched
//! extents.
//!
//! Guarantees (property-tested in `tests/property_based.rs`):
//!
//! * **deterministic** — a pure function of the two shape vectors;
//! * **symmetric** — `d(a, b) == d(b, a)` bit-for-bit;
//! * **identity** — `d(a, a) == 0` exactly;
//! * **tie-stable** — candidates at equal distance resolve by key order
//!   ([`TuneKey`] is `Ord`), so a nearest-neighbor scan over a sorted
//!   index always returns the same record.

use crate::record::TuneKey;

/// Log-space L1 distance between two shape vectors. Shorter vectors are
/// padded with 1s; non-positive extents (which no valid shape contains)
/// are clamped to 1 so the metric stays finite and symmetric on
/// arbitrary input.
pub fn shape_distance(a: &[i64], b: &[i64]) -> f64 {
    let n = a.len().max(b.len());
    let mut d = 0.0;
    for i in 0..n {
        let x = a.get(i).copied().unwrap_or(1).max(1) as f64;
        let y = b.get(i).copied().unwrap_or(1).max(1) as f64;
        d += (x.ln() - y.ln()).abs();
    }
    d
}

/// Distance between two keys: infinite across operator families or
/// targets (a GEMM schedule says nothing about a conv, and a CPU tiling
/// nothing about a GPU one), [`shape_distance`] within one.
pub fn key_distance(a: &TuneKey, b: &TuneKey) -> f64 {
    if a.op != b.op || a.target != b.target {
        f64::INFINITY
    } else {
        shape_distance(&a.shape, &b.shape)
    }
}

/// Scans `candidates` (which must be sorted by key — a `BTreeMap` key
/// iterator qualifies) for the finite-distance key nearest to `query`,
/// excluding `query` itself. Ties keep the first (lowest-ordered) key,
/// so the result is independent of how the candidate set was built.
pub fn nearest<'a, I>(query: &TuneKey, candidates: I) -> Option<(&'a TuneKey, f64)>
where
    I: IntoIterator<Item = &'a TuneKey>,
{
    let mut best: Option<(&TuneKey, f64)> = None;
    for k in candidates {
        if k == query {
            continue;
        }
        let d = key_distance(query, k);
        if !d.is_finite() {
            continue;
        }
        match best {
            Some((_, bd)) if bd <= d => {}
            _ => best = Some((k, d)),
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_zero_and_symmetric() {
        let a = vec![256, 256, 256];
        let b = vec![512, 128, 256];
        assert_eq!(shape_distance(&a, &a), 0.0);
        assert_eq!(
            shape_distance(&a, &b).to_bits(),
            shape_distance(&b, &a).to_bits()
        );
    }

    #[test]
    fn ratios_beat_offsets() {
        // 256 -> 512 (ratio 2) is closer than 256 -> 33 (ratio ~7.8).
        let base = vec![256];
        assert!(shape_distance(&base, &[512]) < shape_distance(&base, &[33]));
    }

    #[test]
    fn length_mismatch_is_penalized() {
        assert!(shape_distance(&[8, 8], &[8, 8, 8]) > 0.0);
        assert_eq!(shape_distance(&[8, 8], &[8, 8, 1]), 0.0);
    }

    #[test]
    fn cross_family_and_cross_target_are_infinite() {
        let g = TuneKey::new("gemm", vec![8], "gpu");
        let c = TuneKey::new("c2d", vec![8], "gpu");
        let g_cpu = TuneKey::new("gemm", vec![8], "cpu");
        assert!(key_distance(&g, &c).is_infinite());
        assert!(key_distance(&g, &g_cpu).is_infinite());
        assert_eq!(key_distance(&g, &g), 0.0);
    }

    #[test]
    fn nearest_excludes_self_and_breaks_ties_by_order() {
        let q = TuneKey::new("gemm", vec![64, 64], "gpu");
        let lo = TuneKey::new("gemm", vec![32, 64], "gpu");
        let hi = TuneKey::new("gemm", vec![128, 64], "gpu");
        let other = TuneKey::new("c2d", vec![64, 64], "gpu");
        // 32 and 128 are equidistant in log space; sorted order puts
        // [32,64] before [128,64] (numeric), but Vec<i64> Ord is
        // elementwise: 32 < 128, so `lo` wins the tie.
        let mut keys = [q.clone(), lo.clone(), hi.clone(), other];
        keys.sort();
        let (k, d) = nearest(&q, keys.iter()).unwrap();
        assert_eq!(k, &lo);
        assert!(d > 0.0 && d.is_finite());
        // Only the query itself in the pool: no neighbor.
        assert!(nearest(&q, [q.clone()].iter()).is_none());
    }
}
