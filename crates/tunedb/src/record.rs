//! The on-disk record vocabulary: [`TuneKey`], [`TuneRecord`], and their
//! checksummed, versioned JSONL serialization.
//!
//! Records follow the same discipline as `flextensor-telemetry` traces:
//! one JSON object per line, a fixed field order (so serialization is
//! byte-deterministic), a schema version (`"v"`) on every record, and
//! floats printed in shortest round-trip form. On top of that every
//! record carries a `crc` field — an FNV-1a 64 digest of the record's
//! canonical serialization — so recovery can detect torn or bit-flipped
//! records without trusting the JSON layer alone.

use std::fmt::Write as _;

use flextensor_telemetry::json::{parse, write_f64, write_str, Json};

use crate::TuneError;

/// Version of the record schema this crate writes (the `"v"` field of
/// every record). Readers accept records up to and including this
/// version; see `docs/TUNEDB.md` for the compatibility rules.
pub const TUNEDB_VERSION: u64 = 1;

/// The canonical identity of a tuning problem: which operator, at which
/// shape, on which device.
///
/// * `op` — the operator family (the shape-independent prefix of the
///   graph name, e.g. `"gemm"`, `"c2d"`);
/// * `shape` — the canonical shape vector: the anchor op's spatial and
///   reduce extents, the graph attributes (stride, padding, …), and the
///   compute-node count (so fused and unfused variants never collide);
/// * `target` — the device model name (e.g. `"tesla-v100"`).
///
/// Keys order lexicographically (`Ord`), which fixes the iteration order
/// of every index scan — nearest-neighbor ties always resolve the same
/// way.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TuneKey {
    /// Operator family.
    pub op: String,
    /// Canonical shape vector.
    pub shape: Vec<i64>,
    /// Device model name.
    pub target: String,
}

impl TuneKey {
    /// Creates a key from its parts.
    pub fn new(op: impl Into<String>, shape: Vec<i64>, target: impl Into<String>) -> TuneKey {
        TuneKey {
            op: op.into(),
            shape,
            target: target.into(),
        }
    }

    /// A flat text form (`op|s0,s1,…|target`) used for shard selection
    /// and diagnostics.
    pub fn flat(&self) -> String {
        let mut s = String::with_capacity(self.op.len() + self.target.len() + self.shape.len() * 4);
        s.push_str(&self.op);
        s.push('|');
        for (i, d) in self.shape.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{d}");
        }
        s.push('|');
        s.push_str(&self.target);
        s
    }
}

impl std::fmt::Display for TuneKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.flat())
    }
}

/// One tuned schedule: the best configuration found for a [`TuneKey`],
/// its modeled cost, and the provenance of the tuning run that produced
/// it.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneRecord {
    /// The tuning problem this record answers.
    pub key: TuneKey,
    /// The chosen configuration, as its canonical integer encoding.
    pub config: Vec<i64>,
    /// Modeled kernel time of the configuration, seconds.
    pub seconds: f64,
    /// RNG seed of the tuning run.
    pub seed: u64,
    /// Trial budget of the tuning run.
    pub trials: usize,
    /// Identifier of the code that produced the record (bench commit).
    pub commit: String,
}

impl TuneRecord {
    /// The record's canonical field body — everything between `{` and the
    /// trailing `,"crc":…}` — in fixed field order. The checksum is
    /// computed over exactly these bytes.
    fn body(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(s, "\"v\":{TUNEDB_VERSION},\"op\":");
        write_str(&mut s, &self.key.op);
        s.push_str(",\"shape\":");
        write_i64_array(&mut s, &self.key.shape);
        s.push_str(",\"target\":");
        write_str(&mut s, &self.key.target);
        s.push_str(",\"config\":");
        write_i64_array(&mut s, &self.config);
        s.push_str(",\"seconds\":");
        write_f64(&mut s, self.seconds);
        let _ = write!(
            s,
            ",\"seed\":{},\"trials\":{},\"commit\":",
            self.seed, self.trials
        );
        write_str(&mut s, &self.commit);
        s
    }

    /// Serializes the record as one checksummed JSONL line (no trailing
    /// newline). Field order is fixed, so serialization is deterministic:
    /// the same record always produces the same bytes.
    pub fn to_jsonl(&self) -> String {
        let body = self.body();
        let mut s = String::with_capacity(body.len() + 32);
        s.push('{');
        s.push_str(&body);
        let _ = write!(s, ",\"crc\":{}", fnv1a64(body.as_bytes()));
        s.push('}');
        s
    }

    /// Parses one JSONL line back into a record, verifying the version
    /// and the checksum.
    ///
    /// # Errors
    ///
    /// Returns [`TuneError`] on malformed JSON, a missing field, a schema
    /// version newer than [`TUNEDB_VERSION`], or a checksum mismatch
    /// (the stored `crc` must equal the digest of the record's canonical
    /// re-serialization — any corruption that changes a field value is
    /// caught here).
    pub fn from_jsonl(line: &str) -> Result<TuneRecord, TuneError> {
        let v = parse(line).map_err(TuneError)?;
        let version = v.get_u64("v").map_err(TuneError)?;
        if version > TUNEDB_VERSION {
            return Err(TuneError(format!(
                "record version {version} is newer than supported {TUNEDB_VERSION}"
            )));
        }
        fn field<T>(r: Result<T, String>) -> Result<T, TuneError> {
            r.map_err(TuneError)
        }
        let rec = TuneRecord {
            key: TuneKey {
                op: field(v.get_str("op"))?.to_string(),
                shape: i64_array(&v, "shape")?,
                target: field(v.get_str("target"))?.to_string(),
            },
            config: i64_array(&v, "config")?,
            seconds: field(v.get_f64("seconds"))?,
            seed: field(v.get_u64("seed"))?,
            trials: field(v.get_usize("trials"))?,
            commit: field(v.get_str("commit"))?.to_string(),
        };
        let stored = field(v.get_u64("crc"))?;
        let expect = fnv1a64(rec.body().as_bytes());
        if stored != expect {
            return Err(TuneError(format!(
                "checksum mismatch: stored {stored}, computed {expect}"
            )));
        }
        Ok(rec)
    }
}

fn write_i64_array(out: &mut String, xs: &[i64]) {
    out.push('[');
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{x}");
    }
    out.push(']');
}

fn i64_array(v: &Json, key: &str) -> Result<Vec<i64>, TuneError> {
    match v.get(key).map_err(TuneError)? {
        Json::Array(items) => items
            .iter()
            .map(|it| match it {
                Json::Number(n) => n
                    .parse::<i64>()
                    .map_err(|e| TuneError(format!("field `{key}`: bad integer `{n}`: {e}"))),
                other => Err(TuneError(format!(
                    "field `{key}`: expected integer, got {other:?}"
                ))),
            })
            .collect(),
        other => Err(TuneError(format!(
            "field `{key}`: expected array, got {other:?}"
        ))),
    }
}

/// FNV-1a 64-bit digest — the workspace's standard cheap hash (also used
/// for memo-cache sharding). Used here both as the record checksum and
/// for shard selection.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TuneRecord {
        TuneRecord {
            key: TuneKey::new("gemm", vec![256, 256, 256, 3], "tesla-v100"),
            config: vec![4, 4, 2, -1, 1, 0],
            seconds: 1.5e-4,
            seed: 0xF1E2_7E50,
            trials: 100,
            commit: "abc123".into(),
        }
    }

    #[test]
    fn records_round_trip_through_jsonl() {
        let r = sample();
        let line = r.to_jsonl();
        assert!(
            line.starts_with(&format!("{{\"v\":{TUNEDB_VERSION},")),
            "{line}"
        );
        assert!(line.contains(",\"crc\":"), "{line}");
        assert_eq!(TuneRecord::from_jsonl(&line).unwrap(), r);
    }

    #[test]
    fn serialization_is_deterministic() {
        let r = sample();
        assert_eq!(r.to_jsonl(), r.to_jsonl());
    }

    #[test]
    fn value_corruption_fails_the_checksum() {
        let line = sample().to_jsonl();
        // Flip one digit of the seconds field (1.5e-4 prints as 0.00015).
        let bad = line.replacen("0.00015", "0.00016", 1);
        assert_ne!(bad, line);
        let err = TuneRecord::from_jsonl(&bad).unwrap_err();
        assert!(err.0.contains("checksum"), "{err}");
    }

    #[test]
    fn stored_crc_corruption_is_detected() {
        let line = sample().to_jsonl();
        let idx = line.rfind("\"crc\":").unwrap() + "\"crc\":".len();
        let mut bad = line.clone();
        let digit = bad.as_bytes()[idx];
        let flipped = if digit == b'9' { '1' } else { '9' };
        bad.replace_range(idx..idx + 1, &flipped.to_string());
        assert!(TuneRecord::from_jsonl(&bad).is_err());
    }

    #[test]
    fn truncated_lines_are_rejected() {
        let line = sample().to_jsonl();
        for cut in [1, line.len() / 2, line.len() - 1] {
            assert!(TuneRecord::from_jsonl(&line[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn newer_versions_are_rejected() {
        let line = sample().to_jsonl().replace("{\"v\":1,", "{\"v\":999,");
        let err = TuneRecord::from_jsonl(&line).unwrap_err();
        assert!(err.0.contains("version 999"), "{err}");
    }

    #[test]
    fn key_flat_form_and_ordering() {
        let a = TuneKey::new("gemm", vec![64, 64], "cpu");
        let b = TuneKey::new("gemm", vec![64, 128], "cpu");
        assert_eq!(a.flat(), "gemm|64,64|cpu");
        assert!(a < b);
        assert_eq!(a.to_string(), a.flat());
    }
}
