//! Small helpers for tests that need throwaway database directories.
//!
//! Kept in the library (not `#[cfg(test)]`) because the workspace's
//! integration tests, the conformance store oracle, and the bench probes
//! all need fresh scratch directories with the same collision-free
//! naming.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static COUNTER: AtomicUsize = AtomicUsize::new(0);

/// A fresh, unique scratch directory path under the system temp dir
/// (`flextensor-tunedb-<pid>-<tag>-<n>`). The directory is *not*
/// created; [`crate::TuneDb::open`] does that. Callers should remove it
/// when done.
pub fn temp_dir(tag: &str) -> PathBuf {
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "flextensor-tunedb-{}-{tag}-{n}",
        std::process::id()
    ))
}
