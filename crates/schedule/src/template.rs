//! Split-phase lowering: the config-independent half of
//! [`crate::lower::lower`], computed once per (graph, target) and reused
//! across every candidate.
//!
//! Full lowering does two kinds of work per schedule point:
//!
//! 1. **Config-independent**: inlining data-movement producers into the
//!    root body (a fixpoint of expression cloning and substitution),
//!    collecting the body's load sites, and deriving graph constants
//!    (FLOPs, input bytes, producer sizes). None of this depends on the
//!    candidate being evaluated — only on the graph and, binarily, on the
//!    `inline_data` flag.
//! 2. **Config-dependent**: split-factor products, interval footprints of
//!    the cached load sites, and — only when the loop nest itself is
//!    needed — the statement tree with all its substitutions.
//!
//! Exploration evaluates thousands of candidates per trial and only ever
//! consumes [`KernelFeatures`] (the cost models never look at the nest).
//! [`LoweredTemplate`] therefore precomputes phase 1 for *both*
//! `inline_data` variants and exposes [`LoweredTemplate::features`], a
//! cheap apply step that never clones or re-walks the expression tree.
//! [`crate::lower::lower`] is built on the same `compute_features` helper,
//! so the two paths agree bit-for-bit by construction (see
//! `tests/fastpath.rs` for the differential check).

use flextensor_ir::expr::{BinOp, Expr};
use flextensor_ir::graph::{ComputeOp, Graph};

use crate::config::{NodeConfig, TargetKind};
use crate::features::{FpgaFeatures, KernelFeatures};
use crate::interval::{Interval, IntervalEnv};
use crate::lower::LowerError;

/// Returns the data-movement producer chain of the root op: compute nodes
/// with no reduce axes whose outputs the root (transitively) reads.
pub(crate) fn data_producers<'g>(graph: &'g Graph, root: &ComputeOp) -> Vec<&'g ComputeOp> {
    let mut out: Vec<&ComputeOp> = Vec::new();
    let mut frontier = root.input_tensors();
    while let Some(t) = frontier.pop() {
        if let Some(p) = graph
            .compute_ops()
            .find(|c| c.output == t && c.reduce.is_empty() && c.name != root.name)
        {
            if !out.iter().any(|o| o.name == p.name) {
                out.push(p);
                frontier.extend(p.input_tensors());
            }
        }
    }
    // Topological order (producers of producers first).
    out.reverse();
    out
}

/// Substitutes loads of producer tensors with the producer's body, with the
/// producer's spatial variables replaced by the load's index expressions.
/// Applied to fixpoint so chains (dilate → pad → conv) inline fully.
pub(crate) fn inline_producers(graph: &Graph, root: &ComputeOp, body: &Expr) -> Expr {
    fn rewrite(graph: &Graph, root_name: &str, e: &Expr) -> (Expr, bool) {
        match e {
            Expr::Load { tensor, indices } => {
                // First rewrite inside the indices themselves.
                let mut changed = false;
                let new_indices: Vec<Expr> = indices
                    .iter()
                    .map(|ix| {
                        let (r, c) = rewrite(graph, root_name, ix);
                        changed |= c;
                        r
                    })
                    .collect();
                if let Some(p) = graph
                    .compute_ops()
                    .find(|c| &c.output == tensor && c.reduce.is_empty() && c.name != root_name)
                {
                    // Rename producer vars to fresh temporaries, then
                    // substitute the temporaries with the index expressions
                    // (avoids capture when index exprs mention names that
                    // collide with producer axis names).
                    let mut b = p.body.clone();
                    let temps: Vec<String> = (0..p.spatial.len())
                        .map(|i| format!("__inl_{}_{i}", p.name))
                        .collect();
                    for (axis, tmp) in p.spatial.iter().zip(&temps) {
                        b = b.substitute(&axis.name, &Expr::Var(tmp.clone()));
                    }
                    for (tmp, ix) in temps.iter().zip(&new_indices) {
                        b = b.substitute(tmp, ix);
                    }
                    (b, true)
                } else {
                    (
                        Expr::Load {
                            tensor: tensor.clone(),
                            indices: new_indices,
                        },
                        changed,
                    )
                }
            }
            Expr::Bin(op, a, bx) => {
                let (ra, ca) = rewrite(graph, root_name, a);
                let (rb, cb) = rewrite(graph, root_name, bx);
                (Expr::Bin(*op, Box::new(ra), Box::new(rb)), ca || cb)
            }
            Expr::Select(c, a, bx) => {
                let (ra, ca) = rewrite(graph, root_name, a);
                let (rb, cb) = rewrite(graph, root_name, bx);
                // Conditions only contain index arithmetic; no loads there.
                (
                    Expr::Select(c.clone(), Box::new(ra), Box::new(rb)),
                    ca || cb,
                )
            }
            _ => (e.clone(), false),
        }
    }
    let mut cur = body.clone();
    for _ in 0..8 {
        let (next, changed) = rewrite(graph, &root.name, &cur);
        cur = next;
        if !changed {
            break;
        }
    }
    cur
}

/// All load sites of one tensor in the (possibly inlined) root body,
/// together with the tensor's whole-graph byte size when declared.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct LoadGroup {
    /// Tensor name.
    pub tensor: String,
    /// Index expressions of every load site of this tensor.
    pub sites: Vec<Vec<Expr>>,
    /// Total bytes of the declared tensor (`None` when the graph has no
    /// declaration, e.g. a fully inlined intermediate).
    pub total_bytes: Option<i64>,
}

/// Collects the distinct loads of a body together with their index
/// expressions, keyed by tensor name in first-occurrence order, and
/// resolves each tensor's declared byte size from the graph.
pub(crate) fn load_groups(graph: &Graph, body: &Expr) -> Vec<LoadGroup> {
    let mut groups: Vec<(String, Vec<Vec<Expr>>)> = Vec::new();
    fn walk(e: &Expr, groups: &mut Vec<(String, Vec<Vec<Expr>>)>) {
        match e {
            Expr::Load { tensor, indices } => {
                for ix in indices {
                    walk(ix, groups);
                }
                match groups.iter_mut().find(|(t, _)| t == tensor) {
                    Some((_, v)) => v.push(indices.clone()),
                    None => groups.push((tensor.clone(), vec![indices.clone()])),
                }
            }
            Expr::Bin(_, a, b) => {
                walk(a, groups);
                walk(b, groups);
            }
            Expr::Select(_, a, b) => {
                walk(a, groups);
                walk(b, groups);
            }
            _ => {}
        }
    }
    walk(body, &mut groups);
    groups
        .into_iter()
        .map(|(tensor, sites)| {
            let total_bytes = graph.tensor(&tensor).map(|t| t.bytes());
            LoadGroup {
                tensor,
                sites,
                total_bytes,
            }
        })
        .collect()
}

/// Interval environment covering the variation of each original axis over
/// the given spatial levels and reduce levels. E.g. for spatial levels
/// {1,2,3} the axis `i` varies over `[0, f1*f2*f3 - 1]` (a per-block tile).
pub(crate) fn tile_env(
    root: &ComputeOp,
    cfg: &NodeConfig,
    spatial_levels: &[usize],
    reduce_levels: &[usize],
) -> IntervalEnv {
    let mut env = IntervalEnv::new();
    for (i, a) in root.spatial.iter().enumerate() {
        let tile: i64 = spatial_levels
            .iter()
            .map(|&l| cfg.spatial_splits[i][l])
            .product();
        env.insert(a.name.clone(), Interval::new(0, tile - 1));
    }
    for (i, a) in root.reduce.iter().enumerate() {
        let tile: i64 = reduce_levels
            .iter()
            .map(|&l| cfg.reduce_splits[i][l])
            .product();
        env.insert(a.name.clone(), Interval::new(0, tile - 1));
    }
    env
}

/// An index expression compiled against a root op's axes: every variable
/// is resolved at template-build time to a dense *slot* — spatial axis `i`
/// occupies slot `i`, reduce axis `j` occupies slot `ns + j` — so the hot
/// feature kernels evaluate intervals against a flat `&[Interval]` instead
/// of hashing axis-name `String`s through an [`IntervalEnv`] for every
/// environment variant of every candidate.
///
/// Compilation mirrors [`crate::interval::eval_interval`]'s leaf handling
/// exactly: [`tile_env`] always binds precisely the root's spatial and
/// reduce axes, so any other variable (and any load-as-index) is the fixed
/// point 0, and float constants truncate the same way. [`eval_slot`]
/// mirrors its arithmetic arm for arm, so slot evaluation is a pure
/// renaming of the `String`-keyed path — bit-identical by construction.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum SlotExpr {
    /// A constant index: `IConst`, truncated `FConst`, a variable outside
    /// the root's axes, or a load used as an index (origin convention).
    Const(i64),
    /// The tile interval of one root axis (spatial `i` → `i`, reduce `j`
    /// → `spatial_len + j`).
    Slot(usize),
    /// Binary index arithmetic, evaluated with interval semantics.
    Bin(BinOp, Box<SlotExpr>, Box<SlotExpr>),
    /// A `Select`'s interval is the hull of its arms (the condition never
    /// contributes), so only the arms survive compilation.
    Hull(Box<SlotExpr>, Box<SlotExpr>),
}

/// Compiles one index expression to slot form against `root`'s axes.
pub(crate) fn compile_slot_expr(e: &Expr, root: &ComputeOp) -> SlotExpr {
    match e {
        Expr::IConst(v) => SlotExpr::Const(*v),
        Expr::FConst(v) => SlotExpr::Const(*v as i64),
        Expr::Var(name) => {
            if let Some(i) = root.spatial.iter().position(|a| &a.name == name) {
                SlotExpr::Slot(i)
            } else if let Some(j) = root.reduce.iter().position(|a| &a.name == name) {
                SlotExpr::Slot(root.spatial.len() + j)
            } else {
                SlotExpr::Const(0)
            }
        }
        Expr::Bin(op, a, b) => SlotExpr::Bin(
            *op,
            Box::new(compile_slot_expr(a, root)),
            Box::new(compile_slot_expr(b, root)),
        ),
        Expr::Select(_, a, b) => SlotExpr::Hull(
            Box::new(compile_slot_expr(a, root)),
            Box::new(compile_slot_expr(b, root)),
        ),
        Expr::Load { .. } => SlotExpr::Const(0),
    }
}

/// Evaluates a compiled index expression over the slot intervals. The
/// arithmetic is copied arm for arm from
/// [`crate::interval::eval_interval`]; any change must be made in both.
pub(crate) fn eval_slot(e: &SlotExpr, slots: &[Interval]) -> Interval {
    match e {
        SlotExpr::Const(v) => Interval::point(*v),
        SlotExpr::Slot(i) => slots[*i],
        SlotExpr::Bin(op, a, b) => {
            let x = eval_slot(a, slots);
            let y = eval_slot(b, slots);
            match op {
                BinOp::Add => Interval::new(x.lo + y.lo, x.hi + y.hi),
                BinOp::Sub => Interval::new(x.lo - y.hi, x.hi - y.lo),
                BinOp::Mul => {
                    let c = [x.lo * y.lo, x.lo * y.hi, x.hi * y.lo, x.hi * y.hi];
                    Interval::new(
                        *c.iter().min().expect("non-empty"),
                        *c.iter().max().expect("non-empty"),
                    )
                }
                BinOp::Div => {
                    if y.lo == y.hi && y.lo != 0 {
                        let d = y.lo;
                        let c = [x.lo / d, x.hi / d];
                        Interval::new(*c.iter().min().unwrap(), *c.iter().max().unwrap())
                    } else {
                        Interval::new(-x.lo.abs().max(x.hi.abs()), x.lo.abs().max(x.hi.abs()))
                    }
                }
                BinOp::Mod => {
                    if y.lo == y.hi && y.lo > 0 {
                        let m = y.lo;
                        if x.lo >= 0 && x.hi < m {
                            x
                        } else {
                            Interval::new(0, (m - 1).min(x.len() - 1))
                        }
                    } else {
                        Interval::new(x.lo.min(0), x.hi.max(0))
                    }
                }
                BinOp::Min => Interval::new(x.lo.min(y.lo), x.hi.min(y.hi)),
                BinOp::Max => Interval::new(x.lo.max(y.lo), x.hi.max(y.hi)),
            }
        }
        SlotExpr::Hull(a, b) => eval_slot(a, slots).hull(eval_slot(b, slots)),
    }
}

/// A [`LoadGroup`] with its index expressions compiled to slot form —
/// the representation the per-candidate feature kernels consume.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CompiledGroup {
    /// Compiled index expressions of every load site of this tensor.
    pub sites: Vec<Vec<SlotExpr>>,
    /// Total bytes of the declared tensor (see [`LoadGroup::total_bytes`]).
    pub total_bytes: Option<i64>,
}

/// Compiles every group's load sites against `root`'s axis slots.
pub(crate) fn compile_groups(root: &ComputeOp, groups: &[LoadGroup]) -> Vec<CompiledGroup> {
    groups
        .iter()
        .map(|g| CompiledGroup {
            sites: g
                .sites
                .iter()
                .map(|ix| ix.iter().map(|e| compile_slot_expr(e, root)).collect())
                .collect(),
            total_bytes: g.total_bytes,
        })
        .collect()
}

/// Arena-style scratch for tile-interval environments in slot form: one
/// flat `Vec<Interval>` (spatial axes first, then reduce axes) overwritten
/// in place for each environment variant, instead of a fresh map
/// allocation for every one of the four-plus environments a candidate
/// needs. [`compute_features`] reuses a single scratch across its
/// environments, and the delta evaluator (`crate::delta`) carries one
/// across candidates.
#[derive(Debug, Default)]
pub(crate) struct SlotScratch {
    slots: Vec<Interval>,
}

impl SlotScratch {
    /// An empty scratch; the slot vector is sized on first use.
    pub(crate) fn new() -> SlotScratch {
        SlotScratch::default()
    }

    /// Overwrites the scratch with the tile intervals of `cfg` at the
    /// given levels — the slot-form twin of [`tile_env`] — and returns
    /// the slot slice.
    pub(crate) fn set_tile(
        &mut self,
        root: &ComputeOp,
        cfg: &NodeConfig,
        spatial_levels: &[usize],
        reduce_levels: &[usize],
    ) -> &[Interval] {
        self.slots.clear();
        for i in 0..root.spatial.len() {
            let tile: i64 = spatial_levels
                .iter()
                .map(|&l| cfg.spatial_splits[i][l])
                .product();
            self.slots.push(Interval::new(0, tile - 1));
        }
        for i in 0..root.reduce.len() {
            let tile: i64 = reduce_levels
                .iter()
                .map(|&l| cfg.reduce_splits[i][l])
                .product();
            self.slots.push(Interval::new(0, tile - 1));
        }
        &self.slots
    }
}

/// Sum over tensors of the footprint (bytes) of all loads of that tensor
/// under the slot intervals (taking the hull across load sites of the
/// same tensor).
pub(crate) fn loads_footprint_bytes(groups: &[CompiledGroup], slots: &[Interval]) -> i64 {
    let mut total = 0i64;
    for g in groups {
        let fp = g
            .sites
            .iter()
            .map(|ix| {
                ix.iter()
                    .map(|e| eval_slot(e, slots).len())
                    .product::<i64>()
            })
            .max()
            .unwrap_or(0);
        total += fp * 4;
    }
    total
}

/// Config-independent graph constants shared by every candidate.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FeatureConsts {
    /// FLOPs of the root (anchor) compute node.
    pub root_flops: u64,
    /// Summed FLOPs of the fused epilogue chain.
    pub epilogue_flops: u64,
    /// Output elements of the root node.
    pub output_elements: i64,
    /// Reduce-domain iterations per output element.
    pub reduce_size: i64,
    /// Total bytes of all graph input tensors.
    pub input_bytes_total: i64,
    /// Extra DRAM bytes when data-movement producers are materialized
    /// (write + read back of every intermediate).
    pub materialized_data_bytes: i64,
}

// Per-feature kernels. Each computes exactly one config-dependent feature
// (or one tightly coupled group) from the candidate config and the cached
// load groups. `compute_features` composes all of them; the delta
// evaluator (`crate::delta`) calls only the ones whose inputs changed.
// Because both paths run the *same* helper for a given feature, delta
// results are bit-identical to a full recompute by construction.

/// Shared-memory bytes staged per block: footprint over spatial levels
/// {1,2,3} and reduce levels {1,2}.
pub(crate) fn feat_shared_bytes_per_block(
    root: &ComputeOp,
    cfg: &NodeConfig,
    groups: &[CompiledGroup],
    scratch: &mut SlotScratch,
) -> i64 {
    loads_footprint_bytes(groups, scratch.set_tile(root, cfg, &[1, 2, 3], &[1, 2]))
}

/// Register bytes per thread: accumulators plus the operands of one reduce
/// iteration (two when unrolling interleaves iterations) — not the whole
/// staged tile, which lives in shared memory / cache.
pub(crate) fn feat_thread_reg_bytes(
    root: &ComputeOp,
    cfg: &NodeConfig,
    groups: &[CompiledGroup],
    scratch: &mut SlotScratch,
) -> i64 {
    let thread_input_bytes = loads_footprint_bytes(groups, scratch.set_tile(root, cfg, &[3], &[]));
    cfg.spatial_level_product(3) * cfg.spatial_level_product(1) * 4
        + thread_input_bytes * if cfg.unroll { 2 } else { 1 }
}

/// L1-resident tile bytes: footprint over spatial level 3 / reduce level 2
/// plus the per-thread output tile.
pub(crate) fn feat_l1_tile_bytes(
    root: &ComputeOp,
    cfg: &NodeConfig,
    groups: &[CompiledGroup],
    scratch: &mut SlotScratch,
) -> i64 {
    loads_footprint_bytes(groups, scratch.set_tile(root, cfg, &[3], &[2]))
        + cfg.spatial_level_product(3) * 4
}

/// L2-resident tile bytes: footprint over spatial levels {2,3} / reduce
/// levels {1,2} plus the per-core output tile.
pub(crate) fn feat_l2_tile_bytes(
    root: &ComputeOp,
    cfg: &NodeConfig,
    groups: &[CompiledGroup],
    scratch: &mut SlotScratch,
) -> i64 {
    loads_footprint_bytes(groups, scratch.set_tile(root, cfg, &[2, 3], &[1, 2]))
        + cfg.spatial_level_product(2) * cfg.spatial_level_product(3) * 4
}

/// Iterations of the fused parallel loop: level-0 factors of the first
/// `fuse_outer` axes in reorder order.
pub(crate) fn feat_parallel_chunks(cfg: &NodeConfig) -> i64 {
    cfg.reorder
        .iter()
        .take(cfg.fuse_outer)
        .map(|&ax| cfg.spatial_splits[ax][0])
        .product()
}

/// Innermost-contiguity: the fastest-varying spatial sub-loop belongs to
/// the reorder-last axis; it is contiguous iff that axis is the last
/// output dimension.
pub(crate) fn feat_contiguous_inner(root: &ComputeOp, cfg: &NodeConfig) -> bool {
    cfg.reorder
        .last()
        .is_some_and(|&ax| ax == root.spatial.len() - 1)
}

/// Vector width of the innermost sub-loop (1 when vectorization is off).
pub(crate) fn feat_vector_len(cfg: &NodeConfig) -> i64 {
    if cfg.vectorize {
        cfg.reorder
            .last()
            .map(|&ax| cfg.spatial_splits[ax][3])
            .unwrap_or(1)
    } else {
        1
    }
}

/// DDR refetch bound of the FPGA stream model: a tensor is fetched from
/// DDR at most this many times over the whole run (on-chip reuse across
/// rounds, e.g. weights stay resident while spatial rounds advance).
/// Shared by [`feat_fpga`] and the region-bounds path so the two cannot
/// drift.
pub(crate) const DDR_REFETCH_CAP: f64 = 8.0;

/// The full FPGA feature block: PE array size, sequential rounds, BRAM
/// buffer and DDR stream bytes under the per-round tile environment.
pub(crate) fn feat_fpga(
    root: &ComputeOp,
    cfg: &NodeConfig,
    groups: &[CompiledGroup],
    scratch: &mut SlotScratch,
) -> FpgaFeatures {
    // PE array: levels 2 and 3 are spatial hardware parallelism;
    // levels 0 and 1 are sequential rounds.
    let pe: i64 = cfg.spatial_level_product(2) * cfg.spatial_level_product(3);
    let rounds: i64 = cfg.spatial_level_product(0) * cfg.spatial_level_product(1);
    let round_slots = scratch.set_tile(root, cfg, &[2, 3], &[0, 1, 2]);
    // BRAM must hold the full per-round tile; DDR streaming is
    // cheaper (see DDR_REFETCH_CAP).
    let mut buffer_bytes = 0i64;
    let mut stream_bytes = 0i64;
    for g in groups {
        let fp = g
            .sites
            .iter()
            .map(|ix| {
                ix.iter()
                    .map(|e| eval_slot(e, round_slots).len())
                    .product::<i64>()
            })
            .max()
            .unwrap_or(0)
            * 4;
        buffer_bytes += fp;
        let total = g.total_bytes.unwrap_or(fp);
        let amortized =
            ((total as f64 * DDR_REFETCH_CAP / rounds.max(1) as f64).ceil() as i64).max(1);
        stream_bytes += fp.min(amortized);
    }
    let write_bytes = pe * 4;
    FpgaFeatures {
        pe,
        rounds,
        buffer_bytes,
        stream_bytes,
        write_bytes,
        partition: cfg.fpga_partition,
        pipeline: cfg.fpga_pipeline,
    }
}

/// Computes [`KernelFeatures`] for a validated config from precomputed
/// load groups and graph constants. This is the single source of truth for
/// feature computation: [`crate::lower::lower`],
/// [`LoweredTemplate::features`], and the delta evaluator's full-recompute
/// fallback all call it (and the delta fast path calls the same `feat_*`
/// kernels it is composed of), so no path can drift from another.
pub(crate) fn compute_features(
    root: &ComputeOp,
    cfg: &NodeConfig,
    target: TargetKind,
    groups: &[CompiledGroup],
    consts: &FeatureConsts,
) -> KernelFeatures {
    // One scratch slot vector serves every tile env below (arena reuse).
    let mut scratch = SlotScratch::new();

    let shared_bytes_per_block = feat_shared_bytes_per_block(root, cfg, groups, &mut scratch);
    let thread_reg_bytes = feat_thread_reg_bytes(root, cfg, groups, &mut scratch);
    let l1_tile_bytes = feat_l1_tile_bytes(root, cfg, groups, &mut scratch);
    let l2_tile_bytes = feat_l2_tile_bytes(root, cfg, groups, &mut scratch);

    let data_node_bytes: i64 = if cfg.inline_data {
        0
    } else {
        consts.materialized_data_bytes
    };

    let mut features = KernelFeatures {
        target,
        flops: consts.root_flops,
        output_elements: consts.output_elements,
        output_bytes: consts.output_elements * 4,
        input_bytes_total: consts.input_bytes_total,
        body_loads: groups.len(),
        reduce_size: consts.reduce_size,
        grid: cfg.spatial_level_product(0),
        parallel_chunks: feat_parallel_chunks(cfg),
        vthreads: cfg.spatial_level_product(1),
        block_threads: cfg.spatial_level_product(2),
        thread_tile: cfg.spatial_level_product(3),
        reduce_outer: cfg.reduce_level_product(0),
        reduce_mid: cfg.reduce_level_product(1),
        reduce_inner: cfg.reduce_level_product(2),
        unroll: cfg.unroll,
        vector_len: feat_vector_len(cfg),
        contiguous_inner: feat_contiguous_inner(root, cfg),
        cache_shared: cfg.cache_shared,
        shared_bytes_per_block,
        thread_reg_bytes,
        l1_tile_bytes,
        l2_tile_bytes,
        inline_data: cfg.inline_data,
        data_node_bytes,
        fpga: None,
    };

    if target == TargetKind::Fpga {
        features.fpga = Some(feat_fpga(root, cfg, groups, &mut scratch));
    }

    // Fused epilogue consumers (bias, activation) add FLOPs but no extra
    // DRAM round trip — same accounting as full lowering.
    features.flops += consts.epilogue_flops;
    features
}

// ---------------------------------------------------------------------
// Region bounds: abstract transfer functions of the feature kernels over
// a *box* of configs (per-(axis,level) factor ranges with all discrete
// coordinates fixed). Every member config's tile slots satisfy
// `lo_slot ⊆ member_slot ⊆ hi_slot`, and the evaluator below propagates
// that nesting through the index arithmetic, so the resulting feature
// bounds enclose every member's concrete features.
// ---------------------------------------------------------------------

/// Inner/outer interval bounds of one compiled index expression over a box
/// of slot environments.
///
/// Invariant: for every member slot assignment with
/// `lo[i] ⊆ member[i] ⊆ hi[i]`, the member's [`eval_slot`] result `r`
/// satisfies `inner ⊆ r ⊆ outer` (when `inner` is `Some`; `None` means no
/// inner bound could be maintained, and callers fall back to the trivial
/// "every interval is non-empty" length bound of 1).
///
/// `Add`/`Sub`/`Mul`/`Min`/`Max`/`Hull` are inclusion-monotone, so nesting
/// propagates directly. `Div` and `Mod` in [`eval_slot`] branch on the
/// divisor being a known point, which members inside the box may or may
/// not satisfy; those arms widen the outer bound to cover every branch a
/// member could take and drop the inner bound unless every member
/// provably takes the same branch.
pub(crate) fn eval_slot_bounds(
    e: &SlotExpr,
    lo: &[Interval],
    hi: &[Interval],
) -> (Option<Interval>, Interval) {
    match e {
        SlotExpr::Const(v) => (Some(Interval::point(*v)), Interval::point(*v)),
        SlotExpr::Slot(i) => (Some(lo[*i]), hi[*i]),
        SlotExpr::Bin(op, a, b) => {
            let (xin, xout) = eval_slot_bounds(a, lo, hi);
            let (yin, yout) = eval_slot_bounds(b, lo, hi);
            let lift = |f: fn(Interval, Interval) -> Interval| {
                (
                    match (xin, yin) {
                        (Some(x), Some(y)) => Some(f(x, y)),
                        _ => None,
                    },
                    f(xout, yout),
                )
            };
            // Arithmetic here saturates: huge sweep boxes (factor ranges up
            // to the full axis extent on every level) can push products past
            // i64. Saturation equals exact arithmetic whenever the exact
            // value fits — every valid member's does — and otherwise only
            // loosens the *outer* bound, which stays a sound enclosure.
            match op {
                BinOp::Add => {
                    lift(|x, y| Interval::new(x.lo.saturating_add(y.lo), x.hi.saturating_add(y.hi)))
                }
                BinOp::Sub => {
                    lift(|x, y| Interval::new(x.lo.saturating_sub(y.hi), x.hi.saturating_sub(y.lo)))
                }
                BinOp::Mul => lift(|x, y| {
                    let c = [
                        x.lo.saturating_mul(y.lo),
                        x.lo.saturating_mul(y.hi),
                        x.hi.saturating_mul(y.lo),
                        x.hi.saturating_mul(y.hi),
                    ];
                    Interval::new(
                        *c.iter().min().expect("non-empty"),
                        *c.iter().max().expect("non-empty"),
                    )
                }),
                BinOp::Min => lift(|x, y| Interval::new(x.lo.min(y.lo), x.hi.min(y.hi))),
                BinOp::Max => lift(|x, y| Interval::new(x.lo.max(y.lo), x.hi.max(y.hi))),
                BinOp::Div => {
                    if yout.lo == yout.hi && yout.lo != 0 {
                        // Every member divisor is this exact point, so every
                        // member takes eval_slot's point-divisor arm, which
                        // is inclusion-monotone in the numerator.
                        let d = yout.lo;
                        let div_pt = |x: Interval| {
                            let c = [x.lo.saturating_div(d), x.hi.saturating_div(d)];
                            Interval::new(*c.iter().min().unwrap(), *c.iter().max().unwrap())
                        };
                        (xin.map(div_pt), div_pt(xout))
                    } else {
                        // Members may take either arm. Both arms' results
                        // have magnitude at most max(|x.lo|, |x.hi|) of the
                        // member numerator, which xout's magnitude bounds.
                        let m = xout.lo.saturating_abs().max(xout.hi.saturating_abs());
                        (None, Interval::new(m.saturating_neg(), m))
                    }
                }
                BinOp::Mod => {
                    if yout.lo == yout.hi && yout.lo > 0 {
                        let md = yout.lo;
                        if xout.lo >= 0 && xout.hi < md {
                            // Every member numerator already lies in
                            // [0, md): eval_slot passes it through.
                            (xin, xout)
                        } else {
                            // Members either pass through (⊆ xout) or clamp
                            // to [0, min(md-1, len-1)] ⊆ [0, md-1].
                            (None, Interval::new(xout.lo.min(0), xout.hi.max(md - 1)))
                        }
                    } else {
                        // Member divisors may be points (pass-through or
                        // clamp to [0, md-1] with md ≤ yout.hi) or wide
                        // (eval_slot's zero-anchored fallback ⊆
                        // [min(x.lo,0), max(x.hi,0)]).
                        (
                            None,
                            Interval::new(
                                xout.lo.min(0),
                                xout.hi.max(yout.hi.saturating_sub(1)).max(0),
                            ),
                        )
                    }
                }
            }
        }
        SlotExpr::Hull(a, b) => {
            let (xin, xout) = eval_slot_bounds(a, lo, hi);
            let (yin, yout) = eval_slot_bounds(b, lo, hi);
            (
                match (xin, yin) {
                    (Some(x), Some(y)) => Some(x.hull(y)),
                    _ => None,
                },
                xout.hull(yout),
            )
        }
    }
}

/// Bounds on one tensor's load footprint in bytes over a slot box: the
/// `(lower, upper)` pair encloses [`loads_footprint_bytes`]' per-group
/// contribution for every member slot assignment. When an index lacks an
/// inner bound, its length contributes the trivial lower bound 1.
pub(crate) fn group_footprint_bounds(
    g: &CompiledGroup,
    lo: &[Interval],
    hi: &[Interval],
) -> (i64, i64) {
    // Saturating length/products: outer intervals of a huge sweep box can
    // exceed i64; saturation only raises the upper bound (sound) and is
    // exact whenever the true footprint fits.
    let sat_len = |iv: Interval| iv.hi.saturating_sub(iv.lo).saturating_add(1);
    let (fp_lo, fp_hi) = g
        .sites
        .iter()
        .map(|ix| {
            ix.iter().fold((1i64, 1i64), |(pl, ph), e| {
                let (inner, outer) = eval_slot_bounds(e, lo, hi);
                (
                    pl.saturating_mul(inner.map_or(1, sat_len)),
                    ph.saturating_mul(sat_len(outer)),
                )
            })
        })
        .fold((0i64, 0i64), |(ml, mh), (pl, ph)| (ml.max(pl), mh.max(ph)));
    (fp_lo.saturating_mul(4), fp_hi.saturating_mul(4))
}

/// Bounds on the summed load footprint ([`loads_footprint_bytes`]) over a
/// slot box: sums the per-group bounds.
pub(crate) fn loads_footprint_bounds(
    groups: &[CompiledGroup],
    lo: &[Interval],
    hi: &[Interval],
) -> (i64, i64) {
    groups.iter().fold((0i64, 0i64), |(tl, th), g| {
        let (gl, gh) = group_footprint_bounds(g, lo, hi);
        (tl.saturating_add(gl), th.saturating_add(gh))
    })
}

/// Computes per-field bounds on [`compute_features`] over a box of
/// configs: `lo_cfg` carries every split factor at its range minimum,
/// `hi_cfg` at its range maximum, and both agree on every discrete
/// coordinate (reorder, fuse, flags, FPGA partition/pipeline). Returns
/// `(lo, hi)` feature rows such that every member config's features lie
/// componentwise between them.
///
/// Product-of-factor features (grid, threads, tiles, reduce levels,
/// vector length, PE/rounds) are monotone in each factor, so their bounds
/// are the corner values. Footprint features go through
/// [`eval_slot_bounds`], and the FPGA stream term — `min` of a footprint
/// and a rounds-antitone amortization — pairs the footprint corner with
/// the *opposite* rounds corner.
pub(crate) fn compute_feature_bounds(
    root: &ComputeOp,
    lo_cfg: &NodeConfig,
    hi_cfg: &NodeConfig,
    target: TargetKind,
    groups: &[CompiledGroup],
    consts: &FeatureConsts,
) -> (KernelFeatures, KernelFeatures) {
    debug_assert_eq!(lo_cfg.reorder, hi_cfg.reorder);
    debug_assert_eq!(lo_cfg.fuse_outer, hi_cfg.fuse_outer);
    debug_assert_eq!(lo_cfg.unroll, hi_cfg.unroll);
    debug_assert_eq!(lo_cfg.vectorize, hi_cfg.vectorize);
    debug_assert_eq!(lo_cfg.cache_shared, hi_cfg.cache_shared);
    debug_assert_eq!(lo_cfg.inline_data, hi_cfg.inline_data);

    // Saturating level products: a sweep-box corner can carry the full
    // axis extent on every level, whose product across axes may exceed
    // i64. Saturation matches `NodeConfig::spatial_level_product` exactly
    // whenever the product fits (every valid member's does) and otherwise
    // only inflates the hi corner — a sound, looser upper bound.
    let sp = |cfg: &NodeConfig, k: usize| -> i64 {
        cfg.spatial_splits
            .iter()
            .fold(1i64, |p, f| p.saturating_mul(f[k]))
    };
    let rp = |cfg: &NodeConfig, k: usize| -> i64 {
        cfg.reduce_splits
            .iter()
            .fold(1i64, |p, f| p.saturating_mul(f[k]))
    };
    let chunks = |cfg: &NodeConfig| -> i64 {
        cfg.reorder
            .iter()
            .take(cfg.fuse_outer)
            .fold(1i64, |p, &ax| p.saturating_mul(cfg.spatial_splits[ax][0]))
    };

    let mut s_lo = SlotScratch::new();
    let mut s_hi = SlotScratch::new();

    let (shared_lo, shared_hi) = loads_footprint_bounds(
        groups,
        s_lo.set_tile(root, lo_cfg, &[1, 2, 3], &[1, 2]),
        s_hi.set_tile(root, hi_cfg, &[1, 2, 3], &[1, 2]),
    );
    let (ti_lo, ti_hi) = loads_footprint_bounds(
        groups,
        s_lo.set_tile(root, lo_cfg, &[3], &[]),
        s_hi.set_tile(root, hi_cfg, &[3], &[]),
    );
    let unroll_mult = if lo_cfg.unroll { 2 } else { 1 };
    let treg_lo = sp(lo_cfg, 3)
        .saturating_mul(sp(lo_cfg, 1))
        .saturating_mul(4)
        .saturating_add(ti_lo.saturating_mul(unroll_mult));
    let treg_hi = sp(hi_cfg, 3)
        .saturating_mul(sp(hi_cfg, 1))
        .saturating_mul(4)
        .saturating_add(ti_hi.saturating_mul(unroll_mult));
    let (l1f_lo, l1f_hi) = loads_footprint_bounds(
        groups,
        s_lo.set_tile(root, lo_cfg, &[3], &[2]),
        s_hi.set_tile(root, hi_cfg, &[3], &[2]),
    );
    let l1_lo = l1f_lo.saturating_add(sp(lo_cfg, 3).saturating_mul(4));
    let l1_hi = l1f_hi.saturating_add(sp(hi_cfg, 3).saturating_mul(4));
    let (l2f_lo, l2f_hi) = loads_footprint_bounds(
        groups,
        s_lo.set_tile(root, lo_cfg, &[2, 3], &[1, 2]),
        s_hi.set_tile(root, hi_cfg, &[2, 3], &[1, 2]),
    );
    let l2_lo = l2f_lo.saturating_add(
        sp(lo_cfg, 2)
            .saturating_mul(sp(lo_cfg, 3))
            .saturating_mul(4),
    );
    let l2_hi = l2f_hi.saturating_add(
        sp(hi_cfg, 2)
            .saturating_mul(sp(hi_cfg, 3))
            .saturating_mul(4),
    );

    let data_node_bytes: i64 = if lo_cfg.inline_data {
        0
    } else {
        consts.materialized_data_bytes
    };
    let flops = consts.root_flops + consts.epilogue_flops;

    let corner = |cfg: &NodeConfig, shared: i64, treg: i64, l1: i64, l2: i64| KernelFeatures {
        target,
        flops,
        output_elements: consts.output_elements,
        output_bytes: consts.output_elements * 4,
        input_bytes_total: consts.input_bytes_total,
        body_loads: groups.len(),
        reduce_size: consts.reduce_size,
        grid: sp(cfg, 0),
        parallel_chunks: chunks(cfg),
        vthreads: sp(cfg, 1),
        block_threads: sp(cfg, 2),
        thread_tile: sp(cfg, 3),
        reduce_outer: rp(cfg, 0),
        reduce_mid: rp(cfg, 1),
        reduce_inner: rp(cfg, 2),
        unroll: cfg.unroll,
        vector_len: feat_vector_len(cfg),
        contiguous_inner: feat_contiguous_inner(root, cfg),
        cache_shared: cfg.cache_shared,
        shared_bytes_per_block: shared,
        thread_reg_bytes: treg,
        l1_tile_bytes: l1,
        l2_tile_bytes: l2,
        inline_data: cfg.inline_data,
        data_node_bytes,
        fpga: None,
    };
    let mut f_lo = corner(lo_cfg, shared_lo, treg_lo, l1_lo, l2_lo);
    let mut f_hi = corner(hi_cfg, shared_hi, treg_hi, l1_hi, l2_hi);

    if target == TargetKind::Fpga {
        let pe_lo = sp(lo_cfg, 2).saturating_mul(sp(lo_cfg, 3));
        let pe_hi = sp(hi_cfg, 2).saturating_mul(sp(hi_cfg, 3));
        let rounds_lo = sp(lo_cfg, 0).saturating_mul(sp(lo_cfg, 1));
        let rounds_hi = sp(hi_cfg, 0).saturating_mul(sp(hi_cfg, 1));
        let rs_lo = s_lo.set_tile(root, lo_cfg, &[2, 3], &[0, 1, 2]);
        let rs_hi = s_hi.set_tile(root, hi_cfg, &[2, 3], &[0, 1, 2]);
        let amortized = |total: i64, rounds: i64| {
            ((total as f64 * DDR_REFETCH_CAP / rounds.max(1) as f64).ceil() as i64).max(1)
        };
        let (mut buffer_lo, mut buffer_hi) = (0i64, 0i64);
        let (mut stream_lo, mut stream_hi) = (0i64, 0i64);
        for g in groups {
            let (fp_lo, fp_hi) = group_footprint_bounds(g, rs_lo, rs_hi);
            buffer_lo = buffer_lo.saturating_add(fp_lo);
            buffer_hi = buffer_hi.saturating_add(fp_hi);
            let (total_lo, total_hi) = match g.total_bytes {
                Some(t) => (t, t),
                None => (fp_lo, fp_hi),
            };
            // The amortized term grows with the tensor total and shrinks
            // as rounds grow, so each stream corner pairs its footprint
            // corner with the opposite rounds corner.
            stream_lo = stream_lo.saturating_add(fp_lo.min(amortized(total_lo, rounds_hi)));
            stream_hi = stream_hi.saturating_add(fp_hi.min(amortized(total_hi, rounds_lo)));
        }
        f_lo.fpga = Some(FpgaFeatures {
            pe: pe_lo,
            rounds: rounds_lo,
            buffer_bytes: buffer_lo,
            stream_bytes: stream_lo,
            write_bytes: pe_lo.saturating_mul(4),
            partition: lo_cfg.fpga_partition,
            pipeline: lo_cfg.fpga_pipeline,
        });
        f_hi.fpga = Some(FpgaFeatures {
            pe: pe_hi,
            rounds: rounds_hi,
            buffer_bytes: buffer_hi,
            stream_bytes: stream_hi,
            write_bytes: pe_hi.saturating_mul(4),
            partition: hi_cfg.fpga_partition,
            pipeline: hi_cfg.fpga_pipeline,
        });
    }

    (f_lo, f_hi)
}

/// The config-independent half of lowering for one (graph, target) pair.
///
/// Build it once per search (the evaluation pool does this for its
/// workers) and call [`LoweredTemplate::features`] per candidate: the
/// apply step validates the config and derives [`KernelFeatures`] from the
/// cached load groups without cloning or re-walking any expression tree.
/// Both `inline_data` variants of the body are precomputed, so every point
/// of the schedule space is covered.
///
/// # Examples
///
/// ```
/// use flextensor_ir::ops;
/// use flextensor_schedule::config::{NodeConfig, TargetKind};
/// use flextensor_schedule::lower::lower;
/// use flextensor_schedule::template::LoweredTemplate;
///
/// let g = ops::gemm(64, 32, 16);
/// let tpl = LoweredTemplate::new(&g, TargetKind::Gpu);
/// let cfg = NodeConfig::naive(g.root_op());
/// let fast = tpl.features(&cfg).unwrap();
/// let full = lower(&g, &cfg, TargetKind::Gpu).unwrap();
/// assert_eq!(fast, full.features);
/// ```
#[derive(Debug, Clone)]
pub struct LoweredTemplate {
    pub(crate) target: TargetKind,
    pub(crate) root: ComputeOp,
    /// Slot-compiled load groups per `inline_data` variant:
    /// `[false, true]`.
    pub(crate) groups: [Vec<CompiledGroup>; 2],
    pub(crate) consts: FeatureConsts,
    pub(crate) graph_flops: u64,
}

impl LoweredTemplate {
    /// Precomputes the config-independent lowering state for a graph on a
    /// target: both body variants' load groups and the graph constants.
    pub fn new(graph: &Graph, target: TargetKind) -> LoweredTemplate {
        let root = graph.anchor_op().clone();
        let raw_groups = compile_groups(&root, &load_groups(graph, &root.body));
        let inlined_body = inline_producers(graph, &root, &root.body);
        let inlined_groups = compile_groups(&root, &load_groups(graph, &inlined_body));
        let materialized_data_bytes: i64 = data_producers(graph, &root)
            .iter()
            .map(|p| 2 * (p.spatial_size() * 4)) // write once + read back
            .sum();
        let consts = FeatureConsts {
            root_flops: root.flops(),
            epilogue_flops: graph.epilogue_chain().iter().map(|e| e.flops()).sum(),
            output_elements: root.spatial_size(),
            reduce_size: root.reduce_size(),
            input_bytes_total: graph.inputs().map(|t| t.bytes()).sum(),
            materialized_data_bytes,
        };
        LoweredTemplate {
            target,
            root,
            groups: [raw_groups, inlined_groups],
            consts,
            graph_flops: graph.flops(),
        }
    }

    /// The target this template lowers for.
    pub fn target(&self) -> TargetKind {
        self.target
    }

    /// The anchor compute op the template schedules.
    pub fn root(&self) -> &ComputeOp {
        &self.root
    }

    /// Total FLOPs of the whole graph (what cost consumers report
    /// throughput against).
    pub fn graph_flops(&self) -> u64 {
        self.graph_flops
    }

    /// The cheap apply step: validates `cfg` and computes the exact
    /// [`KernelFeatures`] full lowering would produce, without building
    /// the loop nest.
    ///
    /// # Errors
    ///
    /// Returns [`LowerError`] when the configuration does not validate
    /// against the template's root op — the same failures (and messages)
    /// as [`crate::lower::lower`].
    pub fn features(&self, cfg: &NodeConfig) -> Result<KernelFeatures, LowerError> {
        cfg.validate(&self.root).map_err(LowerError)?;
        let groups = &self.groups[cfg.inline_data as usize];
        Ok(compute_features(
            &self.root,
            cfg,
            self.target,
            groups,
            &self.consts,
        ))
    }

    /// Sound per-field feature bounds over a *box* of configs.
    ///
    /// `lo` and `hi` are the box corners: every split factor of `lo` is at
    /// its range minimum and every factor of `hi` at its range maximum,
    /// while all discrete coordinates (reorder, `fuse_outer`, the four
    /// flags, FPGA partition/pipeline) agree between the two. The corners
    /// themselves need not be valid schedules — their factor products need
    /// not divide the axis extents — but the returned `(lo, hi)` feature
    /// rows componentwise enclose [`LoweredTemplate::features`] of **every
    /// valid config inside the box** (see `eval_slot_bounds` for the
    /// index-arithmetic argument). The rows carry identical flags, so they
    /// feed directly into interval cost evaluation.
    ///
    /// # Errors
    ///
    /// Returns [`LowerError`] when the corners do not describe a box:
    /// split shapes that do not match the root op, factors below 1, a
    /// `lo` factor above its `hi` partner, or discrete coordinates that
    /// differ between the corners. Spans follow the
    /// [`NodeConfig::validate`] format (`spatial_splits[i]: ...`).
    pub fn feature_bounds(
        &self,
        lo: &NodeConfig,
        hi: &NodeConfig,
    ) -> Result<(KernelFeatures, KernelFeatures), LowerError> {
        check_box(&self.root, lo, hi).map_err(LowerError)?;
        let groups = &self.groups[lo.inline_data as usize];
        Ok(compute_feature_bounds(
            &self.root,
            lo,
            hi,
            self.target,
            groups,
            &self.consts,
        ))
    }
}

/// Structural validation of a config box: matching split shapes, factors
/// ≥ 1, `lo ≤ hi` componentwise, and equal discrete coordinates. Spans
/// mirror [`NodeConfig::validate`].
fn check_box(root: &ComputeOp, lo: &NodeConfig, hi: &NodeConfig) -> Result<(), String> {
    use crate::config::{REDUCE_PARTS, SPATIAL_PARTS};
    for (name, cfg) in [("lo", lo), ("hi", hi)] {
        if cfg.spatial_splits.len() != root.spatial.len() {
            return Err(format!(
                "spatial_splits: {name} corner has {} entries, op has {} spatial axes",
                cfg.spatial_splits.len(),
                root.spatial.len()
            ));
        }
        if cfg.reduce_splits.len() != root.reduce.len() {
            return Err(format!(
                "reduce_splits: {name} corner has {} entries, op has {} reduce axes",
                cfg.reduce_splits.len(),
                root.reduce.len()
            ));
        }
        for (i, f) in cfg.spatial_splits.iter().enumerate() {
            if f.len() != SPATIAL_PARTS {
                return Err(format!(
                    "spatial_splits[{i}]: {name} corner needs {SPATIAL_PARTS} factors, got {}",
                    f.len()
                ));
            }
            if f.iter().any(|&x| x < 1) {
                return Err(format!(
                    "spatial_splits[{i}]: {name} corner factors {f:?} contain a factor below 1"
                ));
            }
        }
        for (i, f) in cfg.reduce_splits.iter().enumerate() {
            if f.len() != REDUCE_PARTS {
                return Err(format!(
                    "reduce_splits[{i}]: {name} corner needs {REDUCE_PARTS} factors, got {}",
                    f.len()
                ));
            }
            if f.iter().any(|&x| x < 1) {
                return Err(format!(
                    "reduce_splits[{i}]: {name} corner factors {f:?} contain a factor below 1"
                ));
            }
        }
    }
    for (i, (fl, fh)) in lo.spatial_splits.iter().zip(&hi.spatial_splits).enumerate() {
        if fl.iter().zip(fh).any(|(a, b)| a > b) {
            return Err(format!(
                "spatial_splits[{i}]: corners {fl:?} and {fh:?} are not a box (lo > hi)"
            ));
        }
    }
    for (i, (fl, fh)) in lo.reduce_splits.iter().zip(&hi.reduce_splits).enumerate() {
        if fl.iter().zip(fh).any(|(a, b)| a > b) {
            return Err(format!(
                "reduce_splits[{i}]: corners {fl:?} and {fh:?} are not a box (lo > hi)"
            ));
        }
    }
    if lo.reorder != hi.reorder
        || lo.fuse_outer != hi.fuse_outer
        || lo.unroll != hi.unroll
        || lo.vectorize != hi.vectorize
        || lo.cache_shared != hi.cache_shared
        || lo.inline_data != hi.inline_data
        || lo.fpga_partition != hi.fpga_partition
        || lo.fpga_pipeline != hi.fpga_pipeline
    {
        return Err(
            "reorder: box corners must agree on every discrete coordinate \
             (reorder, fuse_outer, flags, fpga_partition, fpga_pipeline)"
                .to_string(),
        );
    }
    // The shared discrete coordinates must themselves be well-formed, or
    // the feature kernels would index out of bounds.
    lo.check_reorder(root)?;
    lo.check_fuse(root)?;
    lo.check_fpga_partition()?;
    lo.check_fpga_pipeline()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use flextensor_ir::ops::{self, ConvParams};

    fn tiled_gemm_cfg(op: &ComputeOp) -> NodeConfig {
        let mut c = NodeConfig::naive(op);
        c.spatial_splits = vec![vec![4, 2, 4, 2], vec![2, 2, 4, 2]];
        c.reduce_splits = vec![vec![4, 2, 2]];
        c.cache_shared = true;
        c.unroll = true;
        c.vectorize = true;
        c
    }

    #[test]
    fn template_features_match_full_lowering_gemm() {
        let g = ops::gemm(64, 32, 16);
        let cfg = tiled_gemm_cfg(g.root_op());
        for target in [TargetKind::Cpu, TargetKind::Gpu, TargetKind::Fpga] {
            let tpl = LoweredTemplate::new(&g, target);
            let fast = tpl.features(&cfg).unwrap();
            let full = lower(&g, &cfg, target).unwrap();
            assert_eq!(fast, full.features, "{target}");
        }
    }

    #[test]
    fn template_features_match_for_materialized_producers() {
        let g = ops::conv2d(ConvParams::same(1, 4, 8, 3), 8, 8);
        for inline_data in [true, false] {
            let mut cfg = NodeConfig::naive(g.root_op());
            cfg.inline_data = inline_data;
            let tpl = LoweredTemplate::new(&g, TargetKind::Gpu);
            let fast = tpl.features(&cfg).unwrap();
            let full = lower(&g, &cfg, TargetKind::Gpu).unwrap();
            assert_eq!(fast, full.features, "inline_data = {inline_data}");
        }
    }

    #[test]
    fn template_rejects_invalid_configs_like_lower() {
        let g = ops::gemm(64, 32, 16);
        let tpl = LoweredTemplate::new(&g, TargetKind::Gpu);
        let mut cfg = NodeConfig::naive(g.root_op());
        cfg.spatial_splits[0] = vec![3, 1, 1, 1];
        let fast_err = tpl.features(&cfg).unwrap_err();
        let full_err = lower(&g, &cfg, TargetKind::Gpu).unwrap_err();
        assert_eq!(fast_err, full_err);
    }

    /// Componentwise `lo ≤ m ≤ hi` over every numeric feature field, with
    /// flags equal across all three rows.
    fn assert_enclosed(lo: &KernelFeatures, m: &KernelFeatures, hi: &KernelFeatures, tag: &str) {
        let fields = |f: &KernelFeatures| {
            let mut v = vec![
                ("grid", f.grid),
                ("parallel_chunks", f.parallel_chunks),
                ("vthreads", f.vthreads),
                ("block_threads", f.block_threads),
                ("thread_tile", f.thread_tile),
                ("reduce_outer", f.reduce_outer),
                ("reduce_mid", f.reduce_mid),
                ("reduce_inner", f.reduce_inner),
                ("vector_len", f.vector_len),
                ("shared_bytes_per_block", f.shared_bytes_per_block),
                ("thread_reg_bytes", f.thread_reg_bytes),
                ("l1_tile_bytes", f.l1_tile_bytes),
                ("l2_tile_bytes", f.l2_tile_bytes),
                ("data_node_bytes", f.data_node_bytes),
                ("flops", f.flops as i64),
                ("input_bytes_total", f.input_bytes_total),
                ("output_bytes", f.output_bytes),
            ];
            if let Some(fp) = &f.fpga {
                v.extend([
                    ("fpga.pe", fp.pe),
                    ("fpga.rounds", fp.rounds),
                    ("fpga.buffer_bytes", fp.buffer_bytes),
                    ("fpga.stream_bytes", fp.stream_bytes),
                    ("fpga.write_bytes", fp.write_bytes),
                ]);
            }
            v
        };
        assert_eq!(lo.unroll, m.unroll, "{tag}");
        assert_eq!(lo.contiguous_inner, m.contiguous_inner, "{tag}");
        assert_eq!(lo.cache_shared, m.cache_shared, "{tag}");
        assert_eq!(lo.fpga.is_some(), m.fpga.is_some(), "{tag}");
        for ((name, l), ((_, mv), (_, h))) in fields(lo)
            .into_iter()
            .zip(fields(m).into_iter().zip(fields(hi)))
        {
            assert!(l <= mv && mv <= h, "{tag}: {name}: {l} <= {mv} <= {h}");
        }
    }

    /// Joins valid configs into box corners (componentwise factor min/max)
    /// and checks every input config's features land inside the bounds.
    fn check_bounds_enclose(g: &flextensor_ir::graph::Graph, cfgs: &[NodeConfig]) {
        for target in [TargetKind::Cpu, TargetKind::Gpu, TargetKind::Fpga] {
            let tpl = LoweredTemplate::new(g, target);
            let mut lo = cfgs[0].clone();
            let mut hi = cfgs[0].clone();
            for c in &cfgs[1..] {
                for (i, f) in c.spatial_splits.iter().enumerate() {
                    for (l, &x) in f.iter().enumerate() {
                        lo.spatial_splits[i][l] = lo.spatial_splits[i][l].min(x);
                        hi.spatial_splits[i][l] = hi.spatial_splits[i][l].max(x);
                    }
                }
                for (i, f) in c.reduce_splits.iter().enumerate() {
                    for (l, &x) in f.iter().enumerate() {
                        lo.reduce_splits[i][l] = lo.reduce_splits[i][l].min(x);
                        hi.reduce_splits[i][l] = hi.reduce_splits[i][l].max(x);
                    }
                }
            }
            let (b_lo, b_hi) = tpl.feature_bounds(&lo, &hi).unwrap();
            for (k, c) in cfgs.iter().enumerate() {
                let m = tpl.features(c).unwrap();
                assert_enclosed(&b_lo, &m, &b_hi, &format!("{target} member {k}"));
            }
        }
    }

    #[test]
    fn feature_bounds_enclose_member_configs() {
        let g = ops::gemm(64, 32, 16);
        let op = g.root_op();
        let mut a = NodeConfig::naive(op);
        a.spatial_splits = vec![vec![4, 2, 4, 2], vec![2, 2, 4, 2]];
        a.reduce_splits = vec![vec![4, 2, 2]];
        a.cache_shared = true;
        let mut b = a.clone();
        b.spatial_splits = vec![vec![2, 2, 2, 8], vec![8, 1, 2, 2]];
        b.reduce_splits = vec![vec![2, 4, 2]];
        let mut c = a.clone();
        c.spatial_splits = vec![vec![1, 4, 16, 1], vec![4, 4, 1, 2]];
        c.reduce_splits = vec![vec![16, 1, 1]];
        check_bounds_enclose(&g, &[a, b, c]);
    }

    #[test]
    fn feature_bounds_enclose_members_with_inlined_padding() {
        // Padded conv exercises Select (hull) and Sub index arithmetic
        // through the inlined producer chain.
        let g = ops::conv2d(ConvParams::same(1, 4, 8, 3), 8, 8);
        let op = g.root_op();
        let mut a = NodeConfig::naive(op);
        a.spatial_splits = vec![
            vec![1, 1, 1, 1],
            vec![2, 1, 2, 2],
            vec![2, 2, 2, 1],
            vec![1, 2, 1, 4],
        ];
        a.reduce_splits = vec![vec![2, 2, 1], vec![3, 1, 1], vec![1, 1, 3]];
        let mut b = a.clone();
        b.spatial_splits = vec![
            vec![1, 1, 1, 1],
            vec![4, 2, 1, 1],
            vec![1, 1, 4, 2],
            vec![2, 1, 2, 2],
        ];
        b.reduce_splits = vec![vec![1, 4, 1], vec![1, 3, 1], vec![3, 1, 1]];
        check_bounds_enclose(&g, &[a, b]);
    }

    #[test]
    fn feature_bounds_degenerate_box_matches_features_exactly() {
        let g = ops::gemm(64, 32, 16);
        let cfg = tiled_gemm_cfg(g.root_op());
        for target in [TargetKind::Cpu, TargetKind::Gpu, TargetKind::Fpga] {
            let tpl = LoweredTemplate::new(&g, target);
            let (lo, hi) = tpl.feature_bounds(&cfg, &cfg).unwrap();
            let exact = tpl.features(&cfg).unwrap();
            assert_eq!(lo, exact, "{target}");
            assert_eq!(hi, exact, "{target}");
        }
    }

    #[test]
    fn feature_bounds_rejects_malformed_boxes() {
        let g = ops::gemm(64, 32, 16);
        let tpl = LoweredTemplate::new(&g, TargetKind::Gpu);
        let base = NodeConfig::naive(g.root_op());

        let mut inverted = base.clone();
        inverted.spatial_splits[0][3] = 128; // lo factor above hi's 64
        let err = tpl.feature_bounds(&inverted, &base).unwrap_err();
        assert!(err.0.starts_with("spatial_splits[0]:"), "{err}");
        assert!(err.0.contains("not a box"), "{err}");

        let mut flagged = base.clone();
        flagged.unroll = true;
        let err = tpl.feature_bounds(&base, &flagged).unwrap_err();
        assert!(err.0.contains("discrete coordinate"), "{err}");

        let mut short = base.clone();
        short.spatial_splits[1] = vec![1, 64];
        let err = tpl.feature_bounds(&short, &base).unwrap_err();
        assert!(err.0.starts_with("spatial_splits[1]:"), "{err}");

        let mut zero = base.clone();
        zero.reduce_splits[0][1] = 0;
        let err = tpl.feature_bounds(&zero, &base).unwrap_err();
        assert!(err.0.contains("below 1"), "{err}");
    }

    #[test]
    fn template_reports_graph_flops() {
        let g = ops::gemm(64, 32, 16);
        let tpl = LoweredTemplate::new(&g, TargetKind::Cpu);
        assert_eq!(tpl.graph_flops(), g.flops());
        assert_eq!(tpl.root().name, g.anchor_op().name);
        assert_eq!(tpl.target(), TargetKind::Cpu);
    }
}
