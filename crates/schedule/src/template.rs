//! Split-phase lowering: the config-independent half of
//! [`crate::lower::lower`], computed once per (graph, target) and reused
//! across every candidate.
//!
//! Full lowering does two kinds of work per schedule point:
//!
//! 1. **Config-independent**: inlining data-movement producers into the
//!    root body (a fixpoint of expression cloning and substitution),
//!    collecting the body's load sites, and deriving graph constants
//!    (FLOPs, input bytes, producer sizes). None of this depends on the
//!    candidate being evaluated — only on the graph and, binarily, on the
//!    `inline_data` flag.
//! 2. **Config-dependent**: split-factor products, interval footprints of
//!    the cached load sites, and — only when the loop nest itself is
//!    needed — the statement tree with all its substitutions.
//!
//! Exploration evaluates thousands of candidates per trial and only ever
//! consumes [`KernelFeatures`] (the cost models never look at the nest).
//! [`LoweredTemplate`] therefore precomputes phase 1 for *both*
//! `inline_data` variants and exposes [`LoweredTemplate::features`], a
//! cheap apply step that never clones or re-walks the expression tree.
//! [`crate::lower::lower`] is built on the same `compute_features` helper,
//! so the two paths agree bit-for-bit by construction (see
//! `tests/fastpath.rs` for the differential check).

use flextensor_ir::expr::Expr;
use flextensor_ir::graph::{ComputeOp, Graph};

use crate::config::{NodeConfig, TargetKind};
use crate::features::{FpgaFeatures, KernelFeatures};
use crate::interval::{footprint, Interval, IntervalEnv};
use crate::lower::LowerError;

/// Returns the data-movement producer chain of the root op: compute nodes
/// with no reduce axes whose outputs the root (transitively) reads.
pub(crate) fn data_producers<'g>(graph: &'g Graph, root: &ComputeOp) -> Vec<&'g ComputeOp> {
    let mut out: Vec<&ComputeOp> = Vec::new();
    let mut frontier = root.input_tensors();
    while let Some(t) = frontier.pop() {
        if let Some(p) = graph
            .compute_ops()
            .find(|c| c.output == t && c.reduce.is_empty() && c.name != root.name)
        {
            if !out.iter().any(|o| o.name == p.name) {
                out.push(p);
                frontier.extend(p.input_tensors());
            }
        }
    }
    // Topological order (producers of producers first).
    out.reverse();
    out
}

/// Substitutes loads of producer tensors with the producer's body, with the
/// producer's spatial variables replaced by the load's index expressions.
/// Applied to fixpoint so chains (dilate → pad → conv) inline fully.
pub(crate) fn inline_producers(graph: &Graph, root: &ComputeOp, body: &Expr) -> Expr {
    fn rewrite(graph: &Graph, root_name: &str, e: &Expr) -> (Expr, bool) {
        match e {
            Expr::Load { tensor, indices } => {
                // First rewrite inside the indices themselves.
                let mut changed = false;
                let new_indices: Vec<Expr> = indices
                    .iter()
                    .map(|ix| {
                        let (r, c) = rewrite(graph, root_name, ix);
                        changed |= c;
                        r
                    })
                    .collect();
                if let Some(p) = graph
                    .compute_ops()
                    .find(|c| &c.output == tensor && c.reduce.is_empty() && c.name != root_name)
                {
                    // Rename producer vars to fresh temporaries, then
                    // substitute the temporaries with the index expressions
                    // (avoids capture when index exprs mention names that
                    // collide with producer axis names).
                    let mut b = p.body.clone();
                    let temps: Vec<String> = (0..p.spatial.len())
                        .map(|i| format!("__inl_{}_{i}", p.name))
                        .collect();
                    for (axis, tmp) in p.spatial.iter().zip(&temps) {
                        b = b.substitute(&axis.name, &Expr::Var(tmp.clone()));
                    }
                    for (tmp, ix) in temps.iter().zip(&new_indices) {
                        b = b.substitute(tmp, ix);
                    }
                    (b, true)
                } else {
                    (
                        Expr::Load {
                            tensor: tensor.clone(),
                            indices: new_indices,
                        },
                        changed,
                    )
                }
            }
            Expr::Bin(op, a, bx) => {
                let (ra, ca) = rewrite(graph, root_name, a);
                let (rb, cb) = rewrite(graph, root_name, bx);
                (Expr::Bin(*op, Box::new(ra), Box::new(rb)), ca || cb)
            }
            Expr::Select(c, a, bx) => {
                let (ra, ca) = rewrite(graph, root_name, a);
                let (rb, cb) = rewrite(graph, root_name, bx);
                // Conditions only contain index arithmetic; no loads there.
                (
                    Expr::Select(c.clone(), Box::new(ra), Box::new(rb)),
                    ca || cb,
                )
            }
            _ => (e.clone(), false),
        }
    }
    let mut cur = body.clone();
    for _ in 0..8 {
        let (next, changed) = rewrite(graph, &root.name, &cur);
        cur = next;
        if !changed {
            break;
        }
    }
    cur
}

/// All load sites of one tensor in the (possibly inlined) root body,
/// together with the tensor's whole-graph byte size when declared.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct LoadGroup {
    /// Tensor name.
    pub tensor: String,
    /// Index expressions of every load site of this tensor.
    pub sites: Vec<Vec<Expr>>,
    /// Total bytes of the declared tensor (`None` when the graph has no
    /// declaration, e.g. a fully inlined intermediate).
    pub total_bytes: Option<i64>,
}

/// Collects the distinct loads of a body together with their index
/// expressions, keyed by tensor name in first-occurrence order, and
/// resolves each tensor's declared byte size from the graph.
pub(crate) fn load_groups(graph: &Graph, body: &Expr) -> Vec<LoadGroup> {
    let mut groups: Vec<(String, Vec<Vec<Expr>>)> = Vec::new();
    fn walk(e: &Expr, groups: &mut Vec<(String, Vec<Vec<Expr>>)>) {
        match e {
            Expr::Load { tensor, indices } => {
                for ix in indices {
                    walk(ix, groups);
                }
                match groups.iter_mut().find(|(t, _)| t == tensor) {
                    Some((_, v)) => v.push(indices.clone()),
                    None => groups.push((tensor.clone(), vec![indices.clone()])),
                }
            }
            Expr::Bin(_, a, b) => {
                walk(a, groups);
                walk(b, groups);
            }
            Expr::Select(_, a, b) => {
                walk(a, groups);
                walk(b, groups);
            }
            _ => {}
        }
    }
    walk(body, &mut groups);
    groups
        .into_iter()
        .map(|(tensor, sites)| {
            let total_bytes = graph.tensor(&tensor).map(|t| t.bytes());
            LoadGroup {
                tensor,
                sites,
                total_bytes,
            }
        })
        .collect()
}

/// Interval environment covering the variation of each original axis over
/// the given spatial levels and reduce levels. E.g. for spatial levels
/// {1,2,3} the axis `i` varies over `[0, f1*f2*f3 - 1]` (a per-block tile).
pub(crate) fn tile_env(
    root: &ComputeOp,
    cfg: &NodeConfig,
    spatial_levels: &[usize],
    reduce_levels: &[usize],
) -> IntervalEnv {
    let mut env = IntervalEnv::new();
    for (i, a) in root.spatial.iter().enumerate() {
        let tile: i64 = spatial_levels
            .iter()
            .map(|&l| cfg.spatial_splits[i][l])
            .product();
        env.insert(a.name.clone(), Interval::new(0, tile - 1));
    }
    for (i, a) in root.reduce.iter().enumerate() {
        let tile: i64 = reduce_levels
            .iter()
            .map(|&l| cfg.reduce_splits[i][l])
            .product();
        env.insert(a.name.clone(), Interval::new(0, tile - 1));
    }
    env
}

/// Sum over tensors of the footprint (bytes) of all loads of that tensor
/// under `env` (taking the hull across load sites of the same tensor).
pub(crate) fn loads_footprint_bytes(groups: &[LoadGroup], env: &IntervalEnv) -> i64 {
    let mut total = 0i64;
    for g in groups {
        let fp = g
            .sites
            .iter()
            .map(|ix| footprint(ix, env))
            .max()
            .unwrap_or(0);
        total += fp * 4;
    }
    total
}

/// Config-independent graph constants shared by every candidate.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FeatureConsts {
    /// FLOPs of the root (anchor) compute node.
    pub root_flops: u64,
    /// Summed FLOPs of the fused epilogue chain.
    pub epilogue_flops: u64,
    /// Output elements of the root node.
    pub output_elements: i64,
    /// Reduce-domain iterations per output element.
    pub reduce_size: i64,
    /// Total bytes of all graph input tensors.
    pub input_bytes_total: i64,
    /// Extra DRAM bytes when data-movement producers are materialized
    /// (write + read back of every intermediate).
    pub materialized_data_bytes: i64,
}

/// Computes [`KernelFeatures`] for a validated config from precomputed
/// load groups and graph constants. This is the single source of truth for
/// feature computation: both [`crate::lower::lower`] and
/// [`LoweredTemplate::features`] call it, so the fast path cannot drift
/// from the full lowering.
pub(crate) fn compute_features(
    root: &ComputeOp,
    cfg: &NodeConfig,
    target: TargetKind,
    groups: &[LoadGroup],
    consts: &FeatureConsts,
) -> KernelFeatures {
    // Tile environments at the levels the models care about.
    let block_env = tile_env(root, cfg, &[1, 2, 3], &[1, 2]); // per-block, per outer-reduce step
                                                              // Registers hold the accumulators plus the operands of one reduce
                                                              // iteration (two when unrolling interleaves iterations) — not the whole
                                                              // staged tile, which lives in shared memory / cache.
    let thread_env = tile_env(root, cfg, &[3], &[]);
    let l1_env = tile_env(root, cfg, &[3], &[2]);
    let l2_env = tile_env(root, cfg, &[2, 3], &[1, 2]);

    let shared_bytes_per_block = loads_footprint_bytes(groups, &block_env);
    let thread_input_bytes = loads_footprint_bytes(groups, &thread_env);
    let thread_tile: i64 = cfg.spatial_level_product(3);
    let thread_reg_bytes = thread_tile * cfg.spatial_level_product(1) * 4
        + thread_input_bytes * if cfg.unroll { 2 } else { 1 };
    let l1_tile_bytes = loads_footprint_bytes(groups, &l1_env) + thread_tile * 4;
    let l2_tile_bytes =
        loads_footprint_bytes(groups, &l2_env) + cfg.spatial_level_product(2) * thread_tile * 4;

    // Innermost-contiguity: the fastest-varying spatial sub-loop belongs to
    // the reorder-last axis; it is contiguous iff that axis is the last
    // output dimension.
    let contiguous_inner = cfg
        .reorder
        .last()
        .is_some_and(|&ax| ax == root.spatial.len() - 1);

    let data_node_bytes: i64 = if cfg.inline_data {
        0
    } else {
        consts.materialized_data_bytes
    };

    let vector_len = if cfg.vectorize {
        cfg.reorder
            .last()
            .map(|&ax| cfg.spatial_splits[ax][3])
            .unwrap_or(1)
    } else {
        1
    };

    let mut features = KernelFeatures {
        target,
        flops: consts.root_flops,
        output_elements: consts.output_elements,
        output_bytes: consts.output_elements * 4,
        input_bytes_total: consts.input_bytes_total,
        body_loads: groups.len(),
        reduce_size: consts.reduce_size,
        grid: cfg.spatial_level_product(0),
        parallel_chunks: cfg
            .reorder
            .iter()
            .take(cfg.fuse_outer)
            .map(|&ax| cfg.spatial_splits[ax][0])
            .product(),
        vthreads: cfg.spatial_level_product(1),
        block_threads: cfg.spatial_level_product(2),
        thread_tile,
        reduce_outer: cfg.reduce_level_product(0),
        reduce_mid: cfg.reduce_level_product(1),
        reduce_inner: cfg.reduce_level_product(2),
        unroll: cfg.unroll,
        vector_len,
        contiguous_inner,
        cache_shared: cfg.cache_shared,
        shared_bytes_per_block,
        thread_reg_bytes,
        l1_tile_bytes,
        l2_tile_bytes,
        inline_data: cfg.inline_data,
        data_node_bytes,
        fpga: None,
    };

    if target == TargetKind::Fpga {
        // PE array: levels 2 and 3 are spatial hardware parallelism;
        // levels 0 and 1 are sequential rounds.
        let pe: i64 = cfg.spatial_level_product(2) * cfg.spatial_level_product(3);
        let rounds: i64 = cfg.spatial_level_product(0) * cfg.spatial_level_product(1);
        let round_env = tile_env(root, cfg, &[2, 3], &[0, 1, 2]);
        // BRAM must hold the full per-round tile; DDR streaming is
        // cheaper: a tensor is fetched from DDR a bounded number of
        // times over the whole run (on-chip reuse across rounds, e.g.
        // weights stay resident while spatial rounds advance).
        const DDR_REFETCH_CAP: f64 = 8.0;
        let mut buffer_bytes = 0i64;
        let mut stream_bytes = 0i64;
        for g in groups {
            let fp = g
                .sites
                .iter()
                .map(|ix| footprint(ix, &round_env))
                .max()
                .unwrap_or(0)
                * 4;
            buffer_bytes += fp;
            let total = g.total_bytes.unwrap_or(fp);
            let amortized =
                ((total as f64 * DDR_REFETCH_CAP / rounds.max(1) as f64).ceil() as i64).max(1);
            stream_bytes += fp.min(amortized);
        }
        let write_bytes = pe * 4;
        features.fpga = Some(FpgaFeatures {
            pe,
            rounds,
            buffer_bytes,
            stream_bytes,
            write_bytes,
            partition: cfg.fpga_partition,
            pipeline: cfg.fpga_pipeline,
        });
    }

    // Fused epilogue consumers (bias, activation) add FLOPs but no extra
    // DRAM round trip — same accounting as full lowering.
    features.flops += consts.epilogue_flops;
    features
}

/// The config-independent half of lowering for one (graph, target) pair.
///
/// Build it once per search (the evaluation pool does this for its
/// workers) and call [`LoweredTemplate::features`] per candidate: the
/// apply step validates the config and derives [`KernelFeatures`] from the
/// cached load groups without cloning or re-walking any expression tree.
/// Both `inline_data` variants of the body are precomputed, so every point
/// of the schedule space is covered.
///
/// # Examples
///
/// ```
/// use flextensor_ir::ops;
/// use flextensor_schedule::config::{NodeConfig, TargetKind};
/// use flextensor_schedule::lower::lower;
/// use flextensor_schedule::template::LoweredTemplate;
///
/// let g = ops::gemm(64, 32, 16);
/// let tpl = LoweredTemplate::new(&g, TargetKind::Gpu);
/// let cfg = NodeConfig::naive(g.root_op());
/// let fast = tpl.features(&cfg).unwrap();
/// let full = lower(&g, &cfg, TargetKind::Gpu).unwrap();
/// assert_eq!(fast, full.features);
/// ```
#[derive(Debug, Clone)]
pub struct LoweredTemplate {
    target: TargetKind,
    root: ComputeOp,
    /// Load groups per `inline_data` variant: `[false, true]`.
    groups: [Vec<LoadGroup>; 2],
    consts: FeatureConsts,
    graph_flops: u64,
}

impl LoweredTemplate {
    /// Precomputes the config-independent lowering state for a graph on a
    /// target: both body variants' load groups and the graph constants.
    pub fn new(graph: &Graph, target: TargetKind) -> LoweredTemplate {
        let root = graph.anchor_op().clone();
        let raw_groups = load_groups(graph, &root.body);
        let inlined_body = inline_producers(graph, &root, &root.body);
        let inlined_groups = load_groups(graph, &inlined_body);
        let materialized_data_bytes: i64 = data_producers(graph, &root)
            .iter()
            .map(|p| 2 * (p.spatial_size() * 4)) // write once + read back
            .sum();
        let consts = FeatureConsts {
            root_flops: root.flops(),
            epilogue_flops: graph.epilogue_chain().iter().map(|e| e.flops()).sum(),
            output_elements: root.spatial_size(),
            reduce_size: root.reduce_size(),
            input_bytes_total: graph.inputs().map(|t| t.bytes()).sum(),
            materialized_data_bytes,
        };
        LoweredTemplate {
            target,
            root,
            groups: [raw_groups, inlined_groups],
            consts,
            graph_flops: graph.flops(),
        }
    }

    /// The target this template lowers for.
    pub fn target(&self) -> TargetKind {
        self.target
    }

    /// The anchor compute op the template schedules.
    pub fn root(&self) -> &ComputeOp {
        &self.root
    }

    /// Total FLOPs of the whole graph (what cost consumers report
    /// throughput against).
    pub fn graph_flops(&self) -> u64 {
        self.graph_flops
    }

    /// The cheap apply step: validates `cfg` and computes the exact
    /// [`KernelFeatures`] full lowering would produce, without building
    /// the loop nest.
    ///
    /// # Errors
    ///
    /// Returns [`LowerError`] when the configuration does not validate
    /// against the template's root op — the same failures (and messages)
    /// as [`crate::lower::lower`].
    pub fn features(&self, cfg: &NodeConfig) -> Result<KernelFeatures, LowerError> {
        cfg.validate(&self.root).map_err(LowerError)?;
        let groups = &self.groups[cfg.inline_data as usize];
        Ok(compute_features(
            &self.root,
            cfg,
            self.target,
            groups,
            &self.consts,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use flextensor_ir::ops::{self, ConvParams};

    fn tiled_gemm_cfg(op: &ComputeOp) -> NodeConfig {
        let mut c = NodeConfig::naive(op);
        c.spatial_splits = vec![vec![4, 2, 4, 2], vec![2, 2, 4, 2]];
        c.reduce_splits = vec![vec![4, 2, 2]];
        c.cache_shared = true;
        c.unroll = true;
        c.vectorize = true;
        c
    }

    #[test]
    fn template_features_match_full_lowering_gemm() {
        let g = ops::gemm(64, 32, 16);
        let cfg = tiled_gemm_cfg(g.root_op());
        for target in [TargetKind::Cpu, TargetKind::Gpu, TargetKind::Fpga] {
            let tpl = LoweredTemplate::new(&g, target);
            let fast = tpl.features(&cfg).unwrap();
            let full = lower(&g, &cfg, target).unwrap();
            assert_eq!(fast, full.features, "{target}");
        }
    }

    #[test]
    fn template_features_match_for_materialized_producers() {
        let g = ops::conv2d(ConvParams::same(1, 4, 8, 3), 8, 8);
        for inline_data in [true, false] {
            let mut cfg = NodeConfig::naive(g.root_op());
            cfg.inline_data = inline_data;
            let tpl = LoweredTemplate::new(&g, TargetKind::Gpu);
            let fast = tpl.features(&cfg).unwrap();
            let full = lower(&g, &cfg, TargetKind::Gpu).unwrap();
            assert_eq!(fast, full.features, "inline_data = {inline_data}");
        }
    }

    #[test]
    fn template_rejects_invalid_configs_like_lower() {
        let g = ops::gemm(64, 32, 16);
        let tpl = LoweredTemplate::new(&g, TargetKind::Gpu);
        let mut cfg = NodeConfig::naive(g.root_op());
        cfg.spatial_splits[0] = vec![3, 1, 1, 1];
        let fast_err = tpl.features(&cfg).unwrap_err();
        let full_err = lower(&g, &cfg, TargetKind::Gpu).unwrap_err();
        assert_eq!(fast_err, full_err);
    }

    #[test]
    fn template_reports_graph_flops() {
        let g = ops::gemm(64, 32, 16);
        let tpl = LoweredTemplate::new(&g, TargetKind::Cpu);
        assert_eq!(tpl.graph_flops(), g.flops());
        assert_eq!(tpl.root().name, g.anchor_op().name);
        assert_eq!(tpl.target(), TargetKind::Cpu);
    }
}
