//! Incremental (delta) candidate evaluation over [`LoweredTemplate`].
//!
//! Neighboring candidates in the SA/Q-learning search differ in a single
//! schedule decision — one prime factor moved between split levels, one
//! reorder swap, one flag toggled. Recomputing the full
//! [`KernelFeatures`] for such a neighbor repeats work: most features
//! depend only on config fields that did not change. This module maps a
//! config diff onto the subset of features it can affect (the same
//! field→feature spans `flextensor-analyze` attaches to its diagnostics)
//! and recomputes only that subset, starting from the base candidate's
//! features.
//!
//! # Bit-identity invariants
//!
//! The delta path is proven bit-identical to a fresh
//! [`LoweredTemplate::features`] call (see `tests/fastpath.rs` and
//! `tests/property_based.rs` in `flextensor-repro`), and the guarantee is
//! structural, not empirical:
//!
//! 1. **Shared kernels.** Every recomputed feature is produced by the same
//!    `feat_*` kernel in [`crate::template`] that `compute_features` is
//!    composed of — there is no second implementation to drift.
//! 2. **Exact dependency masks.** The field→feature map below is the
//!    data-flow of `compute_features` itself: a feature is recomputed iff
//!    one of the config fields it reads changed. All features are integer
//!    / boolean valued, so `PartialEq` equality *is* bit-identity.
//! 3. **Order-preserving validation.** [`NodeConfig::validate`] is a
//!    conjunction of independent per-aspect predicates reported
//!    first-failure-first in a fixed order. Starting from a *valid* base,
//!    only checks whose aspect changed can fail, so re-running exactly
//!    those, in the same global order, yields the same `Ok`/first-`Err`
//!    (including the error string) as a full validation.
//! 4. **Conservative fallback.** Diffs the mask does not cover —
//!    `inline_data` flips (which swap the load-group set) or structural
//!    length mismatches — fall back to the full
//!    [`LoweredTemplate::features`] path.
//!
//! # Field → feature dependency map
//!
//! With `Sk` = "some axis's spatial factor at level *k* changed" and `Rk`
//! the reduce analogue (see `docs/PERFORMANCE.md` for the derivation):
//!
//! | feature | recomputed when |
//! |---|---|
//! | `grid` | S0 |
//! | `parallel_chunks` | S0 ∪ reorder ∪ fuse_outer |
//! | `vthreads` | S1 |
//! | `block_threads` | S2 |
//! | `thread_tile` | S3 |
//! | `thread_reg_bytes` | S1 ∪ S3 ∪ unroll |
//! | `shared_bytes_per_block` | S1 ∪ S2 ∪ S3 ∪ R1 ∪ R2 |
//! | `l1_tile_bytes` | S3 ∪ R2 |
//! | `l2_tile_bytes` | S2 ∪ S3 ∪ R1 ∪ R2 |
//! | `reduce_outer` / `mid` / `inner` | R0 / R1 / R2 |
//! | `unroll`, `cache_shared` | the flag itself |
//! | `vector_len` | vectorize ∪ reorder ∪ S3 |
//! | `contiguous_inner` | reorder |
//! | `fpga` (whole block) | any Sk ∪ any Rk; partition/pipeline patched |
//! | everything else | never (config-independent constants) |

use crate::config::{NodeConfig, TargetKind, REDUCE_PARTS, SPATIAL_PARTS};
use crate::features::KernelFeatures;
use crate::lower::LowerError;
use crate::template::{
    feat_contiguous_inner, feat_fpga, feat_l1_tile_bytes, feat_l2_tile_bytes, feat_parallel_chunks,
    feat_shared_bytes_per_block, feat_thread_reg_bytes, feat_vector_len, LoweredTemplate,
    SlotScratch,
};

/// The per-aspect diff between a base config and a candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ConfigDelta {
    /// Bitmask of spatial axes whose split vector changed (bit `i` = axis
    /// `i`, ascending), for re-validation. A mask instead of a `Vec` so
    /// diffing a candidate never allocates; ops with more than 64 axes
    /// (none exist) would fall back via `incompatible`.
    spatial_axes: u64,
    /// Per spatial level: did any axis's factor at this level change?
    spatial_levels: [bool; SPATIAL_PARTS],
    /// Bitmask of reduce axes whose split vector changed (ascending).
    reduce_axes: u64,
    /// Per reduce level: did any axis's factor at this level change?
    reduce_levels: [bool; REDUCE_PARTS],
    reorder: bool,
    fuse: bool,
    unroll: bool,
    vectorize: bool,
    cache: bool,
    inline: bool,
    partition: bool,
    pipeline: bool,
    /// Structural mismatch vs. the base (axis counts or factor arities
    /// differ): the masks above are meaningless and the candidate must
    /// take the full path.
    incompatible: bool,
}

impl ConfigDelta {
    /// Diffs `cfg` against `base` field by field.
    fn of(base: &NodeConfig, cfg: &NodeConfig) -> ConfigDelta {
        let mut d = ConfigDelta {
            spatial_axes: 0,
            spatial_levels: [false; SPATIAL_PARTS],
            reduce_axes: 0,
            reduce_levels: [false; REDUCE_PARTS],
            reorder: base.reorder != cfg.reorder,
            fuse: base.fuse_outer != cfg.fuse_outer,
            unroll: base.unroll != cfg.unroll,
            vectorize: base.vectorize != cfg.vectorize,
            cache: base.cache_shared != cfg.cache_shared,
            inline: base.inline_data != cfg.inline_data,
            partition: base.fpga_partition != cfg.fpga_partition,
            pipeline: base.fpga_pipeline != cfg.fpga_pipeline,
            incompatible: false,
        };
        if base.spatial_splits.len() != cfg.spatial_splits.len()
            || base.reduce_splits.len() != cfg.reduce_splits.len()
            || base.reorder.len() != cfg.reorder.len()
            || cfg.spatial_splits.len() > 64
            || cfg.reduce_splits.len() > 64
        {
            d.incompatible = true;
            return d;
        }
        for (i, (b, c)) in base
            .spatial_splits
            .iter()
            .zip(&cfg.spatial_splits)
            .enumerate()
        {
            if b == c {
                continue;
            }
            if b.len() != SPATIAL_PARTS || c.len() != SPATIAL_PARTS {
                d.incompatible = true;
                return d;
            }
            d.spatial_axes |= 1 << i;
            for l in 0..SPATIAL_PARTS {
                d.spatial_levels[l] |= b[l] != c[l];
            }
        }
        for (i, (b, c)) in base
            .reduce_splits
            .iter()
            .zip(&cfg.reduce_splits)
            .enumerate()
        {
            if b == c {
                continue;
            }
            if b.len() != REDUCE_PARTS || c.len() != REDUCE_PARTS {
                d.incompatible = true;
                return d;
            }
            d.reduce_axes |= 1 << i;
            for l in 0..REDUCE_PARTS {
                d.reduce_levels[l] |= b[l] != c[l];
            }
        }
        d
    }
}

/// Computes `cfg`'s features incrementally from a base candidate, using a
/// caller-provided scratch arena (reusable across calls).
///
/// Returns the features plus a flag telling whether the delta fast path
/// was actually taken (`false` means the call fell back to the full
/// [`LoweredTemplate::features`] recompute — the result is identical
/// either way).
///
/// # Preconditions
///
/// `base_features` must be the (successful) result of
/// `template.features(base_cfg)` for this same template. The validity of
/// the base is what lets the delta path skip re-checking unchanged
/// aspects.
///
/// # Errors
///
/// Returns the exact [`LowerError`] a full `template.features(cfg)` call
/// would return when `cfg` is invalid.
pub fn delta_features_with(
    template: &LoweredTemplate,
    base_cfg: &NodeConfig,
    base_features: &KernelFeatures,
    cfg: &NodeConfig,
    scratch: &mut DeltaScratch,
) -> Result<(KernelFeatures, bool), LowerError> {
    let d = ConfigDelta::of(base_cfg, cfg);
    if d.incompatible || d.inline {
        // Structural change or a load-group swap: full recompute.
        return template.features(cfg).map(|f| (f, false));
    }

    let root = &template.root;

    // Re-validate only the changed aspects, in validate()'s global order
    // (bitmask iteration walks axes in ascending order).
    let mut m = d.spatial_axes;
    while m != 0 {
        let i = m.trailing_zeros() as usize;
        m &= m - 1;
        cfg.check_spatial_axis(root, i).map_err(LowerError)?;
    }
    let mut m = d.reduce_axes;
    while m != 0 {
        let i = m.trailing_zeros() as usize;
        m &= m - 1;
        cfg.check_reduce_axis(root, i).map_err(LowerError)?;
    }
    if d.reorder {
        cfg.check_reorder(root).map_err(LowerError)?;
    }
    if d.fuse {
        cfg.check_fuse(root).map_err(LowerError)?;
    }
    if d.partition {
        cfg.check_fpga_partition().map_err(LowerError)?;
    }
    if d.pipeline {
        cfg.check_fpga_pipeline().map_err(LowerError)?;
    }

    let groups = &template.groups[cfg.inline_data as usize];
    let s = &d.spatial_levels;
    let r = &d.reduce_levels;
    let scratch = &mut scratch.slots;
    let mut f = base_features.clone();

    if s[0] {
        f.grid = cfg.spatial_level_product(0);
    }
    if s[0] || d.reorder || d.fuse {
        f.parallel_chunks = feat_parallel_chunks(cfg);
    }
    if s[1] {
        f.vthreads = cfg.spatial_level_product(1);
    }
    if s[2] {
        f.block_threads = cfg.spatial_level_product(2);
    }
    if s[3] {
        f.thread_tile = cfg.spatial_level_product(3);
    }
    if s[1] || s[3] || d.unroll {
        f.thread_reg_bytes = feat_thread_reg_bytes(root, cfg, groups, scratch);
    }
    if s[1] || s[2] || s[3] || r[1] || r[2] {
        f.shared_bytes_per_block = feat_shared_bytes_per_block(root, cfg, groups, scratch);
    }
    if s[3] || r[2] {
        f.l1_tile_bytes = feat_l1_tile_bytes(root, cfg, groups, scratch);
    }
    if s[2] || s[3] || r[1] || r[2] {
        f.l2_tile_bytes = feat_l2_tile_bytes(root, cfg, groups, scratch);
    }
    if r[0] {
        f.reduce_outer = cfg.reduce_level_product(0);
    }
    if r[1] {
        f.reduce_mid = cfg.reduce_level_product(1);
    }
    if r[2] {
        f.reduce_inner = cfg.reduce_level_product(2);
    }
    if d.unroll {
        f.unroll = cfg.unroll;
    }
    if d.vectorize || d.reorder || s[3] {
        f.vector_len = feat_vector_len(cfg);
    }
    if d.reorder {
        f.contiguous_inner = feat_contiguous_inner(root, cfg);
    }
    if d.cache {
        f.cache_shared = cfg.cache_shared;
    }
    if template.target == TargetKind::Fpga {
        let any_split = s.iter().any(|&b| b) || r.iter().any(|&b| b);
        if any_split {
            f.fpga = Some(feat_fpga(root, cfg, groups, scratch));
        } else if let Some(fp) = f.fpga.as_mut() {
            fp.partition = cfg.fpga_partition;
            fp.pipeline = cfg.fpga_pipeline;
        }
    }

    Ok((f, true))
}

/// Computes `cfg`'s features incrementally from a base candidate.
///
/// Convenience wrapper over [`delta_features_with`] that allocates a
/// one-shot [`DeltaScratch`]; hot loops should hold a scratch and call
/// [`delta_features_with`] (or use a [`DeltaEvaluator`]) instead.
///
/// # Errors
///
/// Same contract as [`delta_features_with`].
pub fn delta_features(
    template: &LoweredTemplate,
    base_cfg: &NodeConfig,
    base_features: &KernelFeatures,
    cfg: &NodeConfig,
) -> Result<(KernelFeatures, bool), LowerError> {
    let mut scratch = DeltaScratch::new();
    delta_features_with(template, base_cfg, base_features, cfg, &mut scratch)
}

/// Reusable scratch state for delta evaluation (the slot-form
/// tile-environment arena). One per evaluating thread; never shared.
#[derive(Debug, Default)]
pub struct DeltaScratch {
    slots: SlotScratch,
}

impl DeltaScratch {
    /// An empty scratch, warmed up on first use.
    pub fn new() -> DeltaScratch {
        DeltaScratch::default()
    }
}

/// Rolling-base incremental evaluator: each successfully evaluated config
/// becomes the base for the next, which is exactly the access pattern of
/// a simulated-annealing / Q-learning neighbor walk.
///
/// # Examples
///
/// ```
/// use flextensor_ir::ops;
/// use flextensor_schedule::config::{NodeConfig, TargetKind};
/// use flextensor_schedule::delta::DeltaEvaluator;
/// use flextensor_schedule::template::LoweredTemplate;
///
/// let g = ops::gemm(64, 32, 16);
/// let tpl = LoweredTemplate::new(&g, TargetKind::Gpu);
/// let mut ev = DeltaEvaluator::new(&tpl);
/// let mut cfg = NodeConfig::naive(g.root_op());
/// let a = ev.features(&cfg).unwrap(); // first call: full compute
/// cfg.unroll = true;
/// let b = ev.features(&cfg).unwrap(); // neighbor: delta compute
/// assert_eq!(b, tpl.features(&cfg).unwrap()); // bit-identical
/// assert_ne!(a, b);
/// assert_eq!(ev.delta_hits(), 1);
/// assert_eq!(ev.full_recomputes(), 1);
/// ```
#[derive(Debug)]
pub struct DeltaEvaluator<'t> {
    template: &'t LoweredTemplate,
    base: Option<(NodeConfig, KernelFeatures)>,
    scratch: DeltaScratch,
    delta_hits: usize,
    full_recomputes: usize,
}

impl<'t> DeltaEvaluator<'t> {
    /// A fresh evaluator with no base; the first call computes fully.
    pub fn new(template: &'t LoweredTemplate) -> DeltaEvaluator<'t> {
        DeltaEvaluator {
            template,
            base: None,
            scratch: DeltaScratch::new(),
            delta_hits: 0,
            full_recomputes: 0,
        }
    }

    /// Evaluates `cfg`, incrementally when a base is available, and makes
    /// `cfg` the new base on success. Failed (invalid) candidates do not
    /// move the base and are not counted.
    ///
    /// # Errors
    ///
    /// The same [`LowerError`] as [`LoweredTemplate::features`].
    pub fn features(&mut self, cfg: &NodeConfig) -> Result<KernelFeatures, LowerError> {
        let (f, took_delta) = match &self.base {
            Some((b, bf)) => delta_features_with(self.template, b, bf, cfg, &mut self.scratch)?,
            None => (self.template.features(cfg)?, false),
        };
        if took_delta {
            self.delta_hits += 1;
        } else {
            self.full_recomputes += 1;
        }
        self.base = Some((cfg.clone(), f.clone()));
        Ok(f)
    }

    /// Evaluations served by the incremental fast path.
    pub fn delta_hits(&self) -> usize {
        self.delta_hits
    }

    /// Evaluations that needed the full `compute_features` (first call,
    /// `inline_data` flips, structural mismatches).
    pub fn full_recomputes(&self) -> usize {
        self.full_recomputes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextensor_ir::graph::Graph;
    use flextensor_ir::ops::{self, ConvParams};

    fn neighbors(cfg: &NodeConfig) -> Vec<NodeConfig> {
        // One hand-rolled neighbor per mutation family.
        let mut out = Vec::new();
        let mut c = cfg.clone();
        let f = &mut c.spatial_splits[0];
        if f[3] % 2 == 0 {
            f[3] /= 2;
            f[1] *= 2;
            out.push(c);
        }
        let mut c = cfg.clone();
        let f = &mut c.reduce_splits[0];
        if f[2] % 2 == 0 {
            f[2] /= 2;
            f[0] *= 2;
            out.push(c);
        }
        let mut c = cfg.clone();
        c.reorder.reverse();
        out.push(c);
        let mut c = cfg.clone();
        c.fuse_outer = if c.fuse_outer == 1 { 2 } else { 1 };
        out.push(c);
        for toggle in [0, 1, 2, 3] {
            let mut c = cfg.clone();
            match toggle {
                0 => c.unroll = !c.unroll,
                1 => c.vectorize = !c.vectorize,
                2 => c.cache_shared = !c.cache_shared,
                _ => c.inline_data = !c.inline_data,
            }
            out.push(c);
        }
        let mut c = cfg.clone();
        c.fpga_partition *= 2;
        c.fpga_pipeline = 3;
        out.push(c);
        out
    }

    fn check_graph(g: &Graph, target: TargetKind) {
        let tpl = LoweredTemplate::new(g, target);
        let base = NodeConfig::naive(g.root_op());
        let base_f = tpl.features(&base).unwrap();
        for n in neighbors(&base) {
            let (df, _) = delta_features(&tpl, &base, &base_f, &n).unwrap();
            let full = tpl.features(&n).unwrap();
            assert_eq!(df, full, "target {target}, neighbor {n}");
        }
    }

    #[test]
    fn delta_matches_full_for_every_mutation_family() {
        let gemm = ops::gemm(64, 32, 16);
        let conv = ops::conv2d(ConvParams::same(1, 4, 8, 3), 8, 8);
        for target in [TargetKind::Cpu, TargetKind::Gpu, TargetKind::Fpga] {
            check_graph(&gemm, target);
            check_graph(&conv, target);
        }
    }

    #[test]
    fn delta_reports_the_same_error_as_full() {
        let g = ops::gemm(64, 32, 16);
        let tpl = LoweredTemplate::new(&g, TargetKind::Gpu);
        let base = NodeConfig::naive(g.root_op());
        let base_f = tpl.features(&base).unwrap();
        // Invalid neighbors, one per aspect.
        let mut bad_split = base.clone();
        bad_split.spatial_splits[1] = vec![3, 1, 1, 1];
        let mut bad_reorder = base.clone();
        bad_reorder.reorder = vec![0, 0];
        let mut bad_fuse = base.clone();
        bad_fuse.fuse_outer = 9;
        let mut bad_fpga = base.clone();
        bad_fpga.fpga_pipeline = 7;
        for bad in [bad_split, bad_reorder, bad_fuse, bad_fpga] {
            let de = delta_features(&tpl, &base, &base_f, &bad).unwrap_err();
            let fe = tpl.features(&bad).unwrap_err();
            assert_eq!(de, fe);
        }
    }

    #[test]
    fn inline_flip_falls_back_to_full_recompute() {
        let g = ops::conv2d(ConvParams::same(1, 4, 8, 3), 8, 8);
        let tpl = LoweredTemplate::new(&g, TargetKind::Gpu);
        let base = NodeConfig::naive(g.root_op());
        let base_f = tpl.features(&base).unwrap();
        let mut flip = base.clone();
        flip.inline_data = !flip.inline_data;
        let (f, took_delta) = delta_features(&tpl, &base, &base_f, &flip).unwrap();
        assert!(!took_delta, "inline flips must take the full path");
        assert_eq!(f, tpl.features(&flip).unwrap());
    }

    #[test]
    fn rolling_evaluator_walk_stays_bit_identical() {
        let g = ops::gemm(64, 32, 16);
        for target in [TargetKind::Cpu, TargetKind::Gpu, TargetKind::Fpga] {
            let tpl = LoweredTemplate::new(&g, target);
            let mut ev = DeltaEvaluator::new(&tpl);
            let mut cur = NodeConfig::naive(g.root_op());
            let mut visited = 0usize;
            for step in 0..6 {
                let f = ev.features(&cur).unwrap();
                assert_eq!(f, tpl.features(&cur).unwrap(), "step {step}");
                visited += 1;
                let next = neighbors(&cur);
                cur = next[step % next.len()].clone();
            }
            assert_eq!(ev.delta_hits() + ev.full_recomputes(), visited);
            assert!(ev.delta_hits() >= 1, "walk should hit the delta path");
        }
    }

    #[test]
    fn errors_do_not_move_the_base_or_the_counters() {
        let g = ops::gemm(64, 32, 16);
        let tpl = LoweredTemplate::new(&g, TargetKind::Gpu);
        let mut ev = DeltaEvaluator::new(&tpl);
        let base = NodeConfig::naive(g.root_op());
        ev.features(&base).unwrap();
        let mut bad = base.clone();
        bad.fuse_outer = 99;
        assert!(ev.features(&bad).is_err());
        assert_eq!(ev.delta_hits() + ev.full_recomputes(), 1);
        // The next good neighbor still deltas off the last good base.
        let mut good = base.clone();
        good.unroll = true;
        let f = ev.features(&good).unwrap();
        assert_eq!(f, tpl.features(&good).unwrap());
        assert_eq!(ev.delta_hits(), 1);
    }
}
