//! Summary features of a lowered kernel, consumed by the performance
//! models in `flextensor-sim`.
//!
//! Lowering computes these exactly (from the schedule configuration and
//! interval analysis of the tensor index expressions), so the models never
//! have to re-derive tiling structure from the loop nest.

use crate::config::TargetKind;

/// FPGA-specific features (the inputs of the §5.2 pipeline model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpgaFeatures {
    /// Number of parallel processing elements instantiated.
    pub pe: i64,
    /// Sequential rounds of PE execution (`workload / #PE`).
    pub rounds: i64,
    /// On-chip buffer bytes resident per round (BRAM usage).
    pub buffer_bytes: i64,
    /// DDR bytes actually streamed per round after on-chip reuse across
    /// rounds (weights cached on chip are not re-fetched every round) —
    /// drives the read stage R.
    pub stream_bytes: i64,
    /// Output bytes drained per round (drives the write stage W).
    pub write_bytes: i64,
    /// Memory partition factor (multiplies effective on-chip bandwidth).
    pub partition: i64,
    /// Pipeline stages overlapped (1 = sequential, 3 = full overlap).
    pub pipeline: i64,
}

/// Schedule- and shape-dependent features of one lowered kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelFeatures {
    /// Target the kernel was lowered for.
    pub target: TargetKind,
    /// Floating-point operations performed by the root node.
    pub flops: u64,
    /// Number of output elements.
    pub output_elements: i64,
    /// Output bytes (float32).
    pub output_bytes: i64,
    /// Total bytes of all graph input tensors (compulsory traffic floor).
    pub input_bytes_total: i64,
    /// Number of distinct tensor loads in the (inlined) root body.
    pub body_loads: usize,
    /// Iterations of the reduction domain per output element.
    pub reduce_size: i64,
    /// GPU grid size (number of thread blocks) / CPU total outer chunks.
    pub grid: i64,
    /// Extent of the CPU parallel loop (fused outermost factors).
    pub parallel_chunks: i64,
    /// Product of virtual-thread (register-tile) factors.
    pub vthreads: i64,
    /// Threads per block (product of thread-level factors).
    pub block_threads: i64,
    /// Spatial points computed per thread (product of innermost factors).
    pub thread_tile: i64,
    /// Outer reduce factor product (shared-memory staging steps).
    pub reduce_outer: i64,
    /// Middle reduce factor product.
    pub reduce_mid: i64,
    /// Inner reduce factor product (accumulation in registers).
    pub reduce_inner: i64,
    /// Whether inner loops are unrolled.
    pub unroll: bool,
    /// Vector length of the innermost loop (1 when not vectorized).
    pub vector_len: i64,
    /// Whether the innermost (fastest-varying) loop walks the output's
    /// last dimension — coalescing on GPU, unit-stride SIMD on CPU.
    pub contiguous_inner: bool,
    /// Whether input tiles are staged into shared memory.
    pub cache_shared: bool,
    /// Bytes staged into shared memory per block per outer-reduce step.
    pub shared_bytes_per_block: i64,
    /// Register-resident bytes per thread (accumulators + per-step input
    /// fragments) — the occupancy-limiting register proxy.
    pub thread_reg_bytes: i64,
    /// Per-core innermost tile footprint (CPU L1 proxy), bytes.
    pub l1_tile_bytes: i64,
    /// Per-core middle tile footprint (CPU L2 proxy), bytes.
    pub l2_tile_bytes: i64,
    /// Whether data-movement producers (pad / dilate) were inlined.
    pub inline_data: bool,
    /// Extra DRAM traffic in bytes caused by materializing producers
    /// (write + read of each intermediate), 0 when inlined.
    pub data_node_bytes: i64,
    /// FPGA pipeline features (populated only for FPGA targets).
    pub fpga: Option<FpgaFeatures>,
}

impl KernelFeatures {
    /// Total threads launched on a GPU (`grid * block_threads`).
    pub fn total_threads(&self) -> i64 {
        self.grid * self.block_threads
    }

    /// Arithmetic intensity proxy: FLOPs per byte of compulsory traffic.
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = (self.input_bytes_total + self.output_bytes).max(1) as f64;
        self.flops as f64 / bytes
    }
}
