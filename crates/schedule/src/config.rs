//! Schedule configurations: the points of the schedule space (§4.2).
//!
//! A [`NodeConfig`] records every decision the explorer makes for one
//! compute node — multi-way split factors per loop, the reorder
//! permutation, fusion depth, unrolling, vectorization, caching, and the
//! FPGA pipeline parameters. [`NodeConfig::encode`] flattens a config into
//! the integer vector of Fig. 3e; that vector is the representation
//! exploration moves through and the Q-network's input feature.

use std::fmt;

use flextensor_ir::graph::ComputeOp;

/// Number of sub-loops each *spatial* loop is split into (block / vthread /
/// thread / inner on GPU; parallel / L2-tile / L1-tile / vector on CPU).
pub const SPATIAL_PARTS: usize = 4;
/// Number of sub-loops each *reduce* loop is split into (outer / mid /
/// inner).
pub const REDUCE_PARTS: usize = 3;

/// The hardware targets of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TargetKind {
    /// Multicore CPU (OpenMP-style parallel + SIMD).
    Cpu,
    /// CUDA-style GPU (grid/block/thread, shared memory).
    Gpu,
    /// FPGA with the three-stage read/compute/write pipeline of §5.2.
    Fpga,
}

impl fmt::Display for TargetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TargetKind::Cpu => "cpu",
            TargetKind::Gpu => "gpu",
            TargetKind::Fpga => "fpga",
        };
        f.write_str(s)
    }
}

/// A complete schedule decision for one compute node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NodeConfig {
    /// Per spatial axis: [`SPATIAL_PARTS`] split factors whose product
    /// equals the axis extent (outermost factor first).
    pub spatial_splits: Vec<Vec<i64>>,
    /// Per reduce axis: [`REDUCE_PARTS`] split factors whose product equals
    /// the axis extent.
    pub reduce_splits: Vec<Vec<i64>>,
    /// Permutation over spatial axes controlling the layout order of the
    /// fused block / thread / parallel indices (outermost axis first).
    pub reorder: Vec<usize>,
    /// How many leading (per `reorder`) outermost sub-loops fuse into the
    /// parallel / grid loop. Always ≥ 1.
    pub fuse_outer: usize,
    /// Whether inner loops are unrolled.
    pub unroll: bool,
    /// Whether the innermost spatial sub-loop is vectorized (CPU) /
    /// drives coalescing (GPU).
    pub vectorize: bool,
    /// GPU: stage input tiles into shared memory (the `cache` primitive).
    pub cache_shared: bool,
    /// Graph-level: inline data-movement producers (pad / dilate) into the
    /// consumer body instead of materializing them (the `inline` /
    /// `compute_at` primitives).
    pub inline_data: bool,
    /// FPGA: memory partition factor (the `partition` primitive).
    pub fpga_partition: i64,
    /// FPGA: number of pipeline stages overlapped (the `pipeline`
    /// primitive); 1 = no overlap, 3 = full read/compute/write overlap.
    pub fpga_pipeline: i64,
}

impl NodeConfig {
    /// The identity ("do nothing") schedule for an op: no tiling (all
    /// factors 1 except the innermost which carries the whole extent), no
    /// reordering, no unrolling.
    pub fn naive(op: &ComputeOp) -> NodeConfig {
        let spatial_splits = op
            .spatial
            .iter()
            .map(|a| {
                let mut f = vec![1; SPATIAL_PARTS];
                f[SPATIAL_PARTS - 1] = a.extent;
                f
            })
            .collect();
        let reduce_splits = op
            .reduce
            .iter()
            .map(|a| {
                let mut f = vec![1; REDUCE_PARTS];
                f[REDUCE_PARTS - 1] = a.extent;
                f
            })
            .collect();
        NodeConfig {
            spatial_splits,
            reduce_splits,
            reorder: (0..op.spatial.len()).collect(),
            fuse_outer: 1,
            unroll: false,
            vectorize: false,
            cache_shared: false,
            inline_data: true,
            fpga_partition: 1,
            fpga_pipeline: 1,
        }
    }

    /// Validates this config against the op it schedules.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// invariant: factor-count or product mismatches, an invalid reorder
    /// permutation, or an out-of-range fuse depth. Every message leads
    /// with the offending field and index (`spatial_splits[1]: ...`),
    /// using the same spans `flextensor-analyze` puts on its diagnostics.
    /// Validation is a conjunction of *independent* per-aspect predicates
    /// (one per spatial axis, one per reduce axis, reorder, fuse, the two
    /// FPGA fields), reported first-failure-first in a fixed global order.
    /// The delta evaluator (`crate::delta`) exploits this: starting from a
    /// known-valid base config it re-runs only the checks whose aspect
    /// changed, in the same order, and is guaranteed the same outcome —
    /// including the exact error string.
    pub fn validate(&self, op: &ComputeOp) -> Result<(), String> {
        if self.spatial_splits.len() != op.spatial.len() {
            return Err(format!(
                "spatial_splits: expected {} entries for the op's spatial axes, got {}",
                op.spatial.len(),
                self.spatial_splits.len()
            ));
        }
        if self.reduce_splits.len() != op.reduce.len() {
            return Err(format!(
                "reduce_splits: expected {} entries for the op's reduce axes, got {}",
                op.reduce.len(),
                self.reduce_splits.len()
            ));
        }
        for i in 0..op.spatial.len() {
            self.check_spatial_axis(op, i)?;
        }
        for i in 0..op.reduce.len() {
            self.check_reduce_axis(op, i)?;
        }
        self.check_reorder(op)?;
        self.check_fuse(op)?;
        self.check_fpga_partition()?;
        self.check_fpga_pipeline()
    }

    /// Arity and product check for one spatial axis (assumes
    /// `spatial_splits.len() == op.spatial.len()`).
    pub(crate) fn check_spatial_axis(&self, op: &ComputeOp, i: usize) -> Result<(), String> {
        let axis = &op.spatial[i];
        let f = &self.spatial_splits[i];
        if f.len() != SPATIAL_PARTS {
            return Err(format!(
                "spatial_splits[{i}]: axis {} needs {SPATIAL_PARTS} factors, got {}",
                axis.name,
                f.len()
            ));
        }
        let prod: i64 = f.iter().product();
        if prod != axis.extent || f.iter().any(|&x| x < 1) {
            return Err(format!(
                "spatial_splits[{i}]: axis {}: factors {:?} do not multiply to extent {}",
                axis.name, f, axis.extent
            ));
        }
        Ok(())
    }

    /// Arity and product check for one reduce axis (assumes
    /// `reduce_splits.len() == op.reduce.len()`).
    pub(crate) fn check_reduce_axis(&self, op: &ComputeOp, i: usize) -> Result<(), String> {
        let axis = &op.reduce[i];
        let f = &self.reduce_splits[i];
        if f.len() != REDUCE_PARTS {
            return Err(format!(
                "reduce_splits[{i}]: axis {} needs {REDUCE_PARTS} factors, got {}",
                axis.name,
                f.len()
            ));
        }
        let prod: i64 = f.iter().product();
        if prod != axis.extent || f.iter().any(|&x| x < 1) {
            return Err(format!(
                "reduce_splits[{i}]: axis {}: factors {:?} do not multiply to extent {}",
                axis.name, f, axis.extent
            ));
        }
        Ok(())
    }

    /// Length and permutation check for the reorder vector.
    pub(crate) fn check_reorder(&self, op: &ComputeOp) -> Result<(), String> {
        let mut seen = vec![false; op.spatial.len()];
        if self.reorder.len() != op.spatial.len() {
            return Err(format!(
                "reorder: expected length {}, got {}",
                op.spatial.len(),
                self.reorder.len()
            ));
        }
        for (pos, &i) in self.reorder.iter().enumerate() {
            if i >= op.spatial.len() || seen[i] {
                return Err(format!(
                    "reorder[{pos}]: entry {i} makes {:?} not a permutation of 0..{}",
                    self.reorder,
                    op.spatial.len()
                ));
            }
            seen[i] = true;
        }
        Ok(())
    }

    /// Range check for the fusion depth.
    pub(crate) fn check_fuse(&self, op: &ComputeOp) -> Result<(), String> {
        if self.fuse_outer < 1 || self.fuse_outer > op.spatial.len() {
            return Err(format!(
                "fuse_outer: depth {} out of range 1..={}",
                self.fuse_outer,
                op.spatial.len()
            ));
        }
        Ok(())
    }

    /// Positivity check for the FPGA partition factor.
    pub(crate) fn check_fpga_partition(&self) -> Result<(), String> {
        if self.fpga_partition < 1 {
            return Err(format!(
                "fpga_partition: factor {} must be positive",
                self.fpga_partition
            ));
        }
        Ok(())
    }

    /// Range check for the FPGA pipeline depth.
    pub(crate) fn check_fpga_pipeline(&self) -> Result<(), String> {
        if self.fpga_pipeline < 1 || self.fpga_pipeline > 3 {
            return Err(format!(
                "fpga_pipeline: depth {} out of range 1..=3",
                self.fpga_pipeline
            ));
        }
        Ok(())
    }

    /// Flattens the config into the integer vector of Fig. 3e:
    /// `[spatial factors..., reduce factors..., reorder..., fuse, unroll,
    /// vectorize, cache, inline, partition, pipeline]`.
    pub fn encode(&self) -> Vec<i64> {
        let mut v = Vec::new();
        self.encode_into(&mut v);
        v
    }

    /// Appends the [`NodeConfig::encode`] words to `out` instead of
    /// allocating a fresh vector — the form the evaluation pool uses to
    /// encode a whole candidate batch into one flat key buffer.
    pub fn encode_into(&self, out: &mut Vec<i64>) {
        for f in &self.spatial_splits {
            out.extend_from_slice(f);
        }
        for f in &self.reduce_splits {
            out.extend_from_slice(f);
        }
        out.extend(self.reorder.iter().map(|&i| i as i64));
        out.push(self.fuse_outer as i64);
        out.push(self.unroll as i64);
        out.push(self.vectorize as i64);
        out.push(self.cache_shared as i64);
        out.push(self.inline_data as i64);
        out.push(self.fpga_partition);
        out.push(self.fpga_pipeline);
    }

    /// Appends this config's [`NodeConfig::encode`] words to `out` by
    /// copying `base_key` — the already-encoded words of `base` — and
    /// patching only the words where `self` differs from `base`.
    ///
    /// The encoding is positional, so a neighbor produced by a single
    /// schedule move shares all but a handful of words with its base; the
    /// evaluation pool uses this to derive each neighbor's memo key from
    /// its base's key (one memcpy plus a sparse diff) instead of
    /// re-encoding the full config. Deriving the *exact* key — rather than
    /// hashing a diff — keeps memo-cache identity untouched: the derived
    /// words are guaranteed equal to what [`NodeConfig::encode_into`]
    /// would have produced.
    ///
    /// Returns `false` without touching `out` when the two configs are
    /// structurally incompatible (different axis counts or factor
    /// arities) or `base_key` has the wrong length for `base` — callers
    /// fall back to [`NodeConfig::encode_into`].
    pub fn encode_delta_into(
        &self,
        base: &NodeConfig,
        base_key: &[i64],
        out: &mut Vec<i64>,
    ) -> bool {
        if self.spatial_splits.len() != base.spatial_splits.len()
            || self.reduce_splits.len() != base.reduce_splits.len()
            || self.reorder.len() != base.reorder.len()
            || self
                .spatial_splits
                .iter()
                .zip(&base.spatial_splits)
                .any(|(a, b)| a.len() != b.len())
            || self
                .reduce_splits
                .iter()
                .zip(&base.reduce_splits)
                .any(|(a, b)| a.len() != b.len())
        {
            return false;
        }
        let expect = self.spatial_splits.iter().map(Vec::len).sum::<usize>()
            + self.reduce_splits.iter().map(Vec::len).sum::<usize>()
            + self.reorder.len()
            + 7;
        if base_key.len() != expect {
            return false;
        }
        let start = out.len();
        out.extend_from_slice(base_key);
        let dst = &mut out[start..];
        let mut off = 0usize;
        for (f, bf) in self.spatial_splits.iter().zip(&base.spatial_splits) {
            if f != bf {
                dst[off..off + f.len()].copy_from_slice(f);
            }
            off += f.len();
        }
        for (f, bf) in self.reduce_splits.iter().zip(&base.reduce_splits) {
            if f != bf {
                dst[off..off + f.len()].copy_from_slice(f);
            }
            off += f.len();
        }
        for (&r, &br) in self.reorder.iter().zip(&base.reorder) {
            if r != br {
                dst[off] = r as i64;
            }
            off += 1;
        }
        // The seven scalar tail words are cheaper to store than to compare.
        dst[off] = self.fuse_outer as i64;
        dst[off + 1] = self.unroll as i64;
        dst[off + 2] = self.vectorize as i64;
        dst[off + 3] = self.cache_shared as i64;
        dst[off + 4] = self.inline_data as i64;
        dst[off + 5] = self.fpga_partition;
        dst[off + 6] = self.fpga_pipeline;
        true
    }

    /// Reconstructs a config from [`NodeConfig::encode`] output.
    ///
    /// Decoding is total over arbitrary `&[i64]` input — it never panics
    /// and never wraps negative values into huge indices. Value-level
    /// *semantic* checks (split products, permutation validity) remain the
    /// job of [`NodeConfig::validate`]; decode rejects only vectors that
    /// cannot represent any config at all.
    ///
    /// # Errors
    ///
    /// Returns an error when the vector is truncated or oversized for the
    /// op's shape, when a split factor is ≤ 0, when a reorder entry or the
    /// fuse depth is outside `0..spatial` / `1..=spatial`, when a boolean
    /// flag slot is not 0/1, or when an FPGA parameter is ≤ 0.
    pub fn decode(op: &ComputeOp, v: &[i64]) -> Result<NodeConfig, String> {
        let ns = op.spatial.len();
        let nr = op.reduce.len();
        let expect = ns * SPATIAL_PARTS + nr * REDUCE_PARTS + ns + 7;
        if v.len() != expect {
            let class = if v.len() < expect {
                "truncated"
            } else {
                "oversized"
            };
            return Err(format!(
                "{class} encoding: expected length {expect}, got {}",
                v.len()
            ));
        }
        let mut it = v.iter().copied();
        let mut take = |n: usize| -> Vec<i64> { (&mut it).take(n).collect() };
        let spatial_splits: Vec<Vec<i64>> = (0..ns).map(|_| take(SPATIAL_PARTS)).collect();
        let reduce_splits: Vec<Vec<i64>> = (0..nr).map(|_| take(REDUCE_PARTS)).collect();
        for f in spatial_splits.iter().chain(reduce_splits.iter()) {
            if let Some(&bad) = f.iter().find(|&&x| x < 1) {
                return Err(format!("split factor {bad} is not positive"));
            }
        }
        let raw_reorder = take(ns);
        let mut reorder = Vec::with_capacity(ns);
        for x in raw_reorder {
            if x < 0 || x as usize >= ns {
                return Err(format!("reorder entry {x} outside 0..{ns}"));
            }
            reorder.push(x as usize);
        }
        let rest = take(7);
        if rest[0] < 1 || rest[0] as usize > ns {
            return Err(format!("fuse depth {} outside 1..={ns}", rest[0]));
        }
        for (slot, name) in rest[1..5]
            .iter()
            .zip(["unroll", "vectorize", "cache", "inline"])
        {
            if !matches!(slot, 0 | 1) {
                return Err(format!("flag `{name}` must be 0 or 1, got {slot}"));
            }
        }
        if rest[5] < 1 || rest[6] < 1 {
            return Err(format!(
                "FPGA parameters ({}, {}) must be positive",
                rest[5], rest[6]
            ));
        }
        Ok(NodeConfig {
            spatial_splits,
            reduce_splits,
            reorder,
            fuse_outer: rest[0] as usize,
            unroll: rest[1] != 0,
            vectorize: rest[2] != 0,
            cache_shared: rest[3] != 0,
            inline_data: rest[4] != 0,
            fpga_partition: rest[5],
            fpga_pipeline: rest[6],
        })
    }

    /// Product of the level-`k` spatial factors over all axes.
    pub fn spatial_level_product(&self, k: usize) -> i64 {
        self.spatial_splits.iter().map(|f| f[k]).product()
    }

    /// Product of the level-`k` reduce factors over all axes.
    pub fn reduce_level_product(&self, k: usize) -> i64 {
        self.reduce_splits.iter().map(|f| f[k]).product()
    }
}

impl fmt::Display for NodeConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.encode())
    }
}

/// A schedule decision for a whole mini-graph: one [`NodeConfig`] for the
/// root (arithmetic) node, plus graph-level choices. Data-movement nodes
/// (pad / dilate) are either inlined into the root (the default, chosen by
/// Algorithm 1 in `flextensor::optimize`) or materialized.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphConfig {
    /// Schedule of the root compute node.
    pub root: NodeConfig,
}

impl GraphConfig {
    /// Wraps a root-node config.
    pub fn new(root: NodeConfig) -> GraphConfig {
        GraphConfig { root }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextensor_ir::ops;

    fn gemm_op() -> flextensor_ir::graph::ComputeOp {
        ops::gemm(64, 32, 16).root_op().clone()
    }

    #[test]
    fn naive_config_validates() {
        let op = gemm_op();
        let c = NodeConfig::naive(&op);
        c.validate(&op).unwrap();
        assert_eq!(c.spatial_splits, vec![vec![1, 1, 1, 64], vec![1, 1, 1, 32]]);
        assert_eq!(c.reduce_splits, vec![vec![1, 1, 16]]);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let op = gemm_op();
        let mut c = NodeConfig::naive(&op);
        c.spatial_splits[0] = vec![2, 4, 4, 2];
        c.reorder = vec![1, 0];
        c.unroll = true;
        c.cache_shared = true;
        c.fpga_partition = 4;
        let v = c.encode();
        let d = NodeConfig::decode(&op, &v).unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn bad_product_rejected() {
        let op = gemm_op();
        let mut c = NodeConfig::naive(&op);
        c.spatial_splits[0] = vec![2, 2, 2, 2]; // 16 != 64
        assert!(c.validate(&op).is_err());
    }

    #[test]
    fn bad_reorder_rejected() {
        let op = gemm_op();
        let mut c = NodeConfig::naive(&op);
        c.reorder = vec![0, 0];
        assert!(c.validate(&op).is_err());
        c.reorder = vec![0];
        assert!(c.validate(&op).is_err());
    }

    #[test]
    fn bad_fuse_rejected() {
        let op = gemm_op();
        let mut c = NodeConfig::naive(&op);
        c.fuse_outer = 0;
        assert!(c.validate(&op).is_err());
        c.fuse_outer = 3;
        assert!(c.validate(&op).is_err());
    }

    // One test per validate() message: each must lead with the offending
    // field and index, matching the spans flextensor-analyze reports.

    #[test]
    fn validate_names_spatial_split_count_mismatch() {
        let op = gemm_op();
        let mut c = NodeConfig::naive(&op);
        c.spatial_splits.pop();
        let err = c.validate(&op).unwrap_err();
        assert_eq!(
            err,
            "spatial_splits: expected 2 entries for the op's spatial axes, got 1"
        );
    }

    #[test]
    fn validate_names_reduce_split_count_mismatch() {
        let op = gemm_op();
        let mut c = NodeConfig::naive(&op);
        c.reduce_splits.clear();
        let err = c.validate(&op).unwrap_err();
        assert_eq!(
            err,
            "reduce_splits: expected 1 entries for the op's reduce axes, got 0"
        );
    }

    #[test]
    fn validate_names_spatial_factor_arity() {
        let op = gemm_op();
        let mut c = NodeConfig::naive(&op);
        c.spatial_splits[1] = vec![1, 32];
        let err = c.validate(&op).unwrap_err();
        assert_eq!(err, "spatial_splits[1]: axis j needs 4 factors, got 2");
    }

    #[test]
    fn validate_names_spatial_product_mismatch() {
        let op = gemm_op();
        let mut c = NodeConfig::naive(&op);
        c.spatial_splits[0] = vec![2, 2, 2, 2]; // 16 != 64
        let err = c.validate(&op).unwrap_err();
        assert_eq!(
            err,
            "spatial_splits[0]: axis i: factors [2, 2, 2, 2] do not multiply to extent 64"
        );
    }

    #[test]
    fn validate_names_reduce_factor_arity() {
        let op = gemm_op();
        let mut c = NodeConfig::naive(&op);
        c.reduce_splits[0] = vec![16];
        let err = c.validate(&op).unwrap_err();
        assert_eq!(err, "reduce_splits[0]: axis k needs 3 factors, got 1");
    }

    #[test]
    fn validate_names_reduce_product_mismatch() {
        let op = gemm_op();
        let mut c = NodeConfig::naive(&op);
        c.reduce_splits[0] = vec![1, 1, 8]; // 8 != 16
        let err = c.validate(&op).unwrap_err();
        assert_eq!(
            err,
            "reduce_splits[0]: axis k: factors [1, 1, 8] do not multiply to extent 16"
        );
    }

    #[test]
    fn validate_names_reorder_length_mismatch() {
        let op = gemm_op();
        let mut c = NodeConfig::naive(&op);
        c.reorder = vec![0];
        let err = c.validate(&op).unwrap_err();
        assert_eq!(err, "reorder: expected length 2, got 1");
    }

    #[test]
    fn validate_names_reorder_permutation_slot() {
        let op = gemm_op();
        let mut c = NodeConfig::naive(&op);
        c.reorder = vec![0, 0]; // duplicate surfaces at slot 1
        let err = c.validate(&op).unwrap_err();
        assert_eq!(
            err,
            "reorder[1]: entry 0 makes [0, 0] not a permutation of 0..2"
        );
        c.reorder = vec![5, 1]; // out-of-range surfaces at slot 0
        let err = c.validate(&op).unwrap_err();
        assert_eq!(
            err,
            "reorder[0]: entry 5 makes [5, 1] not a permutation of 0..2"
        );
    }

    #[test]
    fn validate_names_fuse_depth_range() {
        let op = gemm_op();
        let mut c = NodeConfig::naive(&op);
        c.fuse_outer = 3;
        let err = c.validate(&op).unwrap_err();
        assert_eq!(err, "fuse_outer: depth 3 out of range 1..=2");
    }

    #[test]
    fn validate_names_fpga_fields_separately() {
        let op = gemm_op();
        let mut c = NodeConfig::naive(&op);
        c.fpga_partition = 0;
        let err = c.validate(&op).unwrap_err();
        assert_eq!(err, "fpga_partition: factor 0 must be positive");
        c.fpga_partition = 1;
        c.fpga_pipeline = 4;
        let err = c.validate(&op).unwrap_err();
        assert_eq!(err, "fpga_pipeline: depth 4 out of range 1..=3");
    }

    #[test]
    fn decode_rejects_wrong_length() {
        let op = gemm_op();
        assert!(NodeConfig::decode(&op, &[1, 2, 3]).is_err());
    }

    #[test]
    fn decode_rejects_truncated_vector() {
        let op = gemm_op();
        let mut v = NodeConfig::naive(&op).encode();
        v.pop();
        let err = NodeConfig::decode(&op, &v).unwrap_err();
        assert!(err.contains("truncated"), "{err}");
        assert!(NodeConfig::decode(&op, &[]).is_err());
    }

    #[test]
    fn decode_rejects_oversized_vector() {
        let op = gemm_op();
        let mut v = NodeConfig::naive(&op).encode();
        v.push(1);
        let err = NodeConfig::decode(&op, &v).unwrap_err();
        assert!(err.contains("oversized"), "{err}");
    }

    #[test]
    fn decode_rejects_nonpositive_factors() {
        let op = gemm_op();
        for bad in [-64, 0] {
            let mut v = NodeConfig::naive(&op).encode();
            v[3] = bad; // innermost factor of the first spatial axis
            let err = NodeConfig::decode(&op, &v).unwrap_err();
            assert!(err.contains("not positive"), "{err}");
        }
    }

    #[test]
    fn decode_rejects_out_of_range_reorder() {
        let op = gemm_op();
        let base = NodeConfig::naive(&op).encode();
        let reorder_at = 2 * SPATIAL_PARTS + REDUCE_PARTS; // first reorder slot
        for bad in [-1, 2, 100] {
            let mut v = base.clone();
            v[reorder_at] = bad;
            let err = NodeConfig::decode(&op, &v).unwrap_err();
            assert!(err.contains("reorder"), "{err}");
        }
    }

    #[test]
    fn decode_rejects_bad_fuse_and_flags() {
        let op = gemm_op();
        let base = NodeConfig::naive(&op).encode();
        let tail = 2 * SPATIAL_PARTS + REDUCE_PARTS + 2; // fuse slot offset
        for (off, bad) in [(0, 0), (0, -1), (0, 3), (1, 2), (2, -1), (4, 5)] {
            let mut v = base.clone();
            v[tail + off] = bad;
            assert!(
                NodeConfig::decode(&op, &v).is_err(),
                "slot {off} value {bad} accepted"
            );
        }
    }

    #[test]
    fn decode_rejects_nonpositive_fpga_params() {
        let op = gemm_op();
        let base = NodeConfig::naive(&op).encode();
        let n = base.len();
        for slot in [n - 2, n - 1] {
            for bad in [0, -4] {
                let mut v = base.clone();
                v[slot] = bad;
                let err = NodeConfig::decode(&op, &v).unwrap_err();
                assert!(err.contains("FPGA"), "{err}");
            }
        }
    }

    #[test]
    fn encode_delta_matches_full_encode_for_single_moves() {
        let op = gemm_op();
        let base = {
            let mut c = NodeConfig::naive(&op);
            c.spatial_splits = vec![vec![2, 4, 4, 2], vec![4, 1, 8, 1]];
            c.reduce_splits = vec![vec![4, 2, 2]];
            c.cache_shared = true;
            c
        };
        let base_key = base.encode();
        let mut neighbors = Vec::new();
        for (axis, split) in [(0usize, vec![4, 2, 4, 2]), (1, vec![8, 1, 4, 1])] {
            let mut n = base.clone();
            n.spatial_splits[axis] = split;
            neighbors.push(n);
        }
        let mut n = base.clone();
        n.reduce_splits[0] = vec![2, 4, 2];
        neighbors.push(n);
        let mut n = base.clone();
        n.reorder = vec![1, 0];
        neighbors.push(n);
        for (field, value) in [(0usize, 2i64), (1, 1), (2, 1), (3, 0), (4, 0)] {
            let mut n = base.clone();
            match field {
                0 => n.fuse_outer = value as usize,
                1 => n.unroll = value != 0,
                2 => n.vectorize = value != 0,
                3 => n.cache_shared = value != 0,
                _ => n.inline_data = value != 0,
            }
            neighbors.push(n);
        }
        let mut n = base.clone();
        n.fpga_partition = 8;
        n.fpga_pipeline = 3;
        neighbors.push(n);
        neighbors.push(base.clone()); // the no-move neighbor
        for (i, n) in neighbors.iter().enumerate() {
            let mut derived = vec![-7, -7]; // pre-existing words must survive
            assert!(
                n.encode_delta_into(&base, &base_key, &mut derived),
                "neighbor {i} structurally compatible"
            );
            assert_eq!(derived[..2], [-7, -7]);
            assert_eq!(derived[2..], n.encode(), "neighbor {i} key diverged");
        }
    }

    #[test]
    fn encode_delta_rejects_structural_mismatch() {
        let op = gemm_op();
        let base = NodeConfig::naive(&op);
        let base_key = base.encode();
        let mut out = vec![1, 2, 3];
        let mut n = base.clone();
        n.spatial_splits.pop();
        assert!(!n.encode_delta_into(&base, &base_key, &mut out));
        let mut n = base.clone();
        n.reduce_splits[0] = vec![1, 16]; // wrong arity
        assert!(!n.encode_delta_into(&base, &base_key, &mut out));
        let mut n = base.clone();
        n.reorder = vec![0];
        assert!(!n.encode_delta_into(&base, &base_key, &mut out));
        // Wrong base-key length (e.g. a stale or foreign key).
        assert!(!base.encode_delta_into(&base, &base_key[1..], &mut out));
        assert_eq!(out, vec![1, 2, 3], "rejections must not touch out");
    }

    #[test]
    fn level_products() {
        let op = gemm_op();
        let mut c = NodeConfig::naive(&op);
        c.spatial_splits = vec![vec![2, 2, 4, 4], vec![4, 1, 8, 1]];
        assert_eq!(c.spatial_level_product(0), 8);
        assert_eq!(c.spatial_level_product(2), 32);
        assert_eq!(c.reduce_level_product(2), 16);
    }
}
