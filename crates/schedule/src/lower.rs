//! Lowering: (mini-graph, schedule config, target) → loop nest + features.
//!
//! This implements §5.3 of the paper — the "optimized schedule
//! implementation" — producing the target-specific structures of Fig. 4:
//!
//! * **CPU** (Fig. 4a): multi-level tiling via recursive split/reorder, a
//!   fused+parallelized outermost loop, unroll, and a vectorized innermost
//!   loop.
//! * **GPU** (Fig. 4b): outer factors fused and bound to `blockIdx`,
//!   virtual-thread register tiling, a fused `threadIdx` level, optional
//!   shared-memory staging of input tiles per outer-reduce step, and
//!   register accumulation.
//! * **FPGA** (Fig. 4c): a PE array (`#PE` = product of inner spatial
//!   factors) executing the workload in rounds under the three-stage
//!   read/compute/write pipeline; buffering and partitioning are recorded
//!   for the §5.2 analytical model.
//!
//! Data-movement producers (pad / dilate nodes) are inlined into the root
//! body by default (`inline` / `compute_at` primitives); with
//! `inline_data = false` they are materialized as separate naive nests.

use flextensor_ir::expr::Expr;
use flextensor_ir::graph::{ComputeOp, Graph};

use crate::config::{NodeConfig, TargetKind};
use crate::features::KernelFeatures;
use crate::interval::footprint;
use crate::nest::{LoopKind, Stmt};
use crate::template::{
    compile_groups, compute_features, data_producers, inline_producers, load_groups, tile_env,
    FeatureConsts,
};

/// A fully lowered kernel: an executable statement sequence plus the
/// feature summary consumed by the performance models.
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredKernel {
    /// Target the kernel was lowered for.
    pub target: TargetKind,
    /// Top-level statements, executed in order (materialized producers
    /// first, then the scheduled root nest).
    pub stmts: Vec<Stmt>,
    /// Cost-model features.
    pub features: KernelFeatures,
}

impl LoweredKernel {
    /// Pretty-prints the lowered code.
    pub fn render(&self) -> String {
        self.stmts.iter().map(|s| s.to_string()).collect()
    }
}

/// Errors produced during lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError(pub String);

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lowering failed: {}", self.0)
    }
}

impl std::error::Error for LowerError {}

/// Builds a naive serial nest executing a data-movement producer.
fn naive_producer_nest(op: &ComputeOp) -> Stmt {
    let mut stmt = Stmt::Store {
        tensor: op.output.clone(),
        indices: op.spatial.iter().map(|a| Expr::var(&a.name)).collect(),
        value: op.body.clone(),
        reduce: false,
        combiner: op.combiner,
    };
    for a in op.spatial.iter().rev() {
        stmt = Stmt::loop_(&a.name, a.extent, LoopKind::Serial, vec![stmt]);
    }
    stmt
}

/// Per-axis sub-loop variable names for spatial level `k`.
fn svar(axis: &str, level: usize) -> String {
    format!("{axis}.{level}")
}

/// Reconstructs the original axis index from its per-level variables:
/// `((v0*f1 + v1)*f2 + v2)*f3 + v3`.
fn rebuild_index(axis: &str, factors: &[i64]) -> Expr {
    let mut e = Expr::var(svar(axis, 0));
    for (level, &f) in factors.iter().enumerate().skip(1) {
        e = e * f + Expr::var(svar(axis, level));
    }
    e
}

/// Replaces fused-level variables: decomposes `fused_var` into the level-
/// `level` variables of `axes` (in the given order, last axis fastest).
/// Returns substitutions var-name → expression.
fn decompose_fused(
    fused_var: &str,
    axes: &[(String, i64)], // (axis name, factor at this level)
    level: usize,
) -> Vec<(String, Expr)> {
    let mut subs = Vec::new();
    let mut stride = 1i64;
    // Build from fastest (last) to slowest.
    for (name, f) in axes.iter().rev() {
        let e = if stride == 1 {
            Expr::var(fused_var).rem(Expr::int(*f))
        } else {
            (Expr::var(fused_var) / stride).rem(Expr::int(*f))
        };
        subs.push((svar(name, level), e));
        stride *= f;
    }
    subs
}

struct LowerCtx<'g> {
    root: &'g ComputeOp,
    cfg: &'g NodeConfig,
    body: Expr,
    /// Spatial axis order per the reorder permutation.
    order: Vec<usize>,
}

impl<'g> LowerCtx<'g> {
    fn new(graph: &'g Graph, cfg: &'g NodeConfig) -> Result<LowerCtx<'g>, LowerError> {
        // Schedule the anchor (the arithmetic core); element-wise consumer
        // nodes are fused as epilogue passes after the main nest.
        let root = graph.anchor_op();
        cfg.validate(root).map_err(LowerError)?;
        let body = if cfg.inline_data {
            inline_producers(graph, root, &root.body)
        } else {
            root.body.clone()
        };
        Ok(LowerCtx {
            root,
            cfg,
            body,
            order: cfg.reorder.clone(),
        })
    }

    fn spatial_factor(&self, axis_idx: usize, level: usize) -> i64 {
        self.cfg.spatial_splits[axis_idx][level]
    }

    /// The store statement with all axis variables rewritten into their
    /// per-level reconstruction.
    fn store_stmt(&self) -> Stmt {
        let mut value = self.body.clone();
        let mut indices: Vec<Expr> = Vec::new();
        for (i, a) in self.root.spatial.iter().enumerate() {
            let idx = rebuild_index(&a.name, &self.cfg.spatial_splits[i]);
            value = value.substitute(&a.name, &idx);
            indices.push(idx);
        }
        for (i, a) in self.root.reduce.iter().enumerate() {
            let idx = rebuild_index(&a.name, &self.cfg.reduce_splits[i]);
            value = value.substitute(&a.name, &idx);
        }
        Stmt::Store {
            tensor: self.root.output.clone(),
            indices: indices
                .iter()
                .map(flextensor_ir::simplify::simplify)
                .collect(),
            value: flextensor_ir::simplify::simplify(&value),
            reduce: !self.root.reduce.is_empty(),
            combiner: self.root.combiner,
        }
    }

    /// Wraps `inner` in per-axis spatial loops at `level` (reorder order,
    /// outermost first), with the given loop kind.
    fn wrap_spatial_level(&self, inner: Vec<Stmt>, level: usize, kind: LoopKind) -> Vec<Stmt> {
        let mut body = inner;
        for &ax in self.order.iter().rev() {
            let f = self.spatial_factor(ax, level);
            let name = svar(&self.root.spatial[ax].name, level);
            body = vec![Stmt::loop_(name, f, kind, body)];
        }
        body
    }

    /// Wraps `inner` in per-axis reduce loops at `level`.
    fn wrap_reduce_level(&self, inner: Vec<Stmt>, level: usize, kind: LoopKind) -> Vec<Stmt> {
        let mut body = inner;
        for (i, a) in self.root.reduce.iter().enumerate().rev() {
            let f = self.cfg.reduce_splits[i][level];
            body = vec![Stmt::loop_(svar(&a.name, level), f, kind, body)];
        }
        body
    }

    /// Wraps `inner` in a fused loop over the level-`level` factors of the
    /// axes `axes_subset` (indices into spatial axes, reorder order), and
    /// substitutes the decomposition into every statement below.
    fn wrap_fused(
        &self,
        inner: Vec<Stmt>,
        axes_subset: &[usize],
        level: usize,
        fused_name: &str,
        kind: LoopKind,
    ) -> Vec<Stmt> {
        let pairs: Vec<(String, i64)> = axes_subset
            .iter()
            .map(|&ax| {
                (
                    self.root.spatial[ax].name.clone(),
                    self.spatial_factor(ax, level),
                )
            })
            .collect();
        let extent: i64 = pairs.iter().map(|(_, f)| f).product();
        let subs = decompose_fused(fused_name, &pairs, level);
        let inner = inner
            .into_iter()
            .map(|s| substitute_stmt(s, &subs))
            .collect();
        vec![Stmt::loop_(fused_name, extent, kind, inner)]
    }
}

/// Substitutes variables in every expression of a statement tree.
fn substitute_stmt(stmt: Stmt, subs: &[(String, Expr)]) -> Stmt {
    let sub_expr = |mut e: Expr| {
        for (name, val) in subs {
            e = e.substitute(name, val);
        }
        e
    };
    match stmt {
        Stmt::For {
            var,
            extent,
            kind,
            body,
        } => Stmt::For {
            var,
            extent,
            kind,
            body: body.into_iter().map(|s| substitute_stmt(s, subs)).collect(),
        },
        Stmt::Store {
            tensor,
            indices,
            value,
            reduce,
            combiner,
        } => Stmt::Store {
            tensor,
            indices: indices.into_iter().map(sub_expr).collect(),
            value: sub_expr(value),
            reduce,
            combiner,
        },
        s @ Stmt::StageIn { .. } => s,
    }
}

/// Lowers a mini-graph under a schedule configuration for a target.
///
/// # Errors
///
/// Returns [`LowerError`] when the configuration does not validate against
/// the graph's root op.
pub fn lower(
    graph: &Graph,
    cfg: &NodeConfig,
    target: TargetKind,
) -> Result<LoweredKernel, LowerError> {
    let ctx = LowerCtx::new(graph, cfg)?;
    let root = ctx.root;

    // ---- common feature material -------------------------------------
    // Shared with the split-phase fast path (`crate::template`): both
    // paths call `compute_features` on identical inputs, so features agree
    // bit-for-bit by construction.
    let groups = load_groups(graph, &ctx.body);
    let data_producers_list = data_producers(graph, root);
    let consts = FeatureConsts {
        root_flops: root.flops(),
        epilogue_flops: graph.epilogue_chain().iter().map(|e| e.flops()).sum(),
        output_elements: root.spatial_size(),
        reduce_size: root.reduce_size(),
        input_bytes_total: graph.inputs().map(|t| t.bytes()).sum(),
        materialized_data_bytes: data_producers_list
            .iter()
            .map(|p| {
                let out_bytes = p.spatial_size() * 4;
                // write once + read back by consumer
                2 * out_bytes
            })
            .sum(),
    };
    let features = compute_features(root, cfg, target, &compile_groups(root, &groups), &consts);

    // ---- build the nest ------------------------------------------------
    let store = ctx.store_stmt();
    let inner_kind = if cfg.unroll {
        LoopKind::Unrolled
    } else {
        LoopKind::Serial
    };

    let nest = match target {
        TargetKind::Cpu => {
            // innermost: vectorized last-axis inner loop.
            let mut body = vec![store];
            // a.3 loops (reorder order); last one vectorized when requested.
            for (pos, &ax) in ctx.order.iter().enumerate().rev() {
                let f = ctx.spatial_factor(ax, 3);
                let kind = if pos == ctx.order.len() - 1 && cfg.vectorize {
                    LoopKind::Vectorized
                } else {
                    inner_kind
                };
                body = vec![Stmt::loop_(svar(&root.spatial[ax].name, 3), f, kind, body)];
            }
            body = ctx.wrap_reduce_level(body, 2, inner_kind);
            body = ctx.wrap_reduce_level(body, 1, LoopKind::Serial);
            body = ctx.wrap_spatial_level(body, 2, LoopKind::Serial);
            body = ctx.wrap_reduce_level(body, 0, LoopKind::Serial);
            body = ctx.wrap_spatial_level(body, 1, LoopKind::Serial);
            // Unfused level-0 loops (axes beyond fuse_outer) stay serial.
            for &ax in ctx.order.iter().skip(cfg.fuse_outer).rev() {
                let f = ctx.spatial_factor(ax, 0);
                body = vec![Stmt::loop_(
                    svar(&root.spatial[ax].name, 0),
                    f,
                    LoopKind::Serial,
                    body,
                )];
            }
            let fused_axes: Vec<usize> = ctx.order.iter().take(cfg.fuse_outer).copied().collect();
            ctx.wrap_fused(body, &fused_axes, 0, "par", LoopKind::Parallel)
        }
        TargetKind::Gpu => {
            let mut body = vec![store];
            body = ctx.wrap_reduce_level(body, 2, inner_kind);
            body = ctx.wrap_spatial_level(body, 3, inner_kind);
            body = ctx.wrap_reduce_level(body, 1, LoopKind::Serial);
            // Shared-memory staging once per outer reduce step.
            if cfg.cache_shared {
                let block_env = tile_env(root, cfg, &[1, 2, 3], &[1, 2]);
                let mut staged: Vec<Stmt> = groups
                    .iter()
                    .map(|g| Stmt::StageIn {
                        tensor: g.tensor.clone(),
                        bytes: g
                            .sites
                            .iter()
                            .map(|ix| footprint(ix, &block_env))
                            .max()
                            .unwrap_or(0)
                            * 4,
                    })
                    .collect();
                staged.extend(body);
                body = staged;
            }
            body = ctx.wrap_reduce_level(body, 0, LoopKind::Serial);
            body = ctx.wrap_fused(body, &ctx.order.clone(), 2, "thread", LoopKind::ThreadIdx);
            body = ctx.wrap_spatial_level(body, 1, LoopKind::VThread);
            ctx.wrap_fused(body, &ctx.order.clone(), 0, "block", LoopKind::BlockIdx)
        }
        TargetKind::Fpga => {
            // PE-array feature accounting (pe/rounds/buffer/stream bytes)
            // lives in `compute_features`; only the pipelined round nest is
            // built here.
            let mut body = vec![store];
            body = ctx.wrap_reduce_level(body, 2, inner_kind);
            body = ctx.wrap_spatial_level(body, 3, LoopKind::Unrolled);
            body = ctx.wrap_spatial_level(body, 2, LoopKind::Unrolled);
            body = ctx.wrap_reduce_level(body, 1, LoopKind::Serial);
            body = ctx.wrap_reduce_level(body, 0, LoopKind::Serial);
            body = ctx.wrap_spatial_level(body, 1, LoopKind::Serial);
            ctx.wrap_fused(body, &ctx.order.clone(), 0, "round", LoopKind::Pipelined)
        }
    };

    // Materialized producers execute first; epilogue consumers (bias,
    // activation) run after the main nest. At the model level the epilogue
    // is fused at writeback — its FLOPs are already counted by
    // `compute_features`, but it adds no extra DRAM round trip (the
    // anchor's intermediate stays in registers).
    let mut stmts: Vec<Stmt> = Vec::new();
    if !cfg.inline_data {
        for p in &data_producers_list {
            stmts.push(naive_producer_nest(p));
        }
    }
    stmts.extend(nest);
    for e in graph.epilogue_chain() {
        stmts.push(naive_producer_nest(e));
    }

    Ok(LoweredKernel {
        target,
        stmts,
        features,
    })
}

/// Convenience: lower with the naive (identity) schedule.
pub fn lower_naive(graph: &Graph, target: TargetKind) -> LoweredKernel {
    let cfg = NodeConfig::naive(graph.anchor_op());
    lower(graph, &cfg, target).expect("naive config always validates")
}

/// Intermediate tensors that must be materialized (allocated) when running
/// the kernel: producer outputs when `inline_data` is false.
pub fn materialized_intermediates(graph: &Graph, cfg: &NodeConfig) -> Vec<String> {
    if cfg.inline_data {
        return Vec::new();
    }
    data_producers(graph, graph.anchor_op())
        .iter()
        .map(|p| p.output.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextensor_ir::ops::{self, ConvParams};

    fn tiled_gemm_cfg(op: &ComputeOp) -> NodeConfig {
        let mut c = NodeConfig::naive(op);
        c.spatial_splits = vec![vec![4, 2, 4, 2], vec![2, 2, 4, 2]];
        c.reduce_splits = vec![vec![4, 2, 2]];
        c.cache_shared = true;
        c.unroll = true;
        c.vectorize = true;
        c
    }

    #[test]
    fn gpu_gemm_nest_structure() {
        let g = ops::gemm(64, 32, 16);
        let cfg = tiled_gemm_cfg(g.root_op());
        let k = lower(&g, &cfg, TargetKind::Gpu).unwrap();
        assert_eq!(k.stmts.len(), 1);
        // block(8) * vthread(2*2) * thread(16) * inner(2*2) = 64*32 stores
        // per full reduce... store executions = spatial * reduce = 64*32*16.
        assert_eq!(k.stmts[0].store_executions(), 64 * 32 * 16);
        let txt = k.render();
        assert!(txt.contains("blockIdx block in 0..8"), "{txt}");
        assert!(txt.contains("threadIdx thread in 0..16"), "{txt}");
        assert!(txt.contains("stage A"), "{txt}");
        assert!(txt.contains("stage B"), "{txt}");
    }

    #[test]
    fn gpu_features_products() {
        let g = ops::gemm(64, 32, 16);
        let cfg = tiled_gemm_cfg(g.root_op());
        let k = lower(&g, &cfg, TargetKind::Gpu).unwrap();
        let f = &k.features;
        assert_eq!(f.grid, 8);
        assert_eq!(f.vthreads, 4);
        assert_eq!(f.block_threads, 16);
        assert_eq!(f.thread_tile, 4);
        assert_eq!(f.reduce_outer, 4);
        assert_eq!(f.reduce_mid, 2);
        assert_eq!(f.reduce_inner, 2);
        assert!(f.contiguous_inner);
        // Shared tile per block per r0 step: block tiles are i:2*4*2=16,
        // j:2*4*2=16, k per step:2*2=4, so A is 16x4 and B is 4x16 elems.
        assert_eq!(f.shared_bytes_per_block, (16 * 4 + 4 * 16) * 4);
    }

    #[test]
    fn cpu_nest_has_parallel_and_vectorized_loops() {
        let g = ops::gemm(64, 32, 16);
        let mut cfg = tiled_gemm_cfg(g.root_op());
        cfg.fuse_outer = 2;
        let k = lower(&g, &cfg, TargetKind::Cpu).unwrap();
        let txt = k.render();
        assert!(txt.contains("parallel par in 0..8"), "{txt}");
        assert!(txt.contains("vectorize j.3 in 0..2"), "{txt}");
        assert_eq!(k.stmts[0].store_executions(), 64 * 32 * 16);
    }

    #[test]
    fn fpga_features_pipeline_model_inputs() {
        let g = ops::gemm(64, 32, 16);
        let mut cfg = tiled_gemm_cfg(g.root_op());
        cfg.fpga_partition = 4;
        cfg.fpga_pipeline = 3;
        let k = lower(&g, &cfg, TargetKind::Fpga).unwrap();
        let f = k.features.fpga.expect("fpga features");
        assert_eq!(f.pe, (4 * 2) * (4 * 2)); // level2 * level3 products
        assert_eq!(f.rounds, (4 * 2) * (2 * 2));
        assert_eq!(f.partition, 4);
        assert_eq!(f.pipeline, 3);
        assert!(f.buffer_bytes > 0);
    }

    #[test]
    fn conv_inlines_padding_by_default() {
        let g = ops::conv2d(ConvParams::same(1, 4, 8, 3), 8, 8);
        let k = lower_naive(&g, TargetKind::Gpu);
        // Single nest (pad inlined), body reads I directly via select.
        assert_eq!(k.stmts.len(), 1);
        let txt = k.render();
        assert!(txt.contains("select"), "{txt}");
        assert!(txt.contains("I["), "{txt}");
        assert!(!txt.contains("P["), "padding must be inlined:\n{txt}");
    }

    #[test]
    fn conv_materializes_padding_when_asked() {
        let g = ops::conv2d(ConvParams::same(1, 4, 8, 3), 8, 8);
        let mut cfg = NodeConfig::naive(g.root_op());
        cfg.inline_data = false;
        let k = lower(&g, &cfg, TargetKind::Gpu).unwrap();
        assert_eq!(k.stmts.len(), 2); // pad nest + conv nest
        assert!(k.features.data_node_bytes > 0);
        assert_eq!(materialized_intermediates(&g, &cfg), vec!["P".to_string()]);
    }

    #[test]
    fn transposed_conv_inlines_two_producers() {
        let p = ConvParams {
            batch: 1,
            in_channels: 4,
            out_channels: 4,
            kernel: 4,
            stride: 2,
            padding: 1,
            dilation: 1,
            groups: 1,
        };
        let g = ops::conv_transpose2d(p, 6, 6);
        let k = lower_naive(&g, TargetKind::Cpu);
        let txt = k.render();
        assert!(!txt.contains("P["), "{txt}");
        assert!(!txt.contains("D["), "{txt}");
        assert!(txt.contains("I["), "{txt}");
    }

    #[test]
    fn invalid_config_is_rejected() {
        let g = ops::gemm(64, 32, 16);
        let mut cfg = NodeConfig::naive(g.root_op());
        cfg.spatial_splits[0] = vec![3, 1, 1, 1];
        assert!(lower(&g, &cfg, TargetKind::Gpu).is_err());
    }

    #[test]
    fn grid_accounts_reorder() {
        let g = ops::gemm(64, 32, 16);
        let mut cfg = tiled_gemm_cfg(g.root_op());
        cfg.reorder = vec![1, 0];
        cfg.fuse_outer = 1;
        let k = lower(&g, &cfg, TargetKind::Cpu).unwrap();
        // parallel loop fuses only axis j's level-0 factor (2).
        assert_eq!(k.features.parallel_chunks, 2);
        // reorder makes axis i innermost; i is not the last output dim.
        assert!(!k.features.contiguous_inner);
    }
}
