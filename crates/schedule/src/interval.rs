//! Conservative interval analysis over index expressions.
//!
//! Used by lowering to compute *tile footprints*: given ranges for the loop
//! variables that vary inside a tile, the interval of each tensor index
//! expression bounds how many distinct elements the tile touches per
//! dimension. Footprints drive shared-memory sizing, cache-fit estimation,
//! and register-pressure proxies in the performance models.

use std::collections::HashMap;

use flextensor_ir::expr::{BinOp, Expr};

/// An inclusive integer interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Lower bound (inclusive).
    pub lo: i64,
    /// Upper bound (inclusive).
    pub hi: i64,
}

impl Interval {
    /// A single point.
    pub fn point(v: i64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// `[lo, hi]`, normalizing a reversed pair.
    pub fn new(lo: i64, hi: i64) -> Interval {
        if lo <= hi {
            Interval { lo, hi }
        } else {
            Interval { lo: hi, hi: lo }
        }
    }

    /// Number of integers covered.
    pub fn len(&self) -> i64 {
        self.hi - self.lo + 1
    }

    /// Whether the interval covers exactly one point.
    pub fn is_empty(&self) -> bool {
        false // intervals are always non-empty by construction
    }

    /// Smallest interval containing both.
    pub fn hull(&self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

/// Variable environment: loop variable → value interval.
pub type IntervalEnv = HashMap<String, Interval>;

/// Evaluates the interval of `expr` under `env`. Variables absent from
/// `env` are treated as the single point 0 (i.e. fixed at the tile origin),
/// which is the convention lowering uses for outer loops.
pub fn eval_interval(expr: &Expr, env: &IntervalEnv) -> Interval {
    match expr {
        Expr::IConst(v) => Interval::point(*v),
        Expr::FConst(v) => Interval::point(*v as i64),
        Expr::Var(name) => env.get(name).copied().unwrap_or(Interval::point(0)),
        Expr::Bin(op, a, b) => {
            let x = eval_interval(a, env);
            let y = eval_interval(b, env);
            match op {
                BinOp::Add => Interval::new(x.lo + y.lo, x.hi + y.hi),
                BinOp::Sub => Interval::new(x.lo - y.hi, x.hi - y.lo),
                BinOp::Mul => {
                    let c = [x.lo * y.lo, x.lo * y.hi, x.hi * y.lo, x.hi * y.hi];
                    Interval::new(
                        *c.iter().min().expect("non-empty"),
                        *c.iter().max().expect("non-empty"),
                    )
                }
                BinOp::Div => {
                    if y.lo == y.hi && y.lo != 0 {
                        let d = y.lo;
                        let c = [x.lo / d, x.hi / d];
                        Interval::new(*c.iter().min().unwrap(), *c.iter().max().unwrap())
                    } else {
                        // Unknown divisor: be conservative.
                        Interval::new(-x.lo.abs().max(x.hi.abs()), x.lo.abs().max(x.hi.abs()))
                    }
                }
                BinOp::Mod => {
                    if y.lo == y.hi && y.lo > 0 {
                        let m = y.lo;
                        if x.lo >= 0 && x.hi < m {
                            x // already within [0, m)
                        } else {
                            // The result wraps, so a single interval cannot
                            // be exact. Since intervals here size tile
                            // *footprints*, bound the result's length by the
                            // argument's length: a wrap-around index (e.g. a
                            // circulant `(r - s + k) % k`) touches at most
                            // as many distinct elements as its argument has
                            // values.
                            Interval::new(0, (m - 1).min(x.len() - 1))
                        }
                    } else {
                        Interval::new(x.lo.min(0), x.hi.max(0))
                    }
                }
                BinOp::Min => Interval::new(x.lo.min(y.lo), x.hi.min(y.hi)),
                BinOp::Max => Interval::new(x.lo.max(y.lo), x.hi.max(y.hi)),
            }
        }
        Expr::Select(_, a, b) => eval_interval(a, env).hull(eval_interval(b, env)),
        // A load used as an index is out of scope for index analysis; treat
        // as unknown-at-origin.
        Expr::Load { .. } => Interval::point(0),
    }
}

/// Computes the footprint (number of distinct elements, conservatively) a
/// set of index expressions touches as the variables in `env` range over
/// their intervals: the product of per-dimension interval lengths.
pub fn footprint(indices: &[Expr], env: &IntervalEnv) -> i64 {
    indices
        .iter()
        .map(|ix| eval_interval(ix, env).len())
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(pairs: &[(&str, i64, i64)]) -> IntervalEnv {
        pairs
            .iter()
            .map(|&(n, lo, hi)| (n.to_string(), Interval::new(lo, hi)))
            .collect()
    }

    #[test]
    fn affine_conv_index() {
        // i*2 + rx where i in [0,7], rx in [0,2] -> [0, 16].
        let e = Expr::var("i") * 2 + Expr::var("rx");
        let iv = eval_interval(&e, &env(&[("i", 0, 7), ("rx", 0, 2)]));
        assert_eq!((iv.lo, iv.hi), (0, 16));
        assert_eq!(iv.len(), 17);
    }

    #[test]
    fn missing_vars_are_origin() {
        let e = Expr::var("outer") * 100 + Expr::var("inner");
        let iv = eval_interval(&e, &env(&[("inner", 0, 3)]));
        assert_eq!((iv.lo, iv.hi), (0, 3));
    }

    #[test]
    fn sub_flips_bounds() {
        let e = Expr::int(10) - Expr::var("i");
        let iv = eval_interval(&e, &env(&[("i", 0, 4)]));
        assert_eq!((iv.lo, iv.hi), (6, 10));
    }

    #[test]
    fn mod_with_constant_divisor() {
        let e = Expr::var("i").rem(Expr::int(8));
        let iv = eval_interval(&e, &env(&[("i", 0, 100)]));
        assert_eq!((iv.lo, iv.hi), (0, 7));
        // Tight when the argument already fits.
        let iv2 = eval_interval(&e, &env(&[("i", 2, 5)]));
        assert_eq!((iv2.lo, iv2.hi), (2, 5));
    }

    #[test]
    fn div_by_constant() {
        let e = Expr::var("i") / 4;
        let iv = eval_interval(&e, &env(&[("i", 0, 15)]));
        assert_eq!((iv.lo, iv.hi), (0, 3));
    }

    #[test]
    fn select_takes_hull() {
        let e = Expr::select(
            Expr::var("i").lt(Expr::int(2)),
            Expr::var("i"),
            Expr::int(0),
        );
        let iv = eval_interval(&e, &env(&[("i", 0, 9)]));
        assert_eq!((iv.lo, iv.hi), (0, 9));
    }

    #[test]
    fn footprint_is_product_of_dims() {
        // A[i, j*1 + rx] with i in [0,3], j in [0,7], rx in [0,2].
        let idx = vec![Expr::var("i"), Expr::var("j") + Expr::var("rx")];
        let fp = footprint(&idx, &env(&[("i", 0, 3), ("j", 0, 7), ("rx", 0, 2)]));
        assert_eq!(fp, 4 * 10);
    }

    #[test]
    fn mul_handles_negatives() {
        let e = Expr::var("i") * -3;
        let iv = eval_interval(&e, &env(&[("i", 0, 4)]));
        assert_eq!((iv.lo, iv.hi), (-12, 0));
    }
}
