//! The loop-nest IR that schedules lower to.
//!
//! A scheduled kernel is a tree of [`Stmt`]s: annotated `for` loops around
//! stores. This is the common representation consumed by both the
//! interpreter (`flextensor-interp`, which executes it to verify that a
//! schedule preserves the operator's semantics) and the performance models
//! (`flextensor-sim`).

use std::fmt;

use flextensor_ir::expr::Expr;
use flextensor_ir::graph::Combiner;

/// How a loop executes on the target (the lowered form of the Table 2
/// primitives `parallel`, `vectorize`, `unroll`, `bind`, `pipeline`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopKind {
    /// Ordinary sequential loop.
    Serial,
    /// CPU multithreaded loop (`parallel` primitive).
    Parallel,
    /// SIMD-vectorized loop (`vectorize` primitive).
    Vectorized,
    /// Fully unrolled loop (`unroll` primitive).
    Unrolled,
    /// GPU grid dimension (`bind` to `blockIdx`).
    BlockIdx,
    /// GPU virtual thread (register-tile) dimension.
    VThread,
    /// GPU thread dimension (`bind` to `threadIdx`).
    ThreadIdx,
    /// FPGA pipelined loop (`pipeline` primitive).
    Pipelined,
}

impl LoopKind {
    /// Whether iterations of this loop may execute concurrently.
    pub fn is_concurrent(&self) -> bool {
        !matches!(self, LoopKind::Serial | LoopKind::Unrolled)
    }
}

impl fmt::Display for LoopKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LoopKind::Serial => "for",
            LoopKind::Parallel => "parallel",
            LoopKind::Vectorized => "vectorize",
            LoopKind::Unrolled => "unroll",
            LoopKind::BlockIdx => "blockIdx",
            LoopKind::VThread => "vthread",
            LoopKind::ThreadIdx => "threadIdx",
            LoopKind::Pipelined => "pipeline",
        };
        f.write_str(s)
    }
}

/// A statement in the lowered kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `for var in 0..extent { body }` with an execution annotation.
    For {
        /// Loop variable name, unique within the kernel.
        var: String,
        /// Trip count.
        extent: i64,
        /// Execution annotation.
        kind: LoopKind,
        /// Loop body, executed in order.
        body: Vec<Stmt>,
    },
    /// `tensor[indices] = value`, or an accumulation when `reduce` is true:
    /// `tensor[indices] = combine(tensor[indices], value)`.
    Store {
        /// Destination tensor.
        tensor: String,
        /// One index expression per tensor dimension.
        indices: Vec<Expr>,
        /// Value to store / accumulate.
        value: Expr,
        /// Whether this is a reduction update.
        reduce: bool,
        /// Combiner used when `reduce` is true.
        combiner: Combiner,
    },
    /// Cost-model annotation: this block stages `bytes` of `tensor` into
    /// GPU shared memory (or an FPGA BRAM buffer) cooperatively, once per
    /// execution of the annotation. Semantically a no-op.
    StageIn {
        /// Source tensor being staged.
        tensor: String,
        /// Bytes staged per execution.
        bytes: i64,
    },
}

impl Stmt {
    /// Convenience constructor for a loop.
    pub fn loop_(var: impl Into<String>, extent: i64, kind: LoopKind, body: Vec<Stmt>) -> Stmt {
        Stmt::For {
            var: var.into(),
            extent,
            kind,
            body,
        }
    }

    /// Total number of times the store statements inside this statement
    /// execute (the dynamic iteration count).
    pub fn store_executions(&self) -> u64 {
        match self {
            Stmt::For { extent, body, .. } => {
                (*extent as u64) * body.iter().map(Stmt::store_executions).sum::<u64>()
            }
            Stmt::Store { .. } => 1,
            Stmt::StageIn { .. } => 0,
        }
    }

    /// Maximum loop depth below (and including) this statement.
    pub fn depth(&self) -> usize {
        match self {
            Stmt::For { body, .. } => 1 + body.iter().map(Stmt::depth).max().unwrap_or(0),
            _ => 0,
        }
    }

    /// Visits every statement in the tree, outer-first.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Stmt)) {
        f(self);
        if let Stmt::For { body, .. } = self {
            for s in body {
                s.visit(f);
            }
        }
    }

    /// Sum of [`Stmt::StageIn`] bytes, weighted by the trip counts of the
    /// loops enclosing each annotation.
    pub fn staged_bytes(&self) -> i64 {
        fn walk(s: &Stmt, mult: i64) -> i64 {
            match s {
                Stmt::For { extent, body, .. } => body.iter().map(|b| walk(b, mult * extent)).sum(),
                Stmt::StageIn { bytes, .. } => mult * bytes,
                Stmt::Store { .. } => 0,
            }
        }
        walk(self, 1)
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            Stmt::For {
                var,
                extent,
                kind,
                body,
            } => {
                writeln!(f, "{pad}{kind} {var} in 0..{extent} {{")?;
                for s in body {
                    s.fmt_indented(f, indent + 1)?;
                }
                writeln!(f, "{pad}}}")
            }
            Stmt::Store {
                tensor,
                indices,
                value,
                reduce,
                ..
            } => {
                let ix: Vec<String> = indices.iter().map(|e| e.to_string()).collect();
                let op = if *reduce { "+=" } else { "=" };
                writeln!(f, "{pad}{tensor}[{}] {op} {value}", ix.join(", "))
            }
            Stmt::StageIn { tensor, bytes } => {
                writeln!(f, "{pad}// stage {tensor} ({bytes} B) into on-chip memory")
            }
        }
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Stmt {
        Stmt::loop_(
            "i",
            4,
            LoopKind::Parallel,
            vec![
                Stmt::StageIn {
                    tensor: "A".into(),
                    bytes: 64,
                },
                Stmt::loop_(
                    "j",
                    8,
                    LoopKind::Vectorized,
                    vec![Stmt::Store {
                        tensor: "O".into(),
                        indices: vec![Expr::var("i"), Expr::var("j")],
                        value: Expr::load("A", vec![Expr::var("i"), Expr::var("j")]),
                        reduce: false,
                        combiner: Combiner::Sum,
                    }],
                ),
            ],
        )
    }

    #[test]
    fn store_executions_multiply_extents() {
        assert_eq!(sample().store_executions(), 32);
    }

    #[test]
    fn depth_counts_loops() {
        assert_eq!(sample().depth(), 2);
    }

    #[test]
    fn staged_bytes_weighted_by_enclosing_loops() {
        assert_eq!(sample().staged_bytes(), 4 * 64);
    }

    #[test]
    fn display_renders_nest() {
        let s = format!("{}", sample());
        assert!(s.contains("parallel i in 0..4"));
        assert!(s.contains("vectorize j in 0..8"));
        assert!(s.contains("O[i, j] = A[i, j]"));
    }

    #[test]
    fn visit_reaches_all_nodes() {
        let mut n = 0;
        sample().visit(&mut |_| n += 1);
        assert_eq!(n, 4);
    }
}
