//! The schedule primitives of Table 2, as a structured, printable
//! description of what a [`crate::config::NodeConfig`] does on a
//! given target.
//!
//! This is the human-readable "schedule" view (Fig. 3d): examples and the
//! benchmark harnesses print it so a reader can see exactly which
//! primitives the explorer chose.

use std::fmt;

use flextensor_ir::graph::ComputeOp;

use crate::config::{NodeConfig, TargetKind};

/// One applied schedule primitive (a row of Table 2 with its parameters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Primitive {
    /// Divide a loop into sub-loops with the given factors.
    Split {
        /// Loop being split.
        loop_name: String,
        /// Sub-loop extents, outermost first.
        factors: Vec<i64>,
    },
    /// Change loop execution order.
    Reorder {
        /// New order, outermost first.
        order: Vec<String>,
    },
    /// Merge adjacent loops into one hyper-loop.
    Fuse {
        /// Loops being fused, outermost first.
        loops: Vec<String>,
        /// Name of the fused loop.
        into: String,
    },
    /// Unroll inner loops.
    Unroll {
        /// Loops being unrolled.
        loops: Vec<String>,
    },
    /// Vectorize a loop.
    Vectorize {
        /// The vectorized loop.
        loop_name: String,
        /// Vector length.
        length: i64,
    },
    /// Inline a producer node into its consumer.
    Inline {
        /// Inlined node name.
        node: String,
    },
    /// CPU: run a loop across threads.
    Parallel {
        /// The parallelized loop.
        loop_name: String,
    },
    /// GPU: bind a loop to a hardware index.
    Bind {
        /// The bound loop.
        loop_name: String,
        /// `"blockIdx"`, `"threadIdx"` or `"vthread"`.
        to: &'static str,
    },
    /// GPU: stage a tensor tile into shared memory.
    Cache {
        /// Cached tensor.
        tensor: String,
    },
    /// FPGA: buffer input rows on chip.
    Buffer {
        /// Buffered bytes per round.
        bytes: i64,
    },
    /// FPGA: overlap pipeline stages.
    Pipeline {
        /// Number of overlapped stages.
        stages: i64,
    },
    /// FPGA: partition on-chip memory to raise bandwidth.
    Partition {
        /// Partition factor.
        factor: i64,
    },
}

impl fmt::Display for Primitive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Primitive::Split { loop_name, factors } => {
                write!(f, "split: {loop_name} -> {factors:?}")
            }
            Primitive::Reorder { order } => write!(f, "reorder: {}", order.join(", ")),
            Primitive::Fuse { loops, into } => {
                write!(f, "fuse: ({}) -> {into}", loops.join(", "))
            }
            Primitive::Unroll { loops } => write!(f, "unroll: {}", loops.join(", ")),
            Primitive::Vectorize { loop_name, length } => {
                write!(f, "vectorize: {loop_name} (x{length})")
            }
            Primitive::Inline { node } => write!(f, "inline: {node}"),
            Primitive::Parallel { loop_name } => write!(f, "parallel: {loop_name}"),
            Primitive::Bind { loop_name, to } => write!(f, "bind: {loop_name} -> {to}"),
            Primitive::Cache { tensor } => write!(f, "cache(shared): {tensor}"),
            Primitive::Buffer { bytes } => write!(f, "buffer: {bytes} B per round"),
            Primitive::Pipeline { stages } => write!(f, "pipeline: {stages} stages"),
            Primitive::Partition { factor } => write!(f, "partition: x{factor}"),
        }
    }
}

/// Expands a node config into the primitive sequence it applies on the
/// given target (the Fig. 3d view of a schedule).
pub fn describe(op: &ComputeOp, cfg: &NodeConfig, target: TargetKind) -> Vec<Primitive> {
    let mut out = Vec::new();
    for (a, fs) in op.spatial.iter().zip(&cfg.spatial_splits) {
        out.push(Primitive::Split {
            loop_name: a.name.clone(),
            factors: fs.clone(),
        });
    }
    for (a, fs) in op.reduce.iter().zip(&cfg.reduce_splits) {
        out.push(Primitive::Split {
            loop_name: a.name.clone(),
            factors: fs.clone(),
        });
    }
    out.push(Primitive::Reorder {
        order: cfg
            .reorder
            .iter()
            .map(|&i| op.spatial[i].name.clone())
            .collect(),
    });
    if cfg.inline_data {
        out.push(Primitive::Inline {
            node: "data producers (pad/dilate)".into(),
        });
    }
    match target {
        TargetKind::Cpu => {
            let fused: Vec<String> = cfg
                .reorder
                .iter()
                .take(cfg.fuse_outer)
                .map(|&i| format!("{}.0", op.spatial[i].name))
                .collect();
            out.push(Primitive::Fuse {
                loops: fused,
                into: "par".into(),
            });
            out.push(Primitive::Parallel {
                loop_name: "par".into(),
            });
            if cfg.vectorize {
                let last = cfg.reorder.last().copied().unwrap_or(0);
                out.push(Primitive::Vectorize {
                    loop_name: format!("{}.3", op.spatial[last].name),
                    length: cfg.spatial_splits[last][3],
                });
            }
        }
        TargetKind::Gpu => {
            out.push(Primitive::Bind {
                loop_name: "block".into(),
                to: "blockIdx",
            });
            for &i in &cfg.reorder {
                out.push(Primitive::Bind {
                    loop_name: format!("{}.1", op.spatial[i].name),
                    to: "vthread",
                });
            }
            out.push(Primitive::Bind {
                loop_name: "thread".into(),
                to: "threadIdx",
            });
            if cfg.cache_shared {
                for t in op.input_tensors() {
                    out.push(Primitive::Cache { tensor: t });
                }
            }
        }
        TargetKind::Fpga => {
            out.push(Primitive::Pipeline {
                stages: cfg.fpga_pipeline,
            });
            out.push(Primitive::Partition {
                factor: cfg.fpga_partition,
            });
        }
    }
    if cfg.unroll {
        out.push(Primitive::Unroll {
            loops: op.spatial.iter().map(|a| format!("{}.3", a.name)).collect(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextensor_ir::ops;

    #[test]
    fn gpu_schedule_lists_binds_and_caches() {
        let g = ops::gemm(64, 32, 16);
        let op = g.root_op();
        let mut cfg = NodeConfig::naive(op);
        cfg.cache_shared = true;
        let prims = describe(op, &cfg, TargetKind::Gpu);
        let text: Vec<String> = prims.iter().map(|p| p.to_string()).collect();
        assert!(text.iter().any(|s| s.contains("bind: block -> blockIdx")));
        assert!(text.iter().any(|s| s.contains("cache(shared): A")));
        assert!(text.iter().any(|s| s.contains("cache(shared): B")));
    }

    #[test]
    fn cpu_schedule_lists_parallel_and_vectorize() {
        let g = ops::gemm(64, 32, 16);
        let op = g.root_op();
        let mut cfg = NodeConfig::naive(op);
        cfg.vectorize = true;
        cfg.fuse_outer = 2;
        let prims = describe(op, &cfg, TargetKind::Cpu);
        let text: Vec<String> = prims.iter().map(|p| p.to_string()).collect();
        assert!(text.iter().any(|s| s.contains("parallel: par")));
        assert!(text.iter().any(|s| s.contains("vectorize: j.3")));
        assert!(text.iter().any(|s| s.contains("fuse: (i.0, j.0)")));
    }

    #[test]
    fn fpga_schedule_lists_pipeline_and_partition() {
        let g = ops::gemm(64, 32, 16);
        let op = g.root_op();
        let mut cfg = NodeConfig::naive(op);
        cfg.fpga_pipeline = 3;
        cfg.fpga_partition = 8;
        let prims = describe(op, &cfg, TargetKind::Fpga);
        let text: Vec<String> = prims.iter().map(|p| p.to_string()).collect();
        assert!(text.iter().any(|s| s.contains("pipeline: 3 stages")));
        assert!(text.iter().any(|s| s.contains("partition: x8")));
    }

    #[test]
    fn every_axis_gets_a_split() {
        let g = ops::conv2d(ops::ConvParams::same(1, 8, 8, 3), 14, 14);
        let op = g.root_op();
        let cfg = NodeConfig::naive(op);
        let prims = describe(op, &cfg, TargetKind::Gpu);
        let splits = prims
            .iter()
            .filter(|p| matches!(p, Primitive::Split { .. }))
            .count();
        assert_eq!(splits, op.spatial.len() + op.reduce.len());
    }
}
