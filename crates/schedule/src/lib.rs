//! # flextensor-schedule
//!
//! Schedule primitives, configurations, and lowering for the FlexTensor
//! reproduction.
//!
//! FlexTensor separates *compute* (described with `flextensor-ir`) from
//! *schedule* — the sequence of optimization primitives of Table 2 (split,
//! reorder, fuse, unroll, vectorize, parallel, bind, cache, inline,
//! buffer, pipeline, partition). This crate provides:
//!
//! * [`config`] — [`config::NodeConfig`], a point in the
//!   schedule space: multi-way split factors per loop, reorder
//!   permutation, fusion depth, unroll/vectorize/cache flags and FPGA
//!   pipeline parameters, with the flat integer encoding of Fig. 3e.
//! * [`nest`] — the loop-nest IR ([`nest::Stmt`]) schedules lower
//!   to, executable by `flextensor-interp` and costed by `flextensor-sim`.
//! * [`mod@lower`] — target-specific lowering (Fig. 4a/4b/4c) from a
//!   mini-graph and a config to a [`lower::LoweredKernel`]
//!   with exact tiling [features](features::KernelFeatures).
//! * [`template`] — split-phase lowering: a per-(graph, target)
//!   [`template::LoweredTemplate`] caches the config-independent half of
//!   lowering so exploration derives per-candidate features without
//!   re-walking the expression tree (see `docs/PERFORMANCE.md`).
//! * [`delta`] — incremental evaluation: [`delta::DeltaEvaluator`]
//!   recomputes only the features a single-field config mutation can
//!   affect, bit-identical to the full path by construction.
//! * [`interval`] — the index-interval analysis behind tile-footprint
//!   computation (shared-memory sizing, cache-fit, register pressure).
//! * [`primitives`] — the printable Table 2 primitive sequence a config
//!   applies (the Fig. 3d view).
//!
//! # Examples
//!
//! ```
//! use flextensor_ir::ops;
//! use flextensor_schedule::{config::{NodeConfig, TargetKind}, lower::lower};
//!
//! let g = ops::gemm(256, 256, 256);
//! let mut cfg = NodeConfig::naive(g.root_op());
//! cfg.spatial_splits = vec![vec![8, 2, 16, 1], vec![4, 2, 8, 4]];
//! cfg.reduce_splits = vec![vec![32, 2, 4]];
//! cfg.cache_shared = true;
//! let kernel = lower(&g, &cfg, TargetKind::Gpu)?;
//! assert_eq!(kernel.features.block_threads, 16 * 8);
//! # Ok::<(), flextensor_schedule::lower::LowerError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod delta;
pub mod features;
pub mod interval;
pub mod lower;
pub mod nest;
pub mod primitives;
pub mod template;

pub use config::{NodeConfig, TargetKind, REDUCE_PARTS, SPATIAL_PARTS};
pub use delta::{delta_features, delta_features_with, DeltaEvaluator, DeltaScratch};
pub use features::{FpgaFeatures, KernelFeatures};
pub use lower::{lower, lower_naive, LowerError, LoweredKernel};
pub use nest::{LoopKind, Stmt};
pub use template::LoweredTemplate;
