//! Property-based tests of lowering invariants: for any valid schedule
//! configuration, the generated nest performs exactly `spatial × reduce`
//! store executions, features match the configuration's level products,
//! and rendering round-trips structurally.

use flextensor_ir::ops::{self, ConvParams};
use flextensor_schedule::config::{NodeConfig, TargetKind};
use flextensor_schedule::lower::lower;
use flextensor_schedule::nest::{LoopKind, Stmt};
use proptest::prelude::*;

fn factorization(n: i64, parts: usize) -> impl Strategy<Value = Vec<i64>> {
    let primes = {
        let mut out = Vec::new();
        let mut m = n;
        let mut d = 2;
        while d * d <= m {
            while m % d == 0 {
                out.push(d);
                m /= d;
            }
            d += 1;
        }
        if m > 1 {
            out.push(m);
        }
        out
    };
    proptest::collection::vec(0..parts, primes.len()).prop_map(move |slots| {
        let mut f = vec![1i64; parts];
        for (&p, &s) in primes.iter().zip(&slots) {
            f[s] *= p;
        }
        f
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Dynamic store count equals the full iteration domain regardless of
    /// how the loops were split, reordered or fused.
    #[test]
    fn store_executions_cover_exactly_the_domain(
        fk in factorization(16, 4),
        fi in factorization(12, 4),
        fj in factorization(12, 4),
        frc in factorization(6, 3),
        swap in any::<bool>(),
        target_idx in 0usize..3,
    ) {
        let g = ops::conv2d(ConvParams::same(1, 6, 16, 3), 12, 12);
        let op = g.root_op();
        let mut cfg = NodeConfig::naive(op);
        cfg.spatial_splits[1] = fk;
        cfg.spatial_splits[2] = fi;
        cfg.spatial_splits[3] = fj;
        cfg.reduce_splits[0] = frc;
        if swap {
            cfg.reorder = vec![0, 1, 3, 2];
        }
        let target = [TargetKind::Cpu, TargetKind::Gpu, TargetKind::Fpga][target_idx];
        let kernel = lower(&g, &cfg, target).unwrap();
        let expect = (op.spatial_size() * op.reduce_size()) as u64;
        let stores: u64 = kernel.stmts.iter().map(Stmt::store_executions).sum();
        prop_assert_eq!(stores, expect);
    }

    /// Feature products always reconstruct the configuration's levels.
    #[test]
    fn features_match_config_products(
        fi in factorization(32, 4),
        fj in factorization(48, 4),
        fk in factorization(24, 3),
        cache in any::<bool>(),
    ) {
        let g = ops::gemm(32, 48, 24);
        let mut cfg = NodeConfig::naive(g.root_op());
        cfg.spatial_splits = vec![fi.clone(), fj.clone()];
        cfg.reduce_splits = vec![fk.clone()];
        cfg.cache_shared = cache;
        let f = lower(&g, &cfg, TargetKind::Gpu).unwrap().features;
        prop_assert_eq!(f.grid, fi[0] * fj[0]);
        prop_assert_eq!(f.vthreads, fi[1] * fj[1]);
        prop_assert_eq!(f.block_threads, fi[2] * fj[2]);
        prop_assert_eq!(f.thread_tile, fi[3] * fj[3]);
        prop_assert_eq!(f.reduce_outer, fk[0]);
        prop_assert_eq!(f.reduce_mid, fk[1]);
        prop_assert_eq!(f.reduce_inner, fk[2]);
        prop_assert_eq!(f.cache_shared, cache);
        prop_assert!(f.shared_bytes_per_block > 0);
    }

    /// Every GPU nest has exactly one blockIdx loop and one threadIdx
    /// fused loop, with threadIdx strictly inside blockIdx.
    #[test]
    fn gpu_nests_have_canonical_binding_structure(
        fi in factorization(16, 4),
        fj in factorization(16, 4),
    ) {
        let g = ops::gemm(16, 16, 8);
        let mut cfg = NodeConfig::naive(g.root_op());
        cfg.spatial_splits = vec![fi, fj];
        let kernel = lower(&g, &cfg, TargetKind::Gpu).unwrap();
        let mut blocks = 0;
        let mut threads = 0;
        kernel.stmts[0].visit(&mut |s| {
            if let Stmt::For { kind, .. } = s {
                match kind {
                    LoopKind::BlockIdx => blocks += 1,
                    LoopKind::ThreadIdx => threads += 1,
                    _ => {}
                }
            }
        });
        prop_assert_eq!(blocks, 1);
        prop_assert_eq!(threads, 1);
        // The outermost statement must be the blockIdx loop.
        let outer_is_block = matches!(
            &kernel.stmts[0],
            Stmt::For { kind: LoopKind::BlockIdx, .. }
        );
        prop_assert!(outer_is_block, "outermost loop is not blockIdx");
    }
}

#[test]
fn rendered_nests_mention_every_bound_variable() {
    let g = ops::gemm(8, 8, 8);
    let mut cfg = NodeConfig::naive(g.root_op());
    cfg.spatial_splits = vec![vec![2, 1, 2, 2], vec![2, 2, 2, 1]];
    cfg.reduce_splits = vec![vec![2, 2, 2]];
    let k = lower(&g, &cfg, TargetKind::Cpu).unwrap();
    let txt = k.render();
    for var in ["par", "k.0", "k.1", "k.2"] {
        assert!(txt.contains(var), "missing {var} in:\n{txt}");
    }
}

#[test]
fn cpu_fpga_nests_have_no_gpu_bindings() {
    let g = ops::gemm(16, 16, 8);
    let cfg = NodeConfig::naive(g.root_op());
    for target in [TargetKind::Cpu, TargetKind::Fpga] {
        let k = lower(&g, &cfg, target).unwrap();
        k.stmts[0].visit(&mut |s| {
            if let Stmt::For { kind, .. } = s {
                assert!(
                    !matches!(
                        kind,
                        LoopKind::BlockIdx | LoopKind::ThreadIdx | LoopKind::VThread
                    ),
                    "{target}: GPU binding in nest"
                );
            }
        });
    }
}
