//! Property tests for the delta-aware key encoder: for *any* pair of
//! structurally compatible configs, [`NodeConfig::encode_delta_into`] must
//! produce exactly the words [`NodeConfig::encode_into`] would — the memo
//! cache's key identity may never depend on which of the two paths encoded
//! a candidate. Structurally incompatible pairs must be rejected without
//! touching the output buffer.

use flextensor_schedule::config::{NodeConfig, REDUCE_PARTS, SPATIAL_PARTS};
use proptest::prelude::*;

/// Deterministic xorshift so config generation needs no external RNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// An arbitrary config with `ns` spatial and `nr` reduce axes. Values are
/// unconstrained (the encoder is total over configs; validity is
/// `validate`'s business, not the key's).
fn config(rng: &mut Rng, ns: usize, nr: usize) -> NodeConfig {
    let factor = |rng: &mut Rng| (rng.next() % 64 + 1) as i64;
    NodeConfig {
        spatial_splits: (0..ns)
            .map(|_| (0..SPATIAL_PARTS).map(|_| factor(rng)).collect())
            .collect(),
        reduce_splits: (0..nr)
            .map(|_| (0..REDUCE_PARTS).map(|_| factor(rng)).collect())
            .collect(),
        reorder: (0..ns).map(|_| (rng.next() as usize) % ns).collect(),
        fuse_outer: (rng.next() as usize) % ns + 1,
        unroll: rng.next().is_multiple_of(2),
        vectorize: rng.next().is_multiple_of(2),
        cache_shared: rng.next().is_multiple_of(2),
        inline_data: rng.next().is_multiple_of(2),
        fpga_partition: (rng.next() % 16 + 1) as i64,
        fpga_pipeline: (rng.next() % 3 + 1) as i64,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Derived key == full encode, for arbitrary compatible (base, cfg)
    /// pairs — including pairs that differ in every field.
    #[test]
    fn derived_key_equals_full_encode(
        ns in 1usize..4,
        nr in 0usize..3,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng(seed | 1);
        let base = config(&mut rng, ns, nr);
        let cfg = config(&mut rng, ns, nr);
        let base_key = base.encode();
        let mut derived = vec![42i64]; // pre-existing words must survive
        prop_assert!(cfg.encode_delta_into(&base, &base_key, &mut derived));
        prop_assert_eq!(&derived[..1], &[42i64][..]);
        let full = cfg.encode();
        prop_assert_eq!(&derived[1..], full.as_slice());
    }

    /// Self-derivation (the no-move neighbor) reproduces the base key.
    #[test]
    fn self_derivation_is_the_identity(
        ns in 1usize..4,
        nr in 0usize..3,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng(seed | 1);
        let base = config(&mut rng, ns, nr);
        let base_key = base.encode();
        let mut derived = Vec::new();
        prop_assert!(base.encode_delta_into(&base, &base_key, &mut derived));
        prop_assert_eq!(derived, base_key);
    }

    /// A single-move neighbor (the shape the search produces) derives the
    /// same key as a full encode, whichever field moved.
    #[test]
    fn single_move_neighbors_derive_exact_keys(
        ns in 1usize..4,
        nr in 0usize..3,
        seed in any::<u64>(),
        field in 0usize..8,
    ) {
        let mut rng = Rng(seed | 1);
        let base = config(&mut rng, ns, nr);
        let mut n = base.clone();
        match field {
            0 => n.spatial_splits[(rng.next() as usize) % ns] =
                (0..SPATIAL_PARTS).map(|_| (rng.next() % 64 + 1) as i64).collect(),
            1 if nr > 0 => n.reduce_splits[(rng.next() as usize) % nr] =
                (0..REDUCE_PARTS).map(|_| (rng.next() % 64 + 1) as i64).collect(),
            2 => n.reorder[(rng.next() as usize) % ns] = (rng.next() as usize) % ns,
            3 => n.fuse_outer = (rng.next() as usize) % ns + 1,
            4 => n.unroll = !n.unroll,
            5 => n.vectorize = !n.vectorize,
            6 => n.cache_shared = !n.cache_shared,
            _ => n.fpga_partition += 1,
        }
        let base_key = base.encode();
        let mut derived = Vec::new();
        prop_assert!(n.encode_delta_into(&base, &base_key, &mut derived));
        let full = n.encode();
        prop_assert_eq!(derived, full);
    }

    /// Shape mismatches are rejected and leave the output untouched.
    #[test]
    fn incompatible_shapes_are_rejected(
        ns in 1usize..4,
        nr in 0usize..3,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng(seed | 1);
        let base = config(&mut rng, ns, nr);
        let other = config(&mut rng, ns + 1, nr);
        let base_key = base.encode();
        let mut out = vec![7i64];
        prop_assert!(!other.encode_delta_into(&base, &base_key, &mut out));
        prop_assert_eq!(out, vec![7i64]);
    }
}
