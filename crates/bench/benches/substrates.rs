//! Criterion micro-benchmarks over the substrates whose speed determines
//! exploration cost: lowering, cost-model evaluation, space operations,
//! the Q-network training step, the GBT cost model, and the interpreter.
//!
//! These are the "inner loops" of the system — one exploration trial is
//! roughly `starts × (lower + cost-model)` plus amortized NN training.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use flextensor_autotvm::gbt::Gbt;
use flextensor_explore::space::Space;
use flextensor_interp::machine::run_kernel;
use flextensor_interp::reference::random_inputs;
use flextensor_ir::ops::{self, ConvParams};
use flextensor_nn::{AdaDelta, Mlp, TrainScratch};
use flextensor_schedule::config::TargetKind;
use flextensor_schedule::lower::{lower, lower_naive};
use flextensor_sim::library::expert_gpu_config;
use flextensor_sim::model::Evaluator;
use flextensor_sim::spec::{v100, Device};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_lowering(c: &mut Criterion) {
    let gemm = ops::gemm(1024, 1024, 1024);
    let gemm_cfg = expert_gpu_config(gemm.root_op());
    c.bench_function("lower/gemm_1024_gpu", |b| {
        b.iter(|| lower(black_box(&gemm), black_box(&gemm_cfg), TargetKind::Gpu).unwrap())
    });
    let conv = ops::conv2d(ConvParams::same(1, 256, 512, 3), 28, 28);
    let conv_cfg = expert_gpu_config(conv.root_op());
    c.bench_function("lower/conv2d_c8_gpu", |b| {
        b.iter(|| lower(black_box(&conv), black_box(&conv_cfg), TargetKind::Gpu).unwrap())
    });
    c.bench_function("lower/conv2d_c8_cpu", |b| {
        b.iter(|| lower(black_box(&conv), black_box(&conv_cfg), TargetKind::Cpu).unwrap())
    });
}

fn bench_evaluation(c: &mut Criterion) {
    let conv = ops::conv2d(ConvParams::same(1, 256, 512, 3), 28, 28);
    let cfg = expert_gpu_config(conv.root_op());
    let ev = Evaluator::new(Device::Gpu(v100()));
    c.bench_function("evaluate/conv2d_c8_v100", |b| {
        b.iter(|| ev.evaluate(black_box(&conv), black_box(&cfg)))
    });
}

fn bench_space(c: &mut Criterion) {
    let conv = ops::conv2d(ConvParams::same(1, 256, 512, 3), 28, 28);
    let space = Space::new(&conv, TargetKind::Gpu);
    let mut rng = StdRng::seed_from_u64(0);
    c.bench_function("space/random_point", |b| {
        b.iter(|| space.random_point(black_box(&mut rng)))
    });
    let p = space.start_point();
    let dirs = space.directions().to_vec();
    c.bench_function("space/apply_all_directions", |b| {
        b.iter(|| {
            for &d in &dirs {
                black_box(space.apply(black_box(&p), d));
            }
        })
    });
    c.bench_function("space/features", |b| {
        b.iter(|| space.features(black_box(&p)))
    });
}

fn bench_nn(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut net = Mlp::new(&[40, 64, 64, 64, 70], &mut rng);
    let mut opt = AdaDelta::new(net.num_params());
    let xs: Vec<Vec<f64>> = (0..64).map(|i| vec![(i % 7) as f64 / 7.0; 40]).collect();
    let ys: Vec<Vec<f64>> = (0..64).map(|i| vec![(i % 5) as f64 / 5.0; 70]).collect();
    let xr: Vec<&[f64]> = xs.iter().map(Vec::as_slice).collect();
    let yr: Vec<&[f64]> = ys.iter().map(Vec::as_slice).collect();
    let mut scratch = TrainScratch::new();
    c.bench_function("nn/q_network_train_batch64", |b| {
        b.iter(|| net.train_batch_with(black_box(&xr), black_box(&yr), &mut opt, &mut scratch))
    });
    let x = vec![0.3; 40];
    c.bench_function("nn/q_network_forward", |b| {
        b.iter(|| net.forward(black_box(&x)))
    });
}

fn bench_gbt(c: &mut Criterion) {
    let xs: Vec<Vec<f64>> = (0..256)
        .map(|i| {
            (0..10)
                .map(|j| ((i * 31 + j * 17) % 100) as f64 / 100.0)
                .collect()
        })
        .collect();
    let ys: Vec<f64> = xs.iter().map(|x| x.iter().sum::<f64>()).collect();
    c.bench_function("gbt/fit_256x10_20trees", |b| {
        b.iter(|| Gbt::fit(black_box(&xs), black_box(&ys), 20, 4, 0.3))
    });
    let model = Gbt::fit(&xs, &ys, 20, 4, 0.3);
    c.bench_function("gbt/predict", |b| {
        b.iter(|| model.predict(black_box(&xs[0])))
    });
}

fn bench_interpreter(c: &mut Criterion) {
    let g = ops::conv2d(ConvParams::same(1, 4, 8, 3), 8, 8);
    let kernel = lower_naive(&g, TargetKind::Gpu);
    let inputs = random_inputs(&g, 3);
    c.bench_function("interp/conv2d_4x8x8x8", |b| {
        b.iter(|| run_kernel(black_box(&g), black_box(&kernel), black_box(&inputs)).unwrap())
    });
}

fn bench_search_trial(c: &mut Criterion) {
    use flextensor_explore::methods::{search, Method, SearchOptions};
    let g = ops::conv2d(ConvParams::same(1, 64, 128, 3), 14, 14);
    let ev = Evaluator::new(Device::Gpu(v100()));
    c.bench_function("search/q_method_10_trials", |b| {
        b.iter(|| {
            search(
                black_box(&g),
                &ev,
                Method::QMethod,
                &SearchOptions {
                    trials: 10,
                    starts: 4,
                    initial_samples: 8,
                    ..SearchOptions::default()
                },
            )
            .unwrap()
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_lowering, bench_evaluation, bench_space, bench_nn, bench_gbt,
              bench_interpreter, bench_search_trial
}
criterion_main!(benches);
