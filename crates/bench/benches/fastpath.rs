//! Criterion micro-benchmarks for the zero-allocation evaluation fast
//! path: split-phase lowering vs. full re-lowering per candidate, pool
//! throughput on both paths, and scratch-buffer Q-network inference vs.
//! the allocating entry points.
//!
//! Run with `cargo bench -p flextensor-bench --bench fastpath`; the
//! tracked end-to-end numbers live in `results/BENCH_explore.json`
//! (emitted by the `probe_perf` bin — see `docs/PERFORMANCE.md`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use flextensor_explore::pool::EvalPool;
use flextensor_explore::space::Space;
use flextensor_ir::ops::{self, ConvParams};
use flextensor_nn::{AdaDelta, Mlp, MlpScratch, TrainScratch};
use flextensor_schedule::config::TargetKind;
use flextensor_schedule::lower::lower;
use flextensor_schedule::template::LoweredTemplate;
use flextensor_sim::library::expert_gpu_config;
use flextensor_sim::model::Evaluator;
use flextensor_sim::spec::{v100, Device};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_lower_per_candidate(c: &mut Criterion) {
    let gemm = ops::gemm(1024, 1024, 1024);
    let gemm_cfg = expert_gpu_config(gemm.root_op());
    let gemm_tpl = LoweredTemplate::new(&gemm, TargetKind::Gpu);
    c.bench_function("fastpath/gemm_full_lower", |b| {
        b.iter(|| lower(black_box(&gemm), black_box(&gemm_cfg), TargetKind::Gpu).unwrap())
    });
    c.bench_function("fastpath/gemm_template_features", |b| {
        b.iter(|| gemm_tpl.features(black_box(&gemm_cfg)).unwrap())
    });

    let conv = ops::conv2d(ConvParams::same(1, 256, 512, 3), 28, 28);
    let conv_cfg = expert_gpu_config(conv.root_op());
    let conv_tpl = LoweredTemplate::new(&conv, TargetKind::Gpu);
    c.bench_function("fastpath/conv2d_full_lower", |b| {
        b.iter(|| lower(black_box(&conv), black_box(&conv_cfg), TargetKind::Gpu).unwrap())
    });
    c.bench_function("fastpath/conv2d_template_features", |b| {
        b.iter(|| conv_tpl.features(black_box(&conv_cfg)).unwrap())
    });
    c.bench_function("fastpath/conv2d_template_build", |b| {
        b.iter(|| LoweredTemplate::new(black_box(&conv), TargetKind::Gpu))
    });
}

fn bench_pool_throughput(c: &mut Criterion) {
    let conv = ops::conv2d(ConvParams::same(1, 64, 128, 3), 14, 14);
    let ev = Evaluator::new(Device::Gpu(v100()));
    let space = Space::new(&conv, ev.target());
    let mut rng = StdRng::seed_from_u64(7);
    let cands: Vec<_> = (0..64).map(|_| space.random_point(&mut rng)).collect();
    c.bench_function("fastpath/pool_batch64_template", |b| {
        b.iter(|| EvalPool::new(&conv, &ev, 1, 1 << 16).evaluate_batch(black_box(&cands)))
    });
    c.bench_function("fastpath/pool_batch64_reference", |b| {
        b.iter(|| EvalPool::new_reference(&conv, &ev, 1, 1 << 16).evaluate_batch(black_box(&cands)))
    });
}

fn bench_q_forward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    // The paper's Q-network shape over a conv2d-sized feature vector.
    let net = Mlp::new(&[38, 64, 64, 64, 24], &mut rng);
    let x = vec![0.3; 38];
    c.bench_function("fastpath/q_forward_alloc", |b| {
        b.iter(|| net.forward(black_box(&x)))
    });
    let mut scratch = MlpScratch::new();
    let mut out = Vec::new();
    c.bench_function("fastpath/q_forward_into", |b| {
        b.iter(|| net.forward_into(black_box(&x), &mut scratch, &mut out))
    });
    let xs: Vec<Vec<f64>> = (0..24).map(|i| vec![0.01 * i as f64; 38]).collect();
    let refs: Vec<&[f64]> = xs.iter().map(Vec::as_slice).collect();
    c.bench_function("fastpath/q_forward_batch24", |b| {
        b.iter(|| net.forward_batch(black_box(&refs), &mut scratch, &mut out))
    });

    let mut trainee = net.clone();
    let mut opt = AdaDelta::new(trainee.num_params());
    let ys: Vec<Vec<f64>> = (0..24).map(|_| vec![0.5; 24]).collect();
    let yrefs: Vec<&[f64]> = ys.iter().map(Vec::as_slice).collect();
    let mut train_scratch = TrainScratch::new();
    c.bench_function("fastpath/q_train_batch24_scratch", |b| {
        b.iter(|| trainee.train_batch_with(black_box(&refs), &yrefs, &mut opt, &mut train_scratch))
    });
}

criterion_group!(
    fastpath,
    bench_lower_per_candidate,
    bench_pool_throughput,
    bench_q_forward
);
criterion_main!(fastpath);
