//! # flextensor-bench
//!
//! Benchmark harness for the FlexTensor reproduction: one binary per paper
//! table/figure (see DESIGN.md's per-experiment index) plus Criterion
//! micro-benches over the substrates. The library part hosts shared
//! harness utilities in [`harness`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
