//! Shared utilities for the figure/table regeneration binaries: aligned
//! text tables, CSV emission, and geometric means.

/// Geometric mean of positive values (ignores non-finite / non-positive
/// entries; returns 0 when none remain).
pub fn geomean(values: &[f64]) -> f64 {
    let logs: Vec<f64> = values
        .iter()
        .copied()
        .filter(|v| v.is_finite() && *v > 0.0)
        .map(f64::ln)
        .collect();
    if logs.is_empty() {
        0.0
    } else {
        (logs.iter().sum::<f64>() / logs.len() as f64).exp()
    }
}

/// A simple aligned text table with a CSV twin.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Renders as an aligned text table.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(ncol) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths.get(i).copied().unwrap_or(0);
                line.push_str(&format!("{c:>pad$}"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncol - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// One-line summary of a search's evaluation-layer statistics
/// ([`EvalStats`](flextensor_explore::pool::EvalStats)): fresh
/// evaluations, cache hit rate, worker count, and the real wall-clock
/// spent inside batched evaluation.
pub fn eval_summary(stats: &flextensor_explore::pool::EvalStats) -> String {
    let pruned = if stats.pruned > 0 {
        format!(", {} statically pruned", stats.pruned)
    } else {
        String::new()
    };
    let region = if stats.regions_analyzed > 0 {
        format!(
            ", {} region-pruned over {} regions",
            stats.region_pruned, stats.regions_analyzed
        )
    } else {
        String::new()
    };
    let delta = if stats.delta_hits + stats.delta_full > 0 {
        format!(
            ", {} delta / {} full recompute",
            stats.delta_hits, stats.delta_full
        )
    } else {
        String::new()
    };
    format!(
        "{} fresh evals, {} cache hits ({:.1}% hit rate){pruned}{region}{delta}, {} worker{}, {} wall-clock evaluating",
        stats.evaluated,
        stats.cache_hits,
        100.0 * stats.hit_rate(),
        stats.workers,
        if stats.workers == 1 { "" } else { "s" },
        fmt_time(stats.wall_clock_s),
    )
}

/// Formats seconds at µs/ms/s granularity.
pub fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-3 {
        format!("{:.1}us", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2}ms", seconds * 1e3)
    } else {
        format!("{seconds:.2}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[2.0, f64::INFINITY, 0.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn table_renders_aligned_and_csv() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2".into()]);
        let text = t.render();
        assert!(text.contains("long-name"));
        assert!(t.to_csv().starts_with("name,value\n"));
        assert_eq!(t.to_csv().lines().count(), 3);
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(5e-6), "5.0us");
        assert_eq!(fmt_time(2.5e-3), "2.50ms");
        assert_eq!(fmt_time(1.5), "1.50s");
    }

    #[test]
    fn eval_summary_reports_all_fields() {
        let mut s = flextensor_explore::pool::EvalStats {
            evaluated: 40,
            cache_hits: 10,
            cache_misses: 40,
            pruned: 0,
            region_pruned: 0,
            regions_analyzed: 0,
            delta_hits: 0,
            delta_full: 0,
            workers: 8,
            wall_clock_s: 0.25,
        };
        let line = eval_summary(&s);
        assert!(line.contains("40 fresh evals"), "{line}");
        assert!(line.contains("10 cache hits"), "{line}");
        assert!(line.contains("20.0% hit rate"), "{line}");
        assert!(line.contains("8 workers"), "{line}");
        assert!(!line.contains("pruned"), "{line}");
        assert!(!line.contains("delta"), "{line}");
        s.pruned = 6;
        let line = eval_summary(&s);
        assert!(line.contains("6 statically pruned"), "{line}");
        s.delta_hits = 30;
        s.delta_full = 10;
        let line = eval_summary(&s);
        assert!(line.contains("30 delta / 10 full recompute"), "{line}");
        s.region_pruned = 3;
        s.regions_analyzed = 9;
        let line = eval_summary(&s);
        assert!(line.contains("3 region-pruned over 9 regions"), "{line}");
    }
}

/// Parses `--<name> <value>` from the process arguments.
pub fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let flag = format!("--{name}");
    std::env::args()
        .skip_while(|a| a != &flag)
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Writes a table's CSV twin under `results/` (best effort — failures to
/// create the directory or file only print a warning).
pub fn save_csv(name: &str, table: &Table) {
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create results/: {e}");
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    if let Err(e) = std::fs::write(&path, table.to_csv()) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        println!("(saved {})", path.display());
    }
}

/// Renders one or more (x, y) series as an ASCII scatter/line chart.
/// Series are labeled with single marker characters in legend order
/// (`*`, `+`, `o`, `x`, …); overlapping points show the later series.
pub fn ascii_plot(series: &[(&str, Vec<(f64, f64)>)], width: usize, height: usize) -> String {
    const MARKS: [char; 6] = ['*', '+', 'o', 'x', '#', '@'];
    let all: Vec<(f64, f64)> = series.iter().flat_map(|(_, s)| s.iter().copied()).collect();
    let finite = |v: f64| v.is_finite();
    let xs: Vec<f64> = all.iter().map(|p| p.0).filter(|v| finite(*v)).collect();
    let ys: Vec<f64> = all.iter().map(|p| p.1).filter(|v| finite(*v)).collect();
    if xs.is_empty() || ys.is_empty() {
        return "(no data)\n".to_string();
    }
    let (x0, x1) = (
        xs.iter().cloned().fold(f64::INFINITY, f64::min),
        xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    );
    let (y0, y1) = (
        ys.iter().cloned().fold(f64::INFINITY, f64::min),
        ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    );
    let xr = (x1 - x0).max(1e-12);
    let yr = (y1 - y0).max(1e-12);
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        for &(x, y) in pts {
            if !finite(x) || !finite(y) {
                continue;
            }
            let cx = (((x - x0) / xr) * (width - 1) as f64).round() as usize;
            let cy = (((y - y0) / yr) * (height - 1) as f64).round() as usize;
            grid[height - 1 - cy][cx.min(width - 1)] = mark;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("{y1:>10.0} +{}\n", "-".repeat(width)));
    for row in &grid {
        out.push_str("           |");
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{y0:>10.0} +{}\n", "-".repeat(width)));
    out.push_str(&format!(
        "            {x0:<10.0}{:>width$.0}\n",
        x1,
        width = width - 10
    ));
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!("  {} = {}\n", MARKS[si % MARKS.len()], name));
    }
    out
}

#[cfg(test)]
mod plot_tests {
    use super::*;

    #[test]
    fn plot_renders_all_series_markers() {
        let s = vec![
            ("a", vec![(0.0, 0.0), (10.0, 5.0)]),
            ("b", vec![(5.0, 10.0)]),
        ];
        let p = ascii_plot(&s, 40, 10);
        assert!(p.contains('*'));
        assert!(p.contains('+'));
        assert!(p.contains("= a"));
        assert!(p.contains("= b"));
    }

    #[test]
    fn plot_handles_empty_and_nonfinite() {
        assert_eq!(ascii_plot(&[("e", vec![])], 10, 5), "(no data)\n");
        let s = vec![("a", vec![(0.0, f64::INFINITY), (1.0, 2.0)])];
        let p = ascii_plot(&s, 10, 5);
        assert!(p.contains('*'));
    }
}
