//! §6.5 — comparison to the state of the art (AutoTVM) on C1D, T1D, C2D,
//! T2D, C3D, T3D and GRP (V100): final performance ratio and the schedule
//! space-size ratio (the paper measures FlexTensor's C2D space 2027x
//! larger than AutoTVM's on average).
//!
//! Flags: `--trials N` (FlexTensor search budget, default 150),
//! `--rounds N` (AutoTVM rounds, default 16), `--cases N` (cases per
//! operator, default 3).

use flextensor::{optimize, Method, OptimizeOptions, SearchOptions, Task};
use flextensor_autotvm::template::Template;
use flextensor_autotvm::tuner::{tune, TuneOptions};
use flextensor_bench::harness::{arg, geomean, save_csv, Table};
use flextensor_explore::space::Space;
use flextensor_ir::suite::{test_cases, OperatorKind};
use flextensor_schedule::config::TargetKind;
use flextensor_sim::model::Evaluator;
use flextensor_sim::spec::{v100, Device};

fn main() {
    let trials: usize = arg("trials", 150);
    let rounds: usize = arg("rounds", 16);
    let ncases: usize = arg("cases", 3);
    let gpu = v100();
    let ev = Evaluator::new(Device::Gpu(gpu.clone()));
    let kinds = [
        OperatorKind::Conv1d,
        OperatorKind::ConvTranspose1d,
        OperatorKind::Conv2d,
        OperatorKind::ConvTranspose2d,
        OperatorKind::Conv3d,
        OperatorKind::ConvTranspose3d,
        OperatorKind::GroupConv,
    ];
    let opts = OptimizeOptions {
        method: Method::QMethod,
        search: SearchOptions {
            trials,
            starts: 8,
            initial_samples: 16,
            ..SearchOptions::default()
        },
    };
    println!("== §6.5: FlexTensor vs AutoTVM on V100 ==\n");
    let mut t = Table::new(&[
        "op",
        "AutoTVM GF",
        "FlexTensor GF",
        "speedup",
        "space ratio",
    ]);
    let mut all_speedups = Vec::new();
    let mut c2d_ratios = Vec::new();
    for kind in kinds {
        // Sample cases evenly across the suite (shapes range from
        // power-of-two-friendly to odd; the first few alone are not
        // representative).
        let all = test_cases(kind);
        let n = ncases.min(all.len());
        let idx: Vec<usize> = (0..n)
            .map(|i| {
                if n == 1 {
                    0
                } else {
                    i * (all.len() - 1) / (n - 1)
                }
            })
            .collect();
        let cases: Vec<_> = idx.into_iter().map(|i| all[i].clone()).collect();
        let (mut at_g, mut ft_g, mut sp, mut ratios) = (vec![], vec![], vec![], vec![]);
        for g in &cases {
            let at = tune(
                &g.clone(),
                &ev,
                &TuneOptions {
                    rounds,
                    batch: 64,
                    ..TuneOptions::default()
                },
            )
            .expect("autotvm");
            let task = Task::new(g.clone(), Device::Gpu(gpu.clone()));
            let ft = optimize(&task, &opts).expect("optimize");
            at_g.push(at.best_cost.gflops());
            ft_g.push(ft.gflops());
            sp.push(ft.gflops() / at.best_cost.gflops().max(1e-9));
            let ratio =
                Space::new(g, TargetKind::Gpu).size() / Template::new(g, TargetKind::Gpu).size();
            ratios.push(ratio);
        }
        if kind == OperatorKind::Conv2d {
            c2d_ratios = ratios.clone();
        }
        all_speedups.extend(sp.clone());
        t.row(vec![
            kind.abbr().to_string(),
            format!("{:.0}", geomean(&at_g)),
            format!("{:.0}", geomean(&ft_g)),
            format!("{:.2}", geomean(&sp)),
            format!("{:.0}x", geomean(&ratios)),
        ]);
    }
    t.row(vec![
        "AVG".into(),
        "".into(),
        "".into(),
        format!("{:.2}", geomean(&all_speedups)),
        "".into(),
    ]);
    println!("{}", t.render());
    save_csv("sec65", &t);
    println!(
        "\naverage speedup over AutoTVM: {:.2}x (paper: 2.21x)",
        geomean(&all_speedups)
    );
    println!(
        "C2D space ratio FlexTensor/AutoTVM: {:.0}x (paper: 2027x on average)",
        geomean(&c2d_ratios)
    );
}
