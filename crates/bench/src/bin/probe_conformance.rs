//! Probe — the conformance fuzzer and regression corpus on the CLI.
//!
//! Subcommands:
//!
//! * `fuzz` — run the seeded differential fuzz loop
//!   (`--seed N`, default 7; `--iters N`, default 500). Any violation is
//!   shrunk and written into the corpus directory so the failure replays
//!   as `cargo test` from then on. Exit code 1 when violations are found.
//! * `replay` — replay every committed corpus fixture; exit code 1 on the
//!   first mismatch between a fixture's expectation and the current
//!   implementation.
//! * `seed-corpus` — (re)write the deterministic seed fixtures. Only
//!   needed after an intentional encoding change; the result is
//!   byte-stable, so a clean rewrite produces no diff.
//!
//! All subcommands accept `--corpus DIR` (default: the committed
//! `crates/conformance/corpus`). The fuzz report contains no wall-clock
//! data: two runs with the same seed print byte-identical output, which
//! CI exploits as a determinism check.

use std::path::PathBuf;
use std::process::ExitCode;

use flextensor_bench::harness::arg;
use flextensor_conformance::corpus::{load_corpus, seed_corpus};
use flextensor_conformance::fuzz::{fuzz, FuzzOptions};

fn corpus_dir() -> PathBuf {
    let default = concat!(env!("CARGO_MANIFEST_DIR"), "/../conformance/corpus").to_string();
    PathBuf::from(arg("corpus", default))
}

fn main() -> ExitCode {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "fuzz".into());
    match mode.as_str() {
        "fuzz" => run_fuzz(),
        "replay" => run_replay(),
        "seed-corpus" => run_seed_corpus(),
        other => {
            eprintln!("unknown subcommand `{other}`; expected fuzz | replay | seed-corpus");
            ExitCode::FAILURE
        }
    }
}

fn run_fuzz() -> ExitCode {
    let opts = FuzzOptions {
        seed: arg("seed", 7),
        iters: arg("iters", 500),
    };
    let report = fuzz(&opts);
    print!("{}", report.render());
    if report.violations.is_empty() {
        return ExitCode::SUCCESS;
    }
    // Persist every shrunk reproducer so the failure is pinned as an
    // ordinary test before anyone starts debugging it.
    let dir = corpus_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create corpus dir {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    for v in &report.violations {
        let path = dir.join(format!("{}.json", v.fixture.name));
        match std::fs::write(&path, v.fixture.to_json()) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("cannot write {}: {e}", path.display()),
        }
    }
    ExitCode::FAILURE
}

fn run_replay() -> ExitCode {
    let dir = corpus_dir();
    let fixtures = match load_corpus(&dir) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "replaying {} fixtures from {}",
        fixtures.len(),
        dir.display()
    );
    let mut failures = 0u32;
    for f in &fixtures {
        match f.replay() {
            Ok(()) => println!("  ok   {} ({})", f.name, f.expect.name()),
            Err(e) => {
                failures += 1;
                println!("  FAIL {} ({}): {e}", f.name, f.expect.name());
            }
        }
    }
    if failures == 0 {
        println!("corpus clean");
        ExitCode::SUCCESS
    } else {
        println!("{failures} fixture(s) failed");
        ExitCode::FAILURE
    }
}

fn run_seed_corpus() -> ExitCode {
    let dir = corpus_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create corpus dir {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    for f in seed_corpus() {
        let path = dir.join(format!("{}.json", f.name));
        match std::fs::write(&path, f.to_json()) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
