//! Figure 1 — the motivation experiments (§2.3).
//!
//! (a) Three hand-written schedules for 2D convolution on the same GPU
//!     (V100), on YOLO layers C2, C8, C13 at batch 8: schedule-a splits
//!     the batch dimension for tiling, schedule-b binds the batch
//!     dimension to thread blocks, schedule-c simply fuses all loops flat.
//!     Small schedule differences → noticeably different performance, and
//!     the best schedule differs per shape.
//!
//! (b) One loop-split factor swept from 8 to 512 for a 2D convolution on
//!     V100, Xeon E5 and VU9P: the performance trend and the optimal
//!     factor differ per platform.

use flextensor_bench::harness::{save_csv, Table};
use flextensor_ir::yolo::yolo_layer;
use flextensor_schedule::config::NodeConfig;
use flextensor_sim::library::{split_axis, split_reduce};
use flextensor_sim::model::Evaluator;
use flextensor_sim::spec::{v100, vu9p, xeon_e5_2699_v4, Device};

/// schedule-a: split the batch dimension for tiling (batch ends up in the
/// per-thread inner tile).
fn schedule_a(op: &flextensor_ir::graph::ComputeOp) -> NodeConfig {
    let mut c = NodeConfig::naive(op);
    for (i, a) in op.spatial.iter().enumerate() {
        c.spatial_splits[i] = match i {
            0 => split_axis(a.extent, [1, 1, 4]), // batch tiled into threads' registers
            1 => split_axis(a.extent, [1, 8, 2]),
            _ => split_axis(a.extent, [1, 8, 1]),
        };
    }
    for (i, a) in op.reduce.iter().enumerate() {
        c.reduce_splits[i] = split_reduce(a.extent, [1, 4]);
    }
    c.cache_shared = true;
    c.unroll = true;
    c.vectorize = true;
    c
}

/// schedule-b: bind the batch dimension to thread blocks (batch stays at
/// the grid level).
fn schedule_b(op: &flextensor_ir::graph::ComputeOp) -> NodeConfig {
    let mut c = NodeConfig::naive(op);
    for (i, a) in op.spatial.iter().enumerate() {
        c.spatial_splits[i] = match i {
            0 => {
                let mut f = vec![1; 4];
                f[0] = a.extent; // whole batch -> blockIdx
                f
            }
            1 => split_axis(a.extent, [1, 8, 2]),
            _ => split_axis(a.extent, [1, 8, 1]),
        };
    }
    for (i, a) in op.reduce.iter().enumerate() {
        c.reduce_splits[i] = split_reduce(a.extent, [1, 4]);
    }
    c.cache_shared = true;
    c.unroll = true;
    c.vectorize = true;
    c
}

/// schedule-c: fuse all loops flat (one thread per output point, no
/// tiling, no staging).
fn schedule_c(op: &flextensor_ir::graph::ComputeOp) -> NodeConfig {
    let mut c = NodeConfig::naive(op);
    for (i, a) in op.spatial.iter().enumerate() {
        c.spatial_splits[i] = if i == op.spatial.len() - 1 {
            split_axis(a.extent, [1, 256, 1])
        } else {
            let mut f = vec![1; 4];
            f[0] = a.extent;
            f
        };
    }
    c
}

fn main() {
    let gpu_ev = Evaluator::new(Device::Gpu(v100()));

    println!("== Figure 1(a): three schedules for C2D on V100, batch 8 ==\n");
    let mut ta = Table::new(&["layer", "schedule-a", "schedule-b", "schedule-c", "best"]);
    for name in ["C2", "C8", "C13"] {
        let g = yolo_layer(name).unwrap().graph(8);
        let op = g.root_op().clone();
        let times: Vec<Option<f64>> = [schedule_a(&op), schedule_b(&op), schedule_c(&op)]
            .iter()
            .map(|cfg| gpu_ev.evaluate(&g, cfg).map(|c| c.seconds))
            .collect();
        let best_t = times
            .iter()
            .flatten()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let rel: Vec<f64> = times
            .iter()
            .map(|t| t.map(|t| best_t / t).unwrap_or(0.0))
            .collect();
        let best_idx = rel
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| ["a", "b", "c"][i])
            .unwrap_or("-");
        ta.row(vec![
            name.to_string(),
            format!("{:.2}", rel[0]),
            format!("{:.2}", rel[1]),
            format!("{:.2}", rel[2]),
            best_idx.to_string(),
        ]);
    }
    println!("{}", ta.render());
    save_csv("fig01a", &ta);

    println!("\n== Figure 1(b): split-factor sweep for C2D (C9) on three platforms ==\n");
    // Sweep the thread/vector-level split factor of the output-channel
    // loop (k = 512 on C9) from 8 to 512.
    let layer = yolo_layer("C9").unwrap();
    let factors = [512i64, 256, 128, 64, 32, 16, 8];
    let devices: Vec<(&str, Evaluator)> = vec![
        ("V100", Evaluator::new(Device::Gpu(v100()))),
        ("Xeon", Evaluator::new(Device::Cpu(xeon_e5_2699_v4()))),
        ("VU9P", Evaluator::new(Device::Fpga(vu9p()))),
    ];
    let mut tb = Table::new(&["factor", "V100", "Xeon", "VU9P"]);
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); devices.len()];
    for &f in &factors {
        for (d, (_, ev)) in devices.iter().enumerate() {
            let g = layer.graph(1);
            let op = g.root_op().clone();
            let mut cfg = NodeConfig::naive(&op);
            // k axis: `f` at the parallel-hardware level, rest outside.
            cfg.spatial_splits[1] = vec![512 / f, 1, f, 1];
            cfg.spatial_splits[2] = split_axis(28, [1, 4, 1]);
            cfg.spatial_splits[3] = split_axis(28, [1, 1, 4]);
            for (i, a) in op.reduce.iter().enumerate() {
                cfg.reduce_splits[i] = split_reduce(a.extent, [1, 4]);
            }
            cfg.cache_shared = ev.target() == flextensor_schedule::config::TargetKind::Gpu;
            cfg.unroll = true;
            cfg.vectorize = true;
            cfg.fuse_outer = 2;
            let t = ev
                .evaluate(&g, &cfg)
                .map(|c| c.seconds)
                .unwrap_or(f64::INFINITY);
            series[d].push(if t.is_finite() { 1.0 / t } else { 0.0 });
        }
    }
    // Normalize each platform's series to its own maximum.
    for s in &mut series {
        let m = s.iter().copied().fold(0.0f64, f64::max).max(1e-30);
        for v in s.iter_mut() {
            *v /= m;
        }
    }
    for (i, &f) in factors.iter().enumerate() {
        tb.row(vec![
            f.to_string(),
            format!("{:.2}", series[0][i]),
            format!("{:.2}", series[1][i]),
            format!("{:.2}", series[2][i]),
        ]);
    }
    println!("{}", tb.render());
    save_csv("fig01b", &tb);
    println!("\nNote: per-platform normalized; optimal factors differ per platform.");
}
