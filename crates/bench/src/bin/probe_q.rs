//! Calibration probe: Q-method vs random-walk across seeds and layers.

use flextensor_explore::methods::{search, Method, SearchOptions};
use flextensor_ir::yolo::yolo_layer;
use flextensor_sim::model::Evaluator;
use flextensor_sim::spec::{v100, Device};

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120);
    let ev = Evaluator::new(Device::Gpu(v100()));
    for name in ["C6", "C9", "C13"] {
        let g = yolo_layer(name).unwrap().graph(1);
        for m in [Method::QMethod, Method::RandomWalk] {
            let mut results = Vec::new();
            for seed in [1u64, 2, 3] {
                let opts = SearchOptions {
                    trials,
                    starts: 8,
                    initial_samples: 16,
                    seed,
                    ..SearchOptions::default()
                };
                let r = search(&g, &ev, m, &opts).unwrap();
                results.push(r.best_cost.gflops());
            }
            let avg = results.iter().sum::<f64>() / results.len() as f64;
            println!(
                "{name} {m:<12} trials={trials}: {:?} avg={avg:.0}",
                results.iter().map(|v| *v as i64).collect::<Vec<_>>()
            );
        }
    }
}
