//! §6.4 — performance for new operators without library support: block
//! circulant matrix multiply (BCM) on V100 and the shift operation (SHO)
//! on Titan X, compared against a hand-tuned implementation (fixed 4-level
//! tiling, deep unrolling, same code generator).
//!
//! Flags: `--trials N` (default 120).

use flextensor::{optimize, Method, OptimizeOptions, SearchOptions, Task};
use flextensor_bench::harness::{arg, geomean, save_csv, Table};
use flextensor_ir::suite::{test_cases, OperatorKind};
use flextensor_sim::library;
use flextensor_sim::spec::{titan_x, v100, Device, GpuSpec};

fn run_op(kind: OperatorKind, gpu: &GpuSpec, trials: usize) -> (Table, f64) {
    let opts = OptimizeOptions {
        method: Method::QMethod,
        search: SearchOptions {
            trials,
            starts: 8,
            initial_samples: 16,
            ..SearchOptions::default()
        },
    };
    let mut t = Table::new(&["case", "hand-tuned(ms)", "FlexTensor(ms)", "speedup"]);
    let mut speedups = Vec::new();
    for g in test_cases(kind) {
        let hand = library::hand_tuned_gpu_time(&g, gpu).expect("hand-tuned baseline");
        let task = Task::new(g.clone(), Device::Gpu(gpu.clone()));
        let r = optimize(&task, &opts).expect("optimize");
        let sp = hand / r.cost.seconds;
        speedups.push(sp);
        t.row(vec![
            g.name.clone(),
            format!("{:.3}", hand * 1e3),
            format!("{:.3}", r.cost.seconds * 1e3),
            format!("{sp:.2}"),
        ]);
    }
    let avg = geomean(&speedups);
    (t, avg)
}

fn main() {
    let trials: usize = arg("trials", 120);
    println!("== §6.4: BCM (block circulant matrix) on V100 ==\n");
    let (t, avg) = run_op(OperatorKind::Bcm, &v100(), trials);
    println!("{}", t.render());
    save_csv("sec64_bcm", &t);
    println!("average speedup vs hand-tuned: {avg:.2}x (paper: 2.11x)\n");

    println!("== §6.4: SHO (shift operation) on Titan X ==\n");
    let (t, avg) = run_op(OperatorKind::Shift, &titan_x(), trials);
    println!("{}", t.render());
    save_csv("sec64_sho", &t);
    println!("average speedup vs hand-tuned: {avg:.2}x (paper: 1.53x)");
}
