//! Probe — candidate-evaluation throughput of the split-phase fast path.
//!
//! Runs a fixed seeded workload (gemm + conv2d + grouped-conv2d candidate
//! batches on the V100 model) through both evaluation paths of the
//! [`EvalPool`]:
//!
//! * **fast** — the default split-phase path: a cached `LoweredTemplate`
//!   per pool, cheap per-candidate feature apply;
//! * **naive** — the reference path (`EvalPool::new_reference`) that
//!   re-lowers every candidate from scratch, kept exactly for this
//!   comparison and for differential tests.
//!
//! Both paths are cross-checked for identical outcomes before timing, and
//! the measured candidates/sec land in `results/BENCH_explore.json` so the
//! repo tracks an evaluation-throughput trajectory across PRs (schema in
//! `docs/PERFORMANCE.md`).
//!
//! Each workload is additionally run as a *neighbor batch* — a few seeded
//! starting points expanded along every applicable direction, the exact
//! shape the search drivers produce — through both the plain fast path
//! and the **delta** path (`EvalPool::new_delta` +
//! `evaluate_batch_delta`), which patches only the features each
//! single-field move can affect. The delta outcomes are cross-checked
//! against the plain pool before timing, and the per-workload
//! `delta_speedup` (delta vs. plain fast path on the same batch) lands in
//! the JSON alongside the fast-vs-naive numbers.
//!
//! Flags: `--seed N` (default 2024), `--workers N` (default 4),
//! `--candidates N` per workload (default 512), `--budget-s S` total
//! measurement budget in seconds (default 30), `--out PATH` (default
//! `results/BENCH_explore.json`), `--db PATH` (default off),
//! `--check 1` regression-gate mode, `--floor-file PATH` (default
//! `results/BENCH_explore.json`) where `--check` reads its floors.
//!
//! The probe also times the cost model in isolation: scalar
//! [`Evaluator::time_features`] vs. the batched
//! [`Evaluator::time_features_batch`] over identical pre-extracted
//! feature rows (cross-checked bit-for-bit first), landing
//! `batch_vs_scalar` in the JSON.
//!
//! With `--check 1`, after measuring, the probe compares the overall
//! geomeans against the `floor_speedup` / `floor_delta_speedup` /
//! `floor_delta_vs_naive` / `floor_batch_vs_scalar` fields of the
//! committed floor file and exits nonzero if any measured value falls
//! below its floor — CI's `bench-smoke` job runs this, so a change that
//! regresses evaluation throughput below the committed floor fails the
//! build. All four floors gate *ratios of same-run measurements*, so
//! machine speed cancels; see the floor constants below for how each is
//! calibrated.
//!
//! With `--db`, each workload's best candidate is recorded into a
//! [`TuneDb`] at PATH after the cross-check; a later run against the
//! same PATH replays the stored config and asserts its re-evaluated
//! cost is bit-identical to the recorded one. The database never
//! influences the measured workload or the output JSON, so
//! `results/BENCH_explore.json` keeps its exact schema (and is
//! byte-stable modulo timing) whether the db is absent, cold, or warm.

use std::hint::black_box;
use std::time::Instant;

use flextensor::serve::task_key;
use flextensor_bench::harness::arg;
use flextensor_explore::pool::EvalPool;
use flextensor_explore::space::Space;
use flextensor_ir::graph::Graph;
use flextensor_ir::ops::{self, ConvParams};
use flextensor_schedule::config::NodeConfig;
use flextensor_schedule::features::KernelFeatures;
use flextensor_schedule::lower::lower;
use flextensor_sim::batch::FeatureBatch;
use flextensor_sim::model::Evaluator;
use flextensor_sim::spec::{v100, Device};
use flextensor_tunedb::{TuneDb, TuneRecord};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct WorkloadResult {
    name: &'static str,
    candidates: usize,
    fast_cand_per_s: f64,
    naive_cand_per_s: f64,
    /// Size of the neighbor batch the delta comparison ran on.
    neighbor_cands: usize,
    /// Plain fast path on the neighbor batch, candidates/sec.
    neighbor_fast_cand_per_s: f64,
    /// Delta path on the neighbor batch, candidates/sec.
    delta_cand_per_s: f64,
    /// Fresh evaluations the delta pool served incrementally / fully.
    delta_hits: usize,
    delta_full: usize,
    /// Encoding + modeled seconds of the cheapest feasible candidate
    /// (first-wins on ties); what `--db` records.
    best: Option<(Vec<i64>, f64)>,
}

impl WorkloadResult {
    fn speedup(&self) -> f64 {
        self.fast_cand_per_s / self.naive_cand_per_s.max(1e-12)
    }

    fn delta_speedup(&self) -> f64 {
        self.delta_cand_per_s / self.neighbor_fast_cand_per_s.max(1e-12)
    }

    /// Delta path against the naive (re-lowering) path, both measured in
    /// this run. Because numerator and denominator move together with the
    /// machine, this ratio is the machine-robust form of "how much faster
    /// than the PR-4 baseline is the delta path" — the committed floor
    /// pins it at twice the PR-4 fast path's overall speedup.
    fn delta_vs_naive(&self) -> f64 {
        self.delta_cand_per_s / self.naive_cand_per_s.max(1e-12)
    }
}

/// Measures one path (fresh pool + fresh cache per repetition, so every
/// candidate is a fresh evaluation) and returns candidates/sec. Spends
/// roughly `budget_s`, with at least two repetitions.
fn measure(
    graph: &Graph,
    ev: &Evaluator,
    workers: usize,
    cands: &[NodeConfig],
    reference: bool,
    budget_s: f64,
) -> f64 {
    let mut total_cands = 0usize;
    let mut total_secs = 0.0f64;
    let mut reps = 0usize;
    while reps < 2 || total_secs < budget_s {
        let mut pool = if reference {
            EvalPool::new_reference(graph, ev, workers, 1 << 20)
        } else {
            EvalPool::new(graph, ev, workers, 1 << 20)
        };
        let t0 = Instant::now();
        let outcomes = pool.evaluate_batch(cands);
        total_secs += t0.elapsed().as_secs_f64();
        total_cands += outcomes.len();
        reps += 1;
    }
    total_cands as f64 / total_secs.max(1e-12)
}

/// Builds the neighbor-batch shape the search drivers produce: seeded
/// starting points, each expanded along every applicable direction, with
/// a per-candidate map back to its base.
fn neighbor_batch(
    space: &Space,
    seed: u64,
    n_bases: usize,
) -> (Vec<NodeConfig>, Vec<usize>, Vec<NodeConfig>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let bases: Vec<NodeConfig> = (0..n_bases).map(|_| space.random_point(&mut rng)).collect();
    let mut configs = Vec::new();
    let mut base_of = Vec::new();
    for (bi, base) in bases.iter().enumerate() {
        for dir in space.directions() {
            if let Some(n) = space.apply(base, *dir) {
                configs.push(n);
                base_of.push(bi);
            }
        }
    }
    (configs, base_of, bases)
}

/// Measures the delta path on a neighbor batch (fresh pool + cache per
/// repetition) and returns (candidates/sec, delta_hits, delta_full).
fn measure_delta(
    graph: &Graph,
    ev: &Evaluator,
    workers: usize,
    cands: &[NodeConfig],
    base_of: &[usize],
    bases: &[NodeConfig],
    budget_s: f64,
) -> (f64, usize, usize) {
    let mut total_cands = 0usize;
    let mut total_secs = 0.0f64;
    let mut reps = 0usize;
    let mut hits = 0usize;
    let mut full = 0usize;
    while reps < 2 || total_secs < budget_s {
        let mut pool = EvalPool::new_delta(graph, ev, workers, 1 << 20, false);
        let t0 = Instant::now();
        let outcomes = pool.evaluate_batch_delta(cands, base_of, bases);
        total_secs += t0.elapsed().as_secs_f64();
        total_cands += outcomes.len();
        let s = pool.stats();
        hits = s.delta_hits;
        full = s.delta_full;
        reps += 1;
    }
    (total_cands as f64 / total_secs.max(1e-12), hits, full)
}

fn run_workload(
    name: &'static str,
    graph: &Graph,
    workers: usize,
    seed: u64,
    candidates: usize,
    budget_s: f64,
) -> WorkloadResult {
    let ev = Evaluator::new(Device::Gpu(v100()));
    let space = Space::new(graph, ev.target());
    let mut rng = StdRng::seed_from_u64(seed);
    let cands: Vec<NodeConfig> = (0..candidates)
        .map(|_| space.random_point(&mut rng))
        .collect();

    // Cross-check before timing: both paths must agree on every outcome.
    let fast_out = EvalPool::new(graph, &ev, workers, 1 << 20).evaluate_batch(&cands);
    let naive_out = EvalPool::new_reference(graph, &ev, workers, 1 << 20).evaluate_batch(&cands);
    assert_eq!(fast_out, naive_out, "fast path diverged on {name}");

    // The delta comparison runs on a neighbor batch — the shape the
    // search drivers actually produce — and is cross-checked the same way.
    let (ncands, base_of, bases) = neighbor_batch(&space, seed ^ 0xde17a, 8);
    let plain_neighbor_out = EvalPool::new(graph, &ev, workers, 1 << 20).evaluate_batch(&ncands);
    let delta_out = EvalPool::new_delta(graph, &ev, workers, 1 << 20, false)
        .evaluate_batch_delta(&ncands, &base_of, &bases);
    assert_eq!(
        delta_out, plain_neighbor_out,
        "delta path diverged on {name}"
    );

    let best = fast_out
        .iter()
        .zip(cands.iter())
        .filter_map(|(o, c)| o.cost.map(|cost| (c, cost.seconds)))
        .fold(None::<(&NodeConfig, f64)>, |acc, (c, s)| match acc {
            Some((_, incumbent)) if incumbent <= s => acc,
            _ => Some((c, s)),
        })
        .map(|(c, s)| (c.encode(), s));

    // The naive path is the slow one; give it the larger share.
    let naive_cand_per_s = measure(graph, &ev, workers, &cands, true, budget_s * 0.6);
    let fast_cand_per_s = measure(graph, &ev, workers, &cands, false, budget_s * 0.2);
    let neighbor_fast_cand_per_s = measure(graph, &ev, workers, &ncands, false, budget_s * 0.1);
    let (delta_cand_per_s, delta_hits, delta_full) = measure_delta(
        graph,
        &ev,
        workers,
        &ncands,
        &base_of,
        &bases,
        budget_s * 0.1,
    );
    WorkloadResult {
        name,
        candidates,
        fast_cand_per_s,
        naive_cand_per_s,
        neighbor_cands: ncands.len(),
        neighbor_fast_cand_per_s,
        delta_cand_per_s,
        delta_hits,
        delta_full,
        best,
    }
}

/// `--db` integration: record each workload's best candidate into the
/// store, or — when the key is already present — replay the stored
/// config and assert its re-evaluated modeled cost is bit-identical to
/// the recorded one. Purely additive: never touches the measured
/// workload or the output JSON.
fn record_or_replay(db_path: &str, seed: u64, workloads: &[(&Graph, &WorkloadResult)]) {
    let (db, report) = match TuneDb::open(db_path) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("warning: cannot open tune db {db_path}: {e}");
            return;
        }
    };
    if report.lines_dropped > 0 {
        eprintln!(
            "warning: tune db recovered with {} corrupt line(s) dropped",
            report.lines_dropped
        );
    }
    let device = Device::Gpu(v100());
    let ev = Evaluator::new(device.clone());
    for (graph, r) in workloads {
        let key = task_key(graph, &device);
        if let Some(rec) = db.peek(&key) {
            let cfg = NodeConfig::decode(graph.root_op(), &rec.config)
                .unwrap_or_else(|e| panic!("stored config for {} invalid: {e}", key.flat()));
            let cost = ev
                .evaluate(graph, &cfg)
                .unwrap_or_else(|| panic!("stored config for {} infeasible", key.flat()));
            assert_eq!(
                cost.seconds.to_bits(),
                rec.seconds.to_bits(),
                "replayed cost diverged for {}",
                key.flat()
            );
            println!("db: {} replay ok ({} s)", key.flat(), rec.seconds);
        } else if let Some((config, seconds)) = &r.best {
            let rec = TuneRecord {
                key: key.clone(),
                config: config.clone(),
                seconds: *seconds,
                seed,
                trials: r.candidates,
                commit: "probe-perf".to_string(),
            };
            match db.put(rec) {
                Ok(()) => println!("db: {} recorded ({seconds} s)", key.flat()),
                Err(e) => eprintln!("warning: cannot record {}: {e}", key.flat()),
            }
        } else {
            println!(
                "db: {} has no feasible candidate; nothing recorded",
                key.flat()
            );
        }
    }
}

/// Scans a hand-rolled JSON file for `"key": <number>` and parses the
/// number. Good enough for the flat schema this probe writes.
fn read_json_number(path: &str, key: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Times the cost model itself — scalar [`Evaluator::time_features`] vs.
/// the batched [`Evaluator::time_features_batch`] over the same
/// pre-extracted feature rows. Pure scoring (no lowering, no caching), so
/// the ratio isolates the structure-of-arrays batch kernels. The two
/// paths are cross-checked bit-for-bit before timing; returns
/// `(scalar rows/s, batched rows/s)`.
fn measure_batch_vs_scalar(ev: &Evaluator, feats: &[KernelFeatures], budget_s: f64) -> (f64, f64) {
    let mut batch = FeatureBatch::new();
    for f in feats {
        batch.push(f);
    }
    let mut out = Vec::new();
    ev.time_features_batch(&batch, &mut out);
    let scalar: Vec<Option<f64>> = feats.iter().map(|f| ev.time_features(f)).collect();
    assert_eq!(scalar.len(), out.len());
    for (i, (s, b)) in scalar.iter().zip(&out).enumerate() {
        assert_eq!(
            s.map(f64::to_bits),
            b.map(f64::to_bits),
            "batched scoring diverged from scalar at row {i}"
        );
    }

    // Both loops produce the same Vec<Option<f64>> so the comparison is
    // end-to-end scoring work, not loop-shape artifacts.
    let half = (budget_s / 2.0).max(0.05);
    let mut rows = 0usize;
    let t0 = Instant::now();
    loop {
        out.clear();
        for f in black_box(feats) {
            out.push(ev.time_features(f));
        }
        black_box(&out);
        rows += feats.len();
        if t0.elapsed().as_secs_f64() >= half {
            break;
        }
    }
    let scalar_rows_per_s = rows as f64 / t0.elapsed().as_secs_f64().max(1e-12);

    let mut rows = 0usize;
    let t0 = Instant::now();
    loop {
        ev.time_features_batch(black_box(&batch), &mut out);
        black_box(&out);
        rows += batch.len();
        if t0.elapsed().as_secs_f64() >= half {
            break;
        }
    }
    let batch_rows_per_s = rows as f64 / t0.elapsed().as_secs_f64().max(1e-12);
    (scalar_rows_per_s, batch_rows_per_s)
}

/// Default perf floors, used when the floor file has none (first run) —
/// deliberately below the measured numbers so only a real regression
/// trips them. The committed `results/BENCH_explore.json` carries the
/// authoritative values.
///
/// Four floors, four meanings:
/// * `floor_speedup` — fast path vs. naive re-lowering, geomean.
/// * `floor_delta_speedup` — delta vs. plain fast path on the *same*
///   neighbor batch in the *same* run. Since the split-phase template and
///   slot-compiled feature kernels sped both paths up, this ratio sits
///   near 1; its floor is a sanity bound ("the delta path never
///   pessimizes"), not a progress target.
/// * `floor_delta_vs_naive` — delta path vs. naive, geomean, both
///   measured in this run so the ratio cancels machine speed. The PR-4
///   baseline pinned this at 51.5 (twice that PR's fast-path speedup of
///   25.75); the batched cost model, hash-once memo keys, and
///   delta-derived key encoding raised the committed floor to 70, i.e.
///   "the delta pipeline stays ≥ 70× the re-lowering baseline".
/// * `floor_batch_vs_scalar` — batched cost-model scoring vs. scalar
///   scoring over identical feature rows. The floor of 1.0 enforces that
///   batching never pessimizes pure scoring throughput.
const DEFAULT_FLOOR_SPEEDUP: f64 = 8.0;
const DEFAULT_FLOOR_DELTA_SPEEDUP: f64 = 0.9;
const DEFAULT_FLOOR_DELTA_VS_NAIVE: f64 = 70.0;
const DEFAULT_FLOOR_BATCH_VS_SCALAR: f64 = 1.0;

fn main() {
    let seed: u64 = arg("seed", 2024);
    let workers: usize = arg("workers", 4);
    let candidates: usize = arg("candidates", 512);
    let budget_s: f64 = arg("budget-s", 30.0);
    let out: String = arg("out", "results/BENCH_explore.json".to_string());
    let db_path: String = arg("db", String::new());
    let check: usize = arg("check", 0);
    let floor_file: String = arg("floor-file", "results/BENCH_explore.json".to_string());

    println!(
        "== Probe: evaluation fast path (seed {seed}, {workers} workers, \
         {candidates} candidates/workload, {budget_s:.0}s budget) ==\n"
    );

    let gemm = ops::gemm(256, 256, 256);
    let conv = ops::conv2d(ConvParams::same(1, 64, 128, 3), 14, 14);
    let gconv = ops::group_conv2d(ConvParams::same(1, 256, 256, 3).with_groups(8), 28, 28);
    // 90% of the budget is split across the workloads; the last 10% times
    // the batch-vs-scalar cost-model microbenchmark.
    let per_workload = budget_s * 0.3;
    let results = [
        run_workload("gemm_256", &gemm, workers, seed, candidates, per_workload),
        run_workload(
            "conv2d_64x128_14",
            &conv,
            workers,
            seed ^ 0x5eed,
            candidates,
            per_workload,
        ),
        run_workload(
            "group_conv2d_8g_256_28",
            &gconv,
            workers,
            seed ^ 0x9c0,
            candidates,
            per_workload,
        ),
    ];

    println!(
        "{:<20} {:>12} {:>16} {:>16} {:>9}",
        "workload", "candidates", "fast cand/s", "naive cand/s", "speedup"
    );
    for r in &results {
        println!(
            "{:<20} {:>12} {:>16.0} {:>16.0} {:>8.2}x",
            r.name,
            r.candidates,
            r.fast_cand_per_s,
            r.naive_cand_per_s,
            r.speedup()
        );
    }
    let overall: f64 =
        (results.iter().map(|r| r.speedup().ln()).sum::<f64>() / results.len() as f64).exp();
    println!("\noverall speedup (geometric mean): {overall:.2}x\n");

    println!(
        "{:<20} {:>10} {:>16} {:>16} {:>9} {:>12}",
        "neighbor batch", "cands", "delta cand/s", "fast cand/s", "speedup", "delta/full"
    );
    for r in &results {
        println!(
            "{:<20} {:>10} {:>16.0} {:>16.0} {:>8.2}x {:>6}/{}",
            r.name,
            r.neighbor_cands,
            r.delta_cand_per_s,
            r.neighbor_fast_cand_per_s,
            r.delta_speedup(),
            r.delta_hits,
            r.delta_full,
        );
    }
    let overall_delta: f64 =
        (results.iter().map(|r| r.delta_speedup().ln()).sum::<f64>() / results.len() as f64).exp();
    println!("\noverall delta speedup (geometric mean): {overall_delta:.2}x");
    let overall_delta_vs_naive: f64 =
        (results.iter().map(|r| r.delta_vs_naive().ln()).sum::<f64>() / results.len() as f64).exp();
    println!("overall delta-vs-naive (geometric mean): {overall_delta_vs_naive:.2}x");

    // Cost-model microbenchmark: scalar vs. batched scoring over feature
    // rows lowered from the conv workload's candidate pool.
    let ev = Evaluator::new(Device::Gpu(v100()));
    let space = Space::new(&conv, ev.target());
    let mut rng = StdRng::seed_from_u64(seed ^ 0xba7c);
    let feats: Vec<KernelFeatures> = (0..512)
        .filter_map(|_| {
            let cfg = space.random_point(&mut rng);
            lower(&conv, &cfg, ev.target()).ok().map(|k| k.features)
        })
        .collect();
    let (scalar_rows_per_s, batch_rows_per_s) =
        measure_batch_vs_scalar(&ev, &feats, budget_s * 0.1);
    let batch_vs_scalar = batch_rows_per_s / scalar_rows_per_s.max(1e-12);
    println!(
        "\ncost model ({} feature rows): batched {:.0} rows/s, scalar {:.0} rows/s, \
         batch-vs-scalar {:.2}x",
        feats.len(),
        batch_rows_per_s,
        scalar_rows_per_s,
        batch_vs_scalar
    );

    if !db_path.is_empty() {
        record_or_replay(
            &db_path,
            seed,
            &[
                (&gemm, &results[0]),
                (&conv, &results[1]),
                (&gconv, &results[2]),
            ],
        );
    }

    // Floors travel with the JSON: committed once, enforced by `--check`.
    let floor_speedup =
        read_json_number(&floor_file, "floor_speedup").unwrap_or(DEFAULT_FLOOR_SPEEDUP);
    let floor_delta_speedup =
        read_json_number(&floor_file, "floor_delta_speedup").unwrap_or(DEFAULT_FLOOR_DELTA_SPEEDUP);
    let floor_delta_vs_naive = read_json_number(&floor_file, "floor_delta_vs_naive")
        .unwrap_or(DEFAULT_FLOOR_DELTA_VS_NAIVE);
    let floor_batch_vs_scalar = read_json_number(&floor_file, "floor_batch_vs_scalar")
        .unwrap_or(DEFAULT_FLOOR_BATCH_VS_SCALAR);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"version\": 1,\n");
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"workers\": {workers},\n"));
    json.push_str("  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"candidates\": {}, \"fast_cand_per_s\": {:.1}, \
             \"naive_cand_per_s\": {:.1}, \"speedup\": {:.2}, \"neighbor_cands\": {}, \
             \"neighbor_fast_cand_per_s\": {:.1}, \"delta_cand_per_s\": {:.1}, \
             \"delta_speedup\": {:.2}, \"delta_vs_naive\": {:.2}, \
             \"delta_hits\": {}, \"delta_full\": {}}}{}\n",
            r.name,
            r.candidates,
            r.fast_cand_per_s,
            r.naive_cand_per_s,
            r.speedup(),
            r.neighbor_cands,
            r.neighbor_fast_cand_per_s,
            r.delta_cand_per_s,
            r.delta_speedup(),
            r.delta_vs_naive(),
            r.delta_hits,
            r.delta_full,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"overall_speedup\": {overall:.2},\n"));
    json.push_str(&format!(
        "  \"overall_delta_speedup\": {overall_delta:.2},\n"
    ));
    json.push_str(&format!(
        "  \"overall_delta_vs_naive\": {overall_delta_vs_naive:.2},\n"
    ));
    json.push_str(&format!(
        "  \"scalar_rows_per_s\": {scalar_rows_per_s:.1},\n"
    ));
    json.push_str(&format!("  \"batch_rows_per_s\": {batch_rows_per_s:.1},\n"));
    json.push_str(&format!("  \"batch_vs_scalar\": {batch_vs_scalar:.2},\n"));
    json.push_str(&format!("  \"floor_speedup\": {floor_speedup:.2},\n"));
    json.push_str(&format!(
        "  \"floor_delta_speedup\": {floor_delta_speedup:.2},\n"
    ));
    json.push_str(&format!(
        "  \"floor_delta_vs_naive\": {floor_delta_vs_naive:.2},\n"
    ));
    json.push_str(&format!(
        "  \"floor_batch_vs_scalar\": {floor_batch_vs_scalar:.2}\n"
    ));
    json.push_str("}\n");

    if let Some(dir) = std::path::Path::new(&out).parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
        }
    }
    match std::fs::write(&out, &json) {
        Ok(()) => println!("(saved {out})"),
        Err(e) => eprintln!("warning: cannot write {out}: {e}"),
    }

    if check != 0 {
        println!("\n== Perf floor check (floors from {floor_file}) ==");
        let mut failed = false;
        for (label, measured, floor) in [
            ("fast-vs-naive geomean", overall, floor_speedup),
            ("delta-vs-fast geomean", overall_delta, floor_delta_speedup),
            (
                "delta-vs-naive geomean",
                overall_delta_vs_naive,
                floor_delta_vs_naive,
            ),
            (
                "batch-vs-scalar scoring",
                batch_vs_scalar,
                floor_batch_vs_scalar,
            ),
        ] {
            let ok = measured >= floor;
            println!(
                "{label}: {measured:.2}x (floor {floor:.2}x) {}",
                if ok { "PASS" } else { "FAIL" }
            );
            failed |= !ok;
        }
        if failed {
            eprintln!("error: evaluation throughput fell below the committed floor");
            std::process::exit(1);
        }
    }
}
