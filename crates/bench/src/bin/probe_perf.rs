//! Probe — candidate-evaluation throughput of the split-phase fast path.
//!
//! Runs a fixed seeded workload (gemm + conv2d candidate batches on the
//! V100 model) through both evaluation paths of the [`EvalPool`]:
//!
//! * **fast** — the default split-phase path: a cached `LoweredTemplate`
//!   per pool, cheap per-candidate feature apply;
//! * **naive** — the reference path (`EvalPool::new_reference`) that
//!   re-lowers every candidate from scratch, kept exactly for this
//!   comparison and for differential tests.
//!
//! Both paths are cross-checked for identical outcomes before timing, and
//! the measured candidates/sec land in `results/BENCH_explore.json` so the
//! repo tracks an evaluation-throughput trajectory across PRs (schema in
//! `docs/PERFORMANCE.md`).
//!
//! Flags: `--seed N` (default 2024), `--workers N` (default 4),
//! `--candidates N` per workload (default 512), `--budget-s S` total
//! measurement budget in seconds (default 30), `--out PATH` (default
//! `results/BENCH_explore.json`), `--db PATH` (default off).
//!
//! With `--db`, each workload's best candidate is recorded into a
//! [`TuneDb`] at PATH after the cross-check; a later run against the
//! same PATH replays the stored config and asserts its re-evaluated
//! cost is bit-identical to the recorded one. The database never
//! influences the measured workload or the output JSON, so
//! `results/BENCH_explore.json` keeps its exact schema (and is
//! byte-stable modulo timing) whether the db is absent, cold, or warm.

use std::time::Instant;

use flextensor::serve::task_key;
use flextensor_bench::harness::arg;
use flextensor_explore::pool::EvalPool;
use flextensor_explore::space::Space;
use flextensor_ir::graph::Graph;
use flextensor_ir::ops::{self, ConvParams};
use flextensor_schedule::config::NodeConfig;
use flextensor_sim::model::Evaluator;
use flextensor_sim::spec::{v100, Device};
use flextensor_tunedb::{TuneDb, TuneRecord};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct WorkloadResult {
    name: &'static str,
    candidates: usize,
    fast_cand_per_s: f64,
    naive_cand_per_s: f64,
    /// Encoding + modeled seconds of the cheapest feasible candidate
    /// (first-wins on ties); what `--db` records.
    best: Option<(Vec<i64>, f64)>,
}

impl WorkloadResult {
    fn speedup(&self) -> f64 {
        self.fast_cand_per_s / self.naive_cand_per_s.max(1e-12)
    }
}

/// Measures one path (fresh pool + fresh cache per repetition, so every
/// candidate is a fresh evaluation) and returns candidates/sec. Spends
/// roughly `budget_s`, with at least two repetitions.
fn measure(
    graph: &Graph,
    ev: &Evaluator,
    workers: usize,
    cands: &[NodeConfig],
    reference: bool,
    budget_s: f64,
) -> f64 {
    let mut total_cands = 0usize;
    let mut total_secs = 0.0f64;
    let mut reps = 0usize;
    while reps < 2 || total_secs < budget_s {
        let mut pool = if reference {
            EvalPool::new_reference(graph, ev, workers, 1 << 20)
        } else {
            EvalPool::new(graph, ev, workers, 1 << 20)
        };
        let t0 = Instant::now();
        let outcomes = pool.evaluate_batch(cands);
        total_secs += t0.elapsed().as_secs_f64();
        total_cands += outcomes.len();
        reps += 1;
    }
    total_cands as f64 / total_secs.max(1e-12)
}

fn run_workload(
    name: &'static str,
    graph: &Graph,
    workers: usize,
    seed: u64,
    candidates: usize,
    budget_s: f64,
) -> WorkloadResult {
    let ev = Evaluator::new(Device::Gpu(v100()));
    let space = Space::new(graph, ev.target());
    let mut rng = StdRng::seed_from_u64(seed);
    let cands: Vec<NodeConfig> = (0..candidates)
        .map(|_| space.random_point(&mut rng))
        .collect();

    // Cross-check before timing: both paths must agree on every outcome.
    let fast_out = EvalPool::new(graph, &ev, workers, 1 << 20).evaluate_batch(&cands);
    let naive_out = EvalPool::new_reference(graph, &ev, workers, 1 << 20).evaluate_batch(&cands);
    assert_eq!(fast_out, naive_out, "fast path diverged on {name}");

    let best = fast_out
        .iter()
        .zip(cands.iter())
        .filter_map(|(o, c)| o.cost.map(|cost| (c, cost.seconds)))
        .fold(None::<(&NodeConfig, f64)>, |acc, (c, s)| match acc {
            Some((_, incumbent)) if incumbent <= s => acc,
            _ => Some((c, s)),
        })
        .map(|(c, s)| (c.encode(), s));

    // The naive path is the slow one; give it the larger share.
    let naive_cand_per_s = measure(graph, &ev, workers, &cands, true, budget_s * 0.7);
    let fast_cand_per_s = measure(graph, &ev, workers, &cands, false, budget_s * 0.3);
    WorkloadResult {
        name,
        candidates,
        fast_cand_per_s,
        naive_cand_per_s,
        best,
    }
}

/// `--db` integration: record each workload's best candidate into the
/// store, or — when the key is already present — replay the stored
/// config and assert its re-evaluated modeled cost is bit-identical to
/// the recorded one. Purely additive: never touches the measured
/// workload or the output JSON.
fn record_or_replay(db_path: &str, seed: u64, workloads: &[(&Graph, &WorkloadResult)]) {
    let (db, report) = match TuneDb::open(db_path) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("warning: cannot open tune db {db_path}: {e}");
            return;
        }
    };
    if report.lines_dropped > 0 {
        eprintln!(
            "warning: tune db recovered with {} corrupt line(s) dropped",
            report.lines_dropped
        );
    }
    let device = Device::Gpu(v100());
    let ev = Evaluator::new(device.clone());
    for (graph, r) in workloads {
        let key = task_key(graph, &device);
        if let Some(rec) = db.peek(&key) {
            let cfg = NodeConfig::decode(graph.root_op(), &rec.config)
                .unwrap_or_else(|e| panic!("stored config for {} invalid: {e}", key.flat()));
            let cost = ev
                .evaluate(graph, &cfg)
                .unwrap_or_else(|| panic!("stored config for {} infeasible", key.flat()));
            assert_eq!(
                cost.seconds.to_bits(),
                rec.seconds.to_bits(),
                "replayed cost diverged for {}",
                key.flat()
            );
            println!("db: {} replay ok ({} s)", key.flat(), rec.seconds);
        } else if let Some((config, seconds)) = &r.best {
            let rec = TuneRecord {
                key: key.clone(),
                config: config.clone(),
                seconds: *seconds,
                seed,
                trials: r.candidates,
                commit: "probe-perf".to_string(),
            };
            match db.put(rec) {
                Ok(()) => println!("db: {} recorded ({seconds} s)", key.flat()),
                Err(e) => eprintln!("warning: cannot record {}: {e}", key.flat()),
            }
        } else {
            println!(
                "db: {} has no feasible candidate; nothing recorded",
                key.flat()
            );
        }
    }
}

fn main() {
    let seed: u64 = arg("seed", 2024);
    let workers: usize = arg("workers", 4);
    let candidates: usize = arg("candidates", 512);
    let budget_s: f64 = arg("budget-s", 30.0);
    let out: String = arg("out", "results/BENCH_explore.json".to_string());
    let db_path: String = arg("db", String::new());

    println!(
        "== Probe: evaluation fast path (seed {seed}, {workers} workers, \
         {candidates} candidates/workload, {budget_s:.0}s budget) ==\n"
    );

    let gemm = ops::gemm(256, 256, 256);
    let conv = ops::conv2d(ConvParams::same(1, 64, 128, 3), 14, 14);
    let per_workload = budget_s / 2.0;
    let results = [
        run_workload("gemm_256", &gemm, workers, seed, candidates, per_workload),
        run_workload(
            "conv2d_64x128_14",
            &conv,
            workers,
            seed ^ 0x5eed,
            candidates,
            per_workload,
        ),
    ];

    println!(
        "{:<20} {:>12} {:>16} {:>16} {:>9}",
        "workload", "candidates", "fast cand/s", "naive cand/s", "speedup"
    );
    for r in &results {
        println!(
            "{:<20} {:>12} {:>16.0} {:>16.0} {:>8.2}x",
            r.name,
            r.candidates,
            r.fast_cand_per_s,
            r.naive_cand_per_s,
            r.speedup()
        );
    }
    let overall: f64 =
        (results.iter().map(|r| r.speedup().ln()).sum::<f64>() / results.len() as f64).exp();
    println!("\noverall speedup (geometric mean): {overall:.2}x");

    if !db_path.is_empty() {
        record_or_replay(
            &db_path,
            seed,
            &[(&gemm, &results[0]), (&conv, &results[1])],
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"version\": 1,\n");
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"workers\": {workers},\n"));
    json.push_str("  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"candidates\": {}, \"fast_cand_per_s\": {:.1}, \
             \"naive_cand_per_s\": {:.1}, \"speedup\": {:.2}}}{}\n",
            r.name,
            r.candidates,
            r.fast_cand_per_s,
            r.naive_cand_per_s,
            r.speedup(),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"overall_speedup\": {overall:.2}\n"));
    json.push_str("}\n");

    if let Some(dir) = std::path::Path::new(&out).parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
        }
    }
    match std::fs::write(&out, &json) {
        Ok(()) => println!("(saved {out})"),
        Err(e) => eprintln!("warning: cannot write {out}: {e}"),
    }
}
