//! Probe — the static schedule analyzer on the CLI.
//!
//! Subcommands:
//!
//! * `corpus` (default) — audit every committed conformance fixture:
//!   decode its stored encoding and run `flextensor-analyze` on the
//!   device model of the fixture's target. `Pass` fixtures must be
//!   `Error`-free, `Reject` fixtures must be refused (at decode or by an
//!   `Error`-level diagnostic). The report is deterministic — CI diffs it
//!   against the committed golden copy
//!   (`crates/conformance/analyze-golden.txt`) to catch verdict drift.
//!   Exit code 1 when any verdict contradicts its fixture's expectation.
//! * `check` — analyze one encoded config:
//!   `probe_analyze check --kind GMM --target gpu --encoded 8.1.1.1...`
//!   (dot-joined `NodeConfig::encode` vector over the suite's small
//!   conformance shape for `--kind`). Exit code 1 when the analyzer
//!   reports `Error`-level diagnostics.
//! * `region` — the deterministic region-analysis audit: run a seeded
//!   region-gated search on the three `probe_perf` workloads and report
//!   each root factor box's certified cost bound against the realized
//!   best, plus the live-gate and certification-sweep counters. CI diffs
//!   the output against the committed golden copy
//!   (`crates/conformance/region-golden.txt`). Exit code 1 when any
//!   certified bound excludes its workload's realized best.
//!
//! Both subcommands accept `--json` for the machine-readable report (see
//! `docs/ANALYZE.md` for the schema) and `--corpus DIR` to audit a
//! different fixture directory.

use std::path::PathBuf;
use std::process::ExitCode;

use flextensor_analyze::analyze_schedule;
use flextensor_bench::harness::arg;
use flextensor_conformance::audit::{audit_corpus, audit_device};
use flextensor_conformance::corpus::load_corpus;
use flextensor_ir::suite::{small_case, OperatorKind};
use flextensor_schedule::config::{NodeConfig, TargetKind};

fn corpus_dir() -> PathBuf {
    let default = concat!(env!("CARGO_MANIFEST_DIR"), "/../conformance/corpus").to_string();
    PathBuf::from(arg("corpus", default))
}

fn has_flag(name: &str) -> bool {
    let flag = format!("--{name}");
    std::env::args().any(|a| a == flag)
}

fn main() -> ExitCode {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "corpus".into());
    match mode.as_str() {
        "corpus" => run_corpus(),
        "check" => run_check(),
        "region" => run_region(),
        other => {
            eprintln!("unknown subcommand `{other}`; expected corpus | check | region");
            ExitCode::FAILURE
        }
    }
}

fn run_region() -> ExitCode {
    let report = flextensor_conformance::region_audit();
    print!("{}", report.text);
    if report.violations == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_corpus() -> ExitCode {
    let dir = corpus_dir();
    let fixtures = match load_corpus(&dir) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let report = audit_corpus(&fixtures);
    if has_flag("json") {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.mismatches() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_check() -> ExitCode {
    let kind_s: String = arg("kind", "GMM".to_string());
    let Some(kind) = OperatorKind::from_abbr(&kind_s) else {
        eprintln!("unknown operator kind `{kind_s}`; expected a suite abbreviation like GMM");
        return ExitCode::FAILURE;
    };
    let target_s: String = arg("target", "gpu".to_string());
    let target = match target_s.as_str() {
        "cpu" => TargetKind::Cpu,
        "gpu" => TargetKind::Gpu,
        "fpga" => TargetKind::Fpga,
        other => {
            eprintln!("unknown target `{other}`; expected cpu | gpu | fpga");
            return ExitCode::FAILURE;
        }
    };
    let graph = small_case(kind);
    let encoded_s: String = arg("encoded", String::new());
    let cfg = if encoded_s.is_empty() {
        NodeConfig::naive(graph.anchor_op())
    } else {
        let encoded: Result<Vec<i64>, _> = encoded_s.split('.').map(|w| w.parse::<i64>()).collect();
        let encoded = match encoded {
            Ok(v) => v,
            Err(e) => {
                eprintln!("bad --encoded vector `{encoded_s}`: {e}");
                return ExitCode::FAILURE;
            }
        };
        match NodeConfig::decode(graph.anchor_op(), &encoded) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("encoded config rejected at decode: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let report = analyze_schedule(&graph, &cfg, &audit_device(target));
    if has_flag("json") {
        println!("{}", report.to_json());
    } else {
        println!("{} [{}/{target}]", graph.name, kind.abbr());
        print!("{}", report.render_text());
    }
    if report.error_count() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
