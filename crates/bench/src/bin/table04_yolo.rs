//! Table 4 — the 15 distinctive convolution layers of YOLO-v1, with
//! derived output sizes and FLOP counts.

use flextensor_bench::harness::{save_csv, Table};
use flextensor_ir::yolo::{YOLO_LAYERS, YOLO_V1_FULL};

fn main() {
    println!("== Table 4: YOLO-v1 convolution layers ==\n");
    let mut t = Table::new(&["Name", "C", "K", "H/W", "k", "st", "out", "GFLOPs", "count"]);
    for l in &YOLO_LAYERS {
        let count = YOLO_V1_FULL
            .iter()
            .find(|(n, _)| *n == l.name)
            .map(|(_, c)| *c)
            .unwrap_or(0);
        t.row(vec![
            l.name.to_string(),
            l.in_channels.to_string(),
            l.out_channels.to_string(),
            l.size.to_string(),
            l.kernel.to_string(),
            l.stride.to_string(),
            l.out_size().to_string(),
            format!("{:.2}", l.flops(1) as f64 / 1e9),
            count.to_string(),
        ]);
    }
    println!("{}", t.render());
    save_csv("table04", &t);
    let total: usize = YOLO_V1_FULL.iter().map(|(_, c)| c).sum();
    println!("\nfull network: {total} convolution layers");
}
