//! Figure 6(b) — absolute GFLOPS of PyTorch (MKL-DNN backend) and
//! FlexTensor for the 15 YOLO-v1 convolution layers on the Xeon E5-2699
//! v4 CPU. FlexTensor decides the vectorization length itself; the paper
//! observes it always chooses 8 (AVX2) — the harness reports the chosen
//! lengths to verify.
//!
//! Flags: `--trials N` (default 120).

use flextensor::{optimize, Method, OptimizeOptions, SearchOptions, Task};
use flextensor_bench::harness::{arg, geomean, save_csv, Table};
use flextensor_ir::yolo::YOLO_LAYERS;
use flextensor_sim::library;
use flextensor_sim::spec::{xeon_e5_2699_v4, Device};

fn main() {
    let trials: usize = arg("trials", 120);
    let cpu = xeon_e5_2699_v4();
    let opts = OptimizeOptions {
        method: Method::QMethod,
        search: SearchOptions {
            trials,
            starts: 8,
            initial_samples: 16,
            ..SearchOptions::default()
        },
    };
    println!("== Figure 6(b): C2D on Xeon E5-2699 v4, GFLOPS ==\n");
    let mut t = Table::new(&[
        "layer",
        "PyTorch(MKL-DNN)",
        "FlexTensor",
        "speedup",
        "veclen",
    ]);
    let (mut mk, mut ft, mut sp) = (vec![], vec![], vec![]);
    for layer in &YOLO_LAYERS {
        let g = layer.graph(1);
        let flops = g.flops() as f64;
        let mkl = library::mkldnn_time(&g, &cpu)
            .map(|t| flops / t / 1e9)
            .unwrap_or(0.0);
        let task = Task::new(g, Device::Cpu(cpu.clone()));
        let r = optimize(&task, &opts).expect("optimize");
        let flex = r.gflops();
        mk.push(mkl);
        ft.push(flex);
        sp.push(flex / mkl);
        t.row(vec![
            layer.name.to_string(),
            format!("{mkl:.0}"),
            format!("{flex:.0}"),
            format!("{:.2}", flex / mkl),
            r.kernel.features.vector_len.to_string(),
        ]);
    }
    t.row(vec![
        "AVG".into(),
        format!("{:.0}", mk.iter().sum::<f64>() / mk.len() as f64),
        format!("{:.0}", ft.iter().sum::<f64>() / ft.len() as f64),
        format!("{:.2}", geomean(&sp)),
        "".into(),
    ]);
    println!("{}", t.render());
    save_csv("fig06b", &t);
    println!(
        "\ngeomean speedup vs MKL-DNN: {:.2}x (paper: 1.72x)",
        geomean(&sp)
    );
}
