//! Probe — parallel batched evaluation speedup and determinism.
//!
//! Runs the same GPU conv2d search twice, serial (`1` worker) and
//! parallel (`--workers`, default 8), and reports:
//!
//! * the real wall-clock each run spent inside batched evaluation and
//!   the resulting speedup (the paper's §5.2 parallel back-end argument);
//! * that both runs return the *identical* best cost and configuration
//!   (the pool reduces results in fixed candidate order, so the worker
//!   count can change wall-clock only);
//! * the memo-cache hit rate (repeat visits cost zero modeled time).
//!
//! Flags: `--trials N` (default 200), `--starts N` (default 8),
//! `--workers N` (parallel run's workers, default 8; 0 = all cores),
//! `--layer NAME` (YOLO conv2d layer, default C6), `--method M`
//! (`p`, `q`, or `walk`; default `p` — the P-method evaluates every
//! applicable direction, so its batches are the widest).

use flextensor_bench::harness::{arg, eval_summary, fmt_time, save_csv, Table};
use flextensor_explore::methods::{search, Method, SearchOptions, SearchResult};
use flextensor_ir::yolo::yolo_layer;
use flextensor_sim::model::Evaluator;
use flextensor_sim::spec::{v100, Device};

fn main() {
    let trials: usize = arg("trials", 200);
    let starts: usize = arg("starts", 8);
    let workers: usize = arg("workers", 8);
    let layer: String = arg("layer", "C6".to_string());
    let method = match arg("method", "p".to_string()).as_str() {
        "q" => Method::QMethod,
        "walk" => Method::RandomWalk,
        _ => Method::PMethod,
    };

    let g = yolo_layer(&layer).expect("known YOLO layer").graph(1);
    let ev = Evaluator::new(Device::Gpu(v100()));
    println!(
        "== Probe: parallel batched evaluation ({method}, {layer}, {trials} trials, {starts} starts) ==\n"
    );

    let run = |eval_workers: usize| -> SearchResult {
        let opts = SearchOptions {
            trials,
            starts,
            initial_samples: 16,
            eval_workers,
            ..SearchOptions::default()
        };
        search(&g, &ev, method, &opts).expect("search")
    };

    let serial = run(1);
    let parallel = run(workers);

    let mut t = Table::new(&["workers", "eval wall", "speedup", "best GFLOPS", "hit rate"]);
    let speedup = serial.eval_stats.wall_clock_s / parallel.eval_stats.wall_clock_s.max(1e-12);
    for (r, s) in [(&serial, 1.0), (&parallel, speedup)] {
        t.row(vec![
            r.eval_stats.workers.to_string(),
            fmt_time(r.eval_stats.wall_clock_s),
            format!("{s:.2}x"),
            format!("{:.0}", r.best_cost.gflops()),
            format!("{:.1}%", 100.0 * r.eval_stats.hit_rate()),
        ]);
    }
    println!("{}", t.render());
    save_csv("probe_parallel", &t);

    println!("serial:   {}", eval_summary(&serial.eval_stats));
    println!("parallel: {}", eval_summary(&parallel.eval_stats));

    let identical = serial.best.encode() == parallel.best.encode()
        && serial.best_cost.seconds == parallel.best_cost.seconds
        && serial.measurements == parallel.measurements;
    println!(
        "\nresults identical across worker counts: {}",
        if identical {
            "yes"
        } else {
            "NO — determinism bug!"
        }
    );
    println!(
        "cache hit rate > 0: {}",
        if parallel.eval_stats.hit_rate() > 0.0 {
            "yes"
        } else {
            "no"
        }
    );
    println!(
        "evaluation speedup with {} workers: {speedup:.2}x {}",
        parallel.eval_stats.workers,
        if speedup >= 2.0 { "(>= 2x)" } else { "(< 2x)" }
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if speedup < 2.0 && cores < parallel.eval_stats.workers {
        println!(
            "note: this host exposes only {cores} core{} — thread-level speedup \
             is bounded by the hardware, not by the evaluation pool",
            if cores == 1 { "" } else { "s" }
        );
    }
    if !identical {
        std::process::exit(1);
    }
}
