//! Calibration probe (not a paper figure): how close do the three search
//! methods get to the best-known schedule on a hard layer, per budget?

use flextensor_explore::methods::{search, Method, SearchOptions};
use flextensor_ir::yolo::yolo_layer;
use flextensor_sim::library;
use flextensor_sim::model::Evaluator;
use flextensor_sim::spec::{v100, Device};

fn main() {
    let layer = std::env::args().nth(1).unwrap_or_else(|| "C13".into());
    let l = yolo_layer(&layer).expect("known layer");
    let g = l.graph(1);
    let flops = g.flops() as f64;
    let gpu = v100();
    let ev = Evaluator::new(Device::Gpu(gpu.clone()));
    let expert = library::hand_tuned_gpu_time(&g, &gpu).unwrap();
    println!(
        "{layer}: expert-generic config at generated quality: {:.0} GFLOPS",
        flops / expert / 1e9
    );
    for trials in [30, 60, 120, 240] {
        for m in [Method::QMethod, Method::PMethod, Method::RandomWalk] {
            let opts = SearchOptions {
                trials,
                starts: 8,
                initial_samples: 16,
                ..SearchOptions::default()
            };
            let r = search(&g, &ev, m, &opts).unwrap();
            println!(
                "  trials={trials:<4} {m:<12} best={:>6.0} GFLOPS  meas={:<5} time={:.0}s",
                r.best_cost.gflops(),
                r.measurements,
                r.exploration_time_s
            );
        }
    }
}
