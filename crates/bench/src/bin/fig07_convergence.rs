//! Figure 7 — performance vs exploration time for test cases C1, C6, C8
//! and C9 (V100): the convergence curves of P-method, Q-method and
//! AutoTVM.
//!
//! Flags: `--trials N` (P/Q trials, default 150), `--rounds N` (AutoTVM
//! rounds, default 16), `--points N` (rows per curve, default 12),
//! `--workers N` (evaluation threads, default 1; 0 = all cores — the
//! curves are identical, only real wall-clock changes).

use flextensor_autotvm::tuner::{tune, TuneOptions};
use flextensor_bench::harness::{arg, ascii_plot, eval_summary, save_csv, Table};
use flextensor_explore::methods::{search, Method, SearchOptions};
use flextensor_ir::yolo::yolo_layer;
use flextensor_sim::model::Evaluator;
use flextensor_sim::spec::{v100, Device};

/// Downsamples a (time, gflops) series to ~n rows.
fn downsample(series: &[(f64, f64)], n: usize) -> Vec<(f64, f64)> {
    if series.len() <= n {
        return series.to_vec();
    }
    let step = series.len() as f64 / n as f64;
    (0..n)
        .map(|i| series[((i as f64 + 1.0) * step - 1.0) as usize])
        .collect()
}

fn main() {
    let trials: usize = arg("trials", 150);
    let rounds: usize = arg("rounds", 16);
    let points: usize = arg("points", 12);
    let workers: usize = arg("workers", 1);
    let ev = Evaluator::new(Device::Gpu(v100()));
    for name in ["C1", "C6", "C8", "C9"] {
        let g = yolo_layer(name).unwrap().graph(1);
        println!("== Figure 7 ({name}): performance (GFLOPS) vs exploration time (s) ==\n");

        let run = |m: Method| {
            let opts = SearchOptions {
                trials,
                starts: if m == Method::PMethod { 2 } else { 8 },
                initial_samples: 16,
                eval_workers: workers,
                ..SearchOptions::default()
            };
            let r = search(&g, &ev, m, &opts).expect("search");
            println!("  [{m}] {}", eval_summary(&r.eval_stats));
            r.trace
                .iter()
                .map(|p| (p.exploration_time_s, p.best_gflops))
                .collect::<Vec<_>>()
        };
        let p_curve = downsample(&run(Method::PMethod), points);
        let q_curve = downsample(&run(Method::QMethod), points);
        let at = tune(
            &g,
            &ev,
            &TuneOptions {
                rounds,
                batch: 64,
                eval_workers: workers,
                ..TuneOptions::default()
            },
        )
        .expect("autotvm");
        println!("  [AutoTVM] {}\n", eval_summary(&at.eval_stats));
        let a_curve = downsample(
            &at.trace
                .iter()
                .map(|p| (p.exploration_time_s, p.best_gflops))
                .collect::<Vec<_>>(),
            points,
        );

        let mut t = Table::new(&["P time", "P GF", "Q time", "Q GF", "AT time", "AT GF"]);
        let rows = p_curve.len().max(q_curve.len()).max(a_curve.len());
        let cell = |c: Option<&(f64, f64)>, which: usize| {
            c.map(|(t, g)| {
                if which == 0 {
                    format!("{t:.0}")
                } else {
                    format!("{g:.0}")
                }
            })
            .unwrap_or_default()
        };
        for i in 0..rows {
            t.row(vec![
                cell(p_curve.get(i), 0),
                cell(p_curve.get(i), 1),
                cell(q_curve.get(i), 0),
                cell(q_curve.get(i), 1),
                cell(a_curve.get(i), 0),
                cell(a_curve.get(i), 1),
            ]);
        }
        println!("{}", t.render());
        save_csv(&format!("fig07_{name}"), &t);
        println!(
            "{}",
            ascii_plot(
                &[
                    ("P-method", p_curve.clone()),
                    ("Q-method", q_curve.clone()),
                    ("AutoTVM", a_curve.clone()),
                ],
                64,
                14,
            )
        );
    }
    println!(
        "Q-method converges to good performance in a short time; P-method and AutoTVM take longer."
    );
}
