//! Probe — record and replay structured exploration traces.
//!
//! Two modes:
//!
//! * `probe_trace <trace.jsonl>` — replay a recorded trace offline and
//!   print a text report: best-cost curve, SA acceptance by phase, cache
//!   hit rate, per-trial wall-clock, and a verdict on whether the pure
//!   event-stream fold reproduces the recorded `run_summary` exactly.
//!   Exits nonzero when it does not (a tampered or truncated trace).
//! * `probe_trace --record <trace.jsonl>` — run a quick GEMM search with
//!   a `JsonlSink` attached, write the trace, then replay and report it
//!   in one step. Flags: `--method q|p|walk|autotvm` (default `q`),
//!   `--trials N` (default 40; rounds for `autotvm`), `--seed N`,
//!   `--workers N` (evaluation workers; any value records the same
//!   trace modulo wall-clock fields), `--delta 1` (search methods only:
//!   evaluate each trial's candidates incrementally — the trace gains
//!   `delta_stats` records but is otherwise byte-identical modulo
//!   wall-clock fields, because the delta path is bit-identical to the
//!   full path).
//!
//! The JSONL schema is documented in `docs/TRACE_FORMAT.md`.

use flextensor_autotvm::tuner::{tune, TuneOptions};
use flextensor_bench::harness::arg;
use flextensor_explore::methods::{search, Method, SearchOptions};
use flextensor_ir::ops;
use flextensor_sim::model::Evaluator;
use flextensor_sim::spec::{v100, Device};
use flextensor_telemetry::{read_trace_file, replay, report, JsonlSink, Telemetry};

fn main() {
    let record: String = arg("record", String::new());
    let path = if record.is_empty() {
        match std::env::args().skip(1).find(|a| !a.starts_with("--")) {
            Some(p) => p,
            None => {
                eprintln!("usage: probe_trace <trace.jsonl>");
                eprintln!(
                    "       probe_trace --record <trace.jsonl> \
                     [--method q|p|walk|autotvm] [--trials N] [--seed N] [--workers N] \
                     [--delta 1]"
                );
                std::process::exit(2);
            }
        }
    } else {
        record_trace(&record);
        record
    };

    let events = match read_trace_file(&path) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let rep = match replay::replay(&events) {
        Ok(rep) => rep,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    println!(
        "== Probe: trace replay ({path}, {} records) ==\n",
        events.len()
    );
    print!("{}", report::render(&rep));
    if !rep.summary_matches() {
        eprintln!("\nreplayed summary differs from the recorded run_summary");
        std::process::exit(1);
    }
}

/// Runs a quick search/tuning of a 256³ GEMM on the V100 model with a
/// `JsonlSink` attached, writing the trace to `path`.
fn record_trace(path: &str) {
    let method: String = arg("method", "q".to_string());
    let trials: usize = arg("trials", 40);
    let seed: u64 = arg("seed", 0xF1E2);
    let workers: usize = arg("workers", 1);
    let delta: usize = arg("delta", 0);
    let g = ops::gemm(256, 256, 256);
    let ev = Evaluator::new(Device::Gpu(v100()));
    let sink = JsonlSink::create(path).expect("create trace file");
    let tel = Telemetry::to_sink(sink);
    let tag = if delta != 0 { ", delta eval" } else { "" };
    println!("recording `{method}` run ({trials} trials, seed {seed:#x}{tag}) -> {path}");
    if method == "autotvm" {
        if delta != 0 {
            eprintln!("--delta applies to search methods only; ignored for autotvm");
        }
        let opts = TuneOptions {
            rounds: trials.max(1),
            batch: 16,
            seed,
            eval_workers: workers,
            telemetry: tel,
            ..TuneOptions::default()
        };
        let r = tune(&g, &ev, &opts).expect("tune");
        println!("best: {:.0} GFLOPS", r.best_cost.gflops());
    } else {
        let m = match method.as_str() {
            "p" => Method::PMethod,
            "walk" => Method::RandomWalk,
            _ => Method::QMethod,
        };
        let opts = SearchOptions {
            trials,
            starts: 6,
            initial_samples: 12,
            seed,
            eval_workers: workers,
            delta_eval: delta != 0,
            telemetry: tel,
            ..SearchOptions::default()
        };
        let r = search(&g, &ev, m, &opts).expect("search");
        println!("best: {:.0} GFLOPS", r.best_cost.gflops());
    }
}
