//! Figure 6(c) — absolute GFLOPS of the hand-optimized OpenCL baseline
//! (the Zhang et al. FPGA'15 design point) and FlexTensor for the 15
//! YOLO-v1 convolution layers on the Xilinx VU9P FPGA, both evaluated with
//! the §5.2 analytical pipeline model.
//!
//! Flags: `--trials N` (default 120).

use flextensor::{optimize, Method, OptimizeOptions, SearchOptions, Task};
use flextensor_bench::harness::{arg, geomean, save_csv, Table};
use flextensor_ir::yolo::YOLO_LAYERS;
use flextensor_sim::library;
use flextensor_sim::spec::{vu9p, Device};

fn main() {
    let trials: usize = arg("trials", 120);
    let fpga = vu9p();
    let opts = OptimizeOptions {
        method: Method::QMethod,
        search: SearchOptions {
            trials,
            starts: 8,
            initial_samples: 16,
            ..SearchOptions::default()
        },
    };
    println!("== Figure 6(c): C2D on VU9P, GFLOPS ==\n");
    let mut t = Table::new(&[
        "layer",
        "Hand-Optimized",
        "FlexTensor",
        "speedup",
        "#PE",
        "pipeline",
    ]);
    let (mut ho, mut ft, mut sp) = (vec![], vec![], vec![]);
    for layer in &YOLO_LAYERS {
        let g = layer.graph(1);
        let flops = g.flops() as f64;
        let hand = library::opencl_fpga_time(&g, &fpga)
            .map(|t| flops / t / 1e9)
            .unwrap_or(0.0);
        let task = Task::new(g, Device::Fpga(fpga.clone()));
        let r = optimize(&task, &opts).expect("optimize");
        let flex = r.gflops();
        let (pe, pipe) = r
            .kernel
            .features
            .fpga
            .as_ref()
            .map(|f| (f.pe, f.pipeline))
            .unwrap_or((0, 0));
        ho.push(hand);
        ft.push(flex);
        sp.push(flex / hand);
        t.row(vec![
            layer.name.to_string(),
            format!("{hand:.0}"),
            format!("{flex:.0}"),
            format!("{:.2}", flex / hand),
            pe.to_string(),
            pipe.to_string(),
        ]);
    }
    t.row(vec![
        "AVG".into(),
        format!("{:.0}", ho.iter().sum::<f64>() / ho.len() as f64),
        format!("{:.0}", ft.iter().sum::<f64>() / ft.len() as f64),
        format!("{:.2}", geomean(&sp)),
        "".into(),
        "".into(),
    ]);
    println!("{}", t.render());
    save_csv("fig06c", &t);
    println!(
        "\ngeomean speedup vs hand-optimized OpenCL: {:.2}x (paper: 1.5x)",
        geomean(&sp)
    );
}
