//! Calibration probe: AutoTVM converged performance vs FlexTensor methods.

use flextensor_autotvm::tuner::{tune, TuneOptions};
use flextensor_explore::methods::{search, Method, SearchOptions};
use flextensor_ir::yolo::yolo_layer;
use flextensor_sim::model::Evaluator;
use flextensor_sim::spec::{v100, Device};

fn main() {
    let ev = Evaluator::new(Device::Gpu(v100()));
    for name in ["C1", "C6", "C8", "C9", "C13"] {
        let g = yolo_layer(name).unwrap().graph(1);
        let at = tune(
            &g,
            &ev,
            &TuneOptions {
                rounds: 16,
                batch: 64,
                ..TuneOptions::default()
            },
        )
        .unwrap();
        let q = search(
            &g,
            &ev,
            Method::QMethod,
            &SearchOptions {
                trials: 150,
                starts: 8,
                ..SearchOptions::default()
            },
        )
        .unwrap();
        println!(
            "{name}: autotvm={:>5.0} GF ({} meas, {:.0}s)  q={:>5.0} GF ({} meas, {:.0}s)  q/at={:.2}",
            at.best_cost.gflops(),
            at.measurements,
            at.exploration_time_s,
            q.best_cost.gflops(),
            q.measurements,
            q.exploration_time_s,
            q.best_cost.gflops() / at.best_cost.gflops()
        );
    }
}
