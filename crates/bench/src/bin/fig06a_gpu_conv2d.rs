//! Figure 6(a) — absolute GFLOPS of PyTorch (native), cuDNN and
//! FlexTensor for the 15 YOLO-v1 convolution layers on V100.
//!
//! Flags: `--trials N` (default 120).

use flextensor::{optimize, Method, OptimizeOptions, SearchOptions, Task};
use flextensor_bench::harness::{arg, geomean, save_csv, Table};
use flextensor_ir::suite::OperatorKind;
use flextensor_ir::yolo::YOLO_LAYERS;
use flextensor_sim::library;
use flextensor_sim::spec::{v100, Device};

fn main() {
    let trials: usize = arg("trials", 120);
    let gpu = v100();
    let opts = OptimizeOptions {
        method: Method::QMethod,
        search: SearchOptions {
            trials,
            starts: 8,
            initial_samples: 16,
            ..SearchOptions::default()
        },
    };
    println!("== Figure 6(a): C2D on V100, GFLOPS ==\n");
    let mut t = Table::new(&["layer", "PyTorch", "cuDNN", "FlexTensor", "FT/cuDNN"]);
    let (mut py, mut cu, mut ft, mut sp) = (vec![], vec![], vec![], vec![]);
    for layer in &YOLO_LAYERS {
        let g = layer.graph(1);
        let flops = g.flops() as f64;
        let to_gf = |t: f64| flops / t / 1e9;
        let native = library::pytorch_gpu_time(&g, &gpu)
            .map(to_gf)
            .unwrap_or(0.0);
        let cudnn = library::cudnn_time(OperatorKind::Conv2d, &g, &gpu)
            .map(to_gf)
            .unwrap_or(0.0);
        let task = Task::new(g, Device::Gpu(gpu.clone()));
        let flex = optimize(&task, &opts).expect("optimize").gflops();
        py.push(native);
        cu.push(cudnn);
        ft.push(flex);
        sp.push(flex / cudnn);
        t.row(vec![
            layer.name.to_string(),
            format!("{native:.0}"),
            format!("{cudnn:.0}"),
            format!("{flex:.0}"),
            format!("{:.2}", flex / cudnn),
        ]);
    }
    t.row(vec![
        "AVG".into(),
        format!("{:.0}", py.iter().sum::<f64>() / py.len() as f64),
        format!("{:.0}", cu.iter().sum::<f64>() / cu.len() as f64),
        format!("{:.0}", ft.iter().sum::<f64>() / ft.len() as f64),
        format!("{:.2}", geomean(&sp)),
    ]);
    println!("{}", t.render());
    save_csv("fig06a", &t);
    println!(
        "\ngeomean speedup vs cuDNN: {:.2}x, vs PyTorch: {:.2}x (paper: 1.5x / 1.56x)",
        geomean(&sp),
        geomean(&ft.iter().zip(&py).map(|(f, p)| f / p).collect::<Vec<_>>())
    );
}
