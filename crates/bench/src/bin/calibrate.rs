//! Calibration harness (not a paper figure): prints FlexTensor vs the
//! simulated libraries on the Fig. 6a workload so model constants can be
//! sanity-checked quickly. Run with `--trials N` to change the search
//! budget.

use flextensor::{optimize, Method, OptimizeOptions, SearchOptions, Task};
use flextensor_bench::harness::{geomean, Table};
use flextensor_ir::suite::OperatorKind;
use flextensor_ir::yolo::YOLO_LAYERS;
use flextensor_sim::library;
use flextensor_sim::spec::{v100, Device};

fn main() {
    let trials: usize = std::env::args()
        .skip_while(|a| a != "--trials")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let gpu = v100();
    let opts = OptimizeOptions {
        method: Method::QMethod,
        search: SearchOptions {
            trials,
            starts: 8,
            initial_samples: 16,
            ..SearchOptions::default()
        },
    };
    let mut table = Table::new(&[
        "layer",
        "pytorch",
        "cudnn",
        "flextensor",
        "ft/cudnn",
        "measurements",
    ]);
    let mut speedups = Vec::new();
    for layer in &YOLO_LAYERS {
        let g = layer.graph(1);
        let flops = g.flops() as f64;
        let native = library::pytorch_gpu_time(&g, &gpu).map(|t| flops / t / 1e9);
        let cudnn = library::cudnn_time(OperatorKind::Conv2d, &g, &gpu).map(|t| flops / t / 1e9);
        let task = Task::new(g, Device::Gpu(gpu.clone()));
        let ft = optimize(&task, &opts).expect("optimize");
        let ratio = cudnn.map(|c| ft.gflops() / c).unwrap_or(f64::NAN);
        speedups.push(ratio);
        table.row(vec![
            layer.name.to_string(),
            format!("{:.0}", native.unwrap_or(0.0)),
            format!("{:.0}", cudnn.unwrap_or(0.0)),
            format!("{:.0}", ft.gflops()),
            format!("{ratio:.2}"),
            format!("{}", ft.measurements),
        ]);
    }
    println!("{}", table.render());
    println!(
        "geomean FlexTensor/cuDNN speedup: {:.2}x",
        geomean(&speedups)
    );
}
