//! Table 3 — benchmark specifications: each operator with its static-
//! analysis results (#sl/#rl, #node), library support, FLOP range and
//! test-case count, regenerated from the actual suite graphs.

use flextensor_bench::harness::{save_csv, Table};
use flextensor_ir::analysis::analyze;
use flextensor_ir::suite::{test_cases, OperatorKind};

fn library_support(kind: OperatorKind) -> (&'static str, &'static str) {
    use OperatorKind::*;
    match kind {
        Gemv | Gemm | Bilinear => ("MKL", "cuBlas"),
        Conv1d | Conv2d | GroupConv | Depthwise | Dilated => ("MKL-DNN", "cuDNN"),
        ConvTranspose1d | ConvTranspose2d => ("PyTorch", "cuDNN"),
        Conv3d | ConvTranspose3d => ("PyTorch", "cuDNN"),
        Bcm | Shift => ("-", "-"),
    }
}

fn fmt_flops(f: u64) -> String {
    if f >= 1_000_000_000 {
        format!("{:.1}G", f as f64 / 1e9)
    } else if f >= 1_000_000 {
        format!("{:.0}M", f as f64 / 1e6)
    } else {
        format!("{:.0}K", f as f64 / 1e3)
    }
}

fn main() {
    println!("== Table 3: benchmark specifications ==\n");
    let mut t = Table::new(&[
        "Operator", "Abbr", "#sl/rl", "#node", "CPU lib", "GPU lib", "FLOPs", "Cases",
    ]);
    for kind in OperatorKind::table3() {
        let cases = test_cases(kind);
        let analyses: Vec<_> = cases.iter().map(analyze).collect();
        let a0 = &analyses[0];
        let fmin = analyses.iter().map(|a| a.flops).min().unwrap_or(0);
        let fmax = analyses.iter().map(|a| a.flops).max().unwrap_or(0);
        let (cpu, gpu) = library_support(kind);
        t.row(vec![
            format!("{kind:?}"),
            kind.abbr().to_string(),
            format!("{}/{}", a0.total_spatial, a0.root_reduce),
            a0.num_compute_nodes.to_string(),
            cpu.to_string(),
            gpu.to_string(),
            format!("{}-{}", fmt_flops(fmin), fmt_flops(fmax)),
            cases.len().to_string(),
        ]);
    }
    println!("{}", t.render());
    save_csv("table03", &t);

    println!("\nPer-node statistical information of the first case of each operator:");
    for kind in OperatorKind::table3() {
        let g = &test_cases(kind)[0];
        let a = analyze(g);
        println!("\n{} ({}):", kind.abbr(), g.name);
        for s in &a.stats {
            println!("  {s}");
        }
    }
}
