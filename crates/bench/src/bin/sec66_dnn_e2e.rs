//! §6.6 — case study of full DNNs: YOLO-v1 (24 conv layers) and OverFeat
//! (5 conv layers) end-to-end on V100 at batch 1, FlexTensor vs AutoTVM.
//!
//! Flags: `--trials N` (FlexTensor per-layer budget, default 120),
//! `--rounds N` (AutoTVM rounds per layer, default 12).

use flextensor::dnn::{autotvm_network, optimize_network, overfeat, yolo_v1, LayerSpec};
use flextensor::{Method, OptimizeOptions, SearchOptions};
use flextensor_autotvm::tuner::TuneOptions;
use flextensor_bench::harness::{arg, fmt_time, save_csv, Table};
use flextensor_sim::spec::{v100, Device};

fn run(name: &str, specs: &[LayerSpec], device: &Device, trials: usize, rounds: usize) {
    let opts = OptimizeOptions {
        method: Method::QMethod,
        search: SearchOptions {
            trials,
            starts: 8,
            initial_samples: 16,
            ..SearchOptions::default()
        },
    };
    let topts = TuneOptions {
        rounds,
        batch: 64,
        ..TuneOptions::default()
    };
    let ft = optimize_network(specs, device, 1, &opts).expect("flextensor network");
    let at = autotvm_network(specs, device, 1, &topts).expect("autotvm network");
    println!(
        "== §6.6: {name} end-to-end on {} (batch 1) ==\n",
        device.name()
    );
    let mut t = Table::new(&["layer", "count", "AutoTVM", "FlexTensor", "speedup"]);
    for (f, a) in ft.layers.iter().zip(&at.layers) {
        t.row(vec![
            f.name.to_string(),
            f.count.to_string(),
            fmt_time(a.seconds),
            fmt_time(f.seconds),
            format!("{:.2}", a.seconds / f.seconds),
        ]);
    }
    t.row(vec![
        "TOTAL".into(),
        "".into(),
        fmt_time(at.total_seconds),
        fmt_time(ft.total_seconds),
        format!("{:.2}", at.total_seconds / ft.total_seconds),
    ]);
    println!("{}", t.render());
    save_csv(
        &format!("sec66_{}", name.to_lowercase().replace('-', "_")),
        &t,
    );
    println!(
        "\n{name} end-to-end speedup vs AutoTVM: {:.2}x\n",
        at.total_seconds / ft.total_seconds
    );
}

fn main() {
    let trials: usize = arg("trials", 120);
    let rounds: usize = arg("rounds", 12);
    let device = Device::Gpu(v100());
    run("YOLO-v1", &yolo_v1(), &device, trials, rounds);
    run("OverFeat", &overfeat(), &device, trials, rounds);
    println!("(paper: 1.07x for YOLO-v1, 1.39x for OverFeat)");
}
