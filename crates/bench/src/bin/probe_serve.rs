//! Probe — tuning-as-a-service smoke: concurrent sessions over one
//! shared schedule database.
//!
//! Two phases over a temporary [`TuneDb`]:
//!
//! 1. **Seed** — a single session tunes two tasks, populating the store.
//! 2. **Serve** — `--sessions` concurrent sessions (default 8) each
//!    submit `--requests` tasks drawn round-robin from a fixed pool, so
//!    the mix contains snapshot hits, fresh (warm- and cold-started)
//!    tunes, and coalesced duplicates.
//!
//! Everything in the written summary is deterministic: request
//! classification happens at submit time against a database snapshot,
//! submission order is fixed, and search itself is bit-deterministic per
//! seed — so the per-session hit/miss/warm/coalesced table and the
//! per-key modeled costs are byte-identical run-to-run and worker-count
//! independent (queue wait, the only wall-clock quantity, is excluded).
//! CI diffs the output against the committed `results/probe_serve.csv`.
//!
//! Flags: `--sessions N` (default 8), `--workers N` (default 4),
//! `--requests N` per session (default 6), `--seed N` (default 2024),
//! `--out PATH` (default `results/probe_serve.csv`).

use std::sync::Arc;

use flextensor::serve::{ServeOptions, SessionServer};
use flextensor::OptimizeOptions;
use flextensor_bench::harness::arg;
use flextensor_ir::graph::Graph;
use flextensor_ir::ops::{self, ConvParams};
use flextensor_sim::spec::{v100, Device};
use flextensor_telemetry::json::write_f64;
use flextensor_tunedb::{testutil, TuneDb};

/// The fixed task pool: two gemm shapes of one family (so the second
/// warm-starts from the first), a gemv (no neighbor → cold start), and a
/// small conv2d.
fn task_pool() -> Vec<Graph> {
    vec![
        ops::gemm(32, 32, 32),
        ops::gemm(64, 64, 64),
        ops::gemv(128, 128),
        ops::conv2d(ConvParams::same(1, 8, 8, 3), 8, 8),
    ]
}

fn main() {
    let sessions: usize = arg("sessions", 8);
    let workers: usize = arg("workers", 4);
    let requests: usize = arg("requests", 6);
    let seed: u64 = arg("seed", 2024);
    let out: String = arg("out", "results/probe_serve.csv".to_string());

    let mut base = OptimizeOptions::quick();
    base.search.seed = seed;
    base.search.trials = 8;
    base.search.starts = 2;
    base.search.initial_samples = 6;

    println!(
        "== Probe: session server (sessions {sessions}, workers {workers}, \
         {requests} requests/session, seed {seed}) ==\n"
    );

    let dir = testutil::temp_dir("probe-serve");
    let (db, _) = TuneDb::open(&dir).expect("open temp db");
    let db = Arc::new(db);
    let pool = task_pool();

    // Phase 1: seed the store with two tasks.
    {
        let server = SessionServer::new(
            Arc::clone(&db),
            ServeOptions {
                workers,
                base: base.clone(),
                commit: "probe-serve".to_string(),
            },
        );
        let seeder = server.session("seeder");
        let t0 = seeder.submit(pool[0].clone(), Device::Gpu(v100()));
        let t3 = seeder.submit(pool[3].clone(), Device::Gpu(v100()));
        t0.wait().expect("seed tune 0");
        t3.wait().expect("seed tune 3");
    }
    println!("seeded {} records\n", db.len());

    // Phase 2: concurrent sessions over the seeded store.
    let server = SessionServer::new(
        Arc::clone(&db),
        ServeOptions {
            workers,
            base,
            commit: "probe-serve".to_string(),
        },
    );
    let handles: Vec<_> = (0..sessions)
        .map(|i| server.session(&format!("s{i}")))
        .collect();
    let mut tickets = Vec::new();
    for r in 0..requests {
        for (i, s) in handles.iter().enumerate() {
            let g = pool[(r + i) % pool.len()].clone();
            tickets.push(s.submit(g, Device::Gpu(v100())));
        }
    }
    let mut failed = 0usize;
    for t in tickets {
        if t.wait().is_err() {
            failed += 1;
        }
    }
    assert_eq!(failed, 0, "probe requests must all succeed");

    // Deterministic summary: per-session classification counts, then the
    // final store contents (key → modeled cost, shortest-round-trip f64).
    let mut csv = String::from("session,submitted,completed,failed,hits,misses,warm,coalesced\n");
    for (name, s) in server.session_stats() {
        csv.push_str(&format!(
            "{name},{},{},{},{},{},{},{}\n",
            s.submitted, s.completed, s.failed, s.hits, s.misses, s.warm_starts, s.coalesced
        ));
    }
    let agg = server.stats();
    csv.push_str(&format!(
        "total,{},{},{},{},{},{},{}\n",
        agg.requests,
        agg.completed,
        agg.failed,
        agg.hits,
        agg.misses,
        agg.warm_starts,
        agg.coalesced
    ));
    drop(server);
    csv.push_str("key,seconds\n");
    for key in db.keys() {
        let rec = db.peek(&key).expect("indexed key");
        let mut secs = String::new();
        write_f64(&mut secs, rec.seconds);
        csv.push_str(&format!("{},{secs}\n", key.flat()));
    }

    print!("{csv}");
    if let Some(parent) = std::path::Path::new(&out).parent() {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("warning: cannot create {}: {e}", parent.display());
        }
    }
    match std::fs::write(&out, &csv) {
        Ok(()) => println!("\n(saved {out})"),
        Err(e) => eprintln!("warning: cannot write {out}: {e}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
