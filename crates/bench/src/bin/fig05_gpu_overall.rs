//! Figure 5 — normalized performance of native PyTorch, cuDNN/cuBLAS and
//! FlexTensor for all 12 operators on V100, P100 and Titan X.
//!
//! For each (operator, GPU) the geometric-mean throughput over the
//! operator's Table 3 test cases is computed for each system and the three
//! bars are normalized to the best. The paper's headline (1.83x average
//! speedup over cuDNN on V100) is reported as the geomean of per-case
//! FlexTensor/library speedups.
//!
//! Flags: `--trials N` (search budget per case, default 60),
//! `--cases N` (max test cases per operator, default all).

use flextensor::{optimize, Method, OptimizeOptions, SearchOptions, Task};
use flextensor_bench::harness::{arg, geomean, save_csv, Table};
use flextensor_ir::suite::{test_cases, OperatorKind};
use flextensor_sim::library;
use flextensor_sim::spec::{p100, titan_x, v100, Device, GpuSpec};

fn library_time(kind: OperatorKind, g: &flextensor_ir::graph::Graph, gpu: &GpuSpec) -> Option<f64> {
    match kind {
        OperatorKind::Gemv | OperatorKind::Gemm | OperatorKind::Bilinear => {
            Some(library::cublas_time(g, gpu))
        }
        _ => library::cudnn_time(kind, g, gpu),
    }
}

fn main() {
    let trials: usize = arg("trials", 60);
    let max_cases: usize = arg("cases", usize::MAX);
    let gpus = [v100(), p100(), titan_x()];
    let opts = OptimizeOptions {
        method: Method::QMethod,
        search: SearchOptions {
            trials,
            starts: 8,
            initial_samples: 16,
            ..SearchOptions::default()
        },
    };

    for gpu in &gpus {
        println!("== Figure 5 ({}): normalized performance ==\n", gpu.name);
        let mut t = Table::new(&["op", "PyTorch", "cuDNN", "FlexTensor", "FT/lib"]);
        let mut speedups_all = Vec::new();
        let mut rows: Vec<(String, f64, f64, f64, f64)> = Vec::new();
        for kind in OperatorKind::table3() {
            let cases: Vec<_> = test_cases(kind).into_iter().take(max_cases).collect();
            let mut native_g = Vec::new();
            let mut lib_g = Vec::new();
            let mut ft_g = Vec::new();
            let mut speedups = Vec::new();
            for g in &cases {
                let flops = g.flops() as f64;
                let to_gf = |t: f64| flops / t / 1e9;
                let native = library::pytorch_gpu_time(g, gpu).map(to_gf);
                let lib = library_time(kind, g, gpu).map(to_gf);
                let task = Task::new(g.clone(), Device::Gpu(gpu.clone()));
                let ft = optimize(&task, &opts).expect("optimize").gflops();
                if let Some(n) = native {
                    native_g.push(n);
                }
                if let Some(l) = lib {
                    lib_g.push(l);
                }
                ft_g.push(ft);
                // Per the paper, DEP compares against native PyTorch (cuDNN
                // support is poor); everything else against the library.
                let baseline = match kind {
                    OperatorKind::Depthwise => native,
                    _ => lib.or(native),
                };
                if let Some(b) = baseline {
                    if ft > 0.0 && b > 0.0 {
                        speedups.push(ft / b);
                    }
                }
            }
            let (n, l, f) = (geomean(&native_g), geomean(&lib_g), geomean(&ft_g));
            rows.push((kind.abbr().to_string(), n, l, f, geomean(&speedups)));
            speedups_all.extend(speedups);
        }
        // Normalize each row to its best system.
        for (name, n, l, f, sp) in &rows {
            let m = n.max(*l).max(*f).max(1e-30);
            t.row(vec![
                name.clone(),
                format!("{:.2}", n / m),
                format!("{:.2}", l / m),
                format!("{:.2}", f / m),
                format!("{sp:.2}"),
            ]);
        }
        let overall = geomean(&speedups_all);
        t.row(vec![
            "GEOMEAN".into(),
            "".into(),
            "".into(),
            "".into(),
            format!("{overall:.2}"),
        ]);
        println!("{}", t.render());
        println!(
            "average FlexTensor speedup over the vendor library on {}: {overall:.2}x\n",
            gpu.name
        );
        save_csv(&format!("fig05_{}", gpu.name.to_lowercase()), &t);
    }
}
