//! Ablation studies of the design choices DESIGN.md calls out (§4.2/§5.1):
//!
//! 1. **Starting-point rule** — SA temperature sweep: γ=0 (uniform over
//!    `H`), the default γ, and γ=50 (effectively greedy best-only).
//! 2. **Direction selection** — Q-method vs P-method vs random walk at an
//!    equal measurement budget.
//! 3. **Producer placement** — the best schedule with padding inlined vs
//!    forced materialization.
//! 4. **Shared-memory caching** — best-found schedule with the cache
//!    primitive enabled vs disabled (GPU).
//!
//! Flags: `--trials N` (default 100), `--layer NAME` (default C9).

use flextensor_bench::harness::{arg, save_csv, Table};
use flextensor_explore::methods::{search, Method, SearchOptions};
use flextensor_ir::yolo::yolo_layer;
use flextensor_sim::model::Evaluator;
use flextensor_sim::spec::{v100, Device};

fn main() {
    let trials: usize = arg("trials", 100);
    let layer: String = arg("layer", "C9".to_string());
    let g = yolo_layer(&layer).expect("known layer").graph(1);
    let ev = Evaluator::new(Device::Gpu(v100()));
    let base = SearchOptions {
        trials,
        starts: 8,
        initial_samples: 16,
        ..SearchOptions::default()
    };

    println!("== Ablation 1: SA starting-point temperature (γ), {layer} ==\n");
    let mut t1 = Table::new(&["gamma", "best GFLOPS", "measurements"]);
    for gamma in [0.0, 2.0, 50.0] {
        let r = search(
            &g,
            &ev,
            Method::RandomWalk,
            &SearchOptions {
                gamma,
                ..base.clone()
            },
        )
        .unwrap();
        t1.row(vec![
            format!("{gamma}"),
            format!("{:.0}", r.best_cost.gflops()),
            r.measurements.to_string(),
        ]);
    }
    println!("{}", t1.render());
    save_csv("ablation_gamma", &t1);

    println!("\n== Ablation 2: direction selection at equal trial budget, {layer} ==\n");
    let mut t2 = Table::new(&["method", "best GFLOPS", "measurements", "time(s)"]);
    for m in [Method::QMethod, Method::PMethod, Method::RandomWalk] {
        let r = search(&g, &ev, m, &base).unwrap();
        t2.row(vec![
            m.to_string(),
            format!("{:.0}", r.best_cost.gflops()),
            r.measurements.to_string(),
            format!("{:.0}", r.exploration_time_s),
        ]);
    }
    println!("{}", t2.render());
    save_csv("ablation_method", &t2);

    println!("\n== Ablation 3 & 4: inline and cache primitives on the found schedule ==\n");
    let best = search(&g, &ev, Method::RandomWalk, &base).unwrap().best;
    let mut t3 = Table::new(&["variant", "GFLOPS"]);
    let flops = g.flops() as f64;
    let eval = |cfg: &flextensor_schedule::config::NodeConfig| {
        ev.evaluate(&g, cfg)
            .map(|c| flops / c.seconds / 1e9)
            .unwrap_or(0.0)
    };
    t3.row(vec!["found schedule".into(), format!("{:.0}", eval(&best))]);
    let mut materialized = best.clone();
    materialized.inline_data = false;
    t3.row(vec![
        "padding materialized".into(),
        format!("{:.0}", eval(&materialized)),
    ]);
    let mut flipped_cache = best.clone();
    flipped_cache.cache_shared = !flipped_cache.cache_shared;
    t3.row(vec![
        format!(
            "cache_shared = {}",
            if flipped_cache.cache_shared {
                "on"
            } else {
                "off"
            }
        ),
        format!("{:.0}", eval(&flipped_cache)),
    ]);
    println!("{}", t3.render());
    save_csv("ablation_primitives", &t3);
}
