//! Figure 6(d) — exploration-time comparison of AutoTVM, P-method and
//! Q-method on the 15 YOLO-v1 layers (V100).
//!
//! Protocol (§6.5): run AutoTVM until it converges to a stable
//! performance, then run P-method and Q-method until each reaches a
//! similar performance, and report the (modeled) exploration time of all
//! three. On average the paper measures Q-method at 27.6% of P-method's
//! time and 52.9% of AutoTVM's.
//!
//! Flags: `--rounds N` (AutoTVM rounds, default 16), `--max-trials N`
//! (P/Q trial cap, default 400), `--layers N` (first N layers, default 15),
//! `--workers N` (evaluation threads, default 1; 0 = all cores — results
//! are identical, only wall-clock changes).

use flextensor_autotvm::tuner::{tune, TuneOptions};
use flextensor_bench::harness::{arg, eval_summary, fmt_time, save_csv, Table};
use flextensor_explore::methods::{search, Method, SearchOptions};
use flextensor_explore::pool::EvalStats;
use flextensor_ir::yolo::YOLO_LAYERS;
use flextensor_sim::model::Evaluator;
use flextensor_sim::spec::{v100, Device};

fn main() {
    let rounds: usize = arg("rounds", 16);
    let max_trials: usize = arg("max-trials", 400);
    let nlayers: usize = arg("layers", 15);
    let workers: usize = arg("workers", 1);
    let ev = Evaluator::new(Device::Gpu(v100()));
    println!("== Figure 6(d): exploration time to reach AutoTVM's converged performance ==\n");
    let mut t = Table::new(&[
        "layer",
        "AutoTVM(s)",
        "P-method(s)",
        "Q-method(s)",
        "Q/P",
        "Q/AutoTVM",
    ]);
    let (mut qp, mut qa) = (Vec::new(), Vec::new());
    let mut pool_stats = EvalStats::default();
    let mut add_stats = |s: &EvalStats| {
        pool_stats.evaluated += s.evaluated;
        pool_stats.cache_hits += s.cache_hits;
        pool_stats.cache_misses += s.cache_misses;
        pool_stats.workers = s.workers;
        pool_stats.wall_clock_s += s.wall_clock_s;
    };
    for layer in YOLO_LAYERS.iter().take(nlayers) {
        let g = layer.graph(1);
        let at = tune(
            &g,
            &ev,
            &TuneOptions {
                rounds,
                batch: 64,
                eval_workers: workers,
                ..TuneOptions::default()
            },
        )
        .expect("autotvm");
        add_stats(&at.eval_stats);
        let target = at.best_cost.seconds;
        let run = |m: Method| {
            let opts = SearchOptions {
                trials: max_trials,
                starts: if m == Method::PMethod { 2 } else { 8 },
                initial_samples: 16,
                stop_when_seconds: Some(target),
                eval_workers: workers,
                ..SearchOptions::default()
            };
            search(&g, &ev, m, &opts).expect("search")
        };
        let p = run(Method::PMethod);
        let q = run(Method::QMethod);
        add_stats(&p.eval_stats);
        add_stats(&q.eval_stats);
        let reached =
            |r: &flextensor_explore::methods::SearchResult| r.best_cost.seconds <= target * 1.001;
        let note = |ok: bool, t: f64| {
            if ok {
                format!("{t:.0}")
            } else {
                format!("{t:.0}*") // * = budget exhausted before target
            }
        };
        qp.push(q.exploration_time_s / p.exploration_time_s);
        qa.push(q.exploration_time_s / at.exploration_time_s);
        t.row(vec![
            layer.name.to_string(),
            format!("{:.0}", at.exploration_time_s),
            note(reached(&p), p.exploration_time_s),
            note(reached(&q), q.exploration_time_s),
            format!("{:.2}", q.exploration_time_s / p.exploration_time_s),
            format!("{:.2}", q.exploration_time_s / at.exploration_time_s),
        ]);
    }
    // Geometric mean: these are ratios, and a single lucky/unlucky run
    // would dominate an arithmetic mean.
    let avg = |v: &[f64]| flextensor_bench::harness::geomean(v);
    t.row(vec![
        "AVG".into(),
        "".into(),
        "".into(),
        "".into(),
        format!("{:.2}", avg(&qp)),
        format!("{:.2}", avg(&qa)),
    ]);
    println!("{}", t.render());
    save_csv("fig06d", &t);
    println!(
        "\nQ-method needs {:.1}% of P-method's time and {:.1}% of AutoTVM's (paper: 27.6% / 52.9%)",
        100.0 * avg(&qp),
        100.0 * avg(&qa)
    );
    println!("Evaluation layer: {}", eval_summary(&pool_stats));
    println!(
        "(modeled exploration above; real evaluation wall-clock was {} — rerun with a different --workers to compare)",
        fmt_time(pool_stats.wall_clock_s)
    );
}
