//! Probe — graph-level scheduling: tune a whole network under one
//! global trial budget.
//!
//! Four phases, each over its own temporary [`TuneDb`] unless noted:
//!
//! 1. **Greedy** — [`tune_graph`] on the chosen network with the
//!    marginal-utility planner.
//! 2. **Uniform** — the same network, budget, and seed with the
//!    uniform-split ablation baseline. Under `--strict 1` (the
//!    default, used by CI for the committed configuration) the probe
//!    asserts the greedy network latency is no worse; at smoke-sized
//!    budgets the gap between policies is seed-dependent, so pass
//!    `--strict 0` when exploring other configurations.
//! 3. **Determinism** — the greedy run repeated with a different
//!    worker count; every modeled field must agree bit-for-bit.
//! 4. **Reuse** — the greedy run repeated over phase 1's database;
//!    every task must answer as a hit and spend zero trials.
//!
//! Everything written to the CSV is deterministic (modeled seconds,
//! integer allocations, classification counts), so CI diffs the output
//! against the committed `results/probe_graph.csv`.
//!
//! Flags: `--network shuffle|yolo` (default `shuffle`), `--batch N`
//! (default 1), `--budget N` (default 48), `--rounds N` (default 2),
//! `--pilot N` (default 2), `--chunk N` (default 2), `--workers N`
//! (default 4), `--seed N` (default 2024), `--strict 0|1` (default 1),
//! `--out PATH` (default `results/probe_graph.csv`), `--fixture PATH`
//! (also write a replay fixture: a recorded search trace carrying the
//! run's `graph_plan` / `graph_round` events).

use std::sync::Arc;

use flextensor::OptimizeOptions;
use flextensor_bench::harness::arg;
use flextensor_explore::methods::{search, Method, SearchOptions};
use flextensor_graph::plan::Allocation;
use flextensor_graph::tune::{tune_graph, GraphTuneOptions, GraphTuneReport};
use flextensor_ir::ops;
use flextensor_nn::network::{shufflenet_like, yolo_tiny, Network};
use flextensor_sim::model::Evaluator;
use flextensor_sim::spec::{v100, Device};
use flextensor_telemetry::json::write_f64;
use flextensor_telemetry::{MemorySink, Telemetry, TraceEvent};
use flextensor_tunedb::{testutil, TuneDb};

fn open_db(tag: &str) -> (Arc<TuneDb>, std::path::PathBuf) {
    let dir = testutil::temp_dir(tag);
    let (db, _) = TuneDb::open(&dir).expect("open temp db");
    (Arc::new(db), dir)
}

fn base_opts(seed: u64) -> OptimizeOptions {
    let mut base = OptimizeOptions::quick();
    base.search.seed = seed;
    base.search.starts = 2;
    base.search.initial_samples = 6;
    base
}

fn secs(v: f64) -> String {
    let mut s = String::new();
    write_f64(&mut s, v);
    s
}

fn summary_row(csv: &mut String, phase: &str, r: &GraphTuneReport) {
    csv.push_str(&format!(
        "{phase},{},{},{},{},{},{},{},{}\n",
        r.network,
        r.occurrences,
        r.tasks.len(),
        r.hits,
        r.coalesced,
        r.budget,
        r.spent,
        secs(r.network_seconds)
    ));
}

fn main() {
    let network: String = arg("network", "shuffle".to_string());
    let batch: i64 = arg("batch", 1);
    let budget: usize = arg("budget", 48);
    let rounds: usize = arg("rounds", 2);
    let pilot: usize = arg("pilot", 2);
    let chunk: usize = arg("chunk", 2);
    let workers: usize = arg("workers", 4);
    let seed: u64 = arg("seed", 2024);
    let out: String = arg("out", "results/probe_graph.csv".to_string());
    let fixture: String = arg("fixture", String::new());
    let strict: usize = arg("strict", 1);

    let net: Network = match network.as_str() {
        "yolo" => yolo_tiny(batch),
        _ => shufflenet_like(batch),
    };
    let dev = Device::Gpu(v100());
    let opts = |allocation, workers, telemetry| GraphTuneOptions {
        base: base_opts(seed),
        workers,
        budget,
        rounds,
        pilot,
        chunk,
        allocation,
        commit: "probe-graph".to_string(),
        telemetry,
    };

    println!(
        "== Probe: graph tuning ({}, budget {budget}, rounds {rounds}, \
         pilot {pilot}, workers {workers}, seed {seed}) ==\n",
        net.name
    );

    // Phase 1: greedy, with graph telemetry captured for the fixture.
    let sink = Arc::new(MemorySink::new());
    let (db_g, dir_g) = open_db("probe-graph-greedy");
    let greedy = tune_graph(
        &db_g,
        &net,
        &dev,
        &opts(Allocation::Greedy, workers, Telemetry::new(sink.clone())),
    )
    .expect("greedy run");
    println!(
        "greedy : {} tasks from {} occurrences, spent {}/{} trials, \
         network {} s",
        greedy.tasks.len(),
        greedy.occurrences,
        greedy.spent,
        greedy.budget,
        secs(greedy.network_seconds)
    );

    // Phase 2: uniform ablation at the same budget on a fresh store.
    let (db_u, dir_u) = open_db("probe-graph-uniform");
    let uniform = tune_graph(
        &db_u,
        &net,
        &dev,
        &opts(Allocation::Uniform, workers, Telemetry::null()),
    )
    .expect("uniform run");
    let _ = std::fs::remove_dir_all(&dir_u);
    println!("uniform: network {} s", secs(uniform.network_seconds));
    if greedy.network_seconds <= uniform.network_seconds + 1e-15 {
        println!("ablation: greedy <= uniform at equal budget");
    } else if strict != 0 {
        panic!(
            "greedy must not lose to uniform at equal budget: {} > {}",
            greedy.network_seconds, uniform.network_seconds
        );
    } else {
        println!("ablation: greedy > uniform for this configuration (non-strict)");
    }

    // Phase 3: determinism across worker counts.
    let (db_d, dir_d) = open_db("probe-graph-det");
    let other_workers = if workers == 1 { 4 } else { 1 };
    let det = tune_graph(
        &db_d,
        &net,
        &dev,
        &opts(Allocation::Greedy, other_workers, Telemetry::null()),
    )
    .expect("determinism run");
    let _ = std::fs::remove_dir_all(&dir_d);
    assert_eq!(
        det.network_seconds.to_bits(),
        greedy.network_seconds.to_bits(),
        "worker count must not change the modeled outcome"
    );
    for (a, b) in greedy.rounds.iter().zip(&det.rounds) {
        assert_eq!(a.allocations, b.allocations, "allocation plans must agree");
        assert_eq!(
            a.network_seconds.to_bits(),
            b.network_seconds.to_bits(),
            "round trajectories must agree"
        );
    }
    println!("determinism: workers {other_workers} reproduces workers {workers} bit-for-bit");

    // Phase 4: a second pass over the same store answers entirely from it.
    let rerun = tune_graph(
        &db_g,
        &net,
        &dev,
        &opts(Allocation::Greedy, workers, Telemetry::null()),
    )
    .expect("rerun");
    let _ = std::fs::remove_dir_all(&dir_g);
    assert_eq!(rerun.spent, 0, "second pass must spend nothing");
    assert_eq!(
        rerun.hits, rerun.occurrences,
        "second pass must be all hits"
    );
    println!(
        "reuse  : second pass answered {} occurrences from the store\n",
        rerun.occurrences
    );

    // Deterministic CSV: run summaries, per-round trajectories for both
    // policies, then the greedy per-task breakdown.
    let mut csv = String::from(
        "phase,network,occurrences,tasks,hits,coalesced,budget,spent,network_seconds\n",
    );
    summary_row(&mut csv, "greedy", &greedy);
    summary_row(&mut csv, "uniform", &uniform);
    summary_row(&mut csv, "rerun", &rerun);
    csv.push_str("round,policy,allocated,network_seconds\n");
    for r in &greedy.rounds {
        csv.push_str(&format!(
            "{},greedy,{},{}\n",
            r.round,
            r.allocated,
            secs(r.network_seconds)
        ));
    }
    for r in &uniform.rounds {
        csv.push_str(&format!(
            "{},uniform,{},{}\n",
            r.round,
            r.allocated,
            secs(r.network_seconds)
        ));
    }
    csv.push_str("task,key,uses,trials,seconds\n");
    for t in &greedy.tasks {
        csv.push_str(&format!(
            "{},{},{},{},{}\n",
            t.label,
            t.key.flat(),
            t.uses,
            t.trials,
            secs(t.seconds)
        ));
    }

    print!("{csv}");
    if let Some(parent) = std::path::Path::new(&out).parent() {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("warning: cannot create {}: {e}", parent.display());
        }
    }
    match std::fs::write(&out, &csv) {
        Ok(()) => println!("\n(saved {out})"),
        Err(e) => eprintln!("warning: cannot write {out}: {e}"),
    }

    if !fixture.is_empty() {
        write_fixture(&fixture, seed, &sink.events());
    }
}

/// Writes a replayable trace fixture: a recorded single-search run with
/// this probe's `graph_plan` / `graph_round` events spliced in before
/// the `run_summary`, proving the replayer tolerates (and surfaces)
/// graph events inside an ordinary trace.
fn write_fixture(path: &str, seed: u64, graph_events: &[TraceEvent]) {
    let g = ops::gemm(64, 64, 64);
    let ev = Evaluator::new(Device::Gpu(v100()));
    let sink = Arc::new(MemorySink::new());
    let sopts = SearchOptions {
        trials: 6,
        starts: 2,
        initial_samples: 6,
        seed,
        telemetry: Telemetry::new(sink.clone()),
        ..SearchOptions::default()
    };
    search(&g, &ev, Method::QMethod, &sopts).expect("fixture search");
    let mut events = sink.events();
    let summary = events.pop().expect("run_summary");
    events.extend(graph_events.iter().cloned());
    events.push(summary);
    let mut text = String::new();
    for e in &events {
        text.push_str(&e.to_jsonl());
        text.push('\n');
    }
    match std::fs::write(path, &text) {
        Ok(()) => println!("(saved fixture {path}: {} events)", events.len()),
        Err(e) => eprintln!("warning: cannot write fixture {path}: {e}"),
    }
}
