//! A minimal, dependency-free JSON layer for trace records.
//!
//! Writing is done by the event serializer directly (field order is fixed
//! so records are byte-deterministic); this module supplies the escaping
//! and number-formatting rules plus a small recursive-descent parser used
//! by replay. Numbers are kept as their raw source text until a typed
//! accessor is called, so 64-bit integers (seeds, FLOP counts) never lose
//! precision by round-tripping through `f64`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Object keys are sorted (`BTreeMap`) — lookup
/// only, the writer controls on-disk field order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, kept as raw source text.
    Number(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// The object under this value, or an error.
    pub fn as_object(&self) -> Result<&BTreeMap<String, Json>, String> {
        match self {
            Json::Object(m) => Ok(m),
            other => Err(format!("expected object, got {other:?}")),
        }
    }

    /// Fetches a required field from an object.
    pub fn get<'a>(&'a self, key: &str) -> Result<&'a Json, String> {
        self.as_object()?
            .get(key)
            .ok_or_else(|| format!("missing field `{key}`"))
    }

    /// A required string field.
    pub fn get_str(&self, key: &str) -> Result<&str, String> {
        match self.get(key)? {
            Json::Str(s) => Ok(s),
            other => Err(format!("field `{key}`: expected string, got {other:?}")),
        }
    }

    /// A required boolean field.
    pub fn get_bool(&self, key: &str) -> Result<bool, String> {
        match self.get(key)? {
            Json::Bool(b) => Ok(*b),
            other => Err(format!("field `{key}`: expected bool, got {other:?}")),
        }
    }

    /// A required `f64` field.
    pub fn get_f64(&self, key: &str) -> Result<f64, String> {
        match self.get(key)? {
            Json::Number(n) => n
                .parse()
                .map_err(|e| format!("field `{key}`: bad number `{n}`: {e}")),
            other => Err(format!("field `{key}`: expected number, got {other:?}")),
        }
    }

    /// A required unsigned-integer field (parsed losslessly from source).
    pub fn get_u64(&self, key: &str) -> Result<u64, String> {
        match self.get(key)? {
            Json::Number(n) => n
                .parse()
                .map_err(|e| format!("field `{key}`: bad integer `{n}`: {e}")),
            other => Err(format!("field `{key}`: expected number, got {other:?}")),
        }
    }

    /// A required `usize` field.
    pub fn get_usize(&self, key: &str) -> Result<usize, String> {
        Ok(self.get_u64(key)? as usize)
    }

    /// An `f64` field that may be `null` (infeasible cost).
    pub fn get_opt_f64(&self, key: &str) -> Result<Option<f64>, String> {
        match self.get(key)? {
            Json::Null => Ok(None),
            Json::Number(n) => n
                .parse()
                .map(Some)
                .map_err(|e| format!("field `{key}`: bad number `{n}`: {e}")),
            other => Err(format!(
                "field `{key}`: expected number|null, got {other:?}"
            )),
        }
    }
}

/// Appends a JSON string literal (with escaping) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an `f64` as a JSON number (shortest round-trip form; non-finite
/// values become `null`, which JSON cannot represent as numbers).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Appends an optional `f64` (`None` ⇒ `null`).
pub fn write_opt_f64(out: &mut String, v: Option<f64>) {
    match v {
        Some(v) => write_f64(out, v),
        None => out.push_str("null"),
    }
}

/// Parses one JSON document (a trace line) into a [`Json`] value.
///
/// # Errors
///
/// Returns a description of the first syntax error, with its byte offset.
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        src,
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("expected `{lit}` at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid codepoint {code:#x}"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. The cursor only ever
                    // advances by whole ASCII tokens or whole chars, so it
                    // sits on a char boundary and `get` always succeeds.
                    let c = self
                        .src
                        .get(self.pos..)
                        .and_then(|s| s.chars().next())
                        .ok_or_else(|| format!("invalid UTF-8 boundary at byte {}", self.pos))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if raw.is_empty() || raw == "-" {
            return Err(format!("bad number at byte {start}"));
        }
        // Validate now so replay errors point at the malformed line.
        raw.parse::<f64>()
            .map_err(|e| format!("bad number `{raw}`: {e}"))?;
        Ok(Json::Number(raw.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v = parse(r#"{"a":1,"b":[true,null,"x\n"],"c":-2.5e3}"#).unwrap();
        assert_eq!(v.get_u64("a").unwrap(), 1);
        assert_eq!(v.get_f64("c").unwrap(), -2500.0);
        match v.get("b").unwrap() {
            Json::Array(items) => {
                assert_eq!(items[0], Json::Bool(true));
                assert_eq!(items[1], Json::Null);
                assert_eq!(items[2], Json::Str("x\n".into()));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn large_integers_round_trip_losslessly() {
        let big = u64::MAX - 3;
        let v = parse(&format!("{{\"n\":{big}}}")).unwrap();
        assert_eq!(v.get_u64("n").unwrap(), big);
    }

    #[test]
    fn f64_display_round_trips() {
        for x in [0.1, 1.0 / 3.0, 123456.789, 1e-12, 0.8] {
            let mut s = String::new();
            write_f64(&mut s, x);
            assert_eq!(s.parse::<f64>().unwrap(), x);
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut s = String::new();
        write_str(&mut s, "a\"b\\c\nd\u{1}");
        let v = parse(&format!("{{\"k\":{s}}}")).unwrap();
        assert_eq!(v.get_str("k").unwrap(), "a\"b\\c\nd\u{1}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("123 456").is_err());
    }
}
