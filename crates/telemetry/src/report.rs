//! Text reports over replayed traces — the library behind the
//! `probe_trace` binary.
//!
//! [`render_events`] is the one-call entry point: replay a recorded event
//! stream and render the best-cost curve, SA acceptance rate by phase,
//! evaluation-cache behaviour, Q-network training summary, per-trial
//! wall-clock, and the replay verification verdict.
//!
//! # Example
//!
//! ```
//! use flextensor_telemetry::{report, TraceEvent};
//!
//! let events = vec![
//!     TraceEvent::RunStarted {
//!         method: "random-walk".into(),
//!         seed: 42,
//!         trials: 1,
//!         starts: 1,
//!         workers: 1,
//!         measure_overhead_s: 0.1,
//!         measure_repeats: 1,
//!         flops: 1_000_000_000,
//!     },
//!     TraceEvent::TrialStarted { trial: 1, starts: 1, wall_s: 0.0 },
//!     TraceEvent::CandidateEvaluated {
//!         trial: 1,
//!         key: "8.4".into(),
//!         seconds: Some(1e-3),
//!         fresh: true,
//!     },
//!     TraceEvent::RunSummary {
//!         trials: 1,
//!         measurements: 1,
//!         exploration_time_s: 0.1 + 1.0 * 1e-3,
//!         best_seconds: 1.0 / (1.0 / 1e-3),
//!         best_gflops: 1_000_000_000.0 / (1.0 / (1.0 / 1e-3)) / 1e9,
//!         evaluated: 0,
//!         cache_hits: 0,
//!         cache_misses: 0,
//!         wall_s: 0.2,
//!     },
//! ];
//! let text = report::render_events(&events).unwrap();
//! assert!(text.contains("random-walk"));
//! assert!(text.contains("replay check: run_summary reproduced exactly: yes"));
//! ```

use std::fmt::Write as _;

use crate::replay::{replay, Replay, PHASE_NAMES};
use crate::{TraceError, TraceEvent};

/// Replays an event stream and renders the full text report.
///
/// # Errors
///
/// Returns [`TraceError`] when the stream is not a complete single-run
/// trace (see [`replay`]).
pub fn render_events(events: &[TraceEvent]) -> Result<String, TraceError> {
    Ok(render(&replay(events)?))
}

/// Renders the text report for an already-replayed trace.
pub fn render(r: &Replay) -> String {
    let mut out = String::new();
    let p = &r.run;
    let _ = writeln!(
        out,
        "== trace report: {} | seed {:#x} | {} trial budget | {} start(s)/trial | {} worker(s) ==",
        p.method, p.seed, p.trials, p.starts, p.workers
    );
    let _ = writeln!(
        out,
        "   measure model: {}s overhead + {} repeat(s) per fresh evaluation, {} FLOPs/kernel\n",
        p.measure_overhead_s, p.measure_repeats, p.flops
    );

    // Best-cost curve, sampled down to at most 16 rows plus the last.
    out.push_str("best-cost curve:\n  trial    best kernel     GFLOP/s\n");
    let step = r.curve.len().div_ceil(16).max(1);
    for (i, c) in r.curve.iter().enumerate() {
        if i % step != 0 && i + 1 != r.curve.len() {
            continue;
        }
        let _ = writeln!(
            out,
            "  {:>5}  {:>12}  {:>10.1}",
            c.trial,
            fmt_seconds(c.best_seconds),
            c.best_gflops
        );
    }

    out.push_str("\nSA acceptance rate by phase:\n");
    for (name, a) in PHASE_NAMES.iter().zip(&r.acceptance) {
        let _ = writeln!(
            out,
            "  {name:>5}: {:>5.1}%  ({}/{} moves improved their start)",
            100.0 * a.rate(),
            a.accepted,
            a.total
        );
    }

    match &r.pool {
        Some(TraceEvent::PoolStats {
            evaluated,
            cache_hits,
            cache_misses,
            cache_entries,
            workers,
            ..
        }) => {
            let lookups = cache_hits + cache_misses;
            let rate = if lookups == 0 {
                0.0
            } else {
                100.0 * *cache_hits as f64 / lookups as f64
            };
            let _ = writeln!(
                out,
                "\nevaluation pool: {evaluated} fresh evals, {cache_hits} cache hits \
                 ({rate:.1}% hit rate), {cache_entries} entries resident, {workers} worker(s)"
            );
        }
        _ => out.push_str("\nevaluation pool: no pool_stats records\n"),
    }

    if let Some(TraceEvent::AnalyzerStats { pruned, .. }) = &r.analyzer {
        let _ = writeln!(
            out,
            "analyzer gate: {pruned} candidate(s) statically pruned before evaluation"
        );
    }

    if r.q_updates.is_empty() {
        out.push_str("q-network: no training rounds recorded\n");
    } else {
        let first = r.q_updates.first().expect("non-empty");
        let last = r.q_updates.last().expect("non-empty");
        let _ = writeln!(
            out,
            "q-network: {} training rounds | loss {:.4} -> {:.4} | epsilon {:.3} -> {:.3}",
            r.q_updates.len(),
            first.loss,
            last.loss,
            first.epsilon,
            last.epsilon
        );
    }

    if !r.per_trial_wall_s.is_empty() {
        let total: f64 = r.per_trial_wall_s.iter().map(|(_, w)| w).sum();
        let mean = total / r.per_trial_wall_s.len() as f64;
        let (slowest_trial, slowest) = r.per_trial_wall_s.iter().fold(
            (0usize, 0.0f64),
            |acc, &(t, w)| {
                if w > acc.1 {
                    (t, w)
                } else {
                    acc
                }
            },
        );
        let _ = writeln!(
            out,
            "per-trial wall-clock: mean {}, max {} (trial {slowest_trial}), total {}",
            fmt_seconds(mean),
            fmt_seconds(slowest),
            fmt_seconds(total)
        );
    }

    if let TraceEvent::RunSummary {
        trials,
        measurements,
        exploration_time_s,
        best_seconds,
        best_gflops,
        wall_s,
        ..
    } = &r.recorded
    {
        let _ = writeln!(
            out,
            "\nrun summary: {trials} trials | {measurements} modeled measurements | \
             {exploration_time_s:.1}s modeled exploration time | best {} ({best_gflops:.1} GFLOP/s) | \
             {} real wall-clock",
            fmt_seconds(*best_seconds),
            fmt_seconds(*wall_s)
        );
    }
    let _ = writeln!(
        out,
        "replay check: run_summary reproduced exactly: {}",
        if r.summary_matches() {
            "yes"
        } else {
            "NO — trace is truncated, edited, or writer-incompatible"
        }
    );
    out
}

/// Formats seconds at µs/ms/s granularity (mirrors the bench harness).
fn fmt_seconds(s: f64) -> String {
    if !s.is_finite() {
        "inf".to_string()
    } else if s < 1e-3 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_all_sections() {
        let flops = 1_000_000_000u64;
        let events = vec![
            TraceEvent::RunStarted {
                method: "q-method".into(),
                seed: 1,
                trials: 3,
                starts: 1,
                workers: 2,
                measure_overhead_s: 0.1,
                measure_repeats: 1,
                flops,
            },
            TraceEvent::TrialStarted {
                trial: 1,
                starts: 1,
                wall_s: 0.0,
            },
            TraceEvent::CandidateEvaluated {
                trial: 1,
                key: "2".into(),
                seconds: Some(5e-4),
                fresh: true,
            },
            TraceEvent::SaStep {
                trial: 1,
                temperature: 2.0,
                energy: 2000.0,
                accepted: true,
            },
            TraceEvent::QUpdate {
                trial: 1,
                loss: 0.5,
                epsilon: 0.8,
                target_sync: true,
            },
            TraceEvent::PoolStats {
                trial: 1,
                evaluated: 1,
                cache_hits: 0,
                cache_misses: 1,
                cache_entries: 1,
                workers: 2,
                wall_s: 0.01,
            },
            TraceEvent::RunSummary {
                trials: 1,
                measurements: 1,
                exploration_time_s: 0.1 + 1.0 * 5e-4,
                best_seconds: 1.0 / (1.0 / 5e-4),
                best_gflops: flops as f64 / (1.0 / (1.0 / 5e-4)) / 1e9,
                evaluated: 1,
                cache_hits: 0,
                cache_misses: 1,
                wall_s: 0.02,
            },
        ];
        let text = render_events(&events).unwrap();
        for needle in [
            "trace report: q-method",
            "best-cost curve:",
            "SA acceptance rate by phase:",
            "early: 100.0%",
            "evaluation pool: 1 fresh evals",
            "q-network: 1 training rounds",
            "per-trial wall-clock:",
            "run summary: 1 trials",
            "reproduced exactly: yes",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_seconds(5e-6), "5.0us");
        assert_eq!(fmt_seconds(2.5e-3), "2.50ms");
        assert_eq!(fmt_seconds(1.5), "1.50s");
        assert_eq!(fmt_seconds(f64::INFINITY), "inf");
    }
}
