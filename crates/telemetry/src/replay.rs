//! Deterministic trace replay.
//!
//! A recorded trace contains everything the drivers used for their
//! bookkeeping: per-candidate costs in absorption order, the
//! time-accounting parameters, and cumulative pool statistics. Replaying
//! folds the event stream with *exactly the same floating-point
//! operations, in the same order*, as the live run — so the recomputed
//! [`TraceEvent::RunSummary`] is bit-identical to the recorded one (the
//! real-time `wall_s` field is a pass-through; it cannot be recomputed
//! offline). A mismatch means the trace was truncated, edited, or
//! produced by an incompatible writer.
//!
//! The best-cost fold is method-dependent, mirroring the drivers: the
//! explore drivers (`q-method`, `p-method`, `random-walk`) maximize
//! throughput `E = 1/seconds` and report `1/E*`, while the AutoTVM
//! baseline (`autotvm`) minimizes seconds directly.

use crate::{TraceError, TraceEvent};

/// Run parameters recovered from [`TraceEvent::RunStarted`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunParams {
    /// Driver name (`q-method`, `p-method`, `random-walk`, `autotvm`).
    pub method: String,
    /// RNG seed of the run.
    pub seed: u64,
    /// Trial / round budget.
    pub trials: usize,
    /// Starting points (or batch size) per trial.
    pub starts: usize,
    /// Resolved evaluation worker threads.
    pub workers: usize,
    /// Modeled compile+measure overhead per fresh evaluation, seconds.
    pub measure_overhead_s: f64,
    /// Kernel repetitions per measurement.
    pub measure_repeats: u32,
    /// FLOPs of the computation.
    pub flops: u64,
}

/// One point of the replayed convergence curve (closed at each trial
/// boundary).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Trial index (0 = seeding phase).
    pub trial: usize,
    /// Best kernel time at the end of the trial, seconds (∞ while no
    /// feasible point has been found).
    pub best_seconds: f64,
    /// Best throughput at the end of the trial, GFLOP/s.
    pub best_gflops: f64,
}

/// SA acceptance statistics for one phase of the run (the trial budget
/// split in thirds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseAcceptance {
    /// Moves that improved on their starting point.
    pub accepted: usize,
    /// Total moves in the phase.
    pub total: usize,
}

impl PhaseAcceptance {
    /// Accepted fraction (0 when the phase saw no moves).
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.accepted as f64 / self.total as f64
        }
    }
}

/// Names of the three acceptance phases, index-aligned with
/// [`Replay::acceptance`].
pub const PHASE_NAMES: [&str; 3] = ["early", "mid", "late"];

/// One replayed Q-network training round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QPoint {
    /// Trial after which training ran.
    pub trial: usize,
    /// Minibatch loss.
    pub loss: f64,
    /// ε at that point of the anneal.
    pub epsilon: f64,
}

/// Everything recovered by replaying one recorded run.
#[derive(Debug, Clone, PartialEq)]
pub struct Replay {
    /// The run's parameters.
    pub run: RunParams,
    /// Convergence curve, one point per trial boundary.
    pub curve: Vec<CurvePoint>,
    /// SA acceptance statistics by phase (early / mid / late third of the
    /// trial budget).
    pub acceptance: [PhaseAcceptance; 3],
    /// Wall-clock seconds spent in each trial, from the recorded
    /// timestamps.
    pub per_trial_wall_s: Vec<(usize, f64)>,
    /// Q-network training rounds, in order.
    pub q_updates: Vec<QPoint>,
    /// The last recorded pool statistics, if any.
    pub pool: Option<TraceEvent>,
    /// The last recorded analyzer-gate statistics, if any (only present
    /// in traces of gate-enabled runs).
    pub analyzer: Option<TraceEvent>,
    /// The last recorded incremental-evaluation statistics, if any (only
    /// present in traces of delta-enabled runs).
    pub delta: Option<TraceEvent>,
    /// The recorded region branch-and-bound statistics, if any (only
    /// present in traces of region-gated runs).
    pub region: Option<TraceEvent>,
    /// The last recorded schedule-database statistics, if any (only
    /// present in traces emitted through the session server).
    pub db: Option<TraceEvent>,
    /// Per-session server statistics, in emission order (empty for
    /// plain search traces).
    pub sessions: Vec<TraceEvent>,
    /// The last recorded graph-level tuning plan, if any (only present
    /// in traces emitted by `flextensor-graph` drivers).
    pub graph_plan: Option<TraceEvent>,
    /// Graph-level budget rounds, in emission order (empty for
    /// single-op traces).
    pub graph_rounds: Vec<TraceEvent>,
    /// The `RunSummary` as recorded by the live run.
    pub recorded: TraceEvent,
    /// The `RunSummary` recomputed from the event stream (with the
    /// pass-through `wall_s` copied from the recorded one).
    pub replayed: TraceEvent,
}

impl Replay {
    /// Whether the replayed summary reproduces the recorded one exactly
    /// (bit-for-bit on every recomputed field).
    pub fn summary_matches(&self) -> bool {
        self.recorded == self.replayed
    }
}

/// Replays a recorded event stream.
///
/// # Errors
///
/// Returns [`TraceError`] when the trace has no `run_started` record, no
/// `run_summary` record, or contains more than one run.
pub fn replay(events: &[TraceEvent]) -> Result<Replay, TraceError> {
    let mut run: Option<RunParams> = None;
    let mut recorded: Option<TraceEvent> = None;

    // Best-cost folds (see module docs for why there are two).
    let mut best_e: Option<f64> = None; // explore drivers: max throughput
    let mut best_s: Option<f64> = None; // autotvm: min seconds
    let mut measurements = 0usize;
    let mut time_s = 0.0f64;

    let mut curve: Vec<CurvePoint> = Vec::new();
    let mut acceptance = [PhaseAcceptance::default(); 3];
    let mut per_trial_wall: Vec<(usize, f64)> = Vec::new();
    let mut q_updates: Vec<QPoint> = Vec::new();
    let mut pool: Option<TraceEvent> = None;
    let mut analyzer: Option<TraceEvent> = None;
    let mut delta: Option<TraceEvent> = None;
    let mut region: Option<TraceEvent> = None;
    let mut db: Option<TraceEvent> = None;
    let mut sessions: Vec<TraceEvent> = Vec::new();
    let mut graph_plan: Option<TraceEvent> = None;
    let mut graph_rounds: Vec<TraceEvent> = Vec::new();
    let mut open_trial: Option<(usize, f64)> = None; // (trial, start wall_s)
    let mut max_trial = 0usize;

    for ev in events {
        match ev {
            TraceEvent::RunStarted { .. } => {
                if run.is_some() {
                    return Err(TraceError(
                        "trace contains more than one run (second run_started record)".into(),
                    ));
                }
                if let TraceEvent::RunStarted {
                    method,
                    seed,
                    trials,
                    starts,
                    workers,
                    measure_overhead_s,
                    measure_repeats,
                    flops,
                } = ev
                {
                    run = Some(RunParams {
                        method: method.clone(),
                        seed: *seed,
                        trials: *trials,
                        starts: *starts,
                        workers: *workers,
                        measure_overhead_s: *measure_overhead_s,
                        measure_repeats: *measure_repeats,
                        flops: *flops,
                    });
                }
            }
            TraceEvent::TrialStarted { trial, wall_s, .. } => {
                let p = run
                    .as_ref()
                    .ok_or_else(|| TraceError("trial_started before run_started".into()))?;
                if let Some((prev, start)) = open_trial.take() {
                    curve.push(curve_point(prev, best_e, best_s, p));
                    per_trial_wall.push((prev, (wall_s - start).max(0.0)));
                }
                open_trial = Some((*trial, *wall_s));
                max_trial = max_trial.max(*trial);
            }
            TraceEvent::CandidateEvaluated { seconds, fresh, .. } => {
                let p = run
                    .as_ref()
                    .ok_or_else(|| TraceError("candidate_evaluated before run_started".into()))?;
                // Mirror of the drivers' time accounting, same op order.
                if *fresh {
                    measurements += 1;
                    time_s += p.measure_overhead_s;
                    if let Some(s) = seconds {
                        time_s += p.measure_repeats as f64 * s;
                    }
                }
                if p.method == "autotvm" {
                    if let Some(s) = seconds {
                        if best_s.is_none_or(|b| *s < b) {
                            best_s = Some(*s);
                        }
                    }
                } else {
                    let e = match seconds {
                        Some(s) => 1.0 / s,
                        None => 0.0,
                    };
                    if e > 0.0 && best_e.is_none_or(|b| e > b) {
                        best_e = Some(e);
                    }
                }
            }
            TraceEvent::SaStep {
                trial, accepted, ..
            } => {
                let budget = run.as_ref().map_or(0, |p| p.trials);
                let slot = phase_of(*trial, budget);
                acceptance[slot].total += 1;
                if *accepted {
                    acceptance[slot].accepted += 1;
                }
            }
            TraceEvent::QUpdate {
                trial,
                loss,
                epsilon,
                ..
            } => q_updates.push(QPoint {
                trial: *trial,
                loss: *loss,
                epsilon: *epsilon,
            }),
            TraceEvent::PoolStats { .. } => pool = Some(ev.clone()),
            TraceEvent::AnalyzerStats { .. } => analyzer = Some(ev.clone()),
            TraceEvent::DeltaStats { .. } => delta = Some(ev.clone()),
            TraceEvent::RegionStats { .. } => region = Some(ev.clone()),
            TraceEvent::DbStats { .. } => db = Some(ev.clone()),
            TraceEvent::SessionStats { .. } => sessions.push(ev.clone()),
            TraceEvent::GraphPlan { .. } => graph_plan = Some(ev.clone()),
            TraceEvent::GraphRound { .. } => graph_rounds.push(ev.clone()),
            TraceEvent::RunSummary { .. } => {
                if recorded.is_some() {
                    return Err(TraceError(
                        "trace contains more than one run_summary record".into(),
                    ));
                }
                recorded = Some(ev.clone());
            }
        }
    }

    let run = run.ok_or_else(|| TraceError("trace has no run_started record".into()))?;
    let recorded = recorded.ok_or_else(|| TraceError("trace has no run_summary record".into()))?;

    // Close the last open trial against the run's final timestamp.
    let final_wall = match &recorded {
        TraceEvent::RunSummary { wall_s, .. } => *wall_s,
        _ => unreachable!("recorded is a run_summary"),
    };
    if let Some((prev, start)) = open_trial.take() {
        curve.push(curve_point(prev, best_e, best_s, &run));
        per_trial_wall.push((prev, (final_wall - start).max(0.0)));
    }

    let (evaluated, cache_hits, cache_misses) = match &pool {
        Some(TraceEvent::PoolStats {
            evaluated,
            cache_hits,
            cache_misses,
            ..
        }) => (*evaluated, *cache_hits, *cache_misses),
        _ => (0, 0, 0),
    };
    let last = curve_point(max_trial, best_e, best_s, &run);
    let replayed = TraceEvent::RunSummary {
        trials: max_trial,
        measurements,
        exploration_time_s: time_s,
        best_seconds: last.best_seconds,
        best_gflops: last.best_gflops,
        evaluated,
        cache_hits,
        cache_misses,
        wall_s: final_wall, // pass-through: not recomputable offline
    };

    Ok(Replay {
        run,
        curve,
        acceptance,
        per_trial_wall_s: per_trial_wall,
        q_updates,
        pool,
        analyzer,
        delta,
        region,
        db,
        sessions,
        graph_plan,
        graph_rounds,
        recorded,
        replayed,
    })
}

/// Which acceptance phase a trial belongs to, splitting the budget in
/// thirds (trial 1 is the first exploration trial).
fn phase_of(trial: usize, budget: usize) -> usize {
    if budget == 0 {
        return 0;
    }
    ((trial.saturating_sub(1)) * 3 / budget).min(2)
}

fn curve_point(
    trial: usize,
    best_e: Option<f64>,
    best_s: Option<f64>,
    run: &RunParams,
) -> CurvePoint {
    // The same arithmetic the drivers use to produce their summaries:
    // explore drivers report 1/E*, the tuner reports min seconds.
    let best_seconds = if run.method == "autotvm" {
        best_s.unwrap_or(f64::INFINITY)
    } else {
        match best_e {
            Some(e) => 1.0 / e,
            None => f64::INFINITY,
        }
    };
    let best_gflops = if best_seconds.is_finite() {
        run.flops as f64 / best_seconds / 1e9
    } else {
        0.0
    };
    CurvePoint {
        trial,
        best_seconds,
        best_gflops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_trace() -> Vec<TraceEvent> {
        let flops = 2_000_000_000u64; // 2 GFLOP, so 1 ms ⇒ 2000 GFLOP/s
        vec![
            TraceEvent::RunStarted {
                method: "p-method".into(),
                seed: 7,
                trials: 2,
                starts: 1,
                workers: 1,
                measure_overhead_s: 0.5,
                measure_repeats: 2,
                flops,
            },
            TraceEvent::TrialStarted {
                trial: 0,
                starts: 2,
                wall_s: 0.0,
            },
            TraceEvent::CandidateEvaluated {
                trial: 0,
                key: "1".into(),
                seconds: Some(2e-3),
                fresh: true,
            },
            TraceEvent::CandidateEvaluated {
                trial: 0,
                key: "2".into(),
                seconds: None,
                fresh: true,
            },
            TraceEvent::TrialStarted {
                trial: 1,
                starts: 1,
                wall_s: 0.25,
            },
            TraceEvent::CandidateEvaluated {
                trial: 1,
                key: "3".into(),
                seconds: Some(1e-3),
                fresh: true,
            },
            TraceEvent::SaStep {
                trial: 1,
                temperature: 2.0,
                energy: 1000.0,
                accepted: true,
            },
            TraceEvent::PoolStats {
                trial: 1,
                evaluated: 3,
                cache_hits: 0,
                cache_misses: 3,
                cache_entries: 3,
                workers: 1,
                wall_s: 0.3,
            },
            TraceEvent::TrialStarted {
                trial: 2,
                starts: 1,
                wall_s: 0.5,
            },
            TraceEvent::CandidateEvaluated {
                trial: 2,
                key: "3".into(),
                seconds: Some(1e-3),
                fresh: false,
            },
            TraceEvent::SaStep {
                trial: 2,
                temperature: 2.0,
                energy: 1000.0,
                accepted: false,
            },
            TraceEvent::PoolStats {
                trial: 2,
                evaluated: 3,
                cache_hits: 1,
                cache_misses: 3,
                cache_entries: 3,
                workers: 1,
                wall_s: 0.55,
            },
            TraceEvent::RunSummary {
                trials: 2,
                measurements: 3,
                // 3 × overhead + repeats × kernel time, summed in
                // absorption order (the fold is order-sensitive in f64).
                exploration_time_s: 0.5 + 2.0 * 2e-3 + 0.5 + 0.5 + 2.0 * 1e-3,
                best_seconds: 1.0 / (1.0 / 1e-3),
                best_gflops: 2_000_000_000.0 / (1.0 / (1.0 / 1e-3)) / 1e9,
                evaluated: 3,
                cache_hits: 1,
                cache_misses: 3,
                wall_s: 0.75,
            },
        ]
    }

    #[test]
    fn replay_reproduces_the_recorded_summary() {
        let r = replay(&mini_trace()).unwrap();
        assert!(r.summary_matches(), "{:#?}", r);
    }

    #[test]
    fn replay_recovers_curve_and_acceptance() {
        let r = replay(&mini_trace()).unwrap();
        assert_eq!(r.curve.len(), 3);
        assert_eq!(r.curve[0].trial, 0);
        assert_eq!(r.curve[0].best_seconds, 2e-3);
        assert_eq!(r.curve[2].best_seconds, 1e-3);
        // trial 1 of a 2-trial budget → early; trial 2 → mid.
        assert_eq!(r.acceptance[0].accepted, 1);
        assert_eq!(r.acceptance[0].total, 1);
        assert_eq!(r.acceptance[1].total, 1);
        assert_eq!(r.acceptance[1].accepted, 0);
        assert_eq!(r.per_trial_wall_s.len(), 3);
        assert!((r.per_trial_wall_s[1].1 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn analyzer_stats_are_captured_without_affecting_the_fold() {
        let mut events = mini_trace();
        let summary_at = events.len() - 1;
        events.insert(
            summary_at,
            TraceEvent::AnalyzerStats {
                trial: 2,
                pruned: 4,
            },
        );
        let r = replay(&events).unwrap();
        assert!(r.summary_matches(), "{:#?}", r);
        assert_eq!(
            r.analyzer,
            Some(TraceEvent::AnalyzerStats {
                trial: 2,
                pruned: 4,
            })
        );
        // Ungated traces carry no analyzer record at all.
        assert_eq!(replay(&mini_trace()).unwrap().analyzer, None);
    }

    #[test]
    fn delta_stats_are_captured_without_affecting_the_fold() {
        let mut events = mini_trace();
        let summary_at = events.len() - 1;
        events.insert(
            summary_at,
            TraceEvent::DeltaStats {
                trial: 2,
                delta_hits: 5,
                delta_full: 2,
            },
        );
        let r = replay(&events).unwrap();
        assert!(r.summary_matches(), "{:#?}", r);
        assert_eq!(
            r.delta,
            Some(TraceEvent::DeltaStats {
                trial: 2,
                delta_hits: 5,
                delta_full: 2,
            })
        );
        // Non-delta traces carry no delta record at all.
        assert_eq!(replay(&mini_trace()).unwrap().delta, None);
    }

    #[test]
    fn region_stats_are_captured_without_affecting_the_fold() {
        let mut events = mini_trace();
        let summary_at = events.len() - 1;
        let stats = TraceEvent::RegionStats {
            trial: 2,
            regions_analyzed: 3,
            region_pruned: 1,
            swept: 17,
            sweep_illegal: 9,
            sweep_pruned: 5,
            sweep_open: 3,
            sweep_truncated: false,
        };
        events.insert(summary_at, stats.clone());
        let r = replay(&events).unwrap();
        assert!(r.summary_matches(), "{:#?}", r);
        assert_eq!(r.region, Some(stats));
        // Ungated traces carry no region record at all.
        assert_eq!(replay(&mini_trace()).unwrap().region, None);
    }

    #[test]
    fn server_stats_are_captured_without_affecting_the_fold() {
        let mut events = mini_trace();
        let summary_at = events.len() - 1;
        let db = TraceEvent::DbStats {
            records: 3,
            hits: 1,
            misses: 2,
            warm_starts: 1,
            puts: 2,
            dropped: 0,
        };
        let sess = TraceEvent::SessionStats {
            session: "a".into(),
            submitted: 2,
            completed: 2,
            failed: 0,
            hits: 1,
            misses: 1,
            warm_starts: 1,
            coalesced: 0,
            queue_wait_s: 0.01,
        };
        events.insert(summary_at, db.clone());
        events.insert(summary_at + 1, sess.clone());
        let r = replay(&events).unwrap();
        assert!(r.summary_matches(), "{:#?}", r);
        assert_eq!(r.db, Some(db));
        assert_eq!(r.sessions, vec![sess]);
        // Plain search traces carry neither.
        let plain = replay(&mini_trace()).unwrap();
        assert_eq!(plain.db, None);
        assert!(plain.sessions.is_empty());
    }

    #[test]
    fn graph_events_are_captured_without_affecting_the_fold() {
        let mut events = mini_trace();
        let summary_at = events.len() - 1;
        let plan = TraceEvent::GraphPlan {
            network: "net".into(),
            occurrences: 6,
            tasks: 3,
            hits: 1,
            budget: 40,
            rounds: 2,
            pilot: 2,
        };
        let r0 = TraceEvent::GraphRound {
            round: 0,
            allocated: 4,
            spent: 4,
            network_seconds: 0.5,
        };
        let r1 = TraceEvent::GraphRound {
            round: 1,
            allocated: 18,
            spent: 22,
            network_seconds: 0.25,
        };
        events.insert(summary_at, plan.clone());
        events.insert(summary_at + 1, r0.clone());
        events.insert(summary_at + 2, r1.clone());
        let r = replay(&events).unwrap();
        assert!(r.summary_matches(), "{:#?}", r);
        assert_eq!(r.graph_plan, Some(plan));
        assert_eq!(r.graph_rounds, vec![r0, r1]);
        // Single-op traces carry neither.
        let plain = replay(&mini_trace()).unwrap();
        assert_eq!(plain.graph_plan, None);
        assert!(plain.graph_rounds.is_empty());
    }

    #[test]
    fn tampered_trace_is_detected() {
        let mut events = mini_trace();
        // Drop one fresh evaluation: measurements and time no longer add up.
        events.remove(2);
        let r = replay(&events).unwrap();
        assert!(!r.summary_matches());
    }

    #[test]
    fn missing_records_error() {
        let events = mini_trace();
        assert!(replay(&events[..events.len() - 1])
            .unwrap_err()
            .0
            .contains("no run_summary"));
        assert!(replay(&events[1..])
            .unwrap_err()
            .0
            .contains("before run_started"));
        assert!(replay(&[]).unwrap_err().0.contains("no run_started"));
    }

    #[test]
    fn autotvm_fold_minimizes_seconds() {
        let mut events = mini_trace();
        if let TraceEvent::RunStarted { method, .. } = &mut events[0] {
            *method = "autotvm".into();
        }
        // Same numbers: min-seconds and 1/max-throughput agree here.
        let r = replay(&events).unwrap();
        assert!(r.summary_matches(), "{:#?}", r);
    }

    #[test]
    fn phase_split_covers_budget() {
        assert_eq!(phase_of(1, 9), 0);
        assert_eq!(phase_of(3, 9), 0);
        assert_eq!(phase_of(4, 9), 1);
        assert_eq!(phase_of(6, 9), 1);
        assert_eq!(phase_of(7, 9), 2);
        assert_eq!(phase_of(9, 9), 2);
        assert_eq!(phase_of(12, 9), 2); // beyond budget clamps to late
        assert_eq!(phase_of(1, 0), 0);
    }
}
