//! # flextensor-telemetry
//!
//! Structured, replayable exploration telemetry for the FlexTensor
//! reproduction.
//!
//! The back-end search loop (simulated annealing + Q-learning, paper §4)
//! is an online learner whose dynamics — SA acceptance, Q-network loss,
//! ε decay, evaluation-cache behaviour — are invisible in a bare result
//! struct. This crate provides the event layer that makes them
//! observable and *replayable*:
//!
//! * [`TraceEvent`] — the typed event vocabulary (run/trial lifecycle,
//!   per-candidate evaluations, SA moves, Q-network updates, evaluation
//!   pool statistics, and a final run summary);
//! * [`TraceSink`] — where events go: [`NullSink`] (drop), [`MemorySink`]
//!   (collect in memory), [`JsonlSink`] (versioned line-delimited JSON
//!   with a stable schema, see `docs/TRACE_FORMAT.md`);
//! * [`Telemetry`] — the cheap cloneable handle the search drivers carry;
//! * [`replay`] — folds a recorded event stream back into the run's
//!   [`RunSummary`](TraceEvent::RunSummary), bit-for-bit;
//! * [`report`] — renders a replayed trace as a text report (best-cost
//!   curve, acceptance rate by phase, cache hit rate, per-trial
//!   wall-clock).
//!
//! The crate is deliberately **zero-dependency** (not even on the rest of
//! the workspace): events carry plain data — schedule points appear as
//! their canonical integer-encoding key — so recorded traces can be
//! consumed by tools that know nothing about tensors.
//!
//! # Example: recording events through a sink
//!
//! ```
//! use flextensor_telemetry::{MemorySink, Telemetry, TraceEvent, TraceSink};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(MemorySink::new());
//! let tel = Telemetry::new(sink.clone());
//! assert!(tel.is_enabled());
//!
//! tel.emit(TraceEvent::TrialStarted { trial: 1, starts: 4, wall_s: 0.0 });
//! tel.emit(TraceEvent::SaStep {
//!     trial: 1,
//!     temperature: 2.0,
//!     energy: 125.0,
//!     accepted: true,
//! });
//!
//! let events = sink.events();
//! assert_eq!(events.len(), 2);
//! assert!(matches!(events[0], TraceEvent::TrialStarted { trial: 1, .. }));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod json;
pub mod replay;
pub mod report;

use std::fmt;
use std::fmt::Write as _;
use std::io::{self, BufRead, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use json::{parse, write_f64, write_opt_f64, write_str};

/// Version of the JSONL record schema this crate writes (the `"v"` field
/// of every record). Readers accept records up to and including this
/// version; see `docs/TRACE_FORMAT.md` for the compatibility rules.
pub const TRACE_VERSION: u64 = 1;

/// One structured exploration event.
///
/// Every variant serializes to one JSONL record with a fixed field order,
/// so a run recorded with the same seed and worker count is byte-identical
/// except for the wall-clock fields (`wall_s`), which
/// [`TraceEvent::strip_wall_clock`] zeroes for comparisons.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A search/tuning run began. Carries everything replay needs to fold
    /// the stream back into the run's summary: the time-accounting
    /// parameters and the graph's FLOP count.
    RunStarted {
        /// Driver name: `"q-method"`, `"p-method"`, `"random-walk"`, or
        /// `"autotvm"`. Determines the replay fold for the best cost.
        method: String,
        /// RNG seed of the run.
        seed: u64,
        /// Trial (or round) budget.
        trials: usize,
        /// Starting points per trial (batch size for the tuner).
        starts: usize,
        /// Resolved evaluation worker threads.
        workers: usize,
        /// Modeled compile+measure overhead per fresh evaluation, seconds.
        measure_overhead_s: f64,
        /// Kernel repetitions per measurement.
        measure_repeats: u32,
        /// FLOPs of the computation (for GFLOP/s reporting).
        flops: u64,
    },
    /// A trial (exploration step / tuning round) began. Trial 0 is the
    /// seeding phase (initial random samples).
    TrialStarted {
        /// Trial index (0 = seeding).
        trial: usize,
        /// Starting points (or candidates) selected for this trial.
        starts: usize,
        /// Wall-clock seconds since the run started.
        wall_s: f64,
    },
    /// One candidate configuration was evaluated (or answered from the
    /// memo cache) and absorbed into the history.
    CandidateEvaluated {
        /// Trial that evaluated the candidate.
        trial: usize,
        /// Canonical config key: the Fig. 3e integer encoding, dot-joined.
        key: String,
        /// Modeled kernel time in seconds; `None` = infeasible.
        seconds: Option<f64>,
        /// `true` when the evaluator actually ran (a modeled on-device
        /// measurement); `false` for memo-cache hits.
        fresh: bool,
    },
    /// One simulated-annealing move: a starting point chosen from `H` was
    /// moved along a direction to a new point.
    SaStep {
        /// Trial of the move.
        trial: usize,
        /// Effective temperature of the start-selection rule (the γ of
        /// `P ∝ exp(-γ(E*-E_p)/E*)`; the tuner logs its annealing
        /// temperature instead).
        temperature: f64,
        /// Performance value `E` (throughput, 1/seconds) of the reached
        /// point; 0 = infeasible.
        energy: f64,
        /// Whether the move improved on its starting point.
        accepted: bool,
    },
    /// The Q-learning agent trained on a replay minibatch.
    QUpdate {
        /// Trial after which training ran.
        trial: usize,
        /// Final minibatch loss of the training round.
        loss: f64,
        /// Current ε of the ε-greedy policy (after annealing).
        epsilon: f64,
        /// Whether the target network was refreshed from the online
        /// network this round.
        target_sync: bool,
    },
    /// Cumulative evaluation-pool statistics after a batch.
    PoolStats {
        /// Trial whose batch just completed.
        trial: usize,
        /// Fresh cost-model evaluations so far.
        evaluated: usize,
        /// Memo-cache hits so far.
        cache_hits: usize,
        /// Memo-cache misses so far.
        cache_misses: usize,
        /// Entries currently resident in the cache.
        cache_entries: usize,
        /// Worker threads evaluating.
        workers: usize,
        /// Real wall-clock spent inside batched evaluation so far, seconds.
        wall_s: f64,
    },
    /// Cumulative static-analyzer pruning statistics after a batch.
    /// Emitted only by gate-enabled evaluation pools, immediately after
    /// the batch's [`TraceEvent::PoolStats`] record; traces from ungated
    /// runs never contain it.
    AnalyzerStats {
        /// Trial whose batch just completed.
        trial: usize,
        /// Candidates the analyzer gate rejected before the cost model
        /// ran, cumulative over the run.
        pruned: usize,
    },
    /// Cumulative incremental-evaluation statistics after a batch.
    /// Emitted only by delta-enabled evaluation pools, immediately after
    /// the batch's [`TraceEvent::PoolStats`] (and, when gated, the
    /// [`TraceEvent::AnalyzerStats`]) record; traces from non-delta runs
    /// never contain it. For delta pools,
    /// `delta_hits + delta_full == evaluated`.
    DeltaStats {
        /// Trial whose batch just completed.
        trial: usize,
        /// Fresh evaluations served by the incremental (delta) fast path,
        /// cumulative over the run.
        delta_hits: usize,
        /// Fresh evaluations that needed the full feature recompute,
        /// cumulative over the run.
        delta_full: usize,
    },
    /// Region branch-and-bound statistics: live interval-gate counters
    /// plus the end-of-search certification sweep. Emitted once per run,
    /// immediately before [`TraceEvent::RunSummary`], only when
    /// `SearchOptions::region_gate` is enabled; traces from ungated runs
    /// never contain it. Every field is deterministic given the seed and
    /// search options, so gated traces replay byte-identically.
    RegionStats {
        /// Trial index of the last completed trial.
        trial: usize,
        /// Distinct candidate regions analyzed by the live gate.
        regions_analyzed: usize,
        /// Candidates skipped because their region is statically illegal.
        region_pruned: usize,
        /// Regions examined by the certification sweep.
        swept: usize,
        /// Sweep regions certified empty (no legal member schedule).
        sweep_illegal: usize,
        /// Sweep regions certified worse than the incumbent (certified
        /// lower bound exceeds the realized best cost).
        sweep_pruned: usize,
        /// Sweep regions left uncertified (contain the incumbent or hit
        /// the subdivision limit).
        sweep_open: usize,
        /// Whether the sweep hit its region budget before certifying the
        /// whole factor space.
        sweep_truncated: bool,
    },
    /// Cumulative schedule-database statistics (`flextensor-tunedb`):
    /// lookup hits/misses, warm-start seeds served, records appended,
    /// and lines dropped by crash recovery. Emitted by the session
    /// server when it reports; replay captures the last one seen without
    /// folding it into the run summary.
    DbStats {
        /// Keys resident in the database index.
        records: usize,
        /// Lookups answered from the store.
        hits: usize,
        /// Lookups that missed.
        misses: usize,
        /// Warm-start seeds served from nearest-shape neighbors.
        warm_starts: usize,
        /// Records appended since the database was opened.
        puts: usize,
        /// Log lines dropped by corruption recovery at open.
        dropped: usize,
    },
    /// Per-session statistics from the tuning session server: request
    /// outcomes by class (database hit, fresh tune, coalesced duplicate,
    /// failure) plus total queue latency. `queue_wait_s` is wall-clock
    /// and is zeroed by [`TraceEvent::strip_wall_clock`]; every other
    /// field is deterministic given the request sequence.
    SessionStats {
        /// Session name.
        session: String,
        /// Requests submitted by the session.
        submitted: usize,
        /// Requests answered successfully.
        completed: usize,
        /// Requests that failed (evaluator error).
        failed: usize,
        /// Requests answered directly from the database snapshot.
        hits: usize,
        /// Requests that ran a fresh search.
        misses: usize,
        /// Fresh searches that were seeded from a neighbor record.
        warm_starts: usize,
        /// Requests deduplicated onto another request's result.
        coalesced: usize,
        /// Total real time requests spent queued, seconds.
        queue_wait_s: f64,
    },
    /// A graph-level tuning run planned its deduplicated task set
    /// (`flextensor-graph`): how many network occurrences collapsed into
    /// how many tuning tasks, and the global budget split into rounds.
    /// Emitted once per graph tune, before any round runs; replay
    /// captures the last one seen without folding it into the run
    /// summary. Every field is deterministic.
    GraphPlan {
        /// Network name.
        network: String,
        /// Operator occurrences in the network (before dedup).
        occurrences: usize,
        /// Deduplicated tuning tasks (distinct structural fingerprints).
        tasks: usize,
        /// Tasks answered from the database snapshot (no budget spent).
        hits: usize,
        /// Global trial budget across all fresh tasks.
        budget: usize,
        /// Re-planning rounds after the pilot round.
        rounds: usize,
        /// Pilot trials given to every fresh task in round 0.
        pilot: usize,
    },
    /// One budget-allocation round of a graph-level tuning run finished:
    /// how many trials the planner allocated this round and the
    /// end-to-end network latency after absorbing the round's results.
    /// Replay collects these in emission order. Every field is
    /// deterministic.
    GraphRound {
        /// Round index (0 = pilot).
        round: usize,
        /// Trials allocated across tasks this round.
        allocated: usize,
        /// Cumulative trials spent through this round.
        spent: usize,
        /// Modeled end-to-end network latency after this round, seconds
        /// (sum over tasks of use-count × best kernel time).
        network_seconds: f64,
    },
    /// The run finished. Replay recomputes every field of this record
    /// (except the pass-through `wall_s`) from the preceding events.
    RunSummary {
        /// Trials actually run.
        trials: usize,
        /// Total modeled on-device measurements.
        measurements: usize,
        /// Total modeled exploration time, seconds.
        exploration_time_s: f64,
        /// Best kernel time found, seconds.
        best_seconds: f64,
        /// Best throughput found, GFLOP/s.
        best_gflops: f64,
        /// Fresh evaluations run by the pool.
        evaluated: usize,
        /// Memo-cache hits.
        cache_hits: usize,
        /// Memo-cache misses.
        cache_misses: usize,
        /// Real wall-clock of the whole run, seconds.
        wall_s: f64,
    },
}

impl TraceEvent {
    /// The record's `"type"` tag.
    pub fn type_name(&self) -> &'static str {
        match self {
            TraceEvent::RunStarted { .. } => "run_started",
            TraceEvent::TrialStarted { .. } => "trial_started",
            TraceEvent::CandidateEvaluated { .. } => "candidate_evaluated",
            TraceEvent::SaStep { .. } => "sa_step",
            TraceEvent::QUpdate { .. } => "q_update",
            TraceEvent::PoolStats { .. } => "pool_stats",
            TraceEvent::AnalyzerStats { .. } => "analyzer_stats",
            TraceEvent::DeltaStats { .. } => "delta_stats",
            TraceEvent::RegionStats { .. } => "region_stats",
            TraceEvent::DbStats { .. } => "db_stats",
            TraceEvent::SessionStats { .. } => "session_stats",
            TraceEvent::GraphPlan { .. } => "graph_plan",
            TraceEvent::GraphRound { .. } => "graph_round",
            TraceEvent::RunSummary { .. } => "run_summary",
        }
    }

    /// A copy with every wall-clock field zeroed. Two runs with the same
    /// seed and worker count serialize byte-identically after this.
    pub fn strip_wall_clock(&self) -> TraceEvent {
        let mut e = self.clone();
        match &mut e {
            TraceEvent::TrialStarted { wall_s, .. }
            | TraceEvent::PoolStats { wall_s, .. }
            | TraceEvent::RunSummary { wall_s, .. } => *wall_s = 0.0,
            TraceEvent::SessionStats { queue_wait_s, .. } => *queue_wait_s = 0.0,
            _ => {}
        }
        e
    }

    /// Serializes the event as one JSONL record (no trailing newline).
    ///
    /// Field order is fixed per variant, floats print in shortest
    /// round-trip form, and the schema version rides on every record, so
    /// serialization is deterministic and self-describing.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(s, "{{\"v\":{TRACE_VERSION},\"type\":");
        write_str(&mut s, self.type_name());
        match self {
            TraceEvent::RunStarted {
                method,
                seed,
                trials,
                starts,
                workers,
                measure_overhead_s,
                measure_repeats,
                flops,
            } => {
                s.push_str(",\"method\":");
                write_str(&mut s, method);
                let _ = write!(
                    s,
                    ",\"seed\":{seed},\"trials\":{trials},\"starts\":{starts},\"workers\":{workers},\"measure_overhead_s\":"
                );
                write_f64(&mut s, *measure_overhead_s);
                let _ = write!(
                    s,
                    ",\"measure_repeats\":{measure_repeats},\"flops\":{flops}"
                );
            }
            TraceEvent::TrialStarted {
                trial,
                starts,
                wall_s,
            } => {
                let _ = write!(s, ",\"trial\":{trial},\"starts\":{starts},\"wall_s\":");
                write_f64(&mut s, *wall_s);
            }
            TraceEvent::CandidateEvaluated {
                trial,
                key,
                seconds,
                fresh,
            } => {
                let _ = write!(s, ",\"trial\":{trial},\"key\":");
                write_str(&mut s, key);
                s.push_str(",\"seconds\":");
                write_opt_f64(&mut s, *seconds);
                let _ = write!(s, ",\"fresh\":{fresh}");
            }
            TraceEvent::SaStep {
                trial,
                temperature,
                energy,
                accepted,
            } => {
                let _ = write!(s, ",\"trial\":{trial},\"temperature\":");
                write_f64(&mut s, *temperature);
                s.push_str(",\"energy\":");
                write_f64(&mut s, *energy);
                let _ = write!(s, ",\"accepted\":{accepted}");
            }
            TraceEvent::QUpdate {
                trial,
                loss,
                epsilon,
                target_sync,
            } => {
                let _ = write!(s, ",\"trial\":{trial},\"loss\":");
                write_f64(&mut s, *loss);
                s.push_str(",\"epsilon\":");
                write_f64(&mut s, *epsilon);
                let _ = write!(s, ",\"target_sync\":{target_sync}");
            }
            TraceEvent::PoolStats {
                trial,
                evaluated,
                cache_hits,
                cache_misses,
                cache_entries,
                workers,
                wall_s,
            } => {
                let _ = write!(
                    s,
                    ",\"trial\":{trial},\"evaluated\":{evaluated},\"cache_hits\":{cache_hits},\"cache_misses\":{cache_misses},\"cache_entries\":{cache_entries},\"workers\":{workers},\"wall_s\":"
                );
                write_f64(&mut s, *wall_s);
            }
            TraceEvent::AnalyzerStats { trial, pruned } => {
                let _ = write!(s, ",\"trial\":{trial},\"pruned\":{pruned}");
            }
            TraceEvent::DeltaStats {
                trial,
                delta_hits,
                delta_full,
            } => {
                let _ = write!(
                    s,
                    ",\"trial\":{trial},\"delta_hits\":{delta_hits},\"delta_full\":{delta_full}"
                );
            }
            TraceEvent::RegionStats {
                trial,
                regions_analyzed,
                region_pruned,
                swept,
                sweep_illegal,
                sweep_pruned,
                sweep_open,
                sweep_truncated,
            } => {
                let _ = write!(
                    s,
                    ",\"trial\":{trial},\"regions_analyzed\":{regions_analyzed},\"region_pruned\":{region_pruned},\"swept\":{swept},\"sweep_illegal\":{sweep_illegal},\"sweep_pruned\":{sweep_pruned},\"sweep_open\":{sweep_open},\"sweep_truncated\":{sweep_truncated}"
                );
            }
            TraceEvent::DbStats {
                records,
                hits,
                misses,
                warm_starts,
                puts,
                dropped,
            } => {
                let _ = write!(
                    s,
                    ",\"records\":{records},\"hits\":{hits},\"misses\":{misses},\"warm_starts\":{warm_starts},\"puts\":{puts},\"dropped\":{dropped}"
                );
            }
            TraceEvent::SessionStats {
                session,
                submitted,
                completed,
                failed,
                hits,
                misses,
                warm_starts,
                coalesced,
                queue_wait_s,
            } => {
                s.push_str(",\"session\":");
                write_str(&mut s, session);
                let _ = write!(
                    s,
                    ",\"submitted\":{submitted},\"completed\":{completed},\"failed\":{failed},\"hits\":{hits},\"misses\":{misses},\"warm_starts\":{warm_starts},\"coalesced\":{coalesced},\"queue_wait_s\":"
                );
                write_f64(&mut s, *queue_wait_s);
            }
            TraceEvent::GraphPlan {
                network,
                occurrences,
                tasks,
                hits,
                budget,
                rounds,
                pilot,
            } => {
                s.push_str(",\"network\":");
                write_str(&mut s, network);
                let _ = write!(
                    s,
                    ",\"occurrences\":{occurrences},\"tasks\":{tasks},\"hits\":{hits},\"budget\":{budget},\"rounds\":{rounds},\"pilot\":{pilot}"
                );
            }
            TraceEvent::GraphRound {
                round,
                allocated,
                spent,
                network_seconds,
            } => {
                let _ = write!(
                    s,
                    ",\"round\":{round},\"allocated\":{allocated},\"spent\":{spent},\"network_seconds\":"
                );
                write_f64(&mut s, *network_seconds);
            }
            TraceEvent::RunSummary {
                trials,
                measurements,
                exploration_time_s,
                best_seconds,
                best_gflops,
                evaluated,
                cache_hits,
                cache_misses,
                wall_s,
            } => {
                let _ = write!(
                    s,
                    ",\"trials\":{trials},\"measurements\":{measurements},\"exploration_time_s\":"
                );
                write_f64(&mut s, *exploration_time_s);
                s.push_str(",\"best_seconds\":");
                write_f64(&mut s, *best_seconds);
                s.push_str(",\"best_gflops\":");
                write_f64(&mut s, *best_gflops);
                let _ = write!(
                    s,
                    ",\"evaluated\":{evaluated},\"cache_hits\":{cache_hits},\"cache_misses\":{cache_misses},\"wall_s\":"
                );
                write_f64(&mut s, *wall_s);
            }
        }
        s.push('}');
        s
    }

    /// Parses one JSONL record back into an event.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] on malformed JSON, an unknown record type,
    /// a missing field, or a schema version newer than [`TRACE_VERSION`].
    pub fn from_jsonl(line: &str) -> Result<TraceEvent, TraceError> {
        let v = parse(line).map_err(TraceError)?;
        let version = v.get_u64("v").map_err(TraceError)?;
        if version > TRACE_VERSION {
            return Err(TraceError(format!(
                "record version {version} is newer than supported {TRACE_VERSION}"
            )));
        }
        fn field<T>(r: Result<T, String>) -> Result<T, TraceError> {
            r.map_err(TraceError)
        }
        let ev = match v.get_str("type").map_err(TraceError)? {
            "run_started" => TraceEvent::RunStarted {
                method: field(v.get_str("method"))?.to_string(),
                seed: field(v.get_u64("seed"))?,
                trials: field(v.get_usize("trials"))?,
                starts: field(v.get_usize("starts"))?,
                workers: field(v.get_usize("workers"))?,
                measure_overhead_s: field(v.get_f64("measure_overhead_s"))?,
                measure_repeats: {
                    let r = field(v.get_u64("measure_repeats"))?;
                    r as u32
                },
                flops: field(v.get_u64("flops"))?,
            },
            "trial_started" => TraceEvent::TrialStarted {
                trial: field(v.get_usize("trial"))?,
                starts: field(v.get_usize("starts"))?,
                wall_s: field(v.get_f64("wall_s"))?,
            },
            "candidate_evaluated" => TraceEvent::CandidateEvaluated {
                trial: field(v.get_usize("trial"))?,
                key: field(v.get_str("key"))?.to_string(),
                seconds: field(v.get_opt_f64("seconds"))?,
                fresh: field(v.get_bool("fresh"))?,
            },
            "sa_step" => TraceEvent::SaStep {
                trial: field(v.get_usize("trial"))?,
                temperature: field(v.get_f64("temperature"))?,
                energy: field(v.get_f64("energy"))?,
                accepted: field(v.get_bool("accepted"))?,
            },
            "q_update" => TraceEvent::QUpdate {
                trial: field(v.get_usize("trial"))?,
                loss: field(v.get_f64("loss"))?,
                epsilon: field(v.get_f64("epsilon"))?,
                target_sync: field(v.get_bool("target_sync"))?,
            },
            "pool_stats" => TraceEvent::PoolStats {
                trial: field(v.get_usize("trial"))?,
                evaluated: field(v.get_usize("evaluated"))?,
                cache_hits: field(v.get_usize("cache_hits"))?,
                cache_misses: field(v.get_usize("cache_misses"))?,
                cache_entries: field(v.get_usize("cache_entries"))?,
                workers: field(v.get_usize("workers"))?,
                wall_s: field(v.get_f64("wall_s"))?,
            },
            "analyzer_stats" => TraceEvent::AnalyzerStats {
                trial: field(v.get_usize("trial"))?,
                pruned: field(v.get_usize("pruned"))?,
            },
            "delta_stats" => TraceEvent::DeltaStats {
                trial: field(v.get_usize("trial"))?,
                delta_hits: field(v.get_usize("delta_hits"))?,
                delta_full: field(v.get_usize("delta_full"))?,
            },
            "region_stats" => TraceEvent::RegionStats {
                trial: field(v.get_usize("trial"))?,
                regions_analyzed: field(v.get_usize("regions_analyzed"))?,
                region_pruned: field(v.get_usize("region_pruned"))?,
                swept: field(v.get_usize("swept"))?,
                sweep_illegal: field(v.get_usize("sweep_illegal"))?,
                sweep_pruned: field(v.get_usize("sweep_pruned"))?,
                sweep_open: field(v.get_usize("sweep_open"))?,
                sweep_truncated: field(v.get_bool("sweep_truncated"))?,
            },
            "db_stats" => TraceEvent::DbStats {
                records: field(v.get_usize("records"))?,
                hits: field(v.get_usize("hits"))?,
                misses: field(v.get_usize("misses"))?,
                warm_starts: field(v.get_usize("warm_starts"))?,
                puts: field(v.get_usize("puts"))?,
                dropped: field(v.get_usize("dropped"))?,
            },
            "session_stats" => TraceEvent::SessionStats {
                session: field(v.get_str("session"))?.to_string(),
                submitted: field(v.get_usize("submitted"))?,
                completed: field(v.get_usize("completed"))?,
                failed: field(v.get_usize("failed"))?,
                hits: field(v.get_usize("hits"))?,
                misses: field(v.get_usize("misses"))?,
                warm_starts: field(v.get_usize("warm_starts"))?,
                coalesced: field(v.get_usize("coalesced"))?,
                queue_wait_s: field(v.get_f64("queue_wait_s"))?,
            },
            "graph_plan" => TraceEvent::GraphPlan {
                network: field(v.get_str("network"))?.to_string(),
                occurrences: field(v.get_usize("occurrences"))?,
                tasks: field(v.get_usize("tasks"))?,
                hits: field(v.get_usize("hits"))?,
                budget: field(v.get_usize("budget"))?,
                rounds: field(v.get_usize("rounds"))?,
                pilot: field(v.get_usize("pilot"))?,
            },
            "graph_round" => TraceEvent::GraphRound {
                round: field(v.get_usize("round"))?,
                allocated: field(v.get_usize("allocated"))?,
                spent: field(v.get_usize("spent"))?,
                network_seconds: field(v.get_f64("network_seconds"))?,
            },
            "run_summary" => TraceEvent::RunSummary {
                trials: field(v.get_usize("trials"))?,
                measurements: field(v.get_usize("measurements"))?,
                exploration_time_s: field(v.get_f64("exploration_time_s"))?,
                best_seconds: field(v.get_f64("best_seconds"))?,
                best_gflops: field(v.get_f64("best_gflops"))?,
                evaluated: field(v.get_usize("evaluated"))?,
                cache_hits: field(v.get_usize("cache_hits"))?,
                cache_misses: field(v.get_usize("cache_misses"))?,
                wall_s: field(v.get_f64("wall_s"))?,
            },
            other => {
                return Err(TraceError(format!("unknown record type `{other}`")));
            }
        };
        Ok(ev)
    }
}

/// Renders a canonical config key from its integer encoding (dot-joined).
pub fn config_key(encoding: &[i64]) -> String {
    let mut s = String::with_capacity(encoding.len() * 3);
    for (i, w) in encoding.iter().enumerate() {
        if i > 0 {
            s.push('.');
        }
        let _ = write!(s, "{w}");
    }
    s
}

/// Errors from parsing or replaying traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError(pub String);

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace error: {}", self.0)
    }
}

impl std::error::Error for TraceError {}

/// Where trace events go. Implementations must be thread-safe: the
/// drivers emit from the coordinating search thread, but sinks may be
/// shared across concurrent searches.
pub trait TraceSink: Send + Sync {
    /// Consumes one event.
    fn emit(&self, event: &TraceEvent);

    /// Flushes any buffered output (no-op by default).
    fn flush(&self) {}
}

/// A sink that drops every event (telemetry disabled).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&self, _event: &TraceEvent) {}
}

/// A sink that collects events in memory, for tests and programmatic
/// inspection.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// A snapshot of every event recorded so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.lock().expect("memory sink poisoned").len()
    }

    /// Whether no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for MemorySink {
    fn emit(&self, event: &TraceEvent) {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .push(event.clone());
    }
}

/// A sink that appends one versioned JSONL record per event to a writer.
///
/// # Example: round-tripping a trace through JSONL
///
/// ```
/// use flextensor_telemetry::{read_jsonl, JsonlSink, TraceEvent, TraceSink};
///
/// let sink = JsonlSink::new(Vec::new());
/// let ev = TraceEvent::CandidateEvaluated {
///     trial: 3,
///     key: "4.4.2.1".into(),
///     seconds: Some(1.25e-3),
///     fresh: true,
/// };
/// sink.emit(&ev);
/// sink.emit(&ev.strip_wall_clock());
///
/// let bytes = sink.into_inner().unwrap();
/// let back = read_jsonl(&bytes[..]).unwrap();
/// assert_eq!(back, vec![ev.clone(), ev]);
/// ```
#[derive(Debug)]
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer. Each event becomes one line.
    pub fn new(writer: W) -> JsonlSink<W> {
        JsonlSink {
            writer: Mutex::new(writer),
        }
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Returns the I/O error of the final flush, if any.
    pub fn into_inner(self) -> io::Result<W> {
        let mut w = self.writer.into_inner().expect("jsonl sink poisoned");
        w.flush()?;
        Ok(w)
    }
}

impl JsonlSink<io::BufWriter<std::fs::File>> {
    /// Creates (truncates) a trace file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the error of the underlying file creation.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink::new(io::BufWriter::new(std::fs::File::create(
            path,
        )?)))
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn emit(&self, event: &TraceEvent) {
        let mut w = self.writer.lock().expect("jsonl sink poisoned");
        // Trace I/O is best-effort: a full disk should not kill a search.
        let _ = writeln!(w, "{}", event.to_jsonl());
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("jsonl sink poisoned").flush();
    }
}

/// Reads every event from line-delimited JSON (blank lines are skipped).
///
/// # Errors
///
/// Returns [`TraceError`] for I/O failures or the first malformed record,
/// tagged with its line number.
pub fn read_jsonl(reader: impl io::Read) -> Result<Vec<TraceEvent>, TraceError> {
    let mut events = Vec::new();
    for (lineno, line) in io::BufReader::new(reader).lines().enumerate() {
        let line = line.map_err(|e| TraceError(format!("line {}: {e}", lineno + 1)))?;
        if line.trim().is_empty() {
            continue;
        }
        let ev = TraceEvent::from_jsonl(&line)
            .map_err(|e| TraceError(format!("line {}: {}", lineno + 1, e.0)))?;
        events.push(ev);
    }
    Ok(events)
}

/// Reads a JSONL trace file.
///
/// # Errors
///
/// Returns [`TraceError`] when the file cannot be opened or a record is
/// malformed.
pub fn read_trace_file(path: impl AsRef<Path>) -> Result<Vec<TraceEvent>, TraceError> {
    let path = path.as_ref();
    let file = std::fs::File::open(path)
        .map_err(|e| TraceError(format!("cannot open {}: {e}", path.display())))?;
    read_jsonl(file)
}

/// The cheap, cloneable telemetry handle the search drivers carry.
///
/// Disabled by default ([`Telemetry::default`] drops every event without
/// even constructing it — guard expensive event construction with
/// [`Telemetry::is_enabled`]). Cloning shares the underlying sink.
#[derive(Clone, Default)]
pub struct Telemetry {
    sink: Option<Arc<dyn TraceSink>>,
}

impl Telemetry {
    /// A disabled handle (every event is dropped).
    pub fn null() -> Telemetry {
        Telemetry::default()
    }

    /// A handle emitting into a shared sink.
    pub fn new(sink: Arc<dyn TraceSink>) -> Telemetry {
        Telemetry { sink: Some(sink) }
    }

    /// A handle emitting into a freshly wrapped sink.
    pub fn to_sink(sink: impl TraceSink + 'static) -> Telemetry {
        Telemetry::new(Arc::new(sink))
    }

    /// Whether a sink is attached. Emission sites use this to skip event
    /// construction entirely when telemetry is off.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits one event (no-op when disabled).
    pub fn emit(&self, event: TraceEvent) {
        if let Some(sink) = &self.sink {
            sink.emit(&event);
        }
    }

    /// Flushes the sink, if any.
    pub fn flush(&self) {
        if let Some(sink) = &self.sink {
            sink.flush();
        }
    }
}

// `Arc<dyn TraceSink>` has no Debug; keep the handle's Debug (required by
// the options structs that embed it) informative but trivial.
impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::RunStarted {
                method: "q-method".into(),
                seed: 0xF1E2_7E50,
                trials: 4,
                starts: 2,
                workers: 1,
                measure_overhead_s: 0.8,
                measure_repeats: 10,
                flops: 33_554_432,
            },
            TraceEvent::TrialStarted {
                trial: 0,
                starts: 3,
                wall_s: 0.25,
            },
            TraceEvent::CandidateEvaluated {
                trial: 0,
                key: "4.4.2.-1".into(),
                seconds: Some(1.5e-4),
                fresh: true,
            },
            TraceEvent::CandidateEvaluated {
                trial: 0,
                key: "1.1.1.1".into(),
                seconds: None,
                fresh: false,
            },
            TraceEvent::SaStep {
                trial: 1,
                temperature: 2.0,
                energy: 6666.6,
                accepted: false,
            },
            TraceEvent::QUpdate {
                trial: 5,
                loss: 0.0625,
                epsilon: 0.31,
                target_sync: true,
            },
            TraceEvent::PoolStats {
                trial: 1,
                evaluated: 12,
                cache_hits: 3,
                cache_misses: 12,
                cache_entries: 12,
                workers: 4,
                wall_s: 0.001,
            },
            TraceEvent::AnalyzerStats {
                trial: 1,
                pruned: 5,
            },
            TraceEvent::DeltaStats {
                trial: 1,
                delta_hits: 9,
                delta_full: 3,
            },
            TraceEvent::RegionStats {
                trial: 3,
                regions_analyzed: 7,
                region_pruned: 4,
                swept: 129,
                sweep_illegal: 63,
                sweep_pruned: 41,
                sweep_open: 25,
                sweep_truncated: false,
            },
            TraceEvent::DbStats {
                records: 17,
                hits: 4,
                misses: 9,
                warm_starts: 6,
                puts: 9,
                dropped: 2,
            },
            TraceEvent::SessionStats {
                session: "tenant-a".into(),
                submitted: 12,
                completed: 11,
                failed: 1,
                hits: 3,
                misses: 5,
                warm_starts: 4,
                coalesced: 3,
                queue_wait_s: 0.125,
            },
            TraceEvent::GraphPlan {
                network: "shuffle_unit".into(),
                occurrences: 10,
                tasks: 4,
                hits: 1,
                budget: 64,
                rounds: 3,
                pilot: 2,
            },
            TraceEvent::GraphRound {
                round: 1,
                allocated: 18,
                spent: 24,
                network_seconds: 0.0125,
            },
            TraceEvent::RunSummary {
                trials: 4,
                measurements: 12,
                exploration_time_s: 9.61,
                best_seconds: 1.5e-4,
                best_gflops: 223.7,
                evaluated: 12,
                cache_hits: 3,
                cache_misses: 12,
                wall_s: 0.5,
            },
        ]
    }

    #[test]
    fn every_event_round_trips_through_jsonl() {
        for ev in sample_events() {
            let line = ev.to_jsonl();
            assert!(
                line.starts_with(&format!("{{\"v\":{TRACE_VERSION},")),
                "{line}"
            );
            let back = TraceEvent::from_jsonl(&line).unwrap();
            assert_eq!(back, ev, "line: {line}");
        }
    }

    #[test]
    fn newer_versions_are_rejected() {
        let line = sample_events()[0]
            .to_jsonl()
            .replace("{\"v\":1,", "{\"v\":999,");
        let err = TraceEvent::from_jsonl(&line).unwrap_err();
        assert!(err.0.contains("version 999"), "{err}");
    }

    #[test]
    fn strip_wall_clock_zeroes_only_wall_fields() {
        for ev in sample_events() {
            let stripped = ev.strip_wall_clock();
            match stripped {
                TraceEvent::TrialStarted { wall_s, .. }
                | TraceEvent::PoolStats { wall_s, .. }
                | TraceEvent::RunSummary { wall_s, .. } => assert_eq!(wall_s, 0.0),
                TraceEvent::SessionStats { queue_wait_s, .. } => assert_eq!(queue_wait_s, 0.0),
                other => assert_eq!(other, ev),
            }
        }
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let sink = Arc::new(MemorySink::new());
        let tel = Telemetry::new(sink.clone());
        for ev in sample_events() {
            tel.emit(ev);
        }
        assert_eq!(sink.events(), sample_events());
        assert_eq!(sink.len(), sample_events().len());
    }

    #[test]
    fn null_telemetry_is_disabled() {
        let tel = Telemetry::null();
        assert!(!tel.is_enabled());
        tel.emit(sample_events()[0].clone()); // must not panic
        tel.flush();
        assert!(Telemetry::to_sink(NullSink).is_enabled());
    }

    #[test]
    fn jsonl_sink_round_trips_via_reader() {
        let sink = JsonlSink::new(Vec::new());
        for ev in sample_events() {
            sink.emit(&ev);
        }
        let bytes = sink.into_inner().unwrap();
        let back = read_jsonl(&bytes[..]).unwrap();
        assert_eq!(back, sample_events());
    }

    #[test]
    fn read_jsonl_reports_line_numbers() {
        let good = sample_events()[1].to_jsonl();
        let src = format!("{good}\n\nnot json\n");
        let err = read_jsonl(src.as_bytes()).unwrap_err();
        assert!(err.0.starts_with("line 3:"), "{err}");
    }

    #[test]
    fn config_key_formats_encodings() {
        assert_eq!(config_key(&[4, 4, 2, -1]), "4.4.2.-1");
        assert_eq!(config_key(&[]), "");
    }
}
