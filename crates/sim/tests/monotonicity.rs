//! Monotonicity and interval-soundness property tests of the generic
//! scalar path (ROADMAP 1b payoff).
//!
//! Two families:
//!
//! * **directional monotonicity** — each device model, evaluated through
//!   the generic `f64` instantiation, is non-decreasing in the feature
//!   dimensions where that holds by construction (workload FLOPs and the
//!   pure traffic terms: more work or more bytes never makes the modeled
//!   kernel faster at a fixed schedule shape);
//! * **interval containment** — evaluating the models over random input
//!   boxes ([`Interval`] fields) encloses the concrete `f64` result of
//!   every member row drawn from inside the box.

use flextensor_sim::generic::{
    cpu_time_generic, fpga_time_generic, gpu_time_generic, CpuIn, FpgaIn, GpuIn,
};
use flextensor_sim::scalar::Interval;
use flextensor_sim::spec::{v100, vu9p, xeon_e5_2699_v4};
use proptest::prelude::*;

/// Three samples from a range, sorted: a box `[lo, hi]` plus a member
/// `mid` guaranteed to lie inside it.
#[derive(Clone, Copy, Debug)]
struct Tri {
    lo: i64,
    mid: i64,
    hi: i64,
}

fn tri(lo: i64, hi: i64) -> impl Strategy<Value = Tri> {
    (lo..=hi, lo..=hi, lo..=hi).prop_map(|(a, b, c)| {
        let mut v = [a, b, c];
        v.sort();
        Tri {
            lo: v[0],
            mid: v[1],
            hi: v[2],
        }
    })
}

impl Tri {
    fn iv(&self) -> Interval {
        Interval::spanning(self.lo as f64, self.hi as f64)
    }
    fn m(&self) -> f64 {
        self.mid as f64
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// GPU: interval evaluation over a random input box contains the
    /// concrete result of the box's member row.
    #[test]
    fn gpu_interval_contains_member(
        flops in tri(0, 1 << 32),
        grid in tri(1, 1 << 17),
        tpb in tri(1, 2048),
        tt in tri(1, 64),
        vt in tri(1, 16),
        ro in tri(1, 1024),
        shared in tri(0, 200_000),
        reg in tri(0, 4096),
        input in tri(0, 1 << 30),
        out_b in tri(0, 1 << 28),
        dnb in tri(0, 1 << 24),
        unroll in any::<bool>(),
        contig in any::<bool>(),
        cache in any::<bool>(),
    ) {
        let spec = v100();
        let member = GpuIn::<f64> {
            flops: flops.m(),
            grid: grid.m(),
            block_threads: tpb.m(),
            thread_tile: tt.m(),
            vthreads: vt.m(),
            reduce_outer: ro.m(),
            shared_bytes_per_block: shared.m(),
            thread_reg_bytes: reg.m(),
            input_bytes_total: input.m(),
            output_bytes: out_b.m(),
            data_node_bytes: dnb.m(),
            unroll,
            contiguous_inner: contig,
            cache_shared: cache,
        };
        let boxed = GpuIn::<Interval> {
            flops: flops.iv(),
            grid: grid.iv(),
            block_threads: tpb.iv(),
            thread_tile: tt.iv(),
            vthreads: vt.iv(),
            reduce_outer: ro.iv(),
            shared_bytes_per_block: shared.iv(),
            thread_reg_bytes: reg.iv(),
            input_bytes_total: input.iv(),
            output_bytes: out_b.iv(),
            data_node_bytes: dnb.iv(),
            unroll,
            contiguous_inner: contig,
            cache_shared: cache,
        };
        if let Some(t) = gpu_time_generic(&spec, &member, 0.75) {
            let iv = gpu_time_generic(&spec, &boxed, 0.75)
                .expect("member feasible but box judged infeasible");
            prop_assert!(iv.contains(t), "{t} outside {iv:?}");
        }
    }

    /// CPU: interval evaluation over a random input box contains the
    /// concrete result of the box's member row.
    #[test]
    fn cpu_interval_contains_member(
        flops in tri(0, 1 << 32),
        grid in tri(1, 1 << 17),
        chunks in tri(1, 4096),
        tt in tri(1, 64),
        ro in tri(1, 1024),
        vl in tri(1, 64),
        shared in tri(0, 1 << 22),
        l1 in tri(0, 1 << 20),
        l2 in tri(0, 1 << 22),
        input in tri(0, 1 << 30),
        out_b in tri(0, 1 << 28),
        dnb in tri(0, 1 << 24),
        unroll in any::<bool>(),
        contig in any::<bool>(),
    ) {
        let spec = xeon_e5_2699_v4();
        let member = CpuIn::<f64> {
            flops: flops.m(),
            grid: grid.m(),
            parallel_chunks: chunks.m(),
            thread_tile: tt.m(),
            reduce_outer: ro.m(),
            vector_len: vl.m(),
            shared_bytes_per_block: shared.m(),
            l1_tile_bytes: l1.m(),
            l2_tile_bytes: l2.m(),
            input_bytes_total: input.m(),
            output_bytes: out_b.m(),
            data_node_bytes: dnb.m(),
            unroll,
            contiguous_inner: contig,
        };
        let boxed = CpuIn::<Interval> {
            flops: flops.iv(),
            grid: grid.iv(),
            parallel_chunks: chunks.iv(),
            thread_tile: tt.iv(),
            reduce_outer: ro.iv(),
            vector_len: vl.iv(),
            shared_bytes_per_block: shared.iv(),
            l1_tile_bytes: l1.iv(),
            l2_tile_bytes: l2.iv(),
            input_bytes_total: input.iv(),
            output_bytes: out_b.iv(),
            data_node_bytes: dnb.iv(),
            unroll,
            contiguous_inner: contig,
        };
        let t = cpu_time_generic(&spec, &member, 0.75);
        let iv = cpu_time_generic(&spec, &boxed, 0.75);
        prop_assert!(iv.contains(t), "{t} outside {iv:?}");
    }

    /// FPGA: interval evaluation over a random input box contains the
    /// concrete result of the box's member row.
    #[test]
    fn fpga_interval_contains_member(
        flops in tri(0, 1 << 32),
        pe in tri(1, 2000),
        rounds in tri(1, 4096),
        buffer in tri(0, 1 << 24),
        stream in tri(0, 1 << 24),
        write in tri(0, 1 << 24),
        partition_exp in 0u32..5,
        pipeline in 1i64..=3,
    ) {
        let spec = vu9p();
        let partition = 1i64 << partition_exp;
        let member = FpgaIn::<f64> {
            flops: flops.m(),
            pe: pe.m(),
            rounds: rounds.m(),
            buffer_bytes: buffer.m(),
            stream_bytes: stream.m(),
            write_bytes: write.m(),
            partition,
            pipeline,
        };
        let boxed = FpgaIn::<Interval> {
            flops: flops.iv(),
            pe: pe.iv(),
            rounds: rounds.iv(),
            buffer_bytes: buffer.iv(),
            stream_bytes: stream.iv(),
            write_bytes: write.iv(),
            partition,
            pipeline,
        };
        if let Some(t) = fpga_time_generic(&spec, &member, 0.85) {
            let iv = fpga_time_generic(&spec, &boxed, 0.85)
                .expect("member feasible but box judged infeasible");
            prop_assert!(iv.contains(t), "{t} outside {iv:?}");
        }
    }

    /// GPU: the model is non-decreasing in FLOPs and in each pure
    /// traffic dimension (input, output, materialized-producer bytes),
    /// and those dimensions never affect feasibility.
    #[test]
    fn gpu_cost_monotone_in_work_and_traffic(
        flops in 0i64..(1 << 32),
        grid in 1i64..(1 << 17),
        tpb in 1i64..2048,
        tt in 1i64..64,
        vt in 1i64..16,
        ro in 1i64..1024,
        shared in 0i64..200_000,
        reg in 0i64..4096,
        input in 0i64..(1 << 30),
        out_b in 0i64..(1 << 28),
        dnb in 0i64..(1 << 24),
        unroll in any::<bool>(),
        contig in any::<bool>(),
        cache in any::<bool>(),
        bump in 1i64..(1 << 20),
        dim in 0usize..4,
    ) {
        let spec = v100();
        let base = GpuIn::<f64> {
            flops: flops as f64,
            grid: grid as f64,
            block_threads: tpb as f64,
            thread_tile: tt as f64,
            vthreads: vt as f64,
            reduce_outer: ro as f64,
            shared_bytes_per_block: shared as f64,
            thread_reg_bytes: reg as f64,
            input_bytes_total: input as f64,
            output_bytes: out_b as f64,
            data_node_bytes: dnb as f64,
            unroll,
            contiguous_inner: contig,
            cache_shared: cache,
        };
        let mut more = base;
        let b = bump as f64;
        match dim {
            0 => more.flops += b,
            1 => more.input_bytes_total += b,
            2 => more.output_bytes += b,
            _ => more.data_node_bytes += b,
        }
        let t0 = gpu_time_generic(&spec, &base, 0.75);
        let t1 = gpu_time_generic(&spec, &more, 0.75);
        prop_assert_eq!(t0.is_some(), t1.is_some());
        if let (Some(a), Some(c)) = (t0, t1) {
            prop_assert!(c >= a, "dim {dim}: bumping by {bump} went {a} -> {c}");
        }
    }

    /// CPU: non-decreasing in FLOPs and each pure traffic dimension.
    #[test]
    fn cpu_cost_monotone_in_work_and_traffic(
        flops in 0i64..(1 << 32),
        grid in 1i64..(1 << 17),
        chunks in 1i64..4096,
        tt in 1i64..64,
        ro in 1i64..1024,
        vl in 1i64..64,
        shared in 0i64..(1 << 22),
        l1 in 0i64..(1 << 20),
        l2 in 0i64..(1 << 22),
        input in 0i64..(1 << 30),
        out_b in 0i64..(1 << 28),
        dnb in 0i64..(1 << 24),
        unroll in any::<bool>(),
        contig in any::<bool>(),
        bump in 1i64..(1 << 20),
        dim in 0usize..4,
    ) {
        let spec = xeon_e5_2699_v4();
        let base = CpuIn::<f64> {
            flops: flops as f64,
            grid: grid as f64,
            parallel_chunks: chunks as f64,
            thread_tile: tt as f64,
            reduce_outer: ro as f64,
            vector_len: vl as f64,
            shared_bytes_per_block: shared as f64,
            l1_tile_bytes: l1 as f64,
            l2_tile_bytes: l2 as f64,
            input_bytes_total: input as f64,
            output_bytes: out_b as f64,
            data_node_bytes: dnb as f64,
            unroll,
            contiguous_inner: contig,
        };
        let mut more = base;
        let b = bump as f64;
        match dim {
            0 => more.flops += b,
            1 => more.input_bytes_total += b,
            2 => more.output_bytes += b,
            _ => more.data_node_bytes += b,
        }
        let a = cpu_time_generic(&spec, &base, 0.75);
        let c = cpu_time_generic(&spec, &more, 0.75);
        prop_assert!(c >= a, "dim {dim}: bumping by {bump} went {a} -> {c}");
    }

    /// FPGA: non-decreasing in FLOPs and in streamed/written bytes; the
    /// byte dimensions can only remove feasibility (BRAM), never add it.
    #[test]
    fn fpga_cost_monotone_in_work_and_traffic(
        flops in 0i64..(1 << 32),
        pe in 1i64..1368,
        rounds in 1i64..4096,
        buffer in 0i64..(1 << 24),
        stream in 0i64..(1 << 24),
        write in 0i64..(1 << 24),
        partition_exp in 0u32..5,
        pipeline in 1i64..=3,
        bump in 1i64..(1 << 20),
        dim in 0usize..3,
    ) {
        let spec = vu9p();
        let base = FpgaIn::<f64> {
            flops: flops as f64,
            pe: pe as f64,
            rounds: rounds as f64,
            buffer_bytes: buffer as f64,
            stream_bytes: stream as f64,
            write_bytes: write as f64,
            partition: 1i64 << partition_exp,
            pipeline,
        };
        let mut more = base;
        let b = bump as f64;
        match dim {
            0 => more.flops += b,
            1 => more.stream_bytes += b,
            _ => more.write_bytes += b,
        }
        let t0 = fpga_time_generic(&spec, &base, 0.85);
        let t1 = fpga_time_generic(&spec, &more, 0.85);
        match (t0, t1) {
            (Some(a), Some(c)) => {
                prop_assert!(c >= a, "dim {dim}: bumping by {bump} went {a} -> {c}")
            }
            // Growing write_bytes can overflow BRAM; never the reverse.
            (None, Some(_)) => prop_assert!(false, "bump restored feasibility"),
            _ => {}
        }
    }
}
