//! Differential tier for the batched cost model: `time_features_batch`
//! must equal `map(time_features)` **bit-for-bit** on every device model,
//! at every batch size — full chunks, ragged tails (`len % 8 != 0`,
//! `len < 8`), and the empty batch. The scalar path is the reference; the
//! batched path has no licence to diverge by a single ULP.

use flextensor_ir::ops;
use flextensor_schedule::config::NodeConfig;
use flextensor_schedule::features::KernelFeatures;
use flextensor_schedule::lower::lower;
use flextensor_sim::batch::FeatureBatch;
use flextensor_sim::model::Evaluator;
use flextensor_sim::spec::{v100, vu9p, xeon_e5_2699_v4, Device};
use proptest::prelude::*;

/// Deterministic xorshift so feature generation needs no external RNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[(self.next() % xs.len() as u64) as usize]
    }
}

/// Generates `count` feature rows for `dev` by lowering seeded random (but
/// always valid) gemm/conv tilings. Mixes feasible and infeasible rows so
/// the `None` lanes of the batch kernels are exercised too.
fn sample_features(dev: &Device, seed: u64, count: usize) -> Vec<KernelFeatures> {
    let gemm = ops::gemm(256, 192, 128);
    let conv = ops::conv2d(ops::ConvParams::same(1, 32, 64, 3), 14, 14);
    let mut rng = Rng(seed | 1);
    let gemm_i: [Vec<i64>; 4] = [
        vec![8, 1, 16, 2],
        vec![16, 1, 16, 1],
        vec![1, 1, 256, 1],
        vec![4, 4, 4, 4],
    ];
    let gemm_j: [Vec<i64>; 3] = [vec![6, 1, 16, 2], vec![12, 1, 16, 1], vec![192, 1, 1, 1]];
    let gemm_k: [Vec<i64>; 3] = [vec![64, 1, 2], vec![32, 2, 2], vec![128, 1, 1]];
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let use_conv = rng.next().is_multiple_of(4);
        let (g, mut cfg) = if use_conv {
            let c = NodeConfig::naive(conv.root_op());
            (&conv, c)
        } else {
            let mut c = NodeConfig::naive(gemm.root_op());
            c.spatial_splits = vec![rng.pick(&gemm_i).clone(), rng.pick(&gemm_j).clone()];
            c.reduce_splits = vec![rng.pick(&gemm_k).clone()];
            (&gemm, c)
        };
        cfg.cache_shared = rng.next().is_multiple_of(2);
        cfg.unroll = rng.next().is_multiple_of(2);
        cfg.vectorize = rng.next().is_multiple_of(2);
        if let Ok(kernel) = lower(g, &cfg, dev.target()) {
            out.push(kernel.features);
        }
    }
    out
}

fn devices() -> [Device; 3] {
    [
        Device::Gpu(v100()),
        Device::Cpu(xeon_e5_2699_v4()),
        Device::Fpga(vu9p()),
    ]
}

fn assert_batch_matches_scalar(dev: &Device, feats: &[KernelFeatures]) {
    let ev = Evaluator::new(dev.clone());
    let mut batch = FeatureBatch::new();
    for f in feats {
        batch.push(f);
    }
    let mut got = Vec::new();
    ev.time_features_batch(&batch, &mut got);
    assert_eq!(got.len(), feats.len());
    for (i, f) in feats.iter().enumerate() {
        let want = ev.time_features(f);
        assert_eq!(
            got[i].map(f64::to_bits),
            want.map(f64::to_bits),
            "row {i}/{} diverges on {}: batch {:?} scalar {:?}",
            feats.len(),
            dev.name(),
            got[i],
            want
        );
    }
}

/// Every batch size in 0..=64 plus chunk-boundary sizes around 8 and
/// larger ragged sizes — exhaustive over the small range where tail
/// handling bugs live.
#[test]
fn batch_equals_scalar_at_every_small_size() {
    for dev in devices() {
        let pool = sample_features(&dev, 0x9e3779b9, 80);
        for n in 0..=64usize {
            assert_batch_matches_scalar(&dev, &pool[..n]);
        }
        assert_batch_matches_scalar(&dev, &pool[..71]);
        assert_batch_matches_scalar(&dev, &pool);
    }
}

/// A reused (clear + refill) batch must behave exactly like a fresh one —
/// the pool holds one `FeatureBatch` scratch across batches.
#[test]
fn reused_scratch_batch_equals_fresh_batch() {
    for dev in devices() {
        let ev = Evaluator::new(dev.clone());
        let a = sample_features(&dev, 11, 40);
        let b = sample_features(&dev, 22, 17);
        let mut scratch = FeatureBatch::new();
        let mut out = Vec::new();
        for f in &a {
            scratch.push(f);
        }
        ev.time_features_batch(&scratch, &mut out);
        scratch.clear();
        for f in &b {
            scratch.push(f);
        }
        ev.time_features_batch(&scratch, &mut out);
        for (i, f) in b.iter().enumerate() {
            assert_eq!(
                out[i].map(f64::to_bits),
                ev.time_features(f).map(f64::to_bits),
                "reused scratch diverges at row {i} on {}",
                dev.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `cost_batch ≡ map(cost)` for arbitrary batch sizes in 1..=1024 and
    /// arbitrary seeds, on all three device models.
    #[test]
    fn batch_equals_scalar_at_any_size(
        n in 1usize..=1024,
        seed in any::<u64>(),
        device_idx in 0usize..3,
    ) {
        let dev = devices()[device_idx].clone();
        let feats = sample_features(&dev, seed, n);
        let ev = Evaluator::new(dev.clone());
        let mut batch = FeatureBatch::new();
        for f in &feats {
            batch.push(f);
        }
        let mut got = Vec::new();
        ev.time_features_batch(&batch, &mut got);
        prop_assert_eq!(got.len(), n);
        for (i, f) in feats.iter().enumerate() {
            let want = ev.time_features(f);
            prop_assert_eq!(
                got[i].map(f64::to_bits),
                want.map(f64::to_bits),
                "row {} of {} diverges on {}",
                i,
                n,
                dev.name()
            );
        }
    }
}
