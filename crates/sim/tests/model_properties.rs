//! Property-based tests of the performance models: physical sanity
//! invariants that must hold for *any* schedule configuration — times are
//! positive and finite, throughput never exceeds device peak, and the
//! models respond monotonically to the resources they meter.

use flextensor_ir::ops;
use flextensor_schedule::config::NodeConfig;
use flextensor_sim::model::Evaluator;
use flextensor_sim::spec::{v100, vu9p, xeon_e5_2699_v4, Device};
use proptest::prelude::*;

/// Scatter prime factors of `n` over `parts` slots.
fn factorization(n: i64, parts: usize) -> impl Strategy<Value = Vec<i64>> {
    let primes = {
        let mut out = Vec::new();
        let mut m = n;
        let mut d = 2;
        while d * d <= m {
            while m % d == 0 {
                out.push(d);
                m /= d;
            }
            d += 1;
        }
        if m > 1 {
            out.push(m);
        }
        out
    };
    proptest::collection::vec(0..parts, primes.len()).prop_map(move |slots| {
        let mut f = vec![1i64; parts];
        for (&p, &s) in primes.iter().zip(&slots) {
            f[s] *= p;
        }
        f
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any valid config on any device: the model either rejects it or
    /// returns a positive, finite time with throughput strictly below the
    /// device's theoretical peak.
    #[test]
    fn any_config_times_are_physical(
        fi in factorization(64, 4),
        fj in factorization(96, 4),
        fk in factorization(48, 3),
        unroll in any::<bool>(),
        cache in any::<bool>(),
        inline in any::<bool>(),
        device_idx in 0usize..3,
    ) {
        let g = ops::gemm(64, 96, 48);
        let mut cfg = NodeConfig::naive(g.root_op());
        cfg.spatial_splits = vec![fi, fj];
        cfg.reduce_splits = vec![fk];
        cfg.unroll = unroll;
        cfg.cache_shared = cache;
        cfg.inline_data = inline;
        cfg.vectorize = true;
        let device = [
            Device::Gpu(v100()),
            Device::Cpu(xeon_e5_2699_v4()),
            Device::Fpga(vu9p()),
        ][device_idx].clone();
        let peak = device.peak_flops();
        let ev = Evaluator::new(device);
        if let Some(cost) = ev.evaluate(&g, &cfg) {
            prop_assert!(cost.seconds.is_finite() && cost.seconds > 0.0);
            let flops_per_s = cost.flops as f64 / cost.seconds;
            prop_assert!(
                flops_per_s < peak,
                "throughput {:.2e} exceeds peak {:.2e}",
                flops_per_s,
                peak
            );
        }
    }

    /// Scaling the workload up (more FLOPs, same schedule shape) never
    /// makes the modeled kernel faster.
    #[test]
    fn bigger_workloads_take_longer(scale in 1i64..5) {
        let base = ops::gemm(64, 64, 32);
        let big = ops::gemm(64 * scale, 64, 32);
        let mk = |g: &flextensor_ir::graph::Graph| {
            let mut c = NodeConfig::naive(g.root_op());
            let n = g.root_op().spatial[0].extent;
            c.spatial_splits = vec![vec![n / 8, 1, 8, 1], vec![4, 1, 16, 1]];
            c.reduce_splits = vec![vec![8, 1, 4]];
            c.cache_shared = true;
            c
        };
        let ev = Evaluator::new(Device::Gpu(v100()));
        let t1 = ev.evaluate(&base, &mk(&base)).unwrap().seconds;
        let t2 = ev.evaluate(&big, &mk(&big)).unwrap().seconds;
        prop_assert!(t2 >= t1 * 0.99, "scale {scale}: {t1} -> {t2}");
    }

    /// The FPGA model obeys the §5.2 structure: halving #PE (at equal
    /// everything else) cannot make compute-bound kernels faster.
    #[test]
    fn fewer_pes_never_faster_when_compute_bound(pe_exp in 2u32..6) {
        let g = ops::gemm(256, 256, 256);
        let mk = |pe_j: i64| {
            let mut c = NodeConfig::naive(g.root_op());
            c.spatial_splits = vec![vec![256 / 16, 1, 16, 1], vec![256 / pe_j, 1, pe_j, 1]];
            c.reduce_splits = vec![vec![64, 2, 2]];
            c.fpga_pipeline = 3;
            c.fpga_partition = 8;
            c
        };
        let ev = Evaluator::new(Device::Fpga(vu9p()));
        let pe = 1i64 << pe_exp;
        let more = ev.evaluate(&g, &mk(pe)).map(|c| c.seconds);
        let fewer = ev.evaluate(&g, &mk(pe / 2)).map(|c| c.seconds);
        if let (Some(m), Some(f)) = (more, fewer) {
            prop_assert!(m <= f * 1.01, "pe {pe}: {m} vs pe/2: {f}");
        }
    }
}

#[test]
fn evaluator_is_pure() {
    // Same config, same device -> identical cost every call.
    let g = ops::gemm(128, 128, 128);
    let mut cfg = NodeConfig::naive(g.root_op());
    cfg.spatial_splits = vec![vec![8, 1, 16, 1], vec![8, 1, 16, 1]];
    cfg.reduce_splits = vec![vec![32, 2, 2]];
    cfg.cache_shared = true;
    let ev = Evaluator::new(Device::Gpu(v100()));
    let a = ev.evaluate(&g, &cfg).unwrap();
    for _ in 0..5 {
        assert_eq!(ev.evaluate(&g, &cfg).unwrap().seconds, a.seconds);
    }
}

#[test]
fn faster_memory_means_faster_memory_bound_kernels() {
    // GEMV is bandwidth bound: V100 (900 GB/s) must beat Titan X (480).
    let g = ops::gemv(8192, 8192);
    let mut cfg = NodeConfig::naive(g.root_op());
    cfg.spatial_splits = vec![vec![32, 1, 256, 1]];
    cfg.reduce_splits = vec![vec![8192 / 8, 1, 8]];
    cfg.cache_shared = true;
    let t_v100 = Evaluator::new(Device::Gpu(v100()))
        .evaluate(&g, &cfg)
        .unwrap()
        .seconds;
    let t_titan = Evaluator::new(Device::Gpu(flextensor_sim::spec::titan_x()))
        .evaluate(&g, &cfg)
        .unwrap()
        .seconds;
    assert!(t_v100 < t_titan, "v100 {t_v100} vs titan {t_titan}");
}
