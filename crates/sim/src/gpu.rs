//! Analytical GPU performance model.
//!
//! Estimates kernel runtime from the schedule-derived
//! [`KernelFeatures`] and a
//! [`GpuSpec`]. The model captures the effects the paper's exploration
//! exploits on GPUs (§5.3, Fig. 4b):
//!
//! * **feasibility** — threads per block, shared memory per block;
//! * **occupancy** — resident blocks limited by warps, shared memory and
//!   registers, and the latency-hiding it provides;
//! * **quantization waste** — partial warps, and tail waves when the grid
//!   does not fill the SMs;
//! * **memory hierarchy** — shared-memory staging vs direct global loads,
//!   coalescing of the innermost thread dimension;
//! * **instruction-level parallelism** — register tiles (inner spatial
//!   loops, virtual threads) and unrolling.
//!
//! The absolute numbers are estimates; the purpose is a landscape whose
//! *ordering* of schedules matches real hardware behaviour.

use flextensor_schedule::features::KernelFeatures;

use crate::spec::GpuSpec;

/// Relative multiplier applied to uncached (no shared memory) global
/// traffic: without explicit staging, overlapping tile reads are re-fetched
/// through L1/L2 with imperfect reuse.
const UNCACHED_TRAFFIC_PENALTY: f64 = 2.0;

/// Estimates kernel time in seconds; `None` when the configuration is
/// infeasible on this device (too many threads per block, shared-memory or
/// register demand unsatisfiable).
///
/// `code_quality` scales achievable compute throughput: ~0.75 for generated
/// code, higher for hand-tuned vendor kernels.
pub fn gpu_time(spec: &GpuSpec, f: &KernelFeatures, code_quality: f64) -> Option<f64> {
    let tpb = f.block_threads;
    if tpb < 1 || tpb > spec.max_threads_per_block {
        return None;
    }
    let shared_pb = if f.cache_shared {
        f.shared_bytes_per_block
    } else {
        0
    };
    if shared_pb > spec.shared_per_block {
        return None;
    }

    // ---- occupancy --------------------------------------------------
    let warps_pb = (tpb + 31) / 32;
    let blocks_by_warps = spec.max_warps_per_sm / warps_pb;
    let blocks_by_shared = if shared_pb > 0 {
        spec.shared_per_sm / shared_pb
    } else {
        spec.max_blocks_per_sm
    };
    // Register demand: accumulators + staged fragments per thread; clamp to
    // at least 32 B (16 scalar registers of fixed overhead).
    let reg_bytes_pt = f.thread_reg_bytes.max(128);
    let blocks_by_regs = spec.regfile_per_sm / (reg_bytes_pt * tpb).max(1);
    let blocks_per_sm = blocks_by_warps
        .min(blocks_by_shared)
        .min(blocks_by_regs)
        .min(spec.max_blocks_per_sm);
    if blocks_per_sm < 1 {
        return None;
    }
    let occupancy = (blocks_per_sm * warps_pb) as f64 / spec.max_warps_per_sm as f64;

    // ---- compute efficiency ------------------------------------------
    let warp_eff = tpb as f64 / (warps_pb * 32) as f64;
    // Latency hiding: per-thread ILP from register tiles and unrolling
    // reduces the occupancy needed to keep the pipelines busy.
    let ilp = (f.thread_tile * f.vthreads) as f64 * if f.unroll { 2.0 } else { 1.0 };
    let needed_occupancy = 1.0 / (1.0 + ilp / 4.0) + 0.15;
    let latency_util = (occupancy / needed_occupancy).min(1.0);
    // Tail effect: the last wave of blocks underfills the machine.
    let slots = spec.sms * blocks_per_sm;
    let waves = (f.grid + slots - 1) / slots;
    let tail_eff = if waves > 0 {
        f.grid as f64 / (waves * slots) as f64
    } else {
        0.0
    };
    // A huge register tile eventually spills to local memory.
    let spill_penalty = if reg_bytes_pt > 1024 {
        1024.0 / reg_bytes_pt as f64
    } else {
        1.0
    };

    let eff = code_quality * warp_eff * latency_util * tail_eff.max(1e-3) * spill_penalty;
    let compute_s = if f.flops == 0 {
        0.0
    } else {
        f.flops as f64 / (spec.peak_flops() * eff.max(1e-4))
    };

    // ---- memory time -------------------------------------------------
    let tile_traffic = f.grid as f64 * f.reduce_outer as f64 * f.shared_bytes_per_block as f64;
    let read_traffic = if f.cache_shared {
        tile_traffic
    } else {
        tile_traffic * UNCACHED_TRAFFIC_PENALTY
    };
    // Compulsory floor: every input byte crosses the bus at least once.
    let read_traffic = read_traffic.max(f.input_bytes_total as f64);
    let write_traffic = f.output_bytes as f64;
    let coalesce = match (f.cache_shared, f.contiguous_inner) {
        (true, true) => 1.0,
        (true, false) => 0.6,
        (false, true) => 0.8,
        (false, false) => 0.25,
    };
    let bw = spec.mem_bw_gbps * 1e9 * coalesce;
    let mut mem_s = (read_traffic + write_traffic) / bw;
    // Materialized producers add a round trip over the bus.
    mem_s += f.data_node_bytes as f64 / (spec.mem_bw_gbps * 1e9);

    // Compute and memory overlap imperfectly.
    let kernel_s = compute_s.max(mem_s) + 0.2 * compute_s.min(mem_s);
    let launches = 1 + if f.data_node_bytes > 0 { 1 } else { 0 };
    Some(kernel_s + launches as f64 * spec.launch_overhead_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::v100;
    use flextensor_ir::ops;
    use flextensor_schedule::config::{NodeConfig, TargetKind};
    use flextensor_schedule::lower::lower;

    fn features_for(splits: (Vec<i64>, Vec<i64>, Vec<i64>), cache: bool) -> KernelFeatures {
        let g = ops::gemm(1024, 1024, 1024);
        let mut cfg = NodeConfig::naive(g.root_op());
        cfg.spatial_splits = vec![splits.0, splits.1];
        cfg.reduce_splits = vec![splits.2];
        cfg.cache_shared = cache;
        cfg.unroll = true;
        cfg.vectorize = true;
        lower(&g, &cfg, TargetKind::Gpu).unwrap().features
    }

    #[test]
    fn reasonable_tuned_gemm_hits_a_good_fraction_of_peak() {
        // 64 blocks/dim, 16x16 threads, 4x4 register tile, k split 128x2x4.
        let f = features_for(
            (vec![16, 1, 16, 4], vec![16, 1, 16, 4], vec![128, 2, 4]),
            true,
        );
        let t = gpu_time(&v100(), &f, 0.75).unwrap();
        let gflops = f.flops as f64 / t / 1e9;
        assert!(gflops > 2000.0, "tuned GEMM too slow: {gflops:.0} GFLOPS");
        assert!(gflops < 16000.0, "exceeds peak: {gflops:.0} GFLOPS");
    }

    #[test]
    fn naive_schedule_is_much_slower_than_tuned() {
        let g = ops::gemm(1024, 1024, 1024);
        let naive = lower(&g, &NodeConfig::naive(g.root_op()), TargetKind::Gpu)
            .unwrap()
            .features;
        let tuned = features_for(
            (vec![16, 1, 16, 4], vec![16, 1, 16, 4], vec![128, 2, 4]),
            true,
        );
        let tn = gpu_time(&v100(), &naive, 0.75);
        let tt = gpu_time(&v100(), &tuned, 0.75).unwrap();
        // Naive = 1 thread per block over one giant loop: either
        // infeasible or dramatically slower.
        match tn {
            None => {}
            Some(tn) => assert!(tn > 10.0 * tt, "naive {tn} vs tuned {tt}"),
        }
    }

    #[test]
    fn too_many_threads_is_infeasible() {
        let f = features_for(
            (vec![1, 1, 64, 16], vec![16, 1, 64, 1], vec![1024, 1, 1]),
            false,
        );
        assert_eq!(f.block_threads, 64 * 64);
        assert!(gpu_time(&v100(), &f, 0.75).is_none());
    }

    #[test]
    fn oversized_shared_memory_is_infeasible() {
        // Block tile 256x256 with k-step 64: A tile = 256*64, B = 64*256
        // floats = 128 KiB > 96 KiB.
        let f = features_for((vec![4, 8, 32, 1], vec![4, 8, 32, 1], vec![16, 8, 8]), true);
        assert!(f.shared_bytes_per_block > 96 * 1024);
        assert!(gpu_time(&v100(), &f, 0.75).is_none());
    }

    #[test]
    fn caching_helps_compute_bound_gemm() {
        let cached = features_for(
            (vec![16, 1, 16, 4], vec![16, 1, 16, 4], vec![128, 2, 4]),
            true,
        );
        let uncached = features_for(
            (vec![16, 1, 16, 4], vec![16, 1, 16, 4], vec![128, 2, 4]),
            false,
        );
        let tc = gpu_time(&v100(), &cached, 0.75).unwrap();
        let tu = gpu_time(&v100(), &uncached, 0.75).unwrap();
        assert!(tc <= tu, "cached {tc} uncached {tu}");
    }

    #[test]
    fn tiny_grid_suffers_tail_waste() {
        // Identical kernels except grid size: 16 blocks leave most of the
        // 80 SMs idle, 2560 fill them.
        let mut few = features_for(
            (vec![16, 1, 16, 4], vec![16, 1, 16, 4], vec![256, 2, 2]),
            true,
        );
        let many = few.clone();
        few.grid = 16;
        // Same total work: scale flops with the grid.
        few.flops = many.flops / (many.grid / 16) as u64;
        let t_few = gpu_time(&v100(), &few, 0.75).unwrap();
        let t_many = gpu_time(&v100(), &many, 0.75).unwrap();
        // few does 1/16 the work; with perfect scaling it would take 1/16
        // the time. Tail waste makes it take disproportionately longer.
        assert!(
            t_few * 4.0 > t_many,
            "tail waste missing: few {t_few} many {t_many}"
        );
    }

    #[test]
    fn better_code_quality_is_faster() {
        let f = features_for(
            (vec![16, 1, 16, 4], vec![16, 1, 16, 4], vec![128, 2, 4]),
            true,
        );
        let gen = gpu_time(&v100(), &f, 0.75).unwrap();
        let lib = gpu_time(&v100(), &f, 0.9).unwrap();
        assert!(lib < gen);
    }
}
