//! Analytical GPU performance model.
//!
//! Estimates kernel runtime from the schedule-derived
//! [`KernelFeatures`] and a
//! [`GpuSpec`]. The model captures the effects the paper's exploration
//! exploits on GPUs (§5.3, Fig. 4b):
//!
//! * **feasibility** — threads per block, shared memory per block;
//! * **occupancy** — resident blocks limited by warps, shared memory and
//!   registers, and the latency-hiding it provides;
//! * **quantization waste** — partial warps, and tail waves when the grid
//!   does not fill the SMs;
//! * **memory hierarchy** — shared-memory staging vs direct global loads,
//!   coalescing of the innermost thread dimension;
//! * **instruction-level parallelism** — register tiles (inner spatial
//!   loops, virtual threads) and unrolling.
//!
//! The absolute numbers are estimates; the purpose is a landscape whose
//! *ordering* of schedules matches real hardware behaviour.

use flextensor_schedule::features::KernelFeatures;

use crate::batch::LANES;
use crate::spec::GpuSpec;

/// Relative multiplier applied to uncached (no shared memory) global
/// traffic: without explicit staging, overlapping tile reads are re-fetched
/// through L1/L2 with imperfect reuse.
pub(crate) const UNCACHED_TRAFFIC_PENALTY: f64 = 2.0;

/// The exact subset of [`KernelFeatures`] the GPU model reads, flattened
/// into one `Copy` row. Both the scalar entry point and the batched
/// [`crate::batch::FeatureBatch`] path score rows through the same
/// [`gpu_time_row`] arithmetic, making them bit-identical by construction.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct GpuRow {
    pub flops: u64,
    pub grid: i64,
    pub block_threads: i64,
    pub thread_tile: i64,
    pub vthreads: i64,
    pub reduce_outer: i64,
    pub shared_bytes_per_block: i64,
    pub thread_reg_bytes: i64,
    pub input_bytes_total: i64,
    pub output_bytes: i64,
    pub data_node_bytes: i64,
    pub unroll: bool,
    pub contiguous_inner: bool,
    pub cache_shared: bool,
}

impl GpuRow {
    // The scalar entry point now routes through the generic body; row
    // construction from features remains as the reference side of the
    // generic-vs-row differential tests.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn of(f: &KernelFeatures) -> GpuRow {
        GpuRow {
            flops: f.flops,
            grid: f.grid,
            block_threads: f.block_threads,
            thread_tile: f.thread_tile,
            vthreads: f.vthreads,
            reduce_outer: f.reduce_outer,
            shared_bytes_per_block: f.shared_bytes_per_block,
            thread_reg_bytes: f.thread_reg_bytes,
            input_bytes_total: f.input_bytes_total,
            output_bytes: f.output_bytes,
            data_node_bytes: f.data_node_bytes,
            unroll: f.unroll,
            contiguous_inner: f.contiguous_inner,
            cache_shared: f.cache_shared,
        }
    }
}

/// Estimates kernel time in seconds; `None` when the configuration is
/// infeasible on this device (too many threads per block, shared-memory or
/// register demand unsatisfiable).
///
/// `code_quality` scales achievable compute throughput: ~0.75 for generated
/// code, higher for hand-tuned vendor kernels.
///
/// Routes through the generic model body at `S = f64`
/// ([`crate::generic::gpu_time_generic`]), which is bit-identical to
/// `gpu_time_row` — the differential tests in `crate::generic` pin the
/// equivalence, and the batched path keeps scoring through the concrete
/// row kernels.
pub fn gpu_time(spec: &GpuSpec, f: &KernelFeatures, code_quality: f64) -> Option<f64> {
    crate::generic::gpu_time_generic::<f64>(spec, &crate::generic::GpuIn::of(f), code_quality)
}

/// The GPU model arithmetic over one feature row — the single
/// implementation shared by the scalar and batched entry points.
pub(crate) fn gpu_time_row(spec: &GpuSpec, f: GpuRow, code_quality: f64) -> Option<f64> {
    gpu_time_row_impl(
        spec,
        f,
        code_quality,
        |w| spec.max_warps_per_sm / w,
        |p| p as f64 / spec.max_warps_per_sm as f64,
    )
}

/// Per-batch memo tables for the GPU model's two divisions over *bounded*
/// integer domains. `blocks_by_warps[w]` stores `max_warps_per_sm / w`
/// for every reachable warps-per-block count (`w ∈ 1..=⌈max_tpb/32⌉`),
/// and `occupancy[p]` stores `p as f64 / max_warps_per_sm as f64` for
/// every reachable resident-warp product (`p ≤ max_warps_per_sm`, since
/// `blocks_per_sm ≤ ⌊max_warps/warps_pb⌋`). Each entry memoizes the exact
/// division result — the quotient itself, never a reciprocal — so a
/// lookup is bit-identical to the scalar path's division by construction.
pub(crate) struct GpuTables {
    blocks_by_warps: Vec<i64>,
    occupancy: Vec<f64>,
}

impl GpuTables {
    pub(crate) fn new(spec: &GpuSpec) -> GpuTables {
        let warps_max = (spec.max_threads_per_block + 31) / 32;
        GpuTables {
            blocks_by_warps: (0..=warps_max)
                .map(|w| if w == 0 { 0 } else { spec.max_warps_per_sm / w })
                .collect(),
            occupancy: (0..=spec.max_warps_per_sm)
                .map(|p| p as f64 / spec.max_warps_per_sm as f64)
                .collect(),
        }
    }
}

/// [`gpu_time_row`] with the bounded-domain divisions answered from `t`
/// instead of the divider — the batched kernels use this once the batch
/// is large enough to amortize building the tables.
pub(crate) fn gpu_time_row_tabled(
    spec: &GpuSpec,
    f: GpuRow,
    code_quality: f64,
    t: &GpuTables,
) -> Option<f64> {
    gpu_time_row_impl(
        spec,
        f,
        code_quality,
        |w| t.blocks_by_warps[w as usize],
        |p| t.occupancy[p as usize],
    )
}

/// One chunk of [`LANES`] GPU feature rows viewed column-wise — borrowed
/// straight out of the [`crate::batch::FeatureBatch`] arena, flag columns
/// as 0/1 words and `flops` as the `u64` value's `i64` bits.
pub(crate) struct GpuCols<'a> {
    pub flops: &'a [i64; LANES],
    pub grid: &'a [i64; LANES],
    pub block_threads: &'a [i64; LANES],
    pub thread_tile: &'a [i64; LANES],
    pub vthreads: &'a [i64; LANES],
    pub reduce_outer: &'a [i64; LANES],
    pub shared_bytes_per_block: &'a [i64; LANES],
    pub thread_reg_bytes: &'a [i64; LANES],
    pub input_bytes_total: &'a [i64; LANES],
    pub output_bytes: &'a [i64; LANES],
    pub data_node_bytes: &'a [i64; LANES],
    pub unroll: &'a [i64; LANES],
    pub contiguous_inner: &'a [i64; LANES],
    pub cache_shared: &'a [i64; LANES],
}

/// Scores a full chunk of [`LANES`] rows in straight-line, select-based
/// code so the floating-point stages auto-vectorize. This is where the
/// batched GPU path earns its speedup: the model is divider-bound, and a
/// packed `f64` division retires [`LANES`]/2–[`LANES`]/4 lanes per
/// instruction where the scalar path issues one `divsd` at a time.
///
/// Bit-identity with [`gpu_time_row`] holds lane by lane: every
/// floating-point operation is the same IEEE-754 operation in the same
/// order as the scalar body (vectorization packs lanes, it never
/// reassociates within one), the bounded-domain divisions are answered
/// from the same exact-quotient [`GpuTables`], and the remaining integer
/// divisions run scalar per lane. Infeasible lanes get safe dummy inputs
/// (`tpb = 1`, `shared_pb = 0`, `blocks_per_sm = 1`) so the straight-line
/// arithmetic cannot fault, and are masked back to `None` at the end —
/// their dummy results are never observable.
pub(crate) fn gpu_time_chunk(
    spec: &GpuSpec,
    c: &GpuCols<'_>,
    code_quality: f64,
    t: &GpuTables,
    out: &mut Vec<Option<f64>>,
) {
    // ---- feasibility + dummy substitution ---------------------------
    let mut valid = [false; LANES];
    let mut tpb = [1i64; LANES];
    let mut shared_pb = [0i64; LANES];
    for j in 0..LANES {
        let raw_tpb = c.block_threads[j];
        let sp = if c.cache_shared[j] != 0 {
            c.shared_bytes_per_block[j]
        } else {
            0
        };
        let ok =
            raw_tpb >= 1 && raw_tpb <= spec.max_threads_per_block && sp <= spec.shared_per_block;
        valid[j] = ok;
        if ok {
            tpb[j] = raw_tpb;
            shared_pb[j] = sp;
        }
    }

    // ---- occupancy (integer stage, scalar per lane) ------------------
    let mut warps_pb = [0i64; LANES];
    for j in 0..LANES {
        warps_pb[j] = (tpb[j] + 31) / 32;
    }
    let mut blocks_per_sm = [1i64; LANES];
    for j in 0..LANES {
        let blocks_by_warps = t.blocks_by_warps[warps_pb[j] as usize];
        let blocks_by_shared = if shared_pb[j] > 0 {
            spec.shared_per_sm / shared_pb[j]
        } else {
            spec.max_blocks_per_sm
        };
        let reg_bytes_pt = c.thread_reg_bytes[j].max(128);
        let blocks_by_regs = spec.regfile_per_sm / (reg_bytes_pt * tpb[j]).max(1);
        let b = blocks_by_warps
            .min(blocks_by_shared)
            .min(blocks_by_regs)
            .min(spec.max_blocks_per_sm);
        let ok = valid[j] && b >= 1;
        valid[j] = ok;
        blocks_per_sm[j] = if ok { b } else { 1 };
    }
    let mut occupancy = [0f64; LANES];
    for j in 0..LANES {
        // Valid lanes index within the table by the occupancy bound; the
        // clamp only ever bites on dummy lanes, which are masked anyway.
        let idx = (blocks_per_sm[j] * warps_pb[j]) as usize;
        occupancy[j] = t.occupancy[idx.min(t.occupancy.len() - 1)];
    }

    // ---- compute efficiency (vectorizable f64 stage) -----------------
    // `eff` is a left-associated product; it is built up in the same
    // order as the scalar body, split across stages only at product
    // boundaries.
    let mut eff_part = [0f64; LANES];
    for j in 0..LANES {
        let warp_eff = tpb[j] as f64 / (warps_pb[j] * 32) as f64;
        let ilp =
            (c.thread_tile[j] * c.vthreads[j]) as f64 * if c.unroll[j] != 0 { 2.0 } else { 1.0 };
        let needed_occupancy = 1.0 / (1.0 + ilp / 4.0) + 0.15;
        let latency_util = (occupancy[j] / needed_occupancy).min(1.0);
        eff_part[j] = code_quality * warp_eff * latency_util;
    }
    // Tail effect (integer stage, scalar per lane).
    let mut tail_eff = [0f64; LANES];
    for j in 0..LANES {
        let slots = spec.sms * blocks_per_sm[j];
        let waves = (c.grid[j] + slots - 1) / slots;
        tail_eff[j] = if waves > 0 {
            c.grid[j] as f64 / (waves * slots) as f64
        } else {
            0.0
        };
    }
    let peak = spec.peak_flops();
    let mut compute_s = [0f64; LANES];
    for j in 0..LANES {
        let reg_bytes_pt = c.thread_reg_bytes[j].max(128);
        let spill_penalty = if reg_bytes_pt > 1024 {
            1024.0 / reg_bytes_pt as f64
        } else {
            1.0
        };
        let eff = eff_part[j] * tail_eff[j].max(1e-3) * spill_penalty;
        compute_s[j] = if c.flops[j] == 0 {
            0.0
        } else {
            (c.flops[j] as u64) as f64 / (peak * eff.max(1e-4))
        };
    }

    // ---- memory time + combine (vectorizable f64 stage) --------------
    let bw_base = spec.mem_bw_gbps * 1e9;
    let mut time = [0f64; LANES];
    for j in 0..LANES {
        let tile_traffic =
            c.grid[j] as f64 * c.reduce_outer[j] as f64 * c.shared_bytes_per_block[j] as f64;
        let cache_shared = c.cache_shared[j] != 0;
        let read_traffic = if cache_shared {
            tile_traffic
        } else {
            tile_traffic * UNCACHED_TRAFFIC_PENALTY
        };
        let read_traffic = read_traffic.max(c.input_bytes_total[j] as f64);
        let write_traffic = c.output_bytes[j] as f64;
        let coalesce = match (cache_shared, c.contiguous_inner[j] != 0) {
            (true, true) => 1.0,
            (true, false) => 0.6,
            (false, true) => 0.8,
            (false, false) => 0.25,
        };
        let bw = bw_base * coalesce;
        let mut mem_s = (read_traffic + write_traffic) / bw;
        mem_s += c.data_node_bytes[j] as f64 / bw_base;
        let kernel_s = compute_s[j].max(mem_s) + 0.2 * compute_s[j].min(mem_s);
        let launches = 1 + if c.data_node_bytes[j] > 0 { 1 } else { 0 };
        time[j] = kernel_s + launches as f64 * spec.launch_overhead_s;
    }

    for j in 0..LANES {
        out.push(if valid[j] { Some(time[j]) } else { None });
    }
}

/// The single model body behind [`gpu_time_row`] and
/// [`gpu_time_row_tabled`]: the two entry points differ only in how the
/// bounded-domain divisions are answered (divider vs. memo table), which
/// cannot change a result.
#[inline(always)]
fn gpu_time_row_impl(
    spec: &GpuSpec,
    f: GpuRow,
    code_quality: f64,
    div_max_warps: impl Fn(i64) -> i64,
    occupancy_of: impl Fn(i64) -> f64,
) -> Option<f64> {
    let tpb = f.block_threads;
    if tpb < 1 || tpb > spec.max_threads_per_block {
        return None;
    }
    let shared_pb = if f.cache_shared {
        f.shared_bytes_per_block
    } else {
        0
    };
    if shared_pb > spec.shared_per_block {
        return None;
    }

    // ---- occupancy --------------------------------------------------
    let warps_pb = (tpb + 31) / 32;
    let blocks_by_warps = div_max_warps(warps_pb);
    let blocks_by_shared = if shared_pb > 0 {
        spec.shared_per_sm / shared_pb
    } else {
        spec.max_blocks_per_sm
    };
    // Register demand: accumulators + staged fragments per thread; clamp to
    // at least 32 B (16 scalar registers of fixed overhead).
    let reg_bytes_pt = f.thread_reg_bytes.max(128);
    let blocks_by_regs = spec.regfile_per_sm / (reg_bytes_pt * tpb).max(1);
    let blocks_per_sm = blocks_by_warps
        .min(blocks_by_shared)
        .min(blocks_by_regs)
        .min(spec.max_blocks_per_sm);
    if blocks_per_sm < 1 {
        return None;
    }
    let occupancy = occupancy_of(blocks_per_sm * warps_pb);

    // ---- compute efficiency ------------------------------------------
    let warp_eff = tpb as f64 / (warps_pb * 32) as f64;
    // Latency hiding: per-thread ILP from register tiles and unrolling
    // reduces the occupancy needed to keep the pipelines busy.
    let ilp = (f.thread_tile * f.vthreads) as f64 * if f.unroll { 2.0 } else { 1.0 };
    let needed_occupancy = 1.0 / (1.0 + ilp / 4.0) + 0.15;
    let latency_util = (occupancy / needed_occupancy).min(1.0);
    // Tail effect: the last wave of blocks underfills the machine.
    let slots = spec.sms * blocks_per_sm;
    let waves = (f.grid + slots - 1) / slots;
    let tail_eff = if waves > 0 {
        f.grid as f64 / (waves * slots) as f64
    } else {
        0.0
    };
    // A huge register tile eventually spills to local memory.
    let spill_penalty = if reg_bytes_pt > 1024 {
        1024.0 / reg_bytes_pt as f64
    } else {
        1.0
    };

    let eff = code_quality * warp_eff * latency_util * tail_eff.max(1e-3) * spill_penalty;
    let compute_s = if f.flops == 0 {
        0.0
    } else {
        f.flops as f64 / (spec.peak_flops() * eff.max(1e-4))
    };

    // ---- memory time -------------------------------------------------
    let tile_traffic = f.grid as f64 * f.reduce_outer as f64 * f.shared_bytes_per_block as f64;
    let read_traffic = if f.cache_shared {
        tile_traffic
    } else {
        tile_traffic * UNCACHED_TRAFFIC_PENALTY
    };
    // Compulsory floor: every input byte crosses the bus at least once.
    let read_traffic = read_traffic.max(f.input_bytes_total as f64);
    let write_traffic = f.output_bytes as f64;
    let coalesce = match (f.cache_shared, f.contiguous_inner) {
        (true, true) => 1.0,
        (true, false) => 0.6,
        (false, true) => 0.8,
        (false, false) => 0.25,
    };
    let bw = spec.mem_bw_gbps * 1e9 * coalesce;
    let mut mem_s = (read_traffic + write_traffic) / bw;
    // Materialized producers add a round trip over the bus.
    mem_s += f.data_node_bytes as f64 / (spec.mem_bw_gbps * 1e9);

    // Compute and memory overlap imperfectly.
    let kernel_s = compute_s.max(mem_s) + 0.2 * compute_s.min(mem_s);
    let launches = 1 + if f.data_node_bytes > 0 { 1 } else { 0 };
    Some(kernel_s + launches as f64 * spec.launch_overhead_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::v100;
    use flextensor_ir::ops;
    use flextensor_schedule::config::{NodeConfig, TargetKind};
    use flextensor_schedule::lower::lower;

    fn features_for(splits: (Vec<i64>, Vec<i64>, Vec<i64>), cache: bool) -> KernelFeatures {
        let g = ops::gemm(1024, 1024, 1024);
        let mut cfg = NodeConfig::naive(g.root_op());
        cfg.spatial_splits = vec![splits.0, splits.1];
        cfg.reduce_splits = vec![splits.2];
        cfg.cache_shared = cache;
        cfg.unroll = true;
        cfg.vectorize = true;
        lower(&g, &cfg, TargetKind::Gpu).unwrap().features
    }

    #[test]
    fn reasonable_tuned_gemm_hits_a_good_fraction_of_peak() {
        // 64 blocks/dim, 16x16 threads, 4x4 register tile, k split 128x2x4.
        let f = features_for(
            (vec![16, 1, 16, 4], vec![16, 1, 16, 4], vec![128, 2, 4]),
            true,
        );
        let t = gpu_time(&v100(), &f, 0.75).unwrap();
        let gflops = f.flops as f64 / t / 1e9;
        assert!(gflops > 2000.0, "tuned GEMM too slow: {gflops:.0} GFLOPS");
        assert!(gflops < 16000.0, "exceeds peak: {gflops:.0} GFLOPS");
    }

    #[test]
    fn naive_schedule_is_much_slower_than_tuned() {
        let g = ops::gemm(1024, 1024, 1024);
        let naive = lower(&g, &NodeConfig::naive(g.root_op()), TargetKind::Gpu)
            .unwrap()
            .features;
        let tuned = features_for(
            (vec![16, 1, 16, 4], vec![16, 1, 16, 4], vec![128, 2, 4]),
            true,
        );
        let tn = gpu_time(&v100(), &naive, 0.75);
        let tt = gpu_time(&v100(), &tuned, 0.75).unwrap();
        // Naive = 1 thread per block over one giant loop: either
        // infeasible or dramatically slower.
        match tn {
            None => {}
            Some(tn) => assert!(tn > 10.0 * tt, "naive {tn} vs tuned {tt}"),
        }
    }

    #[test]
    fn too_many_threads_is_infeasible() {
        let f = features_for(
            (vec![1, 1, 64, 16], vec![16, 1, 64, 1], vec![1024, 1, 1]),
            false,
        );
        assert_eq!(f.block_threads, 64 * 64);
        assert!(gpu_time(&v100(), &f, 0.75).is_none());
    }

    #[test]
    fn oversized_shared_memory_is_infeasible() {
        // Block tile 256x256 with k-step 64: A tile = 256*64, B = 64*256
        // floats = 128 KiB > 96 KiB.
        let f = features_for((vec![4, 8, 32, 1], vec![4, 8, 32, 1], vec![16, 8, 8]), true);
        assert!(f.shared_bytes_per_block > 96 * 1024);
        assert!(gpu_time(&v100(), &f, 0.75).is_none());
    }

    #[test]
    fn caching_helps_compute_bound_gemm() {
        let cached = features_for(
            (vec![16, 1, 16, 4], vec![16, 1, 16, 4], vec![128, 2, 4]),
            true,
        );
        let uncached = features_for(
            (vec![16, 1, 16, 4], vec![16, 1, 16, 4], vec![128, 2, 4]),
            false,
        );
        let tc = gpu_time(&v100(), &cached, 0.75).unwrap();
        let tu = gpu_time(&v100(), &uncached, 0.75).unwrap();
        assert!(tc <= tu, "cached {tc} uncached {tu}");
    }

    #[test]
    fn tiny_grid_suffers_tail_waste() {
        // Identical kernels except grid size: 16 blocks leave most of the
        // 80 SMs idle, 2560 fill them.
        let mut few = features_for(
            (vec![16, 1, 16, 4], vec![16, 1, 16, 4], vec![256, 2, 2]),
            true,
        );
        let many = few.clone();
        few.grid = 16;
        // Same total work: scale flops with the grid.
        few.flops = many.flops / (many.grid / 16) as u64;
        let t_few = gpu_time(&v100(), &few, 0.75).unwrap();
        let t_many = gpu_time(&v100(), &many, 0.75).unwrap();
        // few does 1/16 the work; with perfect scaling it would take 1/16
        // the time. Tail waste makes it take disproportionately longer.
        assert!(
            t_few * 4.0 > t_many,
            "tail waste missing: few {t_few} many {t_many}"
        );
    }

    #[test]
    fn better_code_quality_is_faster() {
        let f = features_for(
            (vec![16, 1, 16, 4], vec![16, 1, 16, 4], vec![128, 2, 4]),
            true,
        );
        let gen = gpu_time(&v100(), &f, 0.75).unwrap();
        let lib = gpu_time(&v100(), &f, 0.9).unwrap();
        assert!(lib < gen);
    }
}
