//! Device specifications for the platforms of the paper's evaluation
//! (§6.1): NVIDIA V100, P100 and Titan X (Pascal) GPUs, the Intel Xeon
//! E5-2699 v4 CPU, and the Xilinx VU9P FPGA.
//!
//! These numbers parameterize the analytical performance models; they are
//! public datasheet values, not measurements.

use flextensor_schedule::config::TargetKind;

/// A CUDA-style GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub sms: i64,
    /// FP32 cores per SM.
    pub cores_per_sm: i64,
    /// Boost clock in GHz.
    pub clock_ghz: f64,
    /// Device-memory bandwidth in GB/s.
    pub mem_bw_gbps: f64,
    /// Shared memory per SM in bytes.
    pub shared_per_sm: i64,
    /// Maximum shared memory usable by one block, bytes.
    pub shared_per_block: i64,
    /// Register file per SM in bytes.
    pub regfile_per_sm: i64,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: i64,
    /// Maximum threads per block.
    pub max_threads_per_block: i64,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: i64,
    /// Kernel launch overhead in seconds.
    pub launch_overhead_s: f64,
}

impl GpuSpec {
    /// Peak FP32 throughput in FLOP/s (FMA counted as 2).
    pub fn peak_flops(&self) -> f64 {
        self.sms as f64 * self.cores_per_sm as f64 * 2.0 * self.clock_ghz * 1e9
    }
}

/// NVIDIA Tesla V100 (16 GB), the paper's primary GPU.
pub fn v100() -> GpuSpec {
    GpuSpec {
        name: "V100",
        sms: 80,
        cores_per_sm: 64,
        clock_ghz: 1.53,
        mem_bw_gbps: 900.0,
        shared_per_sm: 96 * 1024,
        shared_per_block: 96 * 1024,
        regfile_per_sm: 256 * 1024,
        max_warps_per_sm: 64,
        max_threads_per_block: 1024,
        max_blocks_per_sm: 32,
        launch_overhead_s: 5e-6,
    }
}

/// NVIDIA Tesla P100 (16 GB).
pub fn p100() -> GpuSpec {
    GpuSpec {
        name: "P100",
        sms: 56,
        cores_per_sm: 64,
        clock_ghz: 1.48,
        mem_bw_gbps: 732.0,
        shared_per_sm: 64 * 1024,
        shared_per_block: 48 * 1024,
        regfile_per_sm: 256 * 1024,
        max_warps_per_sm: 64,
        max_threads_per_block: 1024,
        max_blocks_per_sm: 32,
        launch_overhead_s: 5e-6,
    }
}

/// NVIDIA Titan X (Pascal).
pub fn titan_x() -> GpuSpec {
    GpuSpec {
        name: "TitanX",
        sms: 28,
        cores_per_sm: 128,
        clock_ghz: 1.53,
        mem_bw_gbps: 480.0,
        shared_per_sm: 96 * 1024,
        shared_per_block: 48 * 1024,
        regfile_per_sm: 256 * 1024,
        max_warps_per_sm: 64,
        max_threads_per_block: 1024,
        max_blocks_per_sm: 32,
        launch_overhead_s: 5e-6,
    }
}

/// A multicore CPU.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Physical cores.
    pub cores: i64,
    /// Sustained all-core clock in GHz.
    pub clock_ghz: f64,
    /// FP32 SIMD lanes (8 for AVX2).
    pub vector_width: i64,
    /// FMA issue ports per core.
    pub fma_ports: i64,
    /// L1 data cache per core, bytes.
    pub l1_bytes: i64,
    /// L2 cache per core, bytes.
    pub l2_bytes: i64,
    /// Shared L3 cache, bytes.
    pub l3_bytes: i64,
    /// Memory bandwidth in GB/s.
    pub mem_bw_gbps: f64,
    /// Parallel-region spawn overhead in seconds.
    pub spawn_overhead_s: f64,
}

impl CpuSpec {
    /// Peak FP32 throughput in FLOP/s.
    pub fn peak_flops(&self) -> f64 {
        self.cores as f64
            * self.clock_ghz
            * 1e9
            * self.vector_width as f64
            * self.fma_ports as f64
            * 2.0
    }
}

/// Intel Xeon E5-2699 v4 (22 cores, AVX2), the paper's CPU.
pub fn xeon_e5_2699_v4() -> CpuSpec {
    CpuSpec {
        name: "Xeon E5-2699 v4",
        cores: 22,
        clock_ghz: 2.2,
        vector_width: 8,
        fma_ports: 2,
        l1_bytes: 32 * 1024,
        l2_bytes: 256 * 1024,
        l3_bytes: 55 * 1024 * 1024,
        mem_bw_gbps: 76.8,
        spawn_overhead_s: 4e-6,
    }
}

/// An FPGA running the three-stage read/compute/write pipeline of §5.2.
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaSpec {
    /// Marketing name.
    pub name: &'static str,
    /// DSP slices available.
    pub dsps: i64,
    /// DSP slices consumed per FP32 multiply-accumulate PE.
    pub dsps_per_mac: i64,
    /// Total BRAM capacity in bytes.
    pub bram_bytes: i64,
    /// Achievable kernel clock in GHz.
    pub clock_ghz: f64,
    /// Off-chip DDR bandwidth in GB/s.
    pub ddr_bw_gbps: f64,
    /// Per-BRAM-bank port bandwidth in GB/s (partitioning multiplies it).
    pub bank_bw_gbps: f64,
}

impl FpgaSpec {
    /// Maximum instantiable FP32 MAC PEs.
    pub fn max_pe(&self) -> i64 {
        self.dsps / self.dsps_per_mac
    }

    /// Peak FP32 throughput in FLOP/s at full PE utilization.
    pub fn peak_flops(&self) -> f64 {
        self.max_pe() as f64 * 2.0 * self.clock_ghz * 1e9
    }
}

/// Xilinx Virtex UltraScale+ VU9P, the paper's FPGA.
pub fn vu9p() -> FpgaSpec {
    FpgaSpec {
        name: "VU9P",
        dsps: 6840,
        dsps_per_mac: 5,
        bram_bytes: 9 * 1024 * 1024,
        clock_ghz: 0.25,
        ddr_bw_gbps: 19.2,
        bank_bw_gbps: 2.0,
    }
}

/// A target device: spec + target kind, the unit the evaluator dispatches
/// on.
#[derive(Debug, Clone, PartialEq)]
pub enum Device {
    /// A GPU device.
    Gpu(GpuSpec),
    /// A CPU device.
    Cpu(CpuSpec),
    /// An FPGA device.
    Fpga(FpgaSpec),
}

impl Device {
    /// The schedule target kind for this device.
    pub fn target(&self) -> TargetKind {
        match self {
            Device::Gpu(_) => TargetKind::Gpu,
            Device::Cpu(_) => TargetKind::Cpu,
            Device::Fpga(_) => TargetKind::Fpga,
        }
    }

    /// Device name.
    pub fn name(&self) -> &'static str {
        match self {
            Device::Gpu(s) => s.name,
            Device::Cpu(s) => s.name,
            Device::Fpga(s) => s.name,
        }
    }

    /// Peak FP32 FLOP/s.
    pub fn peak_flops(&self) -> f64 {
        match self {
            Device::Gpu(s) => s.peak_flops(),
            Device::Cpu(s) => s.peak_flops(),
            Device::Fpga(s) => s.peak_flops(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_peak_is_about_15_7_tflops() {
        let p = v100().peak_flops();
        assert!((15.0e12..16.5e12).contains(&p), "{p}");
    }

    #[test]
    fn xeon_peak_is_about_1_5_tflops() {
        let p = xeon_e5_2699_v4().peak_flops();
        assert!((1.2e12..1.8e12).contains(&p), "{p}");
    }

    #[test]
    fn vu9p_pe_budget() {
        let f = vu9p();
        assert_eq!(f.max_pe(), 1368);
        // ~684 GFLOPS peak at 250 MHz.
        assert!((0.5e12..0.8e12).contains(&f.peak_flops()));
    }

    #[test]
    fn device_dispatch() {
        assert_eq!(Device::Gpu(v100()).target(), TargetKind::Gpu);
        assert_eq!(Device::Cpu(xeon_e5_2699_v4()).name(), "Xeon E5-2699 v4");
        assert!(Device::Fpga(vu9p()).peak_flops() > 0.0);
    }

    #[test]
    fn gpu_ordering_by_bandwidth() {
        assert!(v100().mem_bw_gbps > p100().mem_bw_gbps);
        assert!(p100().mem_bw_gbps > titan_x().mem_bw_gbps);
    }
}
