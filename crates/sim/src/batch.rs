//! Batched cost-model scoring over a structure-of-arrays feature matrix.
//!
//! The exploration hot loop scores hundreds of candidates per batch; going
//! through [`crate::model::Evaluator::time_features`] one candidate at a
//! time pays the device dispatch, the `Option` plumbing, and a scattered
//! walk over each ~200-byte [`KernelFeatures`] struct per call. This module
//! flips the layout: a [`FeatureBatch`] holds one column per feature the
//! cost models actually read, and the per-target `*_time_batch` kernels
//! sweep those columns in fixed-width chunks of [`LANES`] rows (gather a
//! chunk of rows, then score it), amortizing dispatch and bounds checks
//! across the batch. An explicit tail loop handles `len % LANES != 0`.
//!
//! # Determinism contract
//!
//! The batched path is **bit-identical** to the scalar path by
//! construction: both funnel into the same per-row kernels
//! (`cpu_time_row` / `gpu_time_row` / `fpga_time_row`), so
//! `time_features_batch(batch)[i] == time_features(&features[i])` exactly,
//! for every batch size including ragged tails and the empty batch. The
//! scalar path stays as the reference; `tests/batch_differential.rs` and
//! the property suite enforce the equivalence bit-for-bit.

use flextensor_schedule::features::KernelFeatures;

use crate::cpu::{cpu_time_row, CpuRow};
use crate::fpga::{fpga_time_row, FpgaRow};
use crate::gpu::{gpu_time_chunk, gpu_time_row, gpu_time_row_tabled, GpuCols, GpuRow, GpuTables};
use crate::spec::{CpuSpec, FpgaSpec, GpuSpec};

/// Fixed chunk width of the batched scoring loops.
pub const LANES: usize = 8;

/// Batches at or above this many rows build the per-batch division memo
/// tables (e.g. [`GpuTables`]) before scoring; below it, table setup
/// (~a hundred divisions) would cost more than it saves. The threshold
/// only selects between two bit-identical ways of computing the same
/// quotients, so its exact value never changes a result.
const TABLE_MIN_ROWS: usize = 64;

/// Chunked structure-of-arrays feature matrix: one reusable, growable
/// scratch holding the union of the columns the CPU/GPU/FPGA cost models
/// read.
///
/// Rows are appended with [`FeatureBatch::push`] (one row per
/// [`KernelFeatures`]) and the whole batch is scored in one call through
/// [`crate::model::Evaluator::time_features_batch`]. The owner (e.g. the
/// evaluation pool) keeps the batch alive across calls and [`clear`]s it
/// between uses, so steady-state batches allocate nothing.
///
/// # Layout
///
/// All columns live in **one arena**: rows are grouped into chunks of
/// [`LANES`], and each chunk stores its `COLS` (26) columns back to back as
/// `LANES`-wide lane arrays —
/// `data[chunk * COLS * LANES + col * LANES + lane]`. One allocation, one
/// forward stream: scoring a chunk touches one contiguous block, and the
/// column addresses can never alias each other in the cache the way
/// separately allocated per-column vectors can (same-sized heap blocks
/// tend to land congruent modulo the page size, folding every column onto
/// the same few L1 sets).
///
/// Columns (fixed order, see the `C_*` indices): `flops` (stored as the
/// `u64` value's `i64` bits); `grid`, `parallel_chunks`, `vthreads`,
/// `block_threads`, `thread_tile`, `reduce_outer`, `vector_len`,
/// `shared_bytes_per_block`, `thread_reg_bytes`, `l1_tile_bytes`,
/// `l2_tile_bytes`, `input_bytes_total`, `output_bytes`,
/// `data_node_bytes`; the flags `unroll`, `contiguous_inner`,
/// `cache_shared`, `fpga_present` stored as 0/1; and the seven FPGA
/// pipeline columns (`fpga_pe` … `fpga_pipeline`, zero-filled when
/// `fpga_present` is 0).
///
/// [`clear`]: FeatureBatch::clear
#[derive(Debug, Default, Clone)]
pub struct FeatureBatch {
    /// The chunked column arena: `ceil(len / LANES) * COLS * LANES` words.
    data: Vec<i64>,
    /// Number of pushed rows.
    len: usize,
}

/// Number of feature columns in the arena.
const COLS: usize = 26;
/// Arena words per chunk of [`LANES`] rows.
const CHUNK_WORDS: usize = COLS * LANES;

// Column indices into a chunk block.
const C_FLOPS: usize = 0;
const C_GRID: usize = 1;
const C_PARALLEL_CHUNKS: usize = 2;
const C_VTHREADS: usize = 3;
const C_BLOCK_THREADS: usize = 4;
const C_THREAD_TILE: usize = 5;
const C_REDUCE_OUTER: usize = 6;
const C_VECTOR_LEN: usize = 7;
const C_SHARED_BYTES_PER_BLOCK: usize = 8;
const C_THREAD_REG_BYTES: usize = 9;
const C_L1_TILE_BYTES: usize = 10;
const C_L2_TILE_BYTES: usize = 11;
const C_INPUT_BYTES_TOTAL: usize = 12;
const C_OUTPUT_BYTES: usize = 13;
const C_DATA_NODE_BYTES: usize = 14;
const C_UNROLL: usize = 15;
const C_CONTIGUOUS_INNER: usize = 16;
const C_CACHE_SHARED: usize = 17;
const C_FPGA_PRESENT: usize = 18;
const C_FPGA_PE: usize = 19;
const C_FPGA_ROUNDS: usize = 20;
const C_FPGA_BUFFER_BYTES: usize = 21;
const C_FPGA_STREAM_BYTES: usize = 22;
const C_FPGA_WRITE_BYTES: usize = 23;
const C_FPGA_PARTITION: usize = 24;
const C_FPGA_PIPELINE: usize = 25;

impl FeatureBatch {
    /// Creates an empty batch.
    pub fn new() -> FeatureBatch {
        FeatureBatch::default()
    }

    /// Number of rows currently in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all rows, keeping the arena allocation for reuse.
    pub fn clear(&mut self) {
        self.data.clear();
        self.len = 0;
    }

    /// Appends one row, transposing `f` into the chunk's column arrays.
    pub fn push(&mut self, f: &KernelFeatures) {
        let lane = self.len % LANES;
        if lane == 0 {
            self.data.resize(self.data.len() + CHUNK_WORDS, 0);
        }
        let start = self.data.len() - CHUNK_WORDS;
        let block: &mut [i64; CHUNK_WORDS] = (&mut self.data[start..])
            .try_into()
            .expect("arena ends with one full chunk block");
        let mut set = |col: usize, v: i64| block[col * LANES + lane] = v;
        set(C_FLOPS, f.flops as i64);
        set(C_GRID, f.grid);
        set(C_PARALLEL_CHUNKS, f.parallel_chunks);
        set(C_VTHREADS, f.vthreads);
        set(C_BLOCK_THREADS, f.block_threads);
        set(C_THREAD_TILE, f.thread_tile);
        set(C_REDUCE_OUTER, f.reduce_outer);
        set(C_VECTOR_LEN, f.vector_len);
        set(C_SHARED_BYTES_PER_BLOCK, f.shared_bytes_per_block);
        set(C_THREAD_REG_BYTES, f.thread_reg_bytes);
        set(C_L1_TILE_BYTES, f.l1_tile_bytes);
        set(C_L2_TILE_BYTES, f.l2_tile_bytes);
        set(C_INPUT_BYTES_TOTAL, f.input_bytes_total);
        set(C_OUTPUT_BYTES, f.output_bytes);
        set(C_DATA_NODE_BYTES, f.data_node_bytes);
        set(C_UNROLL, f.unroll as i64);
        set(C_CONTIGUOUS_INNER, f.contiguous_inner as i64);
        set(C_CACHE_SHARED, f.cache_shared as i64);
        match f.fpga.as_ref() {
            Some(fp) => {
                set(C_FPGA_PRESENT, 1);
                set(C_FPGA_PE, fp.pe);
                set(C_FPGA_ROUNDS, fp.rounds);
                set(C_FPGA_BUFFER_BYTES, fp.buffer_bytes);
                set(C_FPGA_STREAM_BYTES, fp.stream_bytes);
                set(C_FPGA_WRITE_BYTES, fp.write_bytes);
                set(C_FPGA_PARTITION, fp.partition);
                set(C_FPGA_PIPELINE, fp.pipeline);
            }
            None => {
                // The chunk block was zero-filled on resize, but a cleared
                // lane may be overwritten by a later push, so store the
                // zeros explicitly.
                for col in C_FPGA_PRESENT..=C_FPGA_PIPELINE {
                    set(col, 0);
                }
            }
        }
        self.len += 1;
    }

    /// Borrows chunk `c`'s column block: one bounds check per chunk, after
    /// which every column and lane read compiles to an unchecked load.
    fn block(&self, c: usize) -> &[i64; CHUNK_WORDS] {
        self.data[c * CHUNK_WORDS..(c + 1) * CHUNK_WORDS]
            .try_into()
            .expect("chunk block is in the arena")
    }

    /// The `LANES`-wide lane array of column `col` within a chunk block.
    fn col(block: &[i64; CHUNK_WORDS], col: usize) -> &[i64; LANES] {
        block[col * LANES..(col + 1) * LANES]
            .try_into()
            .expect("column is within the block")
    }

    /// One scalar at (row `i`, column `col`).
    fn at(&self, i: usize, col: usize) -> i64 {
        self.data[(i / LANES) * CHUNK_WORDS + col * LANES + (i % LANES)]
    }

    /// Feeds the full chunk `base .. base + LANES` row by row into `sink`.
    /// The chunk's bounds check is hoisted to one block borrow, so the
    /// per-lane reads compile to unchecked loads, and each row view is
    /// built directly at its (inlined) use site instead of round-tripping
    /// through a stack array.
    fn cpu_chunk_each(&self, base: usize, mut sink: impl FnMut(CpuRow)) {
        let b = self.block(base / LANES);
        let flops = Self::col(b, C_FLOPS);
        let grid = Self::col(b, C_GRID);
        let parallel_chunks = Self::col(b, C_PARALLEL_CHUNKS);
        let thread_tile = Self::col(b, C_THREAD_TILE);
        let reduce_outer = Self::col(b, C_REDUCE_OUTER);
        let vector_len = Self::col(b, C_VECTOR_LEN);
        let shared_bytes_per_block = Self::col(b, C_SHARED_BYTES_PER_BLOCK);
        let l1_tile_bytes = Self::col(b, C_L1_TILE_BYTES);
        let l2_tile_bytes = Self::col(b, C_L2_TILE_BYTES);
        let input_bytes_total = Self::col(b, C_INPUT_BYTES_TOTAL);
        let output_bytes = Self::col(b, C_OUTPUT_BYTES);
        let data_node_bytes = Self::col(b, C_DATA_NODE_BYTES);
        let unroll = Self::col(b, C_UNROLL);
        let contiguous_inner = Self::col(b, C_CONTIGUOUS_INNER);
        for j in 0..LANES {
            sink(CpuRow {
                flops: flops[j] as u64,
                grid: grid[j],
                parallel_chunks: parallel_chunks[j],
                thread_tile: thread_tile[j],
                reduce_outer: reduce_outer[j],
                vector_len: vector_len[j],
                shared_bytes_per_block: shared_bytes_per_block[j],
                l1_tile_bytes: l1_tile_bytes[j],
                l2_tile_bytes: l2_tile_bytes[j],
                input_bytes_total: input_bytes_total[j],
                output_bytes: output_bytes[j],
                data_node_bytes: data_node_bytes[j],
                unroll: unroll[j] != 0,
                contiguous_inner: contiguous_inner[j] != 0,
            });
        }
    }

    /// Feeds the full chunk `base .. base + LANES` of GPU row views into
    /// `sink`; bounds checks hoisted as in [`FeatureBatch::cpu_chunk_each`].
    fn gpu_chunk_each(&self, base: usize, mut sink: impl FnMut(GpuRow)) {
        let b = self.block(base / LANES);
        let flops = Self::col(b, C_FLOPS);
        let grid = Self::col(b, C_GRID);
        let block_threads = Self::col(b, C_BLOCK_THREADS);
        let thread_tile = Self::col(b, C_THREAD_TILE);
        let vthreads = Self::col(b, C_VTHREADS);
        let reduce_outer = Self::col(b, C_REDUCE_OUTER);
        let shared_bytes_per_block = Self::col(b, C_SHARED_BYTES_PER_BLOCK);
        let thread_reg_bytes = Self::col(b, C_THREAD_REG_BYTES);
        let input_bytes_total = Self::col(b, C_INPUT_BYTES_TOTAL);
        let output_bytes = Self::col(b, C_OUTPUT_BYTES);
        let data_node_bytes = Self::col(b, C_DATA_NODE_BYTES);
        let unroll = Self::col(b, C_UNROLL);
        let contiguous_inner = Self::col(b, C_CONTIGUOUS_INNER);
        let cache_shared = Self::col(b, C_CACHE_SHARED);
        for j in 0..LANES {
            sink(GpuRow {
                flops: flops[j] as u64,
                grid: grid[j],
                block_threads: block_threads[j],
                thread_tile: thread_tile[j],
                vthreads: vthreads[j],
                reduce_outer: reduce_outer[j],
                shared_bytes_per_block: shared_bytes_per_block[j],
                thread_reg_bytes: thread_reg_bytes[j],
                input_bytes_total: input_bytes_total[j],
                output_bytes: output_bytes[j],
                data_node_bytes: data_node_bytes[j],
                unroll: unroll[j] != 0,
                contiguous_inner: contiguous_inner[j] != 0,
                cache_shared: cache_shared[j] != 0,
            });
        }
    }

    /// Borrows chunk `base / LANES`'s GPU-model columns straight out of
    /// the arena for the straight-line chunk kernel
    /// ([`crate::gpu::gpu_time_chunk`]) — no gather, no copy.
    fn gpu_cols(&self, base: usize) -> GpuCols<'_> {
        let b = self.block(base / LANES);
        GpuCols {
            flops: Self::col(b, C_FLOPS),
            grid: Self::col(b, C_GRID),
            block_threads: Self::col(b, C_BLOCK_THREADS),
            thread_tile: Self::col(b, C_THREAD_TILE),
            vthreads: Self::col(b, C_VTHREADS),
            reduce_outer: Self::col(b, C_REDUCE_OUTER),
            shared_bytes_per_block: Self::col(b, C_SHARED_BYTES_PER_BLOCK),
            thread_reg_bytes: Self::col(b, C_THREAD_REG_BYTES),
            input_bytes_total: Self::col(b, C_INPUT_BYTES_TOTAL),
            output_bytes: Self::col(b, C_OUTPUT_BYTES),
            data_node_bytes: Self::col(b, C_DATA_NODE_BYTES),
            unroll: Self::col(b, C_UNROLL),
            contiguous_inner: Self::col(b, C_CONTIGUOUS_INNER),
            cache_shared: Self::col(b, C_CACHE_SHARED),
        }
    }

    /// Feeds the full chunk `base .. base + LANES` of FPGA row views into
    /// `sink` (`None` lanes for rows without an FPGA block); bounds checks
    /// hoisted as in [`FeatureBatch::cpu_chunk_each`].
    fn fpga_chunk_each(&self, base: usize, mut sink: impl FnMut(Option<FpgaRow>)) {
        let b = self.block(base / LANES);
        let fpga_present = Self::col(b, C_FPGA_PRESENT);
        let flops = Self::col(b, C_FLOPS);
        let pe = Self::col(b, C_FPGA_PE);
        let rounds = Self::col(b, C_FPGA_ROUNDS);
        let buffer_bytes = Self::col(b, C_FPGA_BUFFER_BYTES);
        let stream_bytes = Self::col(b, C_FPGA_STREAM_BYTES);
        let write_bytes = Self::col(b, C_FPGA_WRITE_BYTES);
        let partition = Self::col(b, C_FPGA_PARTITION);
        let pipeline = Self::col(b, C_FPGA_PIPELINE);
        for j in 0..LANES {
            sink((fpga_present[j] != 0).then(|| FpgaRow {
                flops: flops[j] as u64,
                pe: pe[j],
                rounds: rounds[j],
                buffer_bytes: buffer_bytes[j],
                stream_bytes: stream_bytes[j],
                write_bytes: write_bytes[j],
                partition: partition[j],
                pipeline: pipeline[j],
            }));
        }
    }

    /// Gathers row `i` into the CPU model's row view.
    fn cpu_row(&self, i: usize) -> CpuRow {
        CpuRow {
            flops: self.at(i, C_FLOPS) as u64,
            grid: self.at(i, C_GRID),
            parallel_chunks: self.at(i, C_PARALLEL_CHUNKS),
            thread_tile: self.at(i, C_THREAD_TILE),
            reduce_outer: self.at(i, C_REDUCE_OUTER),
            vector_len: self.at(i, C_VECTOR_LEN),
            shared_bytes_per_block: self.at(i, C_SHARED_BYTES_PER_BLOCK),
            l1_tile_bytes: self.at(i, C_L1_TILE_BYTES),
            l2_tile_bytes: self.at(i, C_L2_TILE_BYTES),
            input_bytes_total: self.at(i, C_INPUT_BYTES_TOTAL),
            output_bytes: self.at(i, C_OUTPUT_BYTES),
            data_node_bytes: self.at(i, C_DATA_NODE_BYTES),
            unroll: self.at(i, C_UNROLL) != 0,
            contiguous_inner: self.at(i, C_CONTIGUOUS_INNER) != 0,
        }
    }

    /// Gathers row `i` into the GPU model's row view.
    fn gpu_row(&self, i: usize) -> GpuRow {
        GpuRow {
            flops: self.at(i, C_FLOPS) as u64,
            grid: self.at(i, C_GRID),
            block_threads: self.at(i, C_BLOCK_THREADS),
            thread_tile: self.at(i, C_THREAD_TILE),
            vthreads: self.at(i, C_VTHREADS),
            reduce_outer: self.at(i, C_REDUCE_OUTER),
            shared_bytes_per_block: self.at(i, C_SHARED_BYTES_PER_BLOCK),
            thread_reg_bytes: self.at(i, C_THREAD_REG_BYTES),
            input_bytes_total: self.at(i, C_INPUT_BYTES_TOTAL),
            output_bytes: self.at(i, C_OUTPUT_BYTES),
            data_node_bytes: self.at(i, C_DATA_NODE_BYTES),
            unroll: self.at(i, C_UNROLL) != 0,
            contiguous_inner: self.at(i, C_CONTIGUOUS_INNER) != 0,
            cache_shared: self.at(i, C_CACHE_SHARED) != 0,
        }
    }

    /// Gathers row `i` into the FPGA model's row view; `None` when the row
    /// was pushed from features without an FPGA block.
    fn fpga_row(&self, i: usize) -> Option<FpgaRow> {
        if self.at(i, C_FPGA_PRESENT) == 0 {
            return None;
        }
        Some(FpgaRow {
            flops: self.at(i, C_FLOPS) as u64,
            pe: self.at(i, C_FPGA_PE),
            rounds: self.at(i, C_FPGA_ROUNDS),
            buffer_bytes: self.at(i, C_FPGA_BUFFER_BYTES),
            stream_bytes: self.at(i, C_FPGA_STREAM_BYTES),
            write_bytes: self.at(i, C_FPGA_WRITE_BYTES),
            partition: self.at(i, C_FPGA_PARTITION),
            pipeline: self.at(i, C_FPGA_PIPELINE),
        })
    }
}

/// Scores the whole batch with the CPU model, appending one result per row
/// to `out` (cleared first). Bit-identical to mapping
/// [`crate::cpu::cpu_time`] over the rows.
pub fn cpu_time_batch(
    spec: &CpuSpec,
    batch: &FeatureBatch,
    code_quality: f64,
    out: &mut Vec<Option<f64>>,
) {
    let n = batch.len();
    out.clear();
    out.reserve(n);
    let mut base = 0;
    // Full chunks: gather LANES rows from the columns (one hoisted bounds
    // check per column), then score them.
    while base + LANES <= n {
        batch.cpu_chunk_each(base, |row| {
            out.push(Some(cpu_time_row(spec, row, code_quality)));
        });
        base += LANES;
    }
    // Ragged tail, in row order.
    for i in base..n {
        out.push(Some(cpu_time_row(spec, batch.cpu_row(i), code_quality)));
    }
}

/// Scores the whole batch with the GPU model, appending one result per row
/// to `out` (cleared first; `None` marks infeasible rows). Bit-identical
/// to mapping [`crate::gpu::gpu_time`] over the rows.
pub fn gpu_time_batch(
    spec: &GpuSpec,
    batch: &FeatureBatch,
    code_quality: f64,
    out: &mut Vec<Option<f64>>,
) {
    let n = batch.len();
    out.clear();
    out.reserve(n);
    let mut base = 0;
    if n >= TABLE_MIN_ROWS {
        // Large batch: memoize the model's bounded-domain divisions once
        // (see [`GpuTables`]) and answer them by lookup per row —
        // bit-identical results, but the batch skips the divider for the
        // occupancy arithmetic.
        let tables = GpuTables::new(spec);
        while base + LANES <= n {
            gpu_time_chunk(spec, &batch.gpu_cols(base), code_quality, &tables, out);
            base += LANES;
        }
        for i in base..n {
            out.push(gpu_time_row_tabled(
                spec,
                batch.gpu_row(i),
                code_quality,
                &tables,
            ));
        }
        return;
    }
    while base + LANES <= n {
        batch.gpu_chunk_each(base, |row| {
            out.push(gpu_time_row(spec, row, code_quality));
        });
        base += LANES;
    }
    for i in base..n {
        out.push(gpu_time_row(spec, batch.gpu_row(i), code_quality));
    }
}

/// Scores the whole batch with the FPGA model, appending one result per
/// row to `out` (cleared first; `None` marks rows that do not fit or carry
/// no FPGA block). Bit-identical to mapping [`crate::fpga::fpga_time`]
/// over the rows.
pub fn fpga_time_batch(
    spec: &FpgaSpec,
    batch: &FeatureBatch,
    code_quality: f64,
    out: &mut Vec<Option<f64>>,
) {
    let n = batch.len();
    out.clear();
    out.reserve(n);
    let mut base = 0;
    while base + LANES <= n {
        batch.fpga_chunk_each(base, |row| {
            out.push(row.and_then(|fp| fpga_time_row(spec, fp, code_quality)));
        });
        base += LANES;
    }
    for i in base..n {
        out.push(
            batch
                .fpga_row(i)
                .and_then(|fp| fpga_time_row(spec, fp, code_quality)),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Evaluator;
    use crate::spec::{v100, vu9p, xeon_e5_2699_v4, Device};
    use flextensor_ir::ops;
    use flextensor_schedule::config::NodeConfig;
    use flextensor_schedule::lower::lower;

    fn sample_features(dev: &Device, count: usize) -> Vec<KernelFeatures> {
        let g = ops::gemm(256, 256, 256);
        let splits: [(Vec<i64>, Vec<i64>, Vec<i64>); 4] = [
            (vec![8, 1, 16, 2], vec![8, 1, 16, 2], vec![64, 2, 2]),
            (vec![16, 1, 16, 1], vec![16, 1, 16, 1], vec![128, 2, 1]),
            (vec![4, 2, 8, 4], vec![4, 2, 8, 4], vec![32, 4, 2]),
            (vec![1, 1, 256, 1], vec![256, 1, 1, 1], vec![256, 1, 1]),
        ];
        (0..count)
            .map(|i| {
                let (s0, s1, r) = splits[i % splits.len()].clone();
                let mut c = NodeConfig::naive(g.root_op());
                c.spatial_splits = vec![s0, s1];
                c.reduce_splits = vec![r];
                c.cache_shared = i % 2 == 0;
                c.unroll = i % 3 == 0;
                lower(&g, &c, dev.target()).unwrap().features
            })
            .collect()
    }

    #[test]
    fn batch_matches_scalar_on_all_devices_and_ragged_sizes() {
        for dev in [
            Device::Gpu(v100()),
            Device::Cpu(xeon_e5_2699_v4()),
            Device::Fpga(vu9p()),
        ] {
            let ev = Evaluator::new(dev.clone());
            // Sizes straddle both the LANES chunking and the
            // TABLE_MIN_ROWS divider-memoization threshold.
            for n in [0usize, 1, 7, 8, 9, 15, 16, 17, 33, 63, 64, 65, 100] {
                let feats = sample_features(&dev, n);
                let mut batch = FeatureBatch::new();
                for f in &feats {
                    batch.push(f);
                }
                let mut out = Vec::new();
                ev.time_features_batch(&batch, &mut out);
                assert_eq!(out.len(), n);
                for (i, f) in feats.iter().enumerate() {
                    let scalar = ev.time_features(f);
                    assert_eq!(
                        out[i].map(f64::to_bits),
                        scalar.map(f64::to_bits),
                        "row {i} of {n} on {}",
                        dev.name()
                    );
                }
            }
        }
    }

    #[test]
    fn clear_keeps_capacity_and_resets_len() {
        let dev = Device::Gpu(v100());
        let feats = sample_features(&dev, 9);
        let mut batch = FeatureBatch::new();
        for f in &feats {
            batch.push(f);
        }
        assert_eq!(batch.len(), 9);
        batch.clear();
        assert!(batch.is_empty());
        assert!(batch.data.capacity() >= 2 * CHUNK_WORDS);
        batch.push(&feats[0]);
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn non_fpga_rows_score_none_on_fpga() {
        // Features lowered for GPU carry no FPGA block; the FPGA batch
        // kernel must mirror the scalar path's None.
        let feats = sample_features(&Device::Gpu(v100()), 3);
        let mut batch = FeatureBatch::new();
        for f in &feats {
            batch.push(f);
        }
        let ev = Evaluator::new(Device::Fpga(vu9p()));
        let mut out = Vec::new();
        ev.time_features_batch(&batch, &mut out);
        assert_eq!(out, vec![None, None, None]);
    }
}
