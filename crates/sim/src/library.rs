//! Simulated vendor libraries — the baselines of the paper's evaluation.
//!
//! A vendor library is, to first order, a small set of hand-tuned kernels
//! with generic (shape-independent) tiling policies plus per-shape
//! algorithm selection. We model each baseline as:
//!
//! * a **fixed expert schedule** (a generic tiling policy applied through
//!   the same performance models FlexTensor's schedules are evaluated on,
//!   with a higher code-quality factor — hand-written kernels beat
//!   generated code at equal schedule), and
//! * **algorithmic alternatives** where the real library has them:
//!   Winograd for eligible 3×3/stride-1 convolutions (cuDNN, MKL-DNN),
//!   implicit GEMM for transposed convolutions (cuDNN), and the documented
//!   *kernel reuse* pathologies — cuDNN runs group convolution
//!   group-by-group and has poor depthwise support (§6.2–§6.3).
//!
//! This reproduces the phenomena the paper reports: libraries win where an
//! algorithmic switch applies (C4/C6 Winograd, T2D implicit GEMM) and lose
//! where shapes are unusual or support is poor (GRP/DEP/DIL, odd tiles).

use flextensor_ir::graph::{ComputeOp, Graph};
use flextensor_ir::ops::{self, ConvParams};
use flextensor_ir::suite::OperatorKind;
use flextensor_schedule::config::NodeConfig;

use crate::model::Evaluator;
use crate::spec::{CpuSpec, Device, FpgaSpec, GpuSpec};

/// Code quality of hand-written vendor kernels.
pub const LIBRARY_CODE_QUALITY: f64 = 0.9;
/// Code quality of PyTorch's fallback ("native") kernels.
pub const NATIVE_CODE_QUALITY: f64 = 0.55;

/// Largest divisor of `n` that is ≤ `want` (≥ 1).
pub fn largest_divisor_at_most(n: i64, want: i64) -> i64 {
    let want = want.clamp(1, n);
    (1..=want).rev().find(|d| n % d == 0).unwrap_or(1)
}

/// Splits `extent` into 4 factors, filling from the innermost level with
/// divisors closest to (at most) the wanted sizes; the leftover goes to
/// level 0.
pub fn split_axis(extent: i64, wants: [i64; 3]) -> Vec<i64> {
    // wants = [level1, level2, level3]
    let mut rest = extent;
    let f3 = largest_divisor_at_most(rest, wants[2]);
    rest /= f3;
    let f2 = largest_divisor_at_most(rest, wants[1]);
    rest /= f2;
    let f1 = largest_divisor_at_most(rest, wants[0]);
    rest /= f1;
    vec![rest, f1, f2, f3]
}

/// Splits a reduce extent into 3 factors (outer gets the leftover).
pub fn split_reduce(extent: i64, wants: [i64; 2]) -> Vec<i64> {
    let mut rest = extent;
    let f2 = largest_divisor_at_most(rest, wants[1]);
    rest /= f2;
    let f1 = largest_divisor_at_most(rest, wants[0]);
    rest /= f1;
    vec![rest, f1, f2]
}

/// The generic GPU tiling policy of a hand-written library kernel: 16×16
/// threads over the two innermost output dimensions, a small register
/// tile, shared-memory staging, unrolled inner loops. Shape-independent by
/// design — that genericity is exactly what FlexTensor's per-shape search
/// exploits.
pub fn expert_gpu_config(op: &ComputeOp) -> NodeConfig {
    let ns = op.spatial.len();
    let mut cfg = NodeConfig::naive(op);
    for (i, a) in op.spatial.iter().enumerate() {
        let wants = if ns == 1 {
            [1, 256, 4]
        } else if i == ns - 1 {
            [1, 16, 4]
        } else if i == ns - 2 {
            [1, 16, 2]
        } else {
            [1, 1, 1]
        };
        cfg.spatial_splits[i] = split_axis(a.extent, wants);
    }
    for (i, a) in op.reduce.iter().enumerate() {
        cfg.reduce_splits[i] = split_reduce(a.extent, [1, 4]);
    }
    cfg.cache_shared = true;
    cfg.unroll = true;
    cfg.vectorize = true;
    cfg
}

/// A second expert GPU policy mapping threads over the channel dimension
/// (axis 1) and the innermost dimension — the "implicit GEMM"-style layout
/// real libraries also ship. Baselines take the better of the two.
pub fn expert_gpu_config_channel(op: &ComputeOp) -> NodeConfig {
    let ns = op.spatial.len();
    let mut cfg = NodeConfig::naive(op);
    for (i, a) in op.spatial.iter().enumerate() {
        let wants = if ns >= 2 && i == 1 {
            [2, 16, 2]
        } else if i == ns - 1 {
            [1, 16, 4]
        } else {
            [1, 1, 1]
        };
        cfg.spatial_splits[i] = split_axis(a.extent, wants);
    }
    for (i, a) in op.reduce.iter().enumerate() {
        cfg.reduce_splits[i] = split_reduce(a.extent, [1, 4]);
    }
    cfg.cache_shared = true;
    cfg.unroll = true;
    cfg.vectorize = true;
    cfg
}

/// PyTorch-native style GPU schedule: one flat thread mapping over the
/// innermost dimensions, no shared-memory staging, no unrolling.
pub fn basic_gpu_config(op: &ComputeOp) -> NodeConfig {
    let ns = op.spatial.len();
    let mut cfg = NodeConfig::naive(op);
    for (i, a) in op.spatial.iter().enumerate() {
        let wants = if i == ns - 1 {
            [1, 64, 1]
        } else if ns >= 2 && i == ns - 2 {
            [1, 4, 1]
        } else {
            [1, 1, 1]
        };
        cfg.spatial_splits[i] = split_axis(a.extent, wants);
    }
    cfg
}

/// MKL-DNN-style CPU schedule: NCHWc-like vectorization of the innermost
/// dimension (8-wide for AVX2), parallel over the outer dims, register
/// blocking.
pub fn expert_cpu_config(op: &ComputeOp) -> NodeConfig {
    let ns = op.spatial.len();
    let mut cfg = NodeConfig::naive(op);
    for (i, a) in op.spatial.iter().enumerate() {
        let wants = if i == ns - 1 {
            [2, 4, 8]
        } else if ns >= 2 && i == ns - 2 {
            [4, 4, 1]
        } else {
            [1, 1, 1]
        };
        cfg.spatial_splits[i] = split_axis(a.extent, wants);
    }
    for (i, a) in op.reduce.iter().enumerate() {
        cfg.reduce_splits[i] = split_reduce(a.extent, [4, 4]);
    }
    cfg.fuse_outer = ns.min(2);
    cfg.unroll = true;
    cfg.vectorize = true;
    cfg
}

/// PyTorch-native style CPU schedule: parallel outer loop, scalar inner
/// code.
pub fn basic_cpu_config(op: &ComputeOp) -> NodeConfig {
    let mut cfg = NodeConfig::naive(op);
    cfg.fuse_outer = op.spatial.len().min(2);
    cfg
}

/// The hand-optimized OpenCL FPGA design of Zhang et al. (FPGA'15), used
/// as the paper's FPGA baseline: a fixed 64×7 PE array, modest buffering,
/// two-stage overlap.
pub fn expert_fpga_config(op: &ComputeOp) -> NodeConfig {
    let ns = op.spatial.len();
    let mut cfg = NodeConfig::naive(op);
    for (i, a) in op.spatial.iter().enumerate() {
        let wants = if ns >= 2 && i == 1 {
            [1, 64, 1] // PEs over output channels
        } else if i == ns - 1 {
            [1, 1, 7] // SIMD over width
        } else {
            [1, 1, 1]
        };
        cfg.spatial_splits[i] = split_axis(a.extent, wants);
    }
    cfg.fpga_pipeline = 2;
    cfg.fpga_partition = 8;
    cfg.unroll = true;
    cfg
}

/// Whether cuDNN/MKL-DNN would consider a Winograd fast algorithm for this
/// graph (3×3, stride 1, no dilation, dense, 2-D).
pub fn winograd_eligible(graph: &Graph) -> bool {
    graph.attr("kernel") == Some(3)
        && graph.attr("stride") == Some(1)
        && graph.attr("dilation").unwrap_or(1) == 1
        && graph.attr("groups").unwrap_or(1) == 1
        && graph.attr("ndim") == Some(2)
        && graph.attr("transposed").is_none()
}

/// Winograd F(2×2, 3×3) efficiency model: the 2.25× FLOP reduction is
/// realized only when the transform tiles are well utilized — large
/// spatial extents and deep channels. Returns the effective utilization in
/// (0, 1]; multiply by 2.25 for the end-to-end advantage over direct.
fn winograd_utilization(graph: &Graph) -> f64 {
    let spatial = graph.attr("spatial0").unwrap_or(14) as f64;
    let cin = graph.attr("in_channels").unwrap_or(64) as f64;
    let cout = graph.attr("out_channels").unwrap_or(64) as f64;
    // At batch 1, Winograd needs many transform tiles (large spatial
    // extents) to fill the GPU, and deep channels to amortize the
    // transforms: strong at 56x56 (the paper's C4/C6), weak at <= 28x28
    // (C8..C15), mild at shallow channel counts (C2).
    let s = ((spatial - 20.0) / 36.0).clamp(0.0, 1.0);
    let c = (cin.min(cout) / 128.0).min(1.0);
    (s * c).clamp(0.05, 1.0)
}

fn roofline(flops: u64, bytes: i64, peak: f64, bw_gbps: f64, eff: f64) -> f64 {
    let c = flops as f64 / (peak * eff);
    let m = bytes as f64 / (bw_gbps * 1e9);
    c.max(m)
}

fn graph_bytes(graph: &Graph) -> i64 {
    graph.inputs().map(|t| t.bytes()).sum::<i64>() + graph.output().bytes()
}

/// Rebuilds the dense per-group convolution sub-problem of a group/depthwise
/// conv (used to model cuDNN's group-sequential kernel reuse).
fn per_group_conv(graph: &Graph) -> Option<Graph> {
    let groups = graph.attr("groups")?;
    let p = ConvParams {
        batch: graph.attr("batch")?,
        in_channels: graph.attr("in_channels")? / groups,
        out_channels: graph.attr("out_channels")? / groups,
        kernel: graph.attr("kernel")?,
        stride: graph.attr("stride")?,
        padding: graph.attr("padding")?,
        dilation: graph.attr("dilation")?,
        groups: 1,
    };
    let h = graph.attr("spatial0")?;
    let w = graph.attr("spatial1")?;
    Some(ops::conv2d(p, h, w))
}

/// cuBLAS estimate for the matmul family: a near-peak roofline with the
/// tile-quantization losses of fixed 128x128 macro-tiles (cuBLAS shines on
/// round shapes; odd extents waste partial tiles).
pub fn cublas_time(graph: &Graph, gpu: &GpuSpec) -> f64 {
    let shape = &graph.output().shape;
    let cols = *shape.last().unwrap_or(&1);
    let rows: i64 = shape.iter().rev().skip(1).product::<i64>().max(1);
    const TILE: i64 = 128;
    let pad = |n: i64| (n + TILE - 1) / TILE * TILE;
    let quant = ((rows * cols) as f64 / (pad(rows) * pad(cols)) as f64).clamp(0.05, 1.0);
    // Near-peak efficiency also needs enough macro-tiles to fill the SMs
    // (two waves' worth); small problems leave the machine underutilized.
    let blocks = (pad(rows) / TILE) * (pad(cols) / TILE);
    let util = ((blocks as f64) / (2.0 * gpu.sms as f64)).min(1.0).sqrt();
    roofline(
        graph.flops(),
        graph_bytes(graph),
        gpu.peak_flops(),
        gpu.mem_bw_gbps * 0.85,
        0.92 * quant * util,
    ) + gpu.launch_overhead_s
}

/// Best-of-experts direct convolution time on GPU at library quality.
fn cudnn_direct(graph: &Graph, gpu: &GpuSpec, quality: f64) -> Option<f64> {
    let ev = Evaluator::new(Device::Gpu(gpu.clone())).with_code_quality(quality);
    let op = graph.anchor_op();
    let mut best: Option<f64> = None;
    for cfg in [expert_gpu_config(op), expert_gpu_config_channel(op)] {
        if let Some(c) = ev.evaluate(graph, &cfg) {
            best = Some(best.map_or(c.seconds, |b: f64| b.min(c.seconds)));
        }
    }
    best
}

/// cuDNN time estimate for an operator (the paper's main GPU baseline).
///
/// Returns `None` for operators cuDNN does not support (the matmul family
/// — the paper compares those against cuBLAS instead).
pub fn cudnn_time(kind: OperatorKind, graph: &Graph, gpu: &GpuSpec) -> Option<f64> {
    match kind {
        OperatorKind::Gemv | OperatorKind::Gemm | OperatorKind::Bilinear => None,
        OperatorKind::Conv1d | OperatorKind::Conv2d | OperatorKind::Conv3d => {
            let direct = cudnn_direct(graph, gpu, LIBRARY_CODE_QUALITY)?;
            let mut best = direct;
            if winograd_eligible(graph) {
                let util = winograd_utilization(graph);
                let wino =
                    direct / (2.25 * util) + graph_bytes(graph) as f64 / (gpu.mem_bw_gbps * 1e9);
                best = best.min(wino);
            }
            Some(best)
        }
        OperatorKind::ConvTranspose1d => {
            // No specialized 1-D deconvolution kernel: cuDNN reuses the
            // generic direct path over the zero-expanded input.
            cudnn_direct(graph, gpu, LIBRARY_CODE_QUALITY * 0.85)
        }
        OperatorKind::ConvTranspose2d | OperatorKind::ConvTranspose3d => {
            // Implicit-GEMM (dgrad-style): no multiplies on inserted
            // zeros, so effective FLOPs drop with the stride density —
            // but the scattered access pattern caps both achievable
            // compute efficiency and bandwidth, and the gather bookkeeping
            // bounds the realizable FLOP saving.
            let stride = graph.attr("stride").unwrap_or(1);
            let ndim = graph.attr("ndim").unwrap_or(2) as u32;
            let density = (1.0 / (stride.pow(ndim)) as f64).max(0.25);
            let effective_flops = (graph.flops() as f64 * density) as u64;
            Some(
                roofline(
                    effective_flops,
                    graph_bytes(graph),
                    gpu.peak_flops(),
                    gpu.mem_bw_gbps * 0.6,
                    0.5,
                ) + 2.0 * gpu.launch_overhead_s,
            )
        }
        OperatorKind::GroupConv => {
            // Kernel reuse: cuDNN runs the dense C2D kernel once per group.
            let groups = graph.attr("groups")?;
            let sub = per_group_conv(graph)?;
            let per = cudnn_direct(&sub, gpu, LIBRARY_CODE_QUALITY)?;
            Some(groups as f64 * per)
        }
        OperatorKind::Depthwise => {
            // Poor support: channel-sequential kernel reuse; each
            // per-channel kernel is tiny and launch-bound (the paper
            // observes cuDNN DEP is slower than PyTorch's native kernel).
            let channels = graph.attr("groups")?;
            let sub = per_group_conv(graph)?;
            let per = cudnn_direct(&sub, gpu, LIBRARY_CODE_QUALITY)?;
            Some(channels as f64 * per)
        }
        OperatorKind::Dilated => {
            // Kernel reuse: the dense C2D kernel handles dilation but its
            // tiling is not specialized for the dilated footprint.
            cudnn_direct(graph, gpu, LIBRARY_CODE_QUALITY * 0.75)
        }
        OperatorKind::Bcm | OperatorKind::Shift => None, // no library support
    }
}

/// PyTorch native GPU kernel estimate (used when cuDNN is disabled or has
/// no kernel).
pub fn pytorch_gpu_time(graph: &Graph, gpu: &GpuSpec) -> Option<f64> {
    let ev = Evaluator::new(Device::Gpu(gpu.clone())).with_code_quality(NATIVE_CODE_QUALITY);
    ev.evaluate(graph, &basic_gpu_config(graph.anchor_op()))
        .map(|c| c.seconds)
}

/// MKL-DNN CPU estimate (the paper's CPU baseline, PyTorch's MKL-DNN
/// backend).
pub fn mkldnn_time(graph: &Graph, cpu: &CpuSpec) -> Option<f64> {
    let ev = Evaluator::new(Device::Cpu(cpu.clone())).with_code_quality(LIBRARY_CODE_QUALITY);
    let direct = ev
        .evaluate(graph, &expert_cpu_config(graph.root_op()))
        .map(|c| c.seconds)?;
    let mut best = direct;
    if winograd_eligible(graph) {
        // MKL-DNN's JIT Winograd is strong on large-channel layers (the
        // paper's C4/C6 anomalies): bigger caches keep the transform tiles
        // resident, so utilization saturates faster than on GPU.
        let util = (winograd_utilization(graph) * 2.0).clamp(0.05, 1.0);
        let wino = direct / (2.25 * util) + graph_bytes(graph) as f64 / (cpu.mem_bw_gbps * 1e9);
        best = best.min(wino);
    }
    Some(best)
}

/// PyTorch native CPU kernel estimate.
pub fn pytorch_cpu_time(graph: &Graph, cpu: &CpuSpec) -> Option<f64> {
    let ev = Evaluator::new(Device::Cpu(cpu.clone())).with_code_quality(NATIVE_CODE_QUALITY);
    ev.evaluate(graph, &basic_cpu_config(graph.anchor_op()))
        .map(|c| c.seconds)
}

/// Hand-optimized OpenCL FPGA baseline (Zhang et al. design point).
pub fn opencl_fpga_time(graph: &Graph, fpga: &FpgaSpec) -> Option<f64> {
    let ev = Evaluator::new(Device::Fpga(fpga.clone())).with_code_quality(0.85);
    ev.evaluate(graph, &expert_fpga_config(graph.anchor_op()))
        .map(|c| c.seconds)
}

/// The §6.4 hand-tuned GPU baseline for new operators: the expert generic
/// tiling written by hand in the same code generator (so generated-code
/// quality), with fixed 4-level tiling and deep unrolling.
pub fn hand_tuned_gpu_time(graph: &Graph, gpu: &GpuSpec) -> Option<f64> {
    // One fixed design, per the paper's description ("4-level tiling with
    // hand-optimized split factors"): a hand-written kernel is a single
    // schedule, unlike a library's algorithm menu.
    let ev = Evaluator::new(Device::Gpu(gpu.clone()));
    ev.evaluate(graph, &expert_gpu_config(graph.anchor_op()))
        .map(|c| c.seconds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{v100, vu9p, xeon_e5_2699_v4};
    use flextensor_ir::suite::{test_cases, OperatorKind};
    use flextensor_ir::yolo::yolo_layer;

    #[test]
    fn divisor_helpers() {
        assert_eq!(largest_divisor_at_most(14, 16), 14);
        assert_eq!(largest_divisor_at_most(14, 4), 2);
        assert_eq!(largest_divisor_at_most(7, 4), 1);
        assert_eq!(split_axis(112, [1, 16, 4]), vec![2, 1, 14, 4]);
        let s = split_axis(14, [1, 16, 4]);
        assert_eq!(s.iter().product::<i64>(), 14);
        assert_eq!(split_reduce(64, [1, 4]).iter().product::<i64>(), 64);
    }

    #[test]
    fn expert_configs_validate_on_all_suite_ops() {
        for kind in OperatorKind::table3() {
            for g in test_cases(kind) {
                let op = g.root_op();
                for cfg in [
                    expert_gpu_config(op),
                    expert_gpu_config_channel(op),
                    basic_gpu_config(op),
                    expert_cpu_config(op),
                    basic_cpu_config(op),
                    expert_fpga_config(op),
                ] {
                    cfg.validate(op)
                        .unwrap_or_else(|e| panic!("{}: {e}", g.name));
                }
            }
        }
    }

    #[test]
    fn cudnn_beats_pytorch_native_on_dense_conv() {
        let g = yolo_layer("C8").unwrap().graph(1);
        let gpu = v100();
        let cudnn = cudnn_time(OperatorKind::Conv2d, &g, &gpu).unwrap();
        let native = pytorch_gpu_time(&g, &gpu).unwrap();
        assert!(cudnn < native, "cudnn {cudnn} vs native {native}");
    }

    #[test]
    fn winograd_eligibility_uses_attrs() {
        assert!(winograd_eligible(&yolo_layer("C4").unwrap().graph(1)));
        assert!(!winograd_eligible(&yolo_layer("C1").unwrap().graph(1))); // 7x7 s2
        assert!(!winograd_eligible(&yolo_layer("C3").unwrap().graph(1))); // 1x1
        let grp = &test_cases(OperatorKind::GroupConv)[0];
        assert!(!winograd_eligible(grp)); // grouped
    }

    #[test]
    fn winograd_helps_c6_but_not_small_layers() {
        let gpu = v100();
        let c6 = yolo_layer("C6").unwrap().graph(1);
        let direct = cudnn_direct(&c6, &gpu, LIBRARY_CODE_QUALITY).unwrap();
        let with_algo = cudnn_time(OperatorKind::Conv2d, &c6, &gpu).unwrap();
        assert!(with_algo < direct, "winograd should win on C6");
        // C15 (7x7 spatial): winograd utilization collapses.
        let c15 = yolo_layer("C15").unwrap().graph(1);
        let d15 = cudnn_direct(&c15, &gpu, LIBRARY_CODE_QUALITY).unwrap();
        let w15 = cudnn_time(OperatorKind::Conv2d, &c15, &gpu).unwrap();
        assert!((w15 - d15).abs() / d15 < 0.5, "no big winograd win at 7x7");
    }

    #[test]
    fn cudnn_group_conv_pays_sequential_groups() {
        let gpu = v100();
        let g = &test_cases(OperatorKind::GroupConv)[8]; // 512ch, 32 groups
        let grp = cudnn_time(OperatorKind::GroupConv, g, &gpu).unwrap();
        // The same total work as one dense conv with 1/groups channels
        // each; sequential execution of 32 tiny kernels is far from peak.
        let gflops = g.flops() as f64 / grp / 1e9;
        assert!(
            gflops < 2000.0,
            "sequential groups should be slow: {gflops}"
        );
    }

    #[test]
    fn cudnn_depthwise_is_worse_than_native() {
        let gpu = v100();
        let g = &test_cases(OperatorKind::Depthwise)[3];
        let dep = cudnn_time(OperatorKind::Depthwise, g, &gpu).unwrap();
        let native = pytorch_gpu_time(g, &gpu).unwrap();
        assert!(dep > native, "cudnn DEP {dep} vs native {native}");
    }

    #[test]
    fn cublas_and_library_paths_produce_times() {
        let g = flextensor_ir::ops::gemm(1024, 1024, 1024);
        assert!(cublas_time(&g, &v100()) > 0.0);
        assert!(mkldnn_time(&yolo_layer("C8").unwrap().graph(1), &xeon_e5_2699_v4()).is_some());
        assert!(pytorch_cpu_time(&g, &xeon_e5_2699_v4()).is_some());
        assert!(opencl_fpga_time(&yolo_layer("C8").unwrap().graph(1), &vu9p()).is_some());
        assert!(hand_tuned_gpu_time(&test_cases(OperatorKind::Bcm)[0], &v100()).is_some());
    }

    #[test]
    fn mkldnn_winograd_shines_on_c6() {
        let cpu = xeon_e5_2699_v4();
        let c6 = yolo_layer("C6").unwrap().graph(1);
        let t = mkldnn_time(&c6, &cpu).unwrap();
        let apparent_gflops = c6.flops() as f64 / t / 1e9;
        // The paper reports ~700 apparent GFLOPS for MKL-DNN on C6.
        assert!(apparent_gflops > 250.0, "C6 MKL {apparent_gflops:.0}");
    }
}
