//! # flextensor-sim
//!
//! Analytical performance models and simulated vendor libraries for the
//! FlexTensor reproduction.
//!
//! The paper evaluates schedules by real measurement on CPUs/GPUs and by an
//! analytical model on FPGAs (§5.2 — synthesis is too slow to measure).
//! With no hardware in the loop, this crate extends the analytical-model
//! methodology to all three targets:
//!
//! * [`spec`] — device specifications (V100, P100, Titan X, Xeon E5-2699
//!   v4, VU9P).
//! * [`gpu`] / [`cpu`] / [`fpga`] — the per-target cost models, driven by
//!   the exact tiling features `flextensor-schedule` computes during
//!   lowering. The FPGA model is the paper's
//!   `workload/#PE × max(R, C, W)` pipeline model with DSP/BRAM
//!   feasibility constraints.
//! * [`model`] — [`model::Evaluator`], the "performance value"
//!   oracle exploration queries (§5.1).
//! * [`scalar`] / [`generic`] — the models rewritten once over the
//!   abstract [`scalar::Scalar`] domain, with three instantiations:
//!   `f64` (bit-identical to the concrete models, and what the scalar
//!   entry points now route through), outward-rounding
//!   [`scalar::Interval`] enclosures (powering sound region-level cost
//!   bounds in `flextensor-analyze`), and the [`scalar::Dual`]
//!   forward-mode stub reserved for a gradient tuner.
//! * [`library`] — simulated baselines: cuDNN / cuBLAS / PyTorch-native /
//!   MKL-DNN / hand-optimized OpenCL, modeled as fixed expert schedules
//!   plus per-shape algorithm selection (Winograd, implicit GEMM, kernel
//!   reuse). See DESIGN.md for the substitution rationale.
//!
//! # Examples
//!
//! ```
//! use flextensor_ir::ops;
//! use flextensor_schedule::config::NodeConfig;
//! use flextensor_sim::{model::Evaluator, spec::{Device, v100}};
//!
//! let g = ops::gemm(512, 512, 512);
//! let mut cfg = NodeConfig::naive(g.root_op());
//! cfg.spatial_splits = vec![vec![16, 1, 16, 2], vec![16, 1, 16, 2]];
//! cfg.reduce_splits = vec![vec![128, 2, 2]];
//! cfg.cache_shared = true;
//! let cost = Evaluator::new(Device::Gpu(v100())).evaluate(&g, &cfg).unwrap();
//! assert!(cost.gflops() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod batch;
pub mod cpu;
pub mod fpga;
pub mod generic;
pub mod gpu;
pub mod library;
pub mod model;
pub mod scalar;
pub mod spec;

pub use batch::FeatureBatch;
pub use model::{Cost, Evaluator, GENERATED_CODE_QUALITY};
pub use scalar::{Dual, Interval, IntervalError, Scalar, Trilean};
pub use spec::{p100, titan_x, v100, vu9p, xeon_e5_2699_v4, CpuSpec, Device, FpgaSpec, GpuSpec};
