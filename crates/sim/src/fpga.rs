//! The FPGA performance model of §5.2.
//!
//! The paper evaluates FPGA schedules with an analytical model (synthesis
//! takes hours, so real measurement is impractical):
//!
//! ```text
//! Execution_time = workload / #PE × max(R, C, W)
//! ```
//!
//! where `R` is the per-round data-read time, `C` the per-round compute
//! time, `W` the per-round write time, and `#PE` the number of parallel
//! processing elements — derived from the three-stage read/compute/write
//! pipeline of Fig. 4c. We implement that model, plus the resource
//! constraints (DSP budget for PEs, BRAM budget for buffers) under which
//! the paper says FlexTensor "solv\[es\] an optimization problem under
//! certain FPGA resource constraints".

use flextensor_schedule::features::{FpgaFeatures, KernelFeatures};

use crate::spec::FpgaSpec;

/// The exact inputs of the FPGA pipeline model, flattened into one `Copy`
/// row: the [`FpgaFeatures`] block plus the workload FLOPs. Both the
/// scalar entry point and the batched [`crate::batch::FeatureBatch`] path
/// score rows through the same [`fpga_time_row`] arithmetic, making them
/// bit-identical by construction.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct FpgaRow {
    pub flops: u64,
    pub pe: i64,
    pub rounds: i64,
    pub buffer_bytes: i64,
    pub stream_bytes: i64,
    pub write_bytes: i64,
    pub partition: i64,
    pub pipeline: i64,
}

impl FpgaRow {
    // The scalar entry point now routes through the generic body; row
    // construction from features remains as the reference side of the
    // generic-vs-row differential tests.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn of(flops: u64, fp: &FpgaFeatures) -> FpgaRow {
        FpgaRow {
            flops,
            pe: fp.pe,
            rounds: fp.rounds,
            buffer_bytes: fp.buffer_bytes,
            stream_bytes: fp.stream_bytes,
            write_bytes: fp.write_bytes,
            partition: fp.partition,
            pipeline: fp.pipeline,
        }
    }
}

/// Estimates execution time in seconds; `None` when the design does not
/// fit (PE count exceeds the DSP budget, or buffers exceed BRAM) or the
/// features carry no FPGA block (kernel was lowered for another target).
///
/// Routes through the generic model body at `S = f64`
/// ([`crate::generic::fpga_time_generic`]), bit-identical to
/// `fpga_time_row` (pinned by the differential tests in
/// `crate::generic`); the batched path keeps the concrete row kernel.
pub fn fpga_time(spec: &FpgaSpec, f: &KernelFeatures, code_quality: f64) -> Option<f64> {
    let fp = f.fpga.as_ref()?;
    crate::generic::fpga_time_generic::<f64>(
        spec,
        &crate::generic::FpgaIn::of(f.flops, fp),
        code_quality,
    )
}

/// The FPGA model arithmetic over one feature row — the single
/// implementation shared by the scalar and batched entry points.
pub(crate) fn fpga_time_row(spec: &FpgaSpec, fp: FpgaRow, code_quality: f64) -> Option<f64> {
    if fp.pe > spec.max_pe() {
        return None; // not enough DSPs
    }
    // Double buffering for the pipelined design: input buffer + output
    // buffer, each duplicated when stages overlap.
    let buffers = fp.buffer_bytes + fp.write_bytes;
    let bram_need = if fp.pipeline >= 2 {
        buffers * 2
    } else {
        buffers
    };
    if bram_need > spec.bram_bytes {
        return None;
    }

    let rounds = fp.rounds.max(1) as f64;

    // C: compute time of one round. Each PE retires one MAC per cycle.
    let total_macs = (fp.flops / 2) as f64;
    let macs_per_round = total_macs / rounds;
    let c = if total_macs == 0.0 {
        0.0
    } else {
        macs_per_round / (fp.pe as f64 * code_quality.max(1e-3)) / (spec.clock_ghz * 1e9)
    };

    // R: read time of one round — bounded by off-chip DDR bandwidth and by
    // on-chip fill bandwidth (partitioning multiplies BRAM ports).
    let onchip_bw = spec.bank_bw_gbps * fp.partition as f64;
    let read_bw = spec.ddr_bw_gbps.min(onchip_bw) * 1e9;
    let r = fp.stream_bytes as f64 / read_bw;

    // W: write time of one round.
    let w = fp.write_bytes as f64 / read_bw;

    let per_round = match fp.pipeline {
        1 => r + c + w,
        2 => r.max(c) + w,
        _ => r.max(c).max(w),
    };
    // Pipeline fill/drain once.
    Some(rounds * per_round + (r + c + w))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::vu9p;
    use flextensor_ir::ops;
    use flextensor_schedule::config::{NodeConfig, TargetKind};
    use flextensor_schedule::lower::lower;

    fn conv_features(pe_factors: (i64, i64), pipeline: i64, partition: i64) -> KernelFeatures {
        // 64x64x28x28 3x3 conv; PE parallelism over output channels (level
        // 2) and width (level 3).
        let g = ops::conv2d(ops::ConvParams::same(1, 64, 64, 3), 28, 28);
        let mut cfg = NodeConfig::naive(g.root_op());
        // axes: b(1), k(64), i(28), j(28)
        cfg.spatial_splits = vec![
            vec![1, 1, 1, 1],
            vec![64 / pe_factors.0, 1, pe_factors.0, 1],
            vec![28, 1, 1, 1],
            vec![28 / pe_factors.1, 1, 1, pe_factors.1],
        ];
        cfg.fpga_pipeline = pipeline;
        cfg.fpga_partition = partition;
        lower(&g, &cfg, TargetKind::Fpga).unwrap().features
    }

    #[test]
    fn pipeline_overlap_is_faster() {
        let spec = vu9p();
        let seq = fpga_time(&spec, &conv_features((16, 4), 1, 8), 0.85).unwrap();
        let two = fpga_time(&spec, &conv_features((16, 4), 2, 8), 0.85).unwrap();
        let three = fpga_time(&spec, &conv_features((16, 4), 3, 8), 0.85).unwrap();
        assert!(three <= two && two <= seq, "{three} {two} {seq}");
    }

    #[test]
    fn partitioning_raises_read_bandwidth() {
        let spec = vu9p();
        let p1 = fpga_time(&spec, &conv_features((16, 4), 3, 1), 0.85).unwrap();
        let p8 = fpga_time(&spec, &conv_features((16, 4), 3, 8), 0.85).unwrap();
        assert!(p8 < p1, "partition8 {p8} vs partition1 {p1}");
    }

    #[test]
    fn more_pes_are_faster_until_dsp_limit() {
        let spec = vu9p();
        let small = fpga_time(&spec, &conv_features((16, 4), 3, 8), 0.85).unwrap();
        let big = fpga_time(&spec, &conv_features((64, 14), 3, 8), 0.85).unwrap();
        assert!(big < small, "896 PEs {big} vs 64 PEs {small}");
        // 64*28 = 1792 PEs exceeds the 1368-PE budget.
        assert!(fpga_time(&spec, &conv_features((64, 28), 3, 8), 0.85).is_none());
    }

    #[test]
    fn throughput_is_below_peak() {
        let spec = vu9p();
        let f = conv_features((64, 14), 3, 8);
        let t = fpga_time(&spec, &f, 0.85).unwrap();
        let gflops = f.flops as f64 / t / 1e9;
        assert!(gflops > 20.0, "{gflops}");
        assert!(gflops < spec.peak_flops() / 1e9, "{gflops}");
    }

    #[test]
    fn zero_flop_ops_are_bandwidth_bound() {
        let g = ops::shift2d(1, 64, 28, 28);
        let mut cfg = NodeConfig::naive(g.root_op());
        // Modest PE parallelism so the design fits the DSP budget.
        cfg.spatial_splits = vec![
            vec![1, 1, 1, 1],
            vec![4, 1, 16, 1],
            vec![28, 1, 1, 1],
            vec![4, 1, 1, 7],
        ];
        let f = lower(&g, &cfg, TargetKind::Fpga).unwrap().features;
        let t = fpga_time(&vu9p(), &f, 0.85).unwrap();
        assert!(t > 0.0);
    }
}
