//! The evaluator: the single entry point exploration uses to obtain the
//! "performance value E" of a schedule point (§5.1).
//!
//! On real hardware FlexTensor compiles and measures (CPU/GPU) or queries
//! an analytical model (FPGA). Here all targets are analytical models, so
//! an evaluation = lower the config + run the target's cost model. The
//! measurement-*overhead* of the real system (compile + run, ≤ 1 s per the
//! paper) is modeled separately by the exploration-time accounting in
//! `flextensor-explore`.

use flextensor_ir::graph::Graph;
use flextensor_schedule::config::{NodeConfig, TargetKind};
use flextensor_schedule::features::KernelFeatures;
use flextensor_schedule::lower::lower;
use flextensor_schedule::template::LoweredTemplate;

use crate::batch::{cpu_time_batch, fpga_time_batch, gpu_time_batch, FeatureBatch};
use crate::cpu::cpu_time;
use crate::fpga::fpga_time;
use crate::gpu::gpu_time;
use crate::spec::Device;

/// Achievable fraction of model peak for FlexTensor-generated code. Vendor
/// libraries use higher values (hand-written kernels), set per baseline in
/// [`crate::library`].
pub const GENERATED_CODE_QUALITY: f64 = 0.75;

/// The outcome of evaluating one schedule on one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cost {
    /// Estimated execution time in seconds.
    pub seconds: f64,
    /// Floating-point operations of the workload.
    pub flops: u64,
}

impl Cost {
    /// Achieved throughput in GFLOP/s.
    pub fn gflops(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.flops as f64 / self.seconds / 1e9
        }
    }
}

/// Evaluates schedule configurations on a device model.
#[derive(Debug, Clone)]
pub struct Evaluator {
    device: Device,
    code_quality: f64,
}

impl Evaluator {
    /// Creates an evaluator for generated code on the given device.
    pub fn new(device: Device) -> Evaluator {
        Evaluator {
            device,
            code_quality: GENERATED_CODE_QUALITY,
        }
    }

    /// Overrides the code-quality factor (used by library baselines).
    pub fn with_code_quality(mut self, q: f64) -> Evaluator {
        self.code_quality = q;
        self
    }

    /// The device being modeled.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The schedule target for this device.
    pub fn target(&self) -> TargetKind {
        self.device.target()
    }

    /// Times pre-computed kernel features; `None` when infeasible.
    pub fn time_features(&self, f: &KernelFeatures) -> Option<f64> {
        match &self.device {
            Device::Gpu(s) => gpu_time(s, f, self.code_quality),
            Device::Cpu(s) => cpu_time(s, f, self.code_quality),
            Device::Fpga(s) => fpga_time(s, f, self.code_quality),
        }
    }

    /// Times a *box* of kernels described by two corner feature rows,
    /// returning a sound enclosure `(lo, hi)` of every concrete
    /// [`Evaluator::time_features`] result reachable from member rows —
    /// or `None` when no member is feasible on this device.
    ///
    /// The corners may be given in either componentwise order (each
    /// field is enclosed by [`crate::scalar::Interval::spanning`]);
    /// soundness over the whole box additionally requires that every
    /// member's features lie componentwise between the corners, which is
    /// what `LoweredTemplate::feature_bounds` guarantees for region
    /// queries. Branch flags (and the FPGA `partition`/`pipeline` knobs)
    /// must agree between the corners: a region query fixes them.
    pub fn time_features_interval(
        &self,
        lo: &KernelFeatures,
        hi: &KernelFeatures,
    ) -> Option<(f64, f64)> {
        use crate::generic::{cpu_time_generic, fpga_time_generic, gpu_time_generic};
        use crate::generic::{CpuIn, FpgaIn, GpuIn};
        match &self.device {
            Device::Gpu(s) => gpu_time_generic(s, &GpuIn::enclosing(lo, hi), self.code_quality)
                .map(|iv| (iv.lo(), iv.hi())),
            Device::Cpu(s) => {
                let iv = cpu_time_generic(s, &CpuIn::enclosing(lo, hi), self.code_quality);
                Some((iv.lo(), iv.hi()))
            }
            Device::Fpga(s) => {
                let (flo, fhi) = (lo.fpga.as_ref()?, hi.fpga.as_ref()?);
                fpga_time_generic(
                    s,
                    &FpgaIn::enclosing(lo.flops, flo, hi.flops, fhi),
                    self.code_quality,
                )
                .map(|iv| (iv.lo(), iv.hi()))
            }
        }
    }

    /// Times a whole batch of pre-computed feature rows in one call,
    /// writing one entry per row to `out` (cleared first; `None` marks
    /// infeasible rows). Dispatches on the device once and scores the
    /// batch through the chunked kernels in [`crate::batch`].
    ///
    /// Bit-identical to mapping [`Evaluator::time_features`] over the rows
    /// — the scalar path is the reference; see the [`crate::batch`]
    /// determinism contract.
    pub fn time_features_batch(&self, batch: &FeatureBatch, out: &mut Vec<Option<f64>>) {
        match &self.device {
            Device::Gpu(s) => gpu_time_batch(s, batch, self.code_quality, out),
            Device::Cpu(s) => cpu_time_batch(s, batch, self.code_quality, out),
            Device::Fpga(s) => fpga_time_batch(s, batch, self.code_quality, out),
        }
    }

    /// Lowers `cfg` for this device and evaluates it. `None` when the
    /// config is invalid for the graph or infeasible on the device.
    pub fn evaluate(&self, graph: &Graph, cfg: &NodeConfig) -> Option<Cost> {
        let kernel = lower(graph, cfg, self.target()).ok()?;
        let seconds = self.time_features(&kernel.features)?;
        Some(Cost {
            seconds,
            flops: graph.flops(),
        })
    }

    /// Fast-path evaluation through a precomputed [`LoweredTemplate`]:
    /// derives features via the cheap config-apply step instead of a full
    /// re-lowering. Produces bit-identical costs to [`Evaluator::evaluate`]
    /// (both paths share the same feature computation); the template must
    /// have been built for this evaluator's target.
    pub fn evaluate_template(&self, template: &LoweredTemplate, cfg: &NodeConfig) -> Option<Cost> {
        debug_assert_eq!(template.target(), self.target());
        let features = template.features(cfg).ok()?;
        let seconds = self.time_features(&features)?;
        Some(Cost {
            seconds,
            flops: template.graph_flops(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{v100, vu9p, xeon_e5_2699_v4};
    use flextensor_ir::ops;

    #[test]
    fn evaluator_dispatches_to_all_targets() {
        let g = ops::gemm(256, 256, 256);
        let cfg = {
            let mut c = NodeConfig::naive(g.root_op());
            c.spatial_splits = vec![vec![8, 1, 16, 2], vec![8, 1, 16, 2]];
            c.reduce_splits = vec![vec![64, 2, 2]];
            c.cache_shared = true;
            c
        };
        for dev in [
            Device::Gpu(v100()),
            Device::Cpu(xeon_e5_2699_v4()),
            Device::Fpga(vu9p()),
        ] {
            let e = Evaluator::new(dev);
            let cost = e.evaluate(&g, &cfg).expect("feasible on all targets");
            assert!(cost.seconds > 0.0);
            assert!(cost.gflops() > 0.0);
        }
    }

    #[test]
    fn template_fast_path_matches_full_evaluation() {
        let g = ops::gemm(256, 256, 256);
        let cfg = {
            let mut c = NodeConfig::naive(g.root_op());
            c.spatial_splits = vec![vec![8, 1, 16, 2], vec![8, 1, 16, 2]];
            c.reduce_splits = vec![vec![64, 2, 2]];
            c.cache_shared = true;
            c
        };
        for dev in [
            Device::Gpu(v100()),
            Device::Cpu(xeon_e5_2699_v4()),
            Device::Fpga(vu9p()),
        ] {
            let e = Evaluator::new(dev);
            let tpl = LoweredTemplate::new(&g, e.target());
            assert_eq!(e.evaluate_template(&tpl, &cfg), e.evaluate(&g, &cfg));
        }
    }

    #[test]
    fn invalid_config_yields_none() {
        let g = ops::gemm(256, 256, 256);
        let mut cfg = NodeConfig::naive(g.root_op());
        cfg.spatial_splits[0] = vec![3, 1, 1, 1];
        let e = Evaluator::new(Device::Gpu(v100()));
        assert!(e.evaluate(&g, &cfg).is_none());
    }

    #[test]
    fn cost_gflops_math() {
        let c = Cost {
            seconds: 0.001,
            flops: 2_000_000_000,
        };
        assert!((c.gflops() - 2000.0).abs() < 1e-9);
    }
}
