//! The device cost models, written once over the abstract [`Scalar`]
//! domain.
//!
//! Each body below mirrors its concrete counterpart
//! ([`crate::gpu::gpu_time`], [`crate::cpu::cpu_time`],
//! [`crate::fpga::fpga_time`]) operation for operation, in the same
//! order and association. Instantiated at `S = f64` every trait method
//! performs exactly the IEEE-754 operation the concrete model performs,
//! so the generic path is **bit-identical** to the hand-written one —
//! pinned by the differential tests in this module, and relied on by the
//! public scalar entry points, which now route through these bodies.
//!
//! Instantiated at `S =` [`Interval`] the same bodies compute a sound
//! enclosure of every concrete result reachable from member inputs
//! (see the [`Interval`] rounding contract), which
//! [`crate::model::Evaluator::time_features_interval`] exposes to the
//! region analysis in `flextensor-analyze`.
//!
//! Two translation rules keep the `f64` instantiation exact:
//!
//! * concrete `if`s on *flags* stay concrete (`GpuIn` carries `bool`
//!   flags — a region analysis fixes flags per query); `if`s on *data*
//!   become [`Scalar::select`], whose strict arms are guarded with
//!   `.max(one)` exactly where the concrete models guard with `.max(1)`
//!   (plus on divisors only reachable in a taken branch, where the guard
//!   is the identity);
//! * concrete early-return feasibility checks become
//!   [`Scalar::constrain_ge`]/[`Scalar::constrain_le`], which for `f64`
//!   are the identical comparison and for [`Interval`] clip to the
//!   feasible members (members that fail are exactly those the concrete
//!   model rejects with `None`, so the enclosure still covers every
//!   member with a `Some` cost).

use flextensor_schedule::features::{FpgaFeatures, KernelFeatures};

use crate::gpu::UNCACHED_TRAFFIC_PENALTY;
use crate::scalar::{Interval, Scalar};
use crate::spec::{CpuSpec, FpgaSpec, GpuSpec};

/// The GPU model's inputs over an abstract scalar: the numeric columns of
/// the concrete row as `S`, the branch flags concrete (a region query
/// fixes its flag assignment).
#[derive(Debug, Clone, Copy)]
pub struct GpuIn<S> {
    /// Workload floating-point operations.
    pub flops: S,
    /// Grid size (thread blocks).
    pub grid: S,
    /// Threads per block.
    pub block_threads: S,
    /// Spatial points per thread.
    pub thread_tile: S,
    /// Virtual-thread (register-tile) product.
    pub vthreads: S,
    /// Outer reduce factor product.
    pub reduce_outer: S,
    /// Shared-memory bytes staged per block per outer step.
    pub shared_bytes_per_block: S,
    /// Register bytes per thread.
    pub thread_reg_bytes: S,
    /// Compulsory input traffic in bytes.
    pub input_bytes_total: S,
    /// Output bytes.
    pub output_bytes: S,
    /// Materialized-producer traffic in bytes.
    pub data_node_bytes: S,
    /// Whether inner loops are unrolled.
    pub unroll: bool,
    /// Whether the innermost loop is contiguous in the output.
    pub contiguous_inner: bool,
    /// Whether tiles are staged through shared memory.
    pub cache_shared: bool,
}

impl<S: Scalar> GpuIn<S> {
    /// Embeds one concrete feature row as points.
    pub fn of(f: &KernelFeatures) -> GpuIn<S> {
        GpuIn {
            flops: S::from_i64(f.flops as i64),
            grid: S::from_i64(f.grid),
            block_threads: S::from_i64(f.block_threads),
            thread_tile: S::from_i64(f.thread_tile),
            vthreads: S::from_i64(f.vthreads),
            reduce_outer: S::from_i64(f.reduce_outer),
            shared_bytes_per_block: S::from_i64(f.shared_bytes_per_block),
            thread_reg_bytes: S::from_i64(f.thread_reg_bytes),
            input_bytes_total: S::from_i64(f.input_bytes_total),
            output_bytes: S::from_i64(f.output_bytes),
            data_node_bytes: S::from_i64(f.data_node_bytes),
            unroll: f.unroll,
            contiguous_inner: f.contiguous_inner,
            cache_shared: f.cache_shared,
        }
    }
}

impl GpuIn<Interval> {
    /// Builds interval inputs enclosing two corner feature rows (in
    /// either componentwise order). The flags of both corners must
    /// agree — they come from the fixed flag assignment of one region
    /// query.
    pub fn enclosing(lo: &KernelFeatures, hi: &KernelFeatures) -> GpuIn<Interval> {
        debug_assert_eq!(
            (lo.unroll, lo.contiguous_inner, lo.cache_shared),
            (hi.unroll, hi.contiguous_inner, hi.cache_shared),
        );
        let iv = |a: i64, b: i64| Interval::spanning(a as f64, b as f64);
        GpuIn {
            flops: iv(lo.flops as i64, hi.flops as i64),
            grid: iv(lo.grid, hi.grid),
            block_threads: iv(lo.block_threads, hi.block_threads),
            thread_tile: iv(lo.thread_tile, hi.thread_tile),
            vthreads: iv(lo.vthreads, hi.vthreads),
            reduce_outer: iv(lo.reduce_outer, hi.reduce_outer),
            shared_bytes_per_block: iv(lo.shared_bytes_per_block, hi.shared_bytes_per_block),
            thread_reg_bytes: iv(lo.thread_reg_bytes, hi.thread_reg_bytes),
            input_bytes_total: iv(lo.input_bytes_total, hi.input_bytes_total),
            output_bytes: iv(lo.output_bytes, hi.output_bytes),
            data_node_bytes: iv(lo.data_node_bytes, hi.data_node_bytes),
            unroll: lo.unroll,
            contiguous_inner: lo.contiguous_inner,
            cache_shared: lo.cache_shared,
        }
    }
}

/// The GPU model over an abstract scalar — see [`crate::gpu::gpu_time`]
/// for the model itself. `None` means no member is feasible.
pub fn gpu_time_generic<S: Scalar>(spec: &GpuSpec, f: &GpuIn<S>, code_quality: f64) -> Option<S> {
    let one = S::from_i64(1);
    let tpb = f
        .block_threads
        .constrain_ge(one)?
        .constrain_le(S::from_i64(spec.max_threads_per_block))?;
    let shared_pb = if f.cache_shared {
        f.shared_bytes_per_block
    } else {
        S::from_i64(0)
    };
    let shared_pb = shared_pb.constrain_le(S::from_i64(spec.shared_per_block))?;

    // ---- occupancy --------------------------------------------------
    let warps_pb = tpb.add(S::from_i64(31)).floor_int_div(S::from_i64(32));
    let blocks_by_warps = S::from_i64(spec.max_warps_per_sm).floor_int_div(warps_pb);
    let blocks_by_shared = S::select(
        S::from_i64(0).lt(shared_pb),
        S::from_i64(spec.shared_per_sm).floor_int_div(shared_pb.max(one)),
        S::from_i64(spec.max_blocks_per_sm),
    );
    let reg_bytes_pt = f.thread_reg_bytes.max(S::from_i64(128));
    let blocks_by_regs =
        S::from_i64(spec.regfile_per_sm).floor_int_div(reg_bytes_pt.mul(tpb).max(one));
    let blocks_per_sm = blocks_by_warps
        .min(blocks_by_shared)
        .min(blocks_by_regs)
        .min(S::from_i64(spec.max_blocks_per_sm))
        .constrain_ge(one)?;
    let occupancy = blocks_per_sm
        .mul(warps_pb)
        .div(S::from_i64(spec.max_warps_per_sm));

    // ---- compute efficiency ------------------------------------------
    let warp_eff = tpb.div(warps_pb.mul(S::from_i64(32)));
    let ilp = f
        .thread_tile
        .mul(f.vthreads)
        .mul(S::from_f64(if f.unroll { 2.0 } else { 1.0 }));
    let needed_occupancy = S::from_f64(1.0)
        .div(S::from_f64(1.0).add(ilp.div(S::from_f64(4.0))))
        .add(S::from_f64(0.15));
    let latency_util = occupancy.div(needed_occupancy).min(S::from_f64(1.0));
    let slots = S::from_i64(spec.sms).mul(blocks_per_sm);
    let waves = f.grid.add(slots).sub(one).floor_int_div(slots);
    let tail_eff = S::select(
        S::from_i64(0).lt(waves),
        f.grid.div(waves.mul(slots).max(one)),
        S::from_f64(0.0),
    );
    let spill_penalty = S::select(
        S::from_i64(1024).lt(reg_bytes_pt),
        S::from_f64(1024.0).div(reg_bytes_pt),
        S::from_f64(1.0),
    );

    let eff = S::from_f64(code_quality)
        .mul(warp_eff)
        .mul(latency_util)
        .mul(tail_eff.max(S::from_f64(1e-3)))
        .mul(spill_penalty);
    let compute_s = S::select(
        S::from_i64(0).lt(f.flops),
        f.flops
            .div(S::from_f64(spec.peak_flops()).mul(eff.max(S::from_f64(1e-4)))),
        S::from_f64(0.0),
    );

    // ---- memory time -------------------------------------------------
    let tile_traffic = f.grid.mul(f.reduce_outer).mul(f.shared_bytes_per_block);
    let read_traffic = if f.cache_shared {
        tile_traffic
    } else {
        tile_traffic.mul(S::from_f64(UNCACHED_TRAFFIC_PENALTY))
    };
    let read_traffic = read_traffic.max(f.input_bytes_total);
    let write_traffic = f.output_bytes;
    let coalesce = match (f.cache_shared, f.contiguous_inner) {
        (true, true) => 1.0,
        (true, false) => 0.6,
        (false, true) => 0.8,
        (false, false) => 0.25,
    };
    let bw = spec.mem_bw_gbps * 1e9 * coalesce;
    let mem_s = read_traffic.add(write_traffic).div(S::from_f64(bw));
    let mem_s = mem_s.add(f.data_node_bytes.div(S::from_f64(spec.mem_bw_gbps * 1e9)));

    let kernel_s = compute_s
        .max(mem_s)
        .add(S::from_f64(0.2).mul(compute_s.min(mem_s)));
    let launches = S::select(
        S::from_i64(0).lt(f.data_node_bytes),
        S::from_f64(2.0),
        S::from_f64(1.0),
    );
    Some(kernel_s.add(launches.mul(S::from_f64(spec.launch_overhead_s))))
}

/// The CPU model's inputs over an abstract scalar (flags concrete, as in
/// [`GpuIn`]).
#[derive(Debug, Clone, Copy)]
pub struct CpuIn<S> {
    /// Workload floating-point operations.
    pub flops: S,
    /// Total outer chunks (tile count).
    pub grid: S,
    /// Extent of the parallel (fused outermost) loop.
    pub parallel_chunks: S,
    /// Spatial points per innermost tile.
    pub thread_tile: S,
    /// Outer reduce factor product.
    pub reduce_outer: S,
    /// Vector length of the innermost loop.
    pub vector_len: S,
    /// Per-tile footprint bytes (L2 refetch proxy).
    pub shared_bytes_per_block: S,
    /// Innermost tile footprint bytes (L1 proxy).
    pub l1_tile_bytes: S,
    /// Middle tile footprint bytes (L2 proxy).
    pub l2_tile_bytes: S,
    /// Compulsory input traffic in bytes.
    pub input_bytes_total: S,
    /// Output bytes.
    pub output_bytes: S,
    /// Materialized-producer traffic in bytes.
    pub data_node_bytes: S,
    /// Whether inner loops are unrolled.
    pub unroll: bool,
    /// Whether the innermost loop is unit-stride.
    pub contiguous_inner: bool,
}

impl<S: Scalar> CpuIn<S> {
    /// Embeds one concrete feature row as points.
    pub fn of(f: &KernelFeatures) -> CpuIn<S> {
        CpuIn {
            flops: S::from_i64(f.flops as i64),
            grid: S::from_i64(f.grid),
            parallel_chunks: S::from_i64(f.parallel_chunks),
            thread_tile: S::from_i64(f.thread_tile),
            reduce_outer: S::from_i64(f.reduce_outer),
            vector_len: S::from_i64(f.vector_len),
            shared_bytes_per_block: S::from_i64(f.shared_bytes_per_block),
            l1_tile_bytes: S::from_i64(f.l1_tile_bytes),
            l2_tile_bytes: S::from_i64(f.l2_tile_bytes),
            input_bytes_total: S::from_i64(f.input_bytes_total),
            output_bytes: S::from_i64(f.output_bytes),
            data_node_bytes: S::from_i64(f.data_node_bytes),
            unroll: f.unroll,
            contiguous_inner: f.contiguous_inner,
        }
    }
}

impl CpuIn<Interval> {
    /// Builds interval inputs enclosing two corner feature rows (flags
    /// must agree; see [`GpuIn::enclosing`]).
    pub fn enclosing(lo: &KernelFeatures, hi: &KernelFeatures) -> CpuIn<Interval> {
        debug_assert_eq!(
            (lo.unroll, lo.contiguous_inner),
            (hi.unroll, hi.contiguous_inner),
        );
        let iv = |a: i64, b: i64| Interval::spanning(a as f64, b as f64);
        CpuIn {
            flops: iv(lo.flops as i64, hi.flops as i64),
            grid: iv(lo.grid, hi.grid),
            parallel_chunks: iv(lo.parallel_chunks, hi.parallel_chunks),
            thread_tile: iv(lo.thread_tile, hi.thread_tile),
            reduce_outer: iv(lo.reduce_outer, hi.reduce_outer),
            vector_len: iv(lo.vector_len, hi.vector_len),
            shared_bytes_per_block: iv(lo.shared_bytes_per_block, hi.shared_bytes_per_block),
            l1_tile_bytes: iv(lo.l1_tile_bytes, hi.l1_tile_bytes),
            l2_tile_bytes: iv(lo.l2_tile_bytes, hi.l2_tile_bytes),
            input_bytes_total: iv(lo.input_bytes_total, hi.input_bytes_total),
            output_bytes: iv(lo.output_bytes, hi.output_bytes),
            data_node_bytes: iv(lo.data_node_bytes, hi.data_node_bytes),
            unroll: lo.unroll,
            contiguous_inner: lo.contiguous_inner,
        }
    }
}

/// The CPU model over an abstract scalar — see [`crate::cpu::cpu_time`].
/// Total like the concrete model: every input is feasible on CPU.
pub fn cpu_time_generic<S: Scalar>(spec: &CpuSpec, f: &CpuIn<S>, code_quality: f64) -> S {
    let one = S::from_i64(1);
    // ---- threading ----------------------------------------------------
    let chunks = f.parallel_chunks.max(one);
    let cores = S::from_i64(spec.cores);
    let used_cores = chunks.min(cores);
    let rounds = chunks.add(cores).sub(one).floor_int_div(cores);
    let balance = chunks.div(rounds.mul(cores.min(chunks.max(one))));
    let effective_cores = used_cores.mul(balance.min(S::from_f64(1.0)));

    // ---- vectorization -------------------------------------------------
    let vw = spec.vector_width;
    let scalar_eff = S::from_f64(1.0 / vw as f64);
    let vec_eff = if f.contiguous_inner {
        let v = f.vector_len;
        let ceil_mult = v
            .add(S::from_i64(vw - 1))
            .floor_int_div(S::from_i64(vw))
            .mul(S::from_i64(vw));
        let vectorized = S::select(
            v.is_multiple_of(vw),
            S::from_f64(1.0),
            S::select(
                S::from_i64(vw).lt(v),
                v.div(ceil_mult.max(one)),
                v.div(S::from_i64(vw)),
            ),
        );
        S::select(one.lt(v), vectorized, scalar_eff)
    } else {
        scalar_eff
    };

    // ---- locality -------------------------------------------------------
    let l1_eff = S::select(
        f.l1_tile_bytes.le(S::from_i64(spec.l1_bytes)),
        S::from_f64(1.0),
        S::select(
            f.l1_tile_bytes.le(S::from_i64(spec.l2_bytes)),
            S::from_f64(0.75),
            S::from_f64(0.45),
        ),
    );
    let l2_eff = S::select(
        f.l2_tile_bytes.le(S::from_i64(spec.l2_bytes)),
        S::from_f64(1.0),
        S::select(
            f.l2_tile_bytes.le(S::from_i64(spec.l3_bytes / spec.cores)),
            S::from_f64(0.85),
            S::from_f64(0.6),
        ),
    );

    // ---- loop overhead ---------------------------------------------------
    let inner_trip = f.thread_tile.max(one);
    let overhead_eff = if f.unroll {
        S::from_f64(1.0)
    } else {
        S::select(
            S::from_i64(8).le(inner_trip),
            S::from_f64(1.0),
            S::from_f64(0.55).add(S::from_f64(0.05).mul(inner_trip)),
        )
    };

    let per_core_peak = spec.peak_flops() / spec.cores as f64;
    let eff = S::from_f64(code_quality)
        .mul(vec_eff)
        .mul(l1_eff)
        .mul(l2_eff)
        .mul(overhead_eff);
    let compute_s = S::select(
        S::from_i64(0).lt(f.flops),
        f.flops
            .div(S::from_f64(per_core_peak).mul(eff.max(S::from_f64(1e-4))))
            .div(effective_cores.max(S::from_f64(1.0))),
        S::from_f64(0.0),
    );

    // ---- memory -----------------------------------------------------------
    let chunk_count = f.grid.max(one);
    let refetch = S::select(
        f.shared_bytes_per_block.le(S::from_i64(spec.l2_bytes)),
        S::from_f64(0.5),
        S::from_f64(1.0),
    );
    let tile_traffic = chunk_count
        .mul(f.reduce_outer)
        .mul(f.shared_bytes_per_block)
        .mul(refetch);
    let compulsory = f.input_bytes_total;
    let read_traffic = S::select(
        f.input_bytes_total.le(S::from_i64(spec.l3_bytes)),
        compulsory.add(S::from_f64(0.35).mul(tile_traffic.sub(compulsory).max(S::from_f64(0.0)))),
        tile_traffic.max(compulsory),
    );
    let bw = spec.mem_bw_gbps * 1e9;
    let mem_s = read_traffic.add(f.output_bytes).div(S::from_f64(bw));
    let mem_s = mem_s.add(f.data_node_bytes.div(S::from_f64(bw)));

    let spawn = S::select(
        one.lt(chunks),
        S::from_f64(spec.spawn_overhead_s),
        S::from_f64(0.0),
    );
    compute_s
        .max(mem_s)
        .add(S::from_f64(0.2).mul(compute_s.min(mem_s)))
        .add(spawn)
}

/// The FPGA model's inputs over an abstract scalar. `partition` and
/// `pipeline` are schedule knobs a region fixes per query, so they stay
/// concrete.
#[derive(Debug, Clone, Copy)]
pub struct FpgaIn<S> {
    /// Workload floating-point operations.
    pub flops: S,
    /// Parallel processing elements.
    pub pe: S,
    /// Sequential execution rounds.
    pub rounds: S,
    /// On-chip input-buffer bytes per round.
    pub buffer_bytes: S,
    /// DDR bytes streamed per round.
    pub stream_bytes: S,
    /// Output bytes drained per round.
    pub write_bytes: S,
    /// Memory partition factor.
    pub partition: i64,
    /// Pipeline stages overlapped (1–3).
    pub pipeline: i64,
}

impl<S: Scalar> FpgaIn<S> {
    /// Embeds one concrete feature row as points.
    pub fn of(flops: u64, fp: &FpgaFeatures) -> FpgaIn<S> {
        FpgaIn {
            flops: S::from_i64(flops as i64),
            pe: S::from_i64(fp.pe),
            rounds: S::from_i64(fp.rounds),
            buffer_bytes: S::from_i64(fp.buffer_bytes),
            stream_bytes: S::from_i64(fp.stream_bytes),
            write_bytes: S::from_i64(fp.write_bytes),
            partition: fp.partition,
            pipeline: fp.pipeline,
        }
    }
}

impl FpgaIn<Interval> {
    /// Builds interval inputs enclosing two corner rows. `partition` and
    /// `pipeline` must agree between the corners.
    pub fn enclosing(
        lo_flops: u64,
        lo: &FpgaFeatures,
        hi_flops: u64,
        hi: &FpgaFeatures,
    ) -> FpgaIn<Interval> {
        debug_assert_eq!((lo.partition, lo.pipeline), (hi.partition, hi.pipeline));
        let iv = |a: i64, b: i64| Interval::spanning(a as f64, b as f64);
        FpgaIn {
            flops: iv(lo_flops as i64, hi_flops as i64),
            pe: iv(lo.pe, hi.pe),
            rounds: iv(lo.rounds, hi.rounds),
            buffer_bytes: iv(lo.buffer_bytes, hi.buffer_bytes),
            stream_bytes: iv(lo.stream_bytes, hi.stream_bytes),
            write_bytes: iv(lo.write_bytes, hi.write_bytes),
            partition: lo.partition,
            pipeline: lo.pipeline,
        }
    }
}

/// The FPGA pipeline model over an abstract scalar — see
/// [`crate::fpga::fpga_time`]. `None` means no member fits the DSP/BRAM
/// budgets.
pub fn fpga_time_generic<S: Scalar>(
    spec: &FpgaSpec,
    f: &FpgaIn<S>,
    code_quality: f64,
) -> Option<S> {
    let one = S::from_i64(1);
    let pe = f.pe.constrain_le(S::from_i64(spec.max_pe()))?;
    let buffers = f.buffer_bytes.add(f.write_bytes);
    let bram_need = if f.pipeline >= 2 {
        buffers.mul(S::from_i64(2))
    } else {
        buffers
    };
    bram_need.constrain_le(S::from_i64(spec.bram_bytes))?;

    let rounds = f.rounds.max(one);

    let total_macs = f.flops.floor_int_div(S::from_i64(2));
    let macs_per_round = total_macs.div(rounds);
    let c = S::select(
        S::from_i64(0).lt(total_macs),
        macs_per_round
            .div(pe.mul(S::from_f64(code_quality.max(1e-3))))
            .div(S::from_f64(spec.clock_ghz * 1e9)),
        S::from_f64(0.0),
    );

    let onchip_bw = spec.bank_bw_gbps * f.partition as f64;
    let read_bw = spec.ddr_bw_gbps.min(onchip_bw) * 1e9;
    let r = f.stream_bytes.div(S::from_f64(read_bw));
    let w = f.write_bytes.div(S::from_f64(read_bw));

    let per_round = match f.pipeline {
        1 => r.add(c).add(w),
        2 => r.max(c).add(w),
        _ => r.max(c).max(w),
    };
    Some(rounds.mul(per_round).add(r.add(c).add(w)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuRow;
    use crate::fpga::FpgaRow;
    use crate::gpu::GpuRow;
    use crate::spec::{v100, vu9p, xeon_e5_2699_v4};
    use flextensor_ir::ops;
    use flextensor_schedule::config::{NodeConfig, TargetKind};
    use flextensor_schedule::lower::lower;

    /// A spread of lowered feature rows per target: tuned, naive,
    /// infeasible and FPGA-flavored schedules over a few ops.
    fn sample_features(target: TargetKind) -> Vec<KernelFeatures> {
        let mut out = Vec::new();
        let g = ops::gemm(256, 256, 256);
        let mut cfgs = vec![NodeConfig::naive(g.root_op())];
        {
            let mut c = NodeConfig::naive(g.root_op());
            c.spatial_splits = vec![vec![8, 1, 16, 2], vec![8, 1, 16, 2]];
            c.reduce_splits = vec![vec![64, 2, 2]];
            c.cache_shared = true;
            c.unroll = true;
            c.vectorize = true;
            cfgs.push(c);
        }
        {
            // 64x64 threads per block: infeasible on GPU.
            let mut c = NodeConfig::naive(g.root_op());
            c.spatial_splits = vec![vec![1, 1, 64, 4], vec![1, 1, 64, 4]];
            cfgs.push(c);
        }
        {
            let mut c = NodeConfig::naive(g.root_op());
            c.spatial_splits = vec![vec![16, 2, 4, 2], vec![4, 2, 8, 4]];
            c.reduce_splits = vec![vec![16, 4, 4]];
            c.fuse_outer = 2;
            c.fpga_partition = 4;
            c.fpga_pipeline = 2;
            c.vectorize = true;
            cfgs.push(c);
        }
        for cfg in &cfgs {
            out.push(lower(&g, cfg, target).unwrap().features);
        }
        let conv = ops::conv2d(ops::ConvParams::same(1, 64, 64, 3), 28, 28);
        let mut c = NodeConfig::naive(conv.root_op());
        c.spatial_splits = vec![
            vec![1, 1, 1, 1],
            vec![4, 1, 16, 1],
            vec![28, 1, 1, 1],
            vec![4, 1, 1, 7],
        ];
        c.fpga_pipeline = 3;
        c.fpga_partition = 8;
        out.push(lower(&conv, &c, target).unwrap().features);
        out
    }

    #[test]
    fn generic_f64_gpu_is_bit_identical_to_row_path() {
        let spec = v100();
        for f in sample_features(TargetKind::Gpu) {
            let concrete = crate::gpu::gpu_time_row(&spec, GpuRow::of(&f), 0.75);
            let generic = gpu_time_generic::<f64>(&spec, &GpuIn::of(&f), 0.75);
            assert_eq!(
                concrete.map(f64::to_bits),
                generic.map(f64::to_bits),
                "diverged on {f:?}"
            );
        }
    }

    #[test]
    fn generic_f64_cpu_is_bit_identical_to_row_path() {
        let spec = xeon_e5_2699_v4();
        for f in sample_features(TargetKind::Cpu) {
            let concrete = crate::cpu::cpu_time_row(&spec, CpuRow::of(&f), 0.75);
            let generic = cpu_time_generic::<f64>(&spec, &CpuIn::of(&f), 0.75);
            assert_eq!(concrete.to_bits(), generic.to_bits(), "diverged on {f:?}");
        }
    }

    #[test]
    fn generic_f64_fpga_is_bit_identical_to_row_path() {
        let spec = vu9p();
        for f in sample_features(TargetKind::Fpga) {
            let fp = f.fpga.as_ref().unwrap();
            let concrete = crate::fpga::fpga_time_row(&spec, FpgaRow::of(f.flops, fp), 0.85);
            let generic = fpga_time_generic::<f64>(&spec, &FpgaIn::of(f.flops, fp), 0.85);
            assert_eq!(
                concrete.map(f64::to_bits),
                generic.map(f64::to_bits),
                "diverged on {f:?}"
            );
        }
    }

    #[test]
    fn generic_f64_survives_adversarial_rows() {
        // Direct row construction: edge values the lowered samples do not
        // reach (zero flops, zero shared bytes, spill-sized register
        // tiles, single-thread blocks, materialized producers).
        let spec = v100();
        let base = GpuRow {
            flops: 0,
            grid: 1,
            block_threads: 1,
            thread_tile: 1,
            vthreads: 1,
            reduce_outer: 1,
            shared_bytes_per_block: 0,
            thread_reg_bytes: 0,
            input_bytes_total: 0,
            output_bytes: 4,
            data_node_bytes: 0,
            unroll: false,
            contiguous_inner: false,
            cache_shared: false,
        };
        let mut rows = vec![base];
        for (reg, dnb, flops, tpb) in [
            (4096i64, 1_000_000i64, 1_u64 << 33, 1024i64),
            (2000, 0, 12345, 33),
            (100, 7, 2, 1025), // infeasible: too many threads
        ] {
            let mut r = base;
            r.thread_reg_bytes = reg;
            r.data_node_bytes = dnb;
            r.flops = flops;
            r.block_threads = tpb;
            r.unroll = true;
            r.cache_shared = true;
            r.shared_bytes_per_block = 4096;
            rows.push(r);
        }
        for r in rows {
            let concrete = crate::gpu::gpu_time_row(&spec, r, 0.75);
            let f = GpuIn {
                flops: r.flops as i64 as f64,
                grid: r.grid as f64,
                block_threads: r.block_threads as f64,
                thread_tile: r.thread_tile as f64,
                vthreads: r.vthreads as f64,
                reduce_outer: r.reduce_outer as f64,
                shared_bytes_per_block: r.shared_bytes_per_block as f64,
                thread_reg_bytes: r.thread_reg_bytes as f64,
                input_bytes_total: r.input_bytes_total as f64,
                output_bytes: r.output_bytes as f64,
                data_node_bytes: r.data_node_bytes as f64,
                unroll: r.unroll,
                contiguous_inner: r.contiguous_inner,
                cache_shared: r.cache_shared,
            };
            let generic = gpu_time_generic::<f64>(&spec, &f, 0.75);
            assert_eq!(concrete.map(f64::to_bits), generic.map(f64::to_bits));
        }
    }

    #[test]
    fn interval_evaluation_encloses_member_rows() {
        // Corner rows plus interpolated members must land inside the
        // interval result on every device.
        let gpu = v100();
        let cpu = xeon_e5_2699_v4();
        let fpga = vu9p();
        for target in [TargetKind::Gpu, TargetKind::Cpu, TargetKind::Fpga] {
            let feats = sample_features(target);
            for a in &feats {
                for b in &feats {
                    if (a.unroll, a.contiguous_inner, a.cache_shared)
                        != (b.unroll, b.contiguous_inner, b.cache_shared)
                    {
                        continue;
                    }
                    match target {
                        TargetKind::Gpu => {
                            let iv = gpu_time_generic(&gpu, &GpuIn::enclosing(a, b), 0.75);
                            for m in [a, b] {
                                if let Some(t) = crate::gpu::gpu_time(&gpu, m, 0.75) {
                                    let iv = iv.expect("feasible member but interval infeasible");
                                    assert!(iv.contains(t), "{t} outside {iv:?}");
                                }
                            }
                        }
                        TargetKind::Cpu => {
                            let iv = cpu_time_generic(&cpu, &CpuIn::enclosing(a, b), 0.75);
                            for m in [a, b] {
                                let t = crate::cpu::cpu_time(&cpu, m, 0.75).unwrap();
                                assert!(iv.contains(t), "{t} outside {iv:?}");
                            }
                        }
                        TargetKind::Fpga => {
                            let (fa, fb) = (a.fpga.as_ref().unwrap(), b.fpga.as_ref().unwrap());
                            if (fa.partition, fa.pipeline) != (fb.partition, fb.pipeline) {
                                continue;
                            }
                            let iv = fpga_time_generic(
                                &fpga,
                                &FpgaIn::enclosing(a.flops, fa, b.flops, fb),
                                0.85,
                            );
                            for m in [a, b] {
                                if let Some(t) = crate::fpga::fpga_time(&fpga, m, 0.85) {
                                    let iv = iv.expect("feasible member but interval infeasible");
                                    assert!(iv.contains(t), "{t} outside {iv:?}");
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn dual_path_runs_the_models_and_matches_values() {
        // The Dual stub must follow exactly the f64 branches: values agree
        // bit for bit, and the gradient seed survives the smooth stages.
        let spec = v100();
        for f in sample_features(TargetKind::Gpu) {
            let concrete = crate::gpu::gpu_time(&spec, &f, 0.75);
            let mut d = GpuIn::<crate::scalar::Dual>::of(&f);
            d.flops = crate::scalar::Dual::variable(f.flops as i64 as f64);
            let dual = gpu_time_generic(&spec, &d, 0.75);
            assert_eq!(
                concrete.map(f64::to_bits),
                dual.map(|x| x.val.to_bits()),
                "dual value diverged on {f:?}"
            );
            if f.flops > 0 {
                if let Some(dv) = dual {
                    assert!(dv.grad >= 0.0, "cost must not decrease in flops");
                }
            }
        }
    }

    #[test]
    fn unused_concrete_row_helpers_stay_wired() {
        // The concrete row paths remain the batch-path reference; keep
        // them exercised from this module so the differential direction
        // (generic vs. row) is explicit.
        let spec = v100();
        let f = sample_features(TargetKind::Gpu).remove(1);
        assert_eq!(
            crate::gpu::gpu_time_row(&spec, GpuRow::of(&f), 0.75).map(f64::to_bits),
            crate::gpu::gpu_time(&spec, &f, 0.75).map(f64::to_bits),
        );
        let cf = sample_features(TargetKind::Cpu).remove(1);
        let cspec = xeon_e5_2699_v4();
        assert_eq!(
            crate::cpu::cpu_time_row(&cspec, CpuRow::of(&cf), 0.75).to_bits(),
            crate::cpu::cpu_time(&cspec, &cf, 0.75).unwrap().to_bits(),
        );
        let ff = sample_features(TargetKind::Fpga).remove(4);
        let fp = ff.fpga.as_ref().unwrap();
        let fspec = vu9p();
        assert_eq!(
            crate::fpga::fpga_time_row(&fspec, FpgaRow::of(ff.flops, fp), 0.85).map(f64::to_bits),
            crate::fpga::fpga_time(&fspec, &ff, 0.85).map(f64::to_bits),
        );
    }
}
