//! Analytical CPU performance model.
//!
//! Captures the effects FlexTensor's CPU schedules manipulate (§5.3,
//! Fig. 4a): multithreading over the fused outermost loop (with load
//! imbalance from chunk quantization), SIMD vectorization of the innermost
//! loop (legality requires unit stride; efficiency depends on how the
//! vector length matches the machine width), register blocking / multi-level
//! tiling (L1/L2 fit), unrolling (loop overhead on short inner loops), and
//! DRAM traffic from tile re-fetching.

use flextensor_schedule::features::KernelFeatures;

use crate::spec::CpuSpec;

/// The exact subset of [`KernelFeatures`] the CPU model reads, flattened
/// into one `Copy` row. The scalar entry point builds one row per call;
/// [`crate::batch::FeatureBatch`] stores the same columns
/// structure-of-arrays and feeds them through the identical
/// [`cpu_time_row`] arithmetic, which is what makes the batched path
/// bit-identical to the scalar one by construction.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct CpuRow {
    pub flops: u64,
    pub grid: i64,
    pub parallel_chunks: i64,
    pub thread_tile: i64,
    pub reduce_outer: i64,
    pub vector_len: i64,
    pub shared_bytes_per_block: i64,
    pub l1_tile_bytes: i64,
    pub l2_tile_bytes: i64,
    pub input_bytes_total: i64,
    pub output_bytes: i64,
    pub data_node_bytes: i64,
    pub unroll: bool,
    pub contiguous_inner: bool,
}

impl CpuRow {
    // The scalar entry point now routes through the generic body; row
    // construction from features remains as the reference side of the
    // generic-vs-row differential tests.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn of(f: &KernelFeatures) -> CpuRow {
        CpuRow {
            flops: f.flops,
            grid: f.grid,
            parallel_chunks: f.parallel_chunks,
            thread_tile: f.thread_tile,
            reduce_outer: f.reduce_outer,
            vector_len: f.vector_len,
            shared_bytes_per_block: f.shared_bytes_per_block,
            l1_tile_bytes: f.l1_tile_bytes,
            l2_tile_bytes: f.l2_tile_bytes,
            input_bytes_total: f.input_bytes_total,
            output_bytes: f.output_bytes,
            data_node_bytes: f.data_node_bytes,
            unroll: f.unroll,
            contiguous_inner: f.contiguous_inner,
        }
    }
}

/// Estimates kernel time in seconds; `None` when the configuration is
/// infeasible (never on CPU — everything runs, just possibly slowly — so
/// this returns `Some` for all valid features; the `Option` keeps the
/// interface uniform across targets).
///
/// Routes through the generic model body at `S = f64`
/// ([`crate::generic::cpu_time_generic`]), bit-identical to
/// `cpu_time_row` (pinned by the differential tests in
/// `crate::generic`); the batched path keeps the concrete row kernel.
pub fn cpu_time(spec: &CpuSpec, f: &KernelFeatures, code_quality: f64) -> Option<f64> {
    Some(crate::generic::cpu_time_generic::<f64>(
        spec,
        &crate::generic::CpuIn::of(f),
        code_quality,
    ))
}

/// The CPU model arithmetic over one feature row — the single
/// implementation shared by the scalar and batched entry points.
pub(crate) fn cpu_time_row(spec: &CpuSpec, f: CpuRow, code_quality: f64) -> f64 {
    // ---- threading ----------------------------------------------------
    let chunks = f.parallel_chunks.max(1);
    let used_cores = chunks.min(spec.cores);
    let rounds = (chunks + spec.cores - 1) / spec.cores;
    let balance = chunks as f64 / (rounds * spec.cores.min(chunks.max(1))) as f64;
    let effective_cores = used_cores as f64 * balance.min(1.0);

    // ---- vectorization -------------------------------------------------
    let vw = spec.vector_width;
    let vec_eff = if f.vector_len > 1 && f.contiguous_inner {
        let v = f.vector_len;
        if v % vw == 0 {
            1.0
        } else if v > vw {
            v as f64 / (((v + vw - 1) / vw) * vw) as f64
        } else {
            v as f64 / vw as f64
        }
    } else {
        // Scalar code: one lane, but superscalar issue still retires ~2
        // scalar FLOPs per cycle.
        1.0 / vw as f64
    };

    // ---- locality -------------------------------------------------------
    let l1_eff = if f.l1_tile_bytes <= spec.l1_bytes {
        1.0
    } else if f.l1_tile_bytes <= spec.l2_bytes {
        0.75
    } else {
        0.45
    };
    let l2_eff = if f.l2_tile_bytes <= spec.l2_bytes {
        1.0
    } else if f.l2_tile_bytes <= spec.l3_bytes / spec.cores {
        0.85
    } else {
        0.6
    };

    // ---- loop overhead ---------------------------------------------------
    let inner_trip = (f.thread_tile).max(1);
    let overhead_eff = if inner_trip >= 8 || f.unroll {
        1.0
    } else {
        0.55 + 0.05 * inner_trip as f64
    };

    let per_core_peak = spec.peak_flops() / spec.cores as f64;
    let eff = code_quality * vec_eff * l1_eff * l2_eff * overhead_eff;
    let compute_s = if f.flops == 0 {
        0.0
    } else {
        f.flops as f64 / (per_core_peak * eff.max(1e-4)) / effective_cores.max(1.0)
    };

    // ---- memory -----------------------------------------------------------
    // Each outermost chunk streams its tile footprint once per outer reduce
    // step; tiles that fit in L2 amortize refetches across steps.
    let chunk_count = f.grid.max(1) as f64;
    let refetch = if f.shared_bytes_per_block <= spec.l2_bytes {
        0.5
    } else {
        1.0
    };
    let tile_traffic =
        chunk_count * f.reduce_outer as f64 * f.shared_bytes_per_block as f64 * refetch;
    let compulsory = f.input_bytes_total as f64;
    // Cross-chunk reuse: when the whole working set fits in the shared
    // L3, tile re-reads beyond the first pass mostly hit cache rather
    // than DRAM.
    let read_traffic = if f.input_bytes_total <= spec.l3_bytes {
        compulsory + 0.35 * (tile_traffic - compulsory).max(0.0)
    } else {
        tile_traffic.max(compulsory)
    };
    let mut mem_s = (read_traffic + f.output_bytes as f64) / (spec.mem_bw_gbps * 1e9);
    mem_s += f.data_node_bytes as f64 / (spec.mem_bw_gbps * 1e9);

    let spawn = if chunks > 1 {
        spec.spawn_overhead_s
    } else {
        0.0
    };
    compute_s.max(mem_s) + 0.2 * compute_s.min(mem_s) + spawn
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::xeon_e5_2699_v4;
    use flextensor_ir::ops;
    use flextensor_schedule::config::{NodeConfig, TargetKind};
    use flextensor_schedule::lower::lower;

    fn gemm_features(sp: Vec<Vec<i64>>, rd: Vec<i64>, fuse: usize, vec: bool) -> KernelFeatures {
        let g = ops::gemm(512, 512, 512);
        let mut cfg = NodeConfig::naive(g.root_op());
        cfg.spatial_splits = sp;
        cfg.reduce_splits = vec![rd];
        cfg.fuse_outer = fuse;
        cfg.vectorize = vec;
        cfg.unroll = true;
        lower(&g, &cfg, TargetKind::Cpu).unwrap().features
    }

    #[test]
    fn tuned_gemm_beats_naive_substantially() {
        let spec = xeon_e5_2699_v4();
        let tuned = gemm_features(
            vec![vec![16, 2, 4, 4], vec![8, 2, 4, 8]],
            vec![32, 4, 4],
            2,
            true,
        );
        let g = ops::gemm(512, 512, 512);
        let naive = lower(&g, &NodeConfig::naive(g.root_op()), TargetKind::Cpu)
            .unwrap()
            .features;
        let tt = cpu_time(&spec, &tuned, 0.7).unwrap();
        let tn = cpu_time(&spec, &naive, 0.7).unwrap();
        assert!(tn > 5.0 * tt, "naive {tn} vs tuned {tt}");
        let gflops = tuned.flops as f64 / tt / 1e9;
        assert!(gflops > 100.0, "tuned GEMM {gflops:.0} GFLOPS");
        assert!(gflops < 1600.0, "exceeds peak {gflops:.0}");
    }

    #[test]
    fn vector_width_match_matters() {
        let spec = xeon_e5_2699_v4();
        // Identical tiling except innermost j factor: 8 (matches AVX2)
        // vs 2 (wastes lanes).
        let v8 = gemm_features(
            vec![vec![16, 2, 4, 4], vec![8, 2, 4, 8]],
            vec![32, 4, 4],
            2,
            true,
        );
        let v2 = gemm_features(
            vec![vec![16, 2, 4, 4], vec![8, 2, 16, 2]],
            vec![32, 4, 4],
            2,
            true,
        );
        let t8 = cpu_time(&spec, &v8, 0.7).unwrap();
        let t2 = cpu_time(&spec, &v2, 0.7).unwrap();
        assert!(t8 < t2, "v8 {t8} vs v2 {t2}");
    }

    #[test]
    fn parallel_chunks_quantize_to_cores() {
        let spec = xeon_e5_2699_v4();
        // 23 chunks on 22 cores -> two rounds, terrible balance; 22 chunks
        // (well, 16) balance better.
        let c16 = gemm_features(
            vec![vec![16, 2, 4, 4], vec![1, 4, 16, 8]],
            vec![32, 4, 4],
            1,
            true,
        );
        let t16 = cpu_time(&spec, &c16, 0.7).unwrap();
        // Compare against a single-chunk (serial) schedule.
        let c1 = gemm_features(
            vec![vec![1, 32, 4, 4], vec![1, 4, 16, 8]],
            vec![32, 4, 4],
            1,
            true,
        );
        let t1 = cpu_time(&spec, &c1, 0.7).unwrap();
        assert!(t16 < t1 / 4.0, "parallel {t16} vs serial {t1}");
    }

    #[test]
    fn l1_resident_tiles_help() {
        let spec = xeon_e5_2699_v4();
        let small = gemm_features(
            vec![vec![16, 4, 8, 1], vec![8, 8, 1, 8]],
            vec![64, 8, 1],
            2,
            true,
        );
        let huge = gemm_features(
            vec![vec![16, 1, 1, 32], vec![8, 1, 1, 64]],
            vec![4, 1, 128],
            2,
            true,
        );
        assert!(small.l1_tile_bytes <= spec.l1_bytes);
        assert!(huge.l1_tile_bytes > spec.l1_bytes);
        let ts = cpu_time(&spec, &small, 0.7).unwrap();
        let th = cpu_time(&spec, &huge, 0.7).unwrap();
        assert!(ts < th, "small-tile {ts} vs huge-tile {th}");
    }
}
