//! The abstract scalar domain the cost models are generic over.
//!
//! The analytical device models in this crate are straight-line
//! arithmetic: products of efficiencies, a handful of guarded integer
//! divisions, min/max combines and data-dependent branches. Writing that
//! arithmetic once against the [`Scalar`] trait gives three model
//! instantiations from a single body:
//!
//! * [`f64`] — the concrete models. The trait implementation performs the
//!   exact IEEE-754 operation the hand-written models perform, in the same
//!   order, so the generic path is **bit-identical** to the concrete one
//!   (pinned by differential tests in `crate::generic`).
//! * [`Interval`] — outward-rounding interval arithmetic. Evaluating a
//!   model over intervals yields a *sound enclosure* of every concrete
//!   `f64` result reachable from member inputs, which is what powers the
//!   region-level branch-and-bound pruning in `flextensor-analyze`.
//! * [`Dual`] — forward-mode dual numbers, a stub reserved for the
//!   future gradient tuner (ROADMAP item 1b): carries `d/dx` through the
//!   smooth parts of the models and a zero derivative through the
//!   piecewise-constant integer stages.
//!
//! # Comparisons are three-valued
//!
//! A branch like `if shared > 0` is decided for a point but may be
//! *undecided* for an interval that straddles the threshold, so
//! comparisons return a [`Trilean`] and branches are expressed as
//! [`Scalar::select`], which hulls both arms when the condition is
//! [`Trilean::Unknown`]. `select` is **strict** — both arms are always
//! evaluated — so model bodies guard the divisors of untaken arms
//! (mirroring the `.max(1)` guards of the concrete models).

/// A three-valued truth value: the result of comparing abstract scalars.
///
/// For point domains (`f64`, [`Dual`]) comparisons always return
/// [`Trilean::True`] or [`Trilean::False`]; [`Trilean::Unknown`] arises
/// only for set domains ([`Interval`]) whose members disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trilean {
    /// The predicate holds for every member.
    True,
    /// The predicate fails for every member.
    False,
    /// Members disagree (or the domain cannot decide).
    Unknown,
}

/// The abstract-scalar interface of the cost models.
///
/// Implementations must satisfy, for every operation, the *soundness
/// contract*: the result of the abstract operation contains (or, for
/// point domains, equals) every value obtainable by applying the concrete
/// `f64` operation to member values. The `f64` implementation is the
/// identity instantiation: each method performs exactly one concrete
/// IEEE-754 operation (or `i64` integer division), which is what makes
/// the generic model bodies bit-identical to the hand-written ones.
///
/// All model inputs are non-negative integers materialized exactly in
/// `f64` (they are far below 2^53); the integer-division methods rely on
/// that exactness.
pub trait Scalar: Copy + Sized + core::fmt::Debug {
    /// Embeds an exact integer constant.
    fn from_i64(v: i64) -> Self;
    /// Embeds a finite `f64` constant (must not be NaN).
    fn from_f64(v: f64) -> Self;
    /// IEEE-754 addition.
    fn add(self, rhs: Self) -> Self;
    /// IEEE-754 subtraction.
    fn sub(self, rhs: Self) -> Self;
    /// IEEE-754 multiplication.
    fn mul(self, rhs: Self) -> Self;
    /// IEEE-754 division. The divisor must not contain zero unless the
    /// result is discarded by an enclosing [`Scalar::select`] arm.
    fn div(self, rhs: Self) -> Self;
    /// Pointwise minimum (`f64::min`).
    fn min(self, rhs: Self) -> Self;
    /// Pointwise maximum (`f64::max`).
    fn max(self, rhs: Self) -> Self;
    /// Truncating integer division `(self as i64) / (rhs as i64)`.
    ///
    /// Both operands must hold exact non-negative integers and the
    /// divisor must be at least one (model bodies guard with
    /// `.max(one)` exactly where the concrete models guard with
    /// `.max(1)`).
    fn floor_int_div(self, rhs: Self) -> Self;
    /// Ceiling integer division `(self + rhs - 1) / rhs` over exact
    /// non-negative integers with `rhs >= 1`.
    fn ceil_int_div(self, rhs: Self) -> Self {
        self.add(rhs).sub(Self::from_i64(1)).floor_int_div(rhs)
    }
    /// Three-valued `self < rhs`.
    fn lt(self, rhs: Self) -> Trilean;
    /// Three-valued `self <= rhs`.
    fn le(self, rhs: Self) -> Trilean;
    /// Branch on a comparison: `t` when `cond` is true, `f` when false,
    /// and a sound join of both arms when undecided. Strict in both
    /// arms.
    fn select(cond: Trilean, t: Self, f: Self) -> Self;
    /// Keeps only the members satisfying `self >= bound` (`bound` must be
    /// a point). Returns `None` when no member does — for point domains
    /// this is exactly the concrete `if self < bound { return None }`
    /// feasibility check.
    fn constrain_ge(self, bound: Self) -> Option<Self>;
    /// Keeps only the members satisfying `self <= bound` (`bound` must be
    /// a point); `None` when no member does.
    fn constrain_le(self, bound: Self) -> Option<Self>;
    /// Three-valued "`self` is an exact multiple of `m`" over integer
    /// members, for `m >= 1`.
    fn is_multiple_of(self, m: i64) -> Trilean;
}

// ---------------------------------------------------------------------------
// f64: the identity instantiation
// ---------------------------------------------------------------------------

impl Scalar for f64 {
    fn from_i64(v: i64) -> f64 {
        v as f64
    }
    fn from_f64(v: f64) -> f64 {
        v
    }
    fn add(self, rhs: f64) -> f64 {
        self + rhs
    }
    fn sub(self, rhs: f64) -> f64 {
        self - rhs
    }
    fn mul(self, rhs: f64) -> f64 {
        self * rhs
    }
    fn div(self, rhs: f64) -> f64 {
        self / rhs
    }
    fn min(self, rhs: f64) -> f64 {
        f64::min(self, rhs)
    }
    fn max(self, rhs: f64) -> f64 {
        f64::max(self, rhs)
    }
    fn floor_int_div(self, rhs: f64) -> f64 {
        ((self as i64) / (rhs as i64)) as f64
    }
    fn lt(self, rhs: f64) -> Trilean {
        if self < rhs {
            Trilean::True
        } else {
            Trilean::False
        }
    }
    fn le(self, rhs: f64) -> Trilean {
        if self <= rhs {
            Trilean::True
        } else {
            Trilean::False
        }
    }
    fn select(cond: Trilean, t: f64, f: f64) -> f64 {
        match cond {
            Trilean::True => t,
            Trilean::False => f,
            Trilean::Unknown => f64::min(t, f), // unreachable for points; any sound pick
        }
    }
    fn constrain_ge(self, bound: f64) -> Option<f64> {
        if self < bound {
            None
        } else {
            Some(self)
        }
    }
    fn constrain_le(self, bound: f64) -> Option<f64> {
        if self > bound {
            None
        } else {
            Some(self)
        }
    }
    fn is_multiple_of(self, m: i64) -> Trilean {
        if (self as i64) % m == 0 {
            Trilean::True
        } else {
            Trilean::False
        }
    }
}

// ---------------------------------------------------------------------------
// Interval: outward-rounding enclosures
// ---------------------------------------------------------------------------

/// Error from [`Interval::new`]: the requested bounds do not describe a
/// non-empty interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IntervalError {
    /// One of the bounds was NaN.
    Nan,
    /// The lower bound exceeded the upper bound.
    Inverted {
        /// The offending lower bound.
        lo: f64,
        /// The offending upper bound.
        hi: f64,
    },
}

impl core::fmt::Display for IntervalError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IntervalError::Nan => write!(f, "interval bound is NaN"),
            IntervalError::Inverted { lo, hi } => {
                write!(f, "inverted interval bounds: lo {lo} > hi {hi}")
            }
        }
    }
}

impl std::error::Error for IntervalError {}

/// A closed, non-empty `f64` interval `[lo, hi]`.
///
/// # Rounding contract
///
/// Arithmetic on intervals is *outward rounding with respect to concrete
/// `f64` arithmetic*: for any members `x ∈ a`, `y ∈ b`, the concrete
/// IEEE-754 result `x ⊙ y` lies inside `a ⊙ b`. Two mechanisms provide
/// this:
///
/// * corner evaluation — round-to-nearest is monotone in each operand,
///   so the min/max over the interval corners already encloses every
///   member result of a monotone operation;
/// * one-ulp outward widening on `add`/`sub`/`mul`/`div` as a defensive
///   margin (exact operations `min`/`max`/integer division are
///   corner-exact and not widened).
///
/// Note the contract encloses concrete **f64** results, not real-number
/// results; that is the direction the region analysis needs (its oracle
/// is the concrete model, not exact arithmetic).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

/// The next representable `f64` above `x` (saturates at infinity).
fn next_up(x: f64) -> f64 {
    if x.is_nan() || x == f64::INFINITY {
        return x;
    }
    if x == 0.0 {
        return f64::from_bits(1);
    }
    let bits = x.to_bits();
    if x > 0.0 {
        f64::from_bits(bits + 1)
    } else {
        f64::from_bits(bits - 1)
    }
}

/// The next representable `f64` below `x` (saturates at negative
/// infinity).
fn next_down(x: f64) -> f64 {
    if x.is_nan() || x == f64::NEG_INFINITY {
        return x;
    }
    if x == 0.0 {
        return -f64::from_bits(1);
    }
    let bits = x.to_bits();
    if x > 0.0 {
        f64::from_bits(bits - 1)
    } else {
        f64::from_bits(bits + 1)
    }
}

impl Interval {
    /// Builds `[lo, hi]`, rejecting NaN bounds and `lo > hi`.
    pub fn new(lo: f64, hi: f64) -> Result<Interval, IntervalError> {
        if lo.is_nan() || hi.is_nan() {
            return Err(IntervalError::Nan);
        }
        if lo > hi {
            return Err(IntervalError::Inverted { lo, hi });
        }
        Ok(Interval { lo, hi })
    }

    /// The degenerate interval `[v, v]` (`v` must not be NaN).
    pub fn point(v: f64) -> Interval {
        assert!(!v.is_nan(), "NaN cannot be an interval member");
        Interval { lo: v, hi: v }
    }

    /// Builds the enclosure of two samples in either order (never fails
    /// on finite inputs).
    pub fn spanning(a: f64, b: f64) -> Interval {
        assert!(
            !a.is_nan() && !b.is_nan(),
            "NaN cannot be an interval member"
        );
        Interval {
            lo: a.min(b),
            hi: a.max(b),
        }
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Whether `v` lies inside the interval.
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// The smallest interval containing both operands.
    pub fn hull(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Widens by one ulp on each side — the outward-rounding margin
    /// applied after inexact arithmetic.
    fn widened(lo: f64, hi: f64) -> Interval {
        Interval {
            lo: next_down(lo),
            hi: next_up(hi),
        }
    }
}

impl Scalar for Interval {
    fn from_i64(v: i64) -> Interval {
        Interval::point(v as f64)
    }
    fn from_f64(v: f64) -> Interval {
        Interval::point(v)
    }
    fn add(self, rhs: Interval) -> Interval {
        Interval::widened(self.lo + rhs.lo, self.hi + rhs.hi)
    }
    fn sub(self, rhs: Interval) -> Interval {
        Interval::widened(self.lo - rhs.hi, self.hi - rhs.lo)
    }
    fn mul(self, rhs: Interval) -> Interval {
        let c = [
            self.lo * rhs.lo,
            self.lo * rhs.hi,
            self.hi * rhs.lo,
            self.hi * rhs.hi,
        ];
        let mut lo = c[0];
        let mut hi = c[0];
        for &v in &c[1..] {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Interval::widened(lo, hi)
    }
    fn div(self, rhs: Interval) -> Interval {
        if rhs.lo <= 0.0 && rhs.hi >= 0.0 {
            // Divisor straddles zero: no finite enclosure. The model
            // bodies guard divisors, so this arises only in discarded
            // select arms; top is a sound (if useless) answer.
            return Interval {
                lo: f64::NEG_INFINITY,
                hi: f64::INFINITY,
            };
        }
        let c = [
            self.lo / rhs.lo,
            self.lo / rhs.hi,
            self.hi / rhs.lo,
            self.hi / rhs.hi,
        ];
        let mut lo = c[0];
        let mut hi = c[0];
        for &v in &c[1..] {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Interval::widened(lo, hi)
    }
    fn min(self, rhs: Interval) -> Interval {
        Interval {
            lo: self.lo.min(rhs.lo),
            hi: self.hi.min(rhs.hi),
        }
    }
    fn max(self, rhs: Interval) -> Interval {
        Interval {
            lo: self.lo.max(rhs.lo),
            hi: self.hi.max(rhs.hi),
        }
    }
    fn floor_int_div(self, rhs: Interval) -> Interval {
        // Exact 4-corner evaluation over i64 quotients. Sound for
        // non-negative numerators and divisors >= 1: truncating division
        // is monotone non-decreasing in the numerator and non-increasing
        // in the divisor, so the extrema sit at corners. Bounds widened
        // outward to integers first so non-integral (ulp-widened) bounds
        // still cover all integer members.
        let n_lo = self.lo.floor() as i64;
        let n_hi = self.hi.ceil() as i64;
        let d_lo = (rhs.lo.floor() as i64).max(1);
        let d_hi = (rhs.hi.ceil() as i64).max(1);
        let c = [n_lo / d_lo, n_lo / d_hi, n_hi / d_lo, n_hi / d_hi];
        let mut lo = c[0];
        let mut hi = c[0];
        for &v in &c[1..] {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Interval {
            lo: lo as f64,
            hi: hi as f64,
        }
    }
    fn lt(self, rhs: Interval) -> Trilean {
        if self.hi < rhs.lo {
            Trilean::True
        } else if self.lo >= rhs.hi {
            Trilean::False
        } else {
            Trilean::Unknown
        }
    }
    fn le(self, rhs: Interval) -> Trilean {
        if self.hi <= rhs.lo {
            Trilean::True
        } else if self.lo > rhs.hi {
            Trilean::False
        } else {
            Trilean::Unknown
        }
    }
    fn select(cond: Trilean, t: Interval, f: Interval) -> Interval {
        match cond {
            Trilean::True => t,
            Trilean::False => f,
            Trilean::Unknown => t.hull(f),
        }
    }
    fn constrain_ge(self, bound: Interval) -> Option<Interval> {
        let b = bound.lo;
        if self.hi < b {
            None
        } else {
            Some(Interval {
                lo: self.lo.max(b),
                hi: self.hi,
            })
        }
    }
    fn constrain_le(self, bound: Interval) -> Option<Interval> {
        let b = bound.hi;
        if self.lo > b {
            None
        } else {
            Some(Interval {
                lo: self.lo,
                hi: self.hi.min(b),
            })
        }
    }
    fn is_multiple_of(self, m: i64) -> Trilean {
        // Integer members of the (possibly ulp-widened) interval.
        let lo = self.lo.ceil() as i64;
        let hi = self.hi.floor() as i64;
        if lo > hi {
            return Trilean::Unknown; // no integer members: degenerate, stay safe
        }
        let has_multiple = (hi.div_euclid(m)) * m >= lo;
        let has_non_multiple = if lo == hi {
            lo % m != 0
        } else {
            // Two or more consecutive integers: for m > 1 at least one is
            // not a multiple; for m == 1 every integer is.
            m > 1
        };
        match (has_multiple, has_non_multiple) {
            (true, false) => Trilean::True,
            (false, _) => Trilean::False,
            (true, true) => Trilean::Unknown,
        }
    }
}

// ---------------------------------------------------------------------------
// Dual: forward-mode derivative stub for the future gradient tuner
// ---------------------------------------------------------------------------

/// A forward-mode dual number `val + grad·ε`: carries the derivative of
/// the model output with respect to one (relaxed, continuous) schedule
/// parameter alongside the value.
///
/// This is the smooth-path stub reserved for the Felix-style gradient
/// tuner of ROADMAP item 1b: `add`/`sub`/`mul`/`div`/`min`/`max`
/// propagate derivatives by the usual forward-mode rules (min/max pick
/// the winning operand's derivative), while the integer-division stages
/// are piecewise constant and propagate a zero derivative. Comparisons
/// act on the value, so `Dual` follows exactly the branch the concrete
/// `f64` evaluation takes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dual {
    /// The value component (identical to the `f64` evaluation).
    pub val: f64,
    /// The derivative component.
    pub grad: f64,
}

impl Dual {
    /// A constant (zero derivative).
    pub fn constant(val: f64) -> Dual {
        Dual { val, grad: 0.0 }
    }

    /// The seed variable (unit derivative): differentiating with respect
    /// to this input.
    pub fn variable(val: f64) -> Dual {
        Dual { val, grad: 1.0 }
    }
}

impl Scalar for Dual {
    fn from_i64(v: i64) -> Dual {
        Dual::constant(v as f64)
    }
    fn from_f64(v: f64) -> Dual {
        Dual::constant(v)
    }
    fn add(self, rhs: Dual) -> Dual {
        Dual {
            val: self.val + rhs.val,
            grad: self.grad + rhs.grad,
        }
    }
    fn sub(self, rhs: Dual) -> Dual {
        Dual {
            val: self.val - rhs.val,
            grad: self.grad - rhs.grad,
        }
    }
    fn mul(self, rhs: Dual) -> Dual {
        Dual {
            val: self.val * rhs.val,
            grad: self.grad * rhs.val + self.val * rhs.grad,
        }
    }
    fn div(self, rhs: Dual) -> Dual {
        Dual {
            val: self.val / rhs.val,
            grad: (self.grad * rhs.val - self.val * rhs.grad) / (rhs.val * rhs.val),
        }
    }
    fn min(self, rhs: Dual) -> Dual {
        if self.val <= rhs.val {
            self
        } else {
            rhs
        }
    }
    fn max(self, rhs: Dual) -> Dual {
        if self.val >= rhs.val {
            self
        } else {
            rhs
        }
    }
    fn floor_int_div(self, rhs: Dual) -> Dual {
        // Piecewise constant in both operands: zero derivative.
        Dual::constant(((self.val as i64) / (rhs.val as i64)) as f64)
    }
    fn lt(self, rhs: Dual) -> Trilean {
        Scalar::lt(self.val, rhs.val)
    }
    fn le(self, rhs: Dual) -> Trilean {
        Scalar::le(self.val, rhs.val)
    }
    fn select(cond: Trilean, t: Dual, f: Dual) -> Dual {
        match cond {
            Trilean::True => t,
            Trilean::False => f,
            // Dual comparisons are decided on the value, so an undecided
            // condition cannot reach a Dual select.
            Trilean::Unknown => unreachable!("Dual comparisons are always decided"),
        }
    }
    fn constrain_ge(self, bound: Dual) -> Option<Dual> {
        if self.val < bound.val {
            None
        } else {
            Some(self)
        }
    }
    fn constrain_le(self, bound: Dual) -> Option<Dual> {
        if self.val > bound.val {
            None
        } else {
            Some(self)
        }
    }
    fn is_multiple_of(self, m: i64) -> Trilean {
        Scalar::is_multiple_of(self.val, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi).unwrap()
    }

    #[test]
    fn construction_rejects_nan_and_inverted_bounds() {
        assert_eq!(Interval::new(f64::NAN, 1.0), Err(IntervalError::Nan));
        assert_eq!(Interval::new(0.0, f64::NAN), Err(IntervalError::Nan));
        assert_eq!(
            Interval::new(2.0, 1.0),
            Err(IntervalError::Inverted { lo: 2.0, hi: 1.0 })
        );
        assert!(Interval::new(1.0, 1.0).is_ok());
        assert!(Interval::new(-3.0, 7.0).is_ok());
    }

    #[test]
    fn interval_error_messages_render() {
        assert_eq!(IntervalError::Nan.to_string(), "interval bound is NaN");
        assert_eq!(
            IntervalError::Inverted { lo: 2.0, hi: 1.0 }.to_string(),
            "inverted interval bounds: lo 2 > hi 1"
        );
    }

    #[test]
    fn arithmetic_encloses_member_results() {
        let a = iv(2.0, 5.0);
        let b = iv(3.0, 4.0);
        for x in [2.0, 3.5, 5.0] {
            for y in [3.0, 3.7, 4.0] {
                assert!(a.add(b).contains(x + y));
                assert!(a.sub(b).contains(x - y));
                assert!(a.mul(b).contains(x * y));
                assert!(a.div(b).contains(x / y));
                assert!(Scalar::min(a, b).contains(x.min(y)));
                assert!(Scalar::max(a, b).contains(x.max(y)));
            }
        }
    }

    #[test]
    fn integer_division_is_corner_exact() {
        let n = iv(7.0, 20.0);
        let d = iv(2.0, 3.0);
        let q = n.floor_int_div(d);
        for num in 7..=20i64 {
            for den in 2..=3i64 {
                assert!(q.contains((num / den) as f64), "{num}/{den} not in {q:?}");
            }
        }
        assert_eq!(q.lo(), 2.0); // 7/3
        assert_eq!(q.hi(), 10.0); // 20/2
    }

    #[test]
    fn comparisons_are_three_valued() {
        assert_eq!(iv(1.0, 2.0).lt(iv(3.0, 4.0)), Trilean::True);
        assert_eq!(iv(3.0, 4.0).lt(iv(1.0, 2.0)), Trilean::False);
        assert_eq!(iv(1.0, 3.0).lt(iv(2.0, 4.0)), Trilean::Unknown);
        assert_eq!(iv(1.0, 2.0).le(iv(2.0, 4.0)), Trilean::True);
        assert_eq!(iv(3.0, 4.0).le(iv(1.0, 2.0)), Trilean::False);
    }

    #[test]
    fn select_hulls_undecided_branches() {
        let t = iv(1.0, 2.0);
        let f = iv(10.0, 20.0);
        assert_eq!(Interval::select(Trilean::True, t, f), t);
        assert_eq!(Interval::select(Trilean::False, t, f), f);
        let h = Interval::select(Trilean::Unknown, t, f);
        assert_eq!((h.lo(), h.hi()), (1.0, 20.0));
    }

    #[test]
    fn constrain_clips_or_rejects() {
        let one = Interval::point(1.0);
        assert_eq!(iv(0.0, 5.0).constrain_ge(one).unwrap(), iv(1.0, 5.0));
        assert!(iv(0.0, 0.5).constrain_ge(one).is_none());
        assert_eq!(
            iv(0.0, 5.0).constrain_le(Interval::point(3.0)).unwrap(),
            iv(0.0, 3.0)
        );
        assert!(iv(4.0, 5.0).constrain_le(Interval::point(3.0)).is_none());
    }

    #[test]
    fn multiple_of_distinguishes_points_and_ranges() {
        assert_eq!(Interval::point(8.0).is_multiple_of(4), Trilean::True);
        assert_eq!(Interval::point(9.0).is_multiple_of(4), Trilean::False);
        assert_eq!(iv(5.0, 7.0).is_multiple_of(4), Trilean::False);
        assert_eq!(iv(5.0, 9.0).is_multiple_of(4), Trilean::Unknown);
        assert_eq!(iv(3.0, 9.0).is_multiple_of(1), Trilean::True);
    }

    #[test]
    fn widening_steps_one_ulp() {
        assert!(next_up(1.0) > 1.0);
        assert!(next_down(1.0) < 1.0);
        assert_eq!(next_up(next_down(1.0)), 1.0);
        assert!(next_up(0.0) > 0.0);
        assert!(next_down(0.0) < 0.0);
        assert_eq!(next_up(f64::INFINITY), f64::INFINITY);
        assert_eq!(next_down(f64::NEG_INFINITY), f64::NEG_INFINITY);
    }

    #[test]
    fn f64_scalar_ops_match_native_arithmetic() {
        let a = 7.0f64;
        let b = 3.0f64;
        assert_eq!(Scalar::add(a, b), a + b);
        assert_eq!(Scalar::mul(a, b), a * b);
        assert_eq!(Scalar::div(a, b).to_bits(), (a / b).to_bits());
        assert_eq!(a.floor_int_div(b), 2.0);
        assert_eq!(a.ceil_int_div(b), 3.0);
        assert_eq!(a.constrain_ge(8.0), None);
        assert_eq!(a.constrain_le(8.0), Some(a));
    }

    #[test]
    fn dual_derivative_of_square_is_two_x() {
        let x = Dual::variable(3.0);
        let y = x.mul(x); // x^2
        assert_eq!(y.val, 9.0);
        assert_eq!(y.grad, 6.0);
        // Quotient rule: d/dx (x^2 / (x + 1)) at x = 3.
        let q = x.mul(x).div(x.add(Dual::constant(1.0)));
        let expect = (2.0 * 3.0 * 4.0 - 9.0) / 16.0;
        assert!((q.grad - expect).abs() < 1e-12);
        // Integer stages are piecewise constant.
        assert_eq!(x.floor_int_div(Dual::constant(2.0)).grad, 0.0);
    }
}
