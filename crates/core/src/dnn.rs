//! End-to-end DNN optimization (§6.6).
//!
//! FlexTensor handles full networks by partitioning them into sub-graphs,
//! fusing sub-graphs into operators, and feeding the fused operators to
//! the optimizer. For the convolution backbones evaluated in the paper
//! (YOLO-v1, OverFeat) the fused operators are the distinct convolution
//! layers; element-wise epilogues (bias, activation) fuse into the
//! convolution for free. Each *distinct* layer is optimized once and its
//! schedule reused for every occurrence.

use flextensor_ir::ops::{fuse_epilogue, Epilogue};
use flextensor_ir::yolo::{yolo_layer, ConvLayer, OVERFEAT_LAYERS, YOLO_V1_FULL};
use flextensor_sim::spec::Device;

use crate::optimize::{optimize, OptimizeError, OptimizeOptions, Task};

/// One distinct layer of a network, with its occurrence count and the
/// element-wise epilogue fused into it (§6.6's sub-graph fusion).
#[derive(Debug, Clone, Copy)]
pub struct LayerSpec {
    /// The layer configuration.
    pub layer: ConvLayer,
    /// How many times it appears in the network.
    pub count: usize,
    /// Epilogue fused at writeback (bias/activation), if any.
    pub epilogue: Option<Epilogue>,
}

impl LayerSpec {
    /// Builds the (possibly fused) mini-graph of this layer.
    pub fn graph(&self, batch: i64) -> flextensor_ir::graph::Graph {
        let g = self.layer.graph(batch);
        match self.epilogue {
            Some(e) => fuse_epilogue(g, e),
            None => g,
        }
    }
}

/// YOLO-v1's 24 convolution layers as 15 distinct configs (Table 4), each
/// fused with YOLO's leaky-ReLU (alpha = 0.1) activation.
pub fn yolo_v1() -> Vec<LayerSpec> {
    YOLO_V1_FULL
        .iter()
        .map(|&(name, count)| LayerSpec {
            layer: *yolo_layer(name).expect("Table 4 layer"),
            count,
            epilogue: Some(Epilogue::LeakyRelu(0.1)),
        })
        .collect()
}

/// OverFeat's 5 convolution layers, fused with ReLU.
pub fn overfeat() -> Vec<LayerSpec> {
    OVERFEAT_LAYERS
        .iter()
        .map(|&layer| LayerSpec {
            layer,
            count: 1,
            epilogue: Some(Epilogue::Relu),
        })
        .collect()
}

/// Per-layer outcome of a network optimization.
#[derive(Debug, Clone)]
pub struct LayerResult {
    /// Layer label.
    pub name: &'static str,
    /// Occurrences in the network.
    pub count: usize,
    /// Time of one occurrence, seconds.
    pub seconds: f64,
    /// Throughput of one occurrence, GFLOP/s.
    pub gflops: f64,
}

/// Whole-network outcome.
#[derive(Debug, Clone)]
pub struct NetworkResult {
    /// Per-layer results, in network order.
    pub layers: Vec<LayerResult>,
    /// End-to-end time (sum over occurrences), seconds.
    pub total_seconds: f64,
}

impl NetworkResult {
    fn from_layers(layers: Vec<LayerResult>) -> NetworkResult {
        let total_seconds = layers.iter().map(|l| l.seconds * l.count as f64).sum();
        NetworkResult {
            layers,
            total_seconds,
        }
    }
}

/// Optimizes every distinct layer of a network with FlexTensor and sums
/// the end-to-end time at the given batch size.
///
/// # Errors
///
/// Propagates the first layer-level [`OptimizeError`].
pub fn optimize_network(
    specs: &[LayerSpec],
    device: &Device,
    batch: i64,
    opts: &OptimizeOptions,
) -> Result<NetworkResult, OptimizeError> {
    let mut layers = Vec::with_capacity(specs.len());
    for spec in specs {
        let graph = spec.graph(batch);
        let task = Task::new(graph, device.clone());
        let r = optimize(&task, opts)?;
        layers.push(LayerResult {
            name: spec.layer.name,
            count: spec.count,
            seconds: r.cost.seconds,
            gflops: r.gflops(),
        });
    }
    Ok(NetworkResult::from_layers(layers))
}

/// The same end-to-end measurement with the AutoTVM baseline tuner.
///
/// # Errors
///
/// Propagates the first layer-level tuning error as [`OptimizeError`].
pub fn autotvm_network(
    specs: &[LayerSpec],
    device: &Device,
    batch: i64,
    opts: &flextensor_autotvm::tuner::TuneOptions,
) -> Result<NetworkResult, OptimizeError> {
    let evaluator = flextensor_sim::model::Evaluator::new(device.clone());
    let mut layers = Vec::with_capacity(specs.len());
    for spec in specs {
        let graph = spec.graph(batch);
        let r = flextensor_autotvm::tuner::tune(&graph, &evaluator, opts)
            .map_err(|e| OptimizeError(e.to_string()))?;
        layers.push(LayerResult {
            name: spec.layer.name,
            count: spec.count,
            seconds: r.best_cost.seconds,
            gflops: r.best_cost.gflops(),
        });
    }
    Ok(NetworkResult::from_layers(layers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextensor_sim::spec::v100;

    #[test]
    fn yolo_and_overfeat_layer_lists() {
        let y = yolo_v1();
        assert_eq!(y.len(), 15);
        assert_eq!(y.iter().map(|l| l.count).sum::<usize>(), 24);
        assert_eq!(overfeat().len(), 5);
    }

    #[test]
    fn network_total_weights_by_count() {
        let layers = vec![
            LayerResult {
                name: "a",
                count: 2,
                seconds: 1.0,
                gflops: 1.0,
            },
            LayerResult {
                name: "b",
                count: 1,
                seconds: 3.0,
                gflops: 1.0,
            },
        ];
        let n = NetworkResult::from_layers(layers);
        assert_eq!(n.total_seconds, 5.0);
    }

    #[test]
    fn optimizes_a_small_network_end_to_end() {
        // Two small layers, quick budget: the plumbing test.
        let specs = vec![
            LayerSpec {
                layer: *yolo_layer("C15").unwrap(),
                count: 2,
                epilogue: Some(Epilogue::LeakyRelu(0.1)),
            },
            LayerSpec {
                layer: *yolo_layer("C11").unwrap(),
                count: 1,
                epilogue: None,
            },
        ];
        let device = Device::Gpu(v100());
        let opts = OptimizeOptions::quick();
        let r = optimize_network(&specs, &device, 1, &opts).unwrap();
        assert_eq!(r.layers.len(), 2);
        assert!(r.total_seconds > 0.0);
        // End-to-end = 2 * C15 + 1 * C11.
        let manual = 2.0 * r.layers[0].seconds + r.layers[1].seconds;
        assert!((r.total_seconds - manual).abs() < 1e-12);
    }
}
