//! # flextensor
//!
//! A Rust reproduction of **FlexTensor** (Zheng, Liang, Wang, Chen, Sheng —
//! ASPLOS 2020): an automatic schedule exploration and optimization
//! framework for tensor computation on heterogeneous systems.
//!
//! Describe a tensor computation mathematically (with
//! [`flextensor_ir::ops`] or a custom
//! [`GraphBuilder`](flextensor_ir::graph::GraphBuilder)), pick a device
//! model, and [`optimize()`] does the rest — static analysis, schedule-space
//! generation, simulated-annealing + Q-learning exploration, and
//! target-specific schedule implementation. No schedule templates, no
//! manual tuning.
//!
//! ```
//! use flextensor::{optimize, OptimizeOptions, Task};
//! use flextensor_ir::ops;
//! use flextensor_sim::spec::{Device, v100};
//!
//! // A 2D convolution, described only by its math.
//! let graph = ops::conv2d(ops::ConvParams::same(1, 64, 128, 3), 28, 28);
//! let task = Task::new(graph, Device::Gpu(v100()));
//! let result = optimize(&task, &OptimizeOptions::quick())?;
//! println!("{:.0} GFLOPS with schedule:\n{}", result.gflops(), result.schedule_text());
//! # Ok::<(), flextensor::OptimizeError>(())
//! ```
//!
//! The crate re-exports the full stack: IR ([`flextensor_ir`]), schedules
//! ([`flextensor_schedule`]), the correctness interpreter
//! ([`flextensor_interp`]), device models ([`flextensor_sim`]) and the
//! exploration back-end ([`flextensor_explore`]). The [`dnn`] module
//! optimizes whole networks (YOLO-v1, OverFeat — §6.6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dnn;
pub mod optimize;
pub mod serve;

pub use flextensor_explore::methods::{Method, SearchOptions};
pub use flextensor_explore::pool::{EvalPool, EvalStats, MemoCache};
pub use flextensor_telemetry::{JsonlSink, MemorySink, NullSink, Telemetry, TraceEvent, TraceSink};
pub use flextensor_tunedb::{TuneDb, TuneKey, TuneRecord};
pub use optimize::{optimize, OptimizeError, OptimizeOptions, OptimizeResult, Task};
pub use serve::{
    task_key, ServeError, ServeOptions, ServeResult, ServeSource, Session, SessionServer,
    SessionStats, Ticket, TuneRunner, Tuned,
};

// The tuning database crate, re-exported for downstream users.
pub use flextensor_tunedb as tunedb;

// Re-export the substrate crates under stable names.
pub use flextensor_explore as explore;
pub use flextensor_interp as interp;
pub use flextensor_ir as ir;
pub use flextensor_schedule as schedule;
pub use flextensor_sim as sim;
pub use flextensor_telemetry as telemetry;
