//! The top-level optimization entry point, including Algorithm 1's
//! bottom-up graph scheduling.
//!
//! Given only a mathematical description (a `flextensor-ir` mini-graph)
//! and a target device, [`optimize`] runs the full FlexTensor flow:
//! front-end static analysis → schedule-space generation → back-end
//! exploration (SA + Q-learning by default) → schedule implementation —
//! no templates, no human interference (§3).

use flextensor_explore::methods::{search, Method, SearchOptions, TracePoint};
use flextensor_explore::pool::EvalStats;
use flextensor_ir::analysis::{analyze, GraphAnalysis};
use flextensor_ir::graph::Graph;
use flextensor_schedule::config::NodeConfig;
use flextensor_schedule::lower::{lower, LoweredKernel};
use flextensor_schedule::primitives::{describe, Primitive};
use flextensor_sim::model::{Cost, Evaluator};
use flextensor_sim::spec::Device;

/// An optimization task: the computation and the device to optimize for.
#[derive(Debug, Clone)]
pub struct Task {
    /// The tensor computation (mini-graph).
    pub graph: Graph,
    /// The target device model.
    pub device: Device,
}

impl Task {
    /// Creates a task.
    pub fn new(graph: Graph, device: Device) -> Task {
        Task { graph, device }
    }
}

/// Options controlling optimization.
#[derive(Debug, Clone)]
pub struct OptimizeOptions {
    /// Exploration strategy (Q-method by default).
    pub method: Method,
    /// Exploration hyperparameters.
    pub search: SearchOptions,
}

impl Default for OptimizeOptions {
    fn default() -> OptimizeOptions {
        OptimizeOptions {
            method: Method::QMethod,
            search: SearchOptions::default(),
        }
    }
}

impl OptimizeOptions {
    /// A smaller exploration budget for quick runs (examples, tests).
    pub fn quick() -> OptimizeOptions {
        OptimizeOptions {
            method: Method::QMethod,
            search: SearchOptions {
                trials: 30,
                starts: 6,
                initial_samples: 12,
                ..SearchOptions::default()
            },
        }
    }

    /// Sets the evaluation worker-thread count (1 = serial, 0 = all
    /// cores). Results are identical for every value; only wall-clock
    /// changes.
    pub fn with_eval_workers(mut self, workers: usize) -> OptimizeOptions {
        self.search.eval_workers = workers;
        self
    }

    /// Sets the approximate entry bound of the evaluation memo cache.
    pub fn with_cache_capacity(mut self, capacity: usize) -> OptimizeOptions {
        self.search.cache_capacity = capacity;
        self
    }

    /// Enables (or disables) the static analyzer pruning gate: candidates
    /// that `flextensor-analyze` proves infeasible for the target device
    /// are rejected before the cost model runs. The analyzer's soundness
    /// contract guarantees the chosen schedule and its cost are identical
    /// either way; pruned candidates skip the modeled measurement cost and
    /// are tallied in [`EvalStats::pruned`].
    pub fn with_analyzer_gate(mut self, enabled: bool) -> OptimizeOptions {
        self.search.analyzer_gate = enabled;
        self
    }

    /// Enables (or disables) incremental candidate evaluation: each
    /// neighbor is costed by patching only the lowered features its
    /// single-field move can affect, instead of recomputing all of them
    /// (`flextensor-schedule`'s delta module). Bit-identical to the full
    /// path by construction — the chosen schedule, its cost, and the whole
    /// trace are unchanged; only evaluation throughput improves. Tallies
    /// land in [`EvalStats::delta_hits`] / [`EvalStats::delta_full`].
    pub fn with_delta_eval(mut self, enabled: bool) -> OptimizeOptions {
        self.search.delta_eval = enabled;
        self
    }

    /// Attaches a telemetry sink: the exploration back-end streams
    /// structured [`TraceEvent`](flextensor_telemetry::TraceEvent)s
    /// (trial lifecycle, candidate evaluations, SA moves, Q-network
    /// updates, pool statistics) to it. Pair with
    /// [`JsonlSink`](flextensor_telemetry::JsonlSink) to record a
    /// replayable trace file (see `docs/TRACE_FORMAT.md`).
    pub fn with_telemetry(mut self, telemetry: flextensor_telemetry::Telemetry) -> OptimizeOptions {
        self.search.telemetry = telemetry;
        self
    }

    /// Seeds exploration from stored configurations (canonical integer
    /// encodings) — typically the nearest-shape neighbor's best configs
    /// from a `flextensor-tunedb` database. Each encoding is adapted
    /// onto the task's op and joins the trial-0 seed batch; the RNG
    /// sequence is unchanged, so a warm run differs from a cold one only
    /// by the extra evaluated seeds.
    pub fn with_warm_start(mut self, configs: Vec<Vec<i64>>) -> OptimizeOptions {
        self.search.warm_start = configs;
        self
    }
}

/// The result of optimizing one task.
#[derive(Debug, Clone)]
pub struct OptimizeResult {
    /// Front-end analysis of the computation.
    pub analysis: GraphAnalysis,
    /// The chosen schedule configuration.
    pub config: NodeConfig,
    /// Estimated cost of the chosen schedule on the device.
    pub cost: Cost,
    /// The lowered kernel (loop nest + features).
    pub kernel: LoweredKernel,
    /// The schedule as a Table 2 primitive sequence (Fig. 3d view).
    pub primitives: Vec<Primitive>,
    /// Number of simulated on-device measurements performed.
    pub measurements: usize,
    /// Modeled exploration time, seconds.
    pub exploration_time_s: f64,
    /// Size of the explored schedule space.
    pub space_size: f64,
    /// Convergence trace.
    pub trace: Vec<TracePoint>,
    /// Evaluation-layer statistics: fresh evaluations, cache hit rate,
    /// worker count, and real wall-clock spent evaluating.
    pub eval_stats: EvalStats,
    /// Warm-start encodings adapted and absorbed into the seed batch
    /// (0 for cold runs).
    pub warm_seeds: usize,
}

impl OptimizeResult {
    /// Achieved throughput in GFLOP/s.
    pub fn gflops(&self) -> f64 {
        self.cost.gflops()
    }

    /// Renders the chosen schedule as readable primitive lines.
    pub fn schedule_text(&self) -> String {
        self.primitives.iter().map(|p| format!("  {p}\n")).collect()
    }
}

/// Errors from optimization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptimizeError(pub String);

impl std::fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "optimization failed: {}", self.0)
    }
}

impl std::error::Error for OptimizeError {}

/// Optimizes a task: Algorithm 1's bottom-up schedule over the mini-graph.
///
/// The graph is traversed in post-order (`get_graph` /
/// `post_order_traverse` of Algorithm 1). Data-movement nodes (padding,
/// dilation) have no independent schedule decisions beyond *where they
/// live* — inlined into their consumer or materialized — and that choice
/// is part of the root node's schedule space (`ToggleInline`), so the
/// per-node loop resolves to exploring the root (arithmetic) node's space;
/// `Schedule_for_graph` is the final lowering of the combined config.
///
/// # Errors
///
/// Returns [`OptimizeError`] if exploration finds no feasible schedule or
/// the final lowering fails (internal invariant violations only).
pub fn optimize(task: &Task, opts: &OptimizeOptions) -> Result<OptimizeResult, OptimizeError> {
    // Front end: static analysis (§4.1).
    let analysis = analyze(&task.graph);

    // Algorithm 1, lines 1-2: graph + post-order traversal.
    let node_lst = task.graph.post_order();
    debug_assert!(!node_lst.is_empty());

    // Lines 4-7: schedule for each node. Every non-root node in our
    // operator set is a data-movement producer whose placement is decided
    // by the root config's `inline_data`; the root node's schedule is
    // found by back-end exploration (§5.1).
    let evaluator = Evaluator::new(task.device.clone());
    let result = search(&task.graph, &evaluator, opts.method, &opts.search)
        .map_err(|e| OptimizeError(e.to_string()))?;

    // Line 8: schedule for the graph — lower the combined configuration.
    let kernel = lower(&task.graph, &result.best, evaluator.target())
        .map_err(|e| OptimizeError(e.to_string()))?;
    let primitives = describe(task.graph.anchor_op(), &result.best, evaluator.target());

    Ok(OptimizeResult {
        analysis,
        config: result.best,
        cost: result.best_cost,
        kernel,
        primitives,
        measurements: result.measurements,
        exploration_time_s: result.exploration_time_s,
        space_size: result.space_size,
        trace: result.trace,
        eval_stats: result.eval_stats,
        warm_seeds: result.warm_seeds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextensor_ir::ops;
    use flextensor_sim::spec::{v100, vu9p, xeon_e5_2699_v4};

    #[test]
    fn optimize_gemm_on_gpu() {
        let task = Task::new(ops::gemm(256, 256, 256), Device::Gpu(v100()));
        let r = optimize(&task, &OptimizeOptions::quick()).unwrap();
        assert!(r.gflops() > 100.0, "gflops {}", r.gflops());
        assert!(r.space_size > 1e4);
        assert!(!r.primitives.is_empty());
        assert!(r.schedule_text().contains("split"));
        r.config.validate(task.graph.root_op()).unwrap();
    }

    #[test]
    fn optimize_conv_on_all_devices() {
        let g = ops::conv2d(ops::ConvParams::same(1, 32, 64, 3), 28, 28);
        for device in [
            Device::Gpu(v100()),
            Device::Cpu(xeon_e5_2699_v4()),
            Device::Fpga(vu9p()),
        ] {
            let task = Task::new(g.clone(), device);
            let r = optimize(&task, &OptimizeOptions::quick()).unwrap();
            assert!(
                r.cost.seconds.is_finite() && r.cost.seconds > 0.0,
                "{}",
                task.device.name()
            );
        }
    }

    #[test]
    fn analysis_is_reported() {
        let task = Task::new(
            ops::conv2d(ops::ConvParams::same(1, 16, 16, 3), 14, 14),
            Device::Gpu(v100()),
        );
        let r = optimize(&task, &OptimizeOptions::quick()).unwrap();
        assert_eq!(r.analysis.num_compute_nodes, 2);
        assert_eq!(r.analysis.root_reduce, 3);
    }

    #[test]
    fn analyzer_gate_does_not_change_the_chosen_schedule() {
        let task = Task::new(ops::gemm(256, 256, 256), Device::Gpu(v100()));
        let off = optimize(&task, &OptimizeOptions::quick()).unwrap();
        let on = optimize(&task, &OptimizeOptions::quick().with_analyzer_gate(true)).unwrap();
        assert_eq!(on.config.encode(), off.config.encode());
        assert_eq!(on.cost.seconds.to_bits(), off.cost.seconds.to_bits());
        assert_eq!(off.eval_stats.pruned, 0);
        assert!(on.eval_stats.pruned > 0);
        assert!(on.exploration_time_s < off.exploration_time_s);
    }

    #[test]
    fn delta_eval_does_not_change_the_chosen_schedule() {
        let task = Task::new(ops::gemm(256, 256, 256), Device::Gpu(v100()));
        let off = optimize(&task, &OptimizeOptions::quick()).unwrap();
        let on = optimize(&task, &OptimizeOptions::quick().with_delta_eval(true)).unwrap();
        assert_eq!(on.config.encode(), off.config.encode());
        assert_eq!(on.cost.seconds.to_bits(), off.cost.seconds.to_bits());
        assert_eq!(off.eval_stats.delta_hits, 0);
        assert!(on.eval_stats.delta_hits > 0);
    }

    #[test]
    fn beats_the_naive_schedule() {
        let task = Task::new(ops::gemm(512, 512, 512), Device::Gpu(v100()));
        let r = optimize(&task, &OptimizeOptions::quick()).unwrap();
        let ev = Evaluator::new(task.device.clone());
        let naive = ev.evaluate(&task.graph, &NodeConfig::naive(task.graph.root_op()));
        // Naive infeasible on GPU means any feasible result wins.
        if let Some(n) = naive {
            assert!(r.cost.seconds < n.seconds);
        }
    }
}
