//! Tuning-as-a-service: a concurrent session server over a persistent
//! schedule database.
//!
//! A [`SessionServer`] multiplexes many tuning requests — from many named
//! sessions — over a shared pool of worker threads, backed by a
//! [`TuneDb`]. Each request is classified once, at submit time, against a
//! point-in-time snapshot of the database taken when the server was
//! constructed:
//!
//! - **Hit** — the key is in the snapshot; the stored best record is
//!   returned without running any search.
//! - **Fresh** — the key is new and this request is the first to ask for
//!   it; a search runs (warm-started from the snapshot's nearest-shape
//!   neighbor when one exists) and the result is written to the database.
//! - **Coalesced** — the key is new but an earlier request already
//!   claimed it; this request waits for that result instead of running a
//!   duplicate search.
//!
//! Because classification and warm-start selection read only the
//! snapshot (never the live, concurrently-mutated index), and because
//! search itself is bit-deterministic for a fixed seed, the *result* of
//! every request and all hit/miss/warm/coalesced counts are identical
//! whether requests are served serially or by many workers — only
//! wall-clock (queue wait) differs. `tests/tunedb.rs` proves this.
//!
//! Scheduling across sessions is fair round-robin: each session has its
//! own FIFO queue, and workers take the next job from the next non-empty
//! queue in rotation, so one chatty session cannot starve another.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use flextensor_ir::graph::Graph;
use flextensor_sim::spec::Device;
use flextensor_telemetry::{Telemetry, TraceEvent};
use flextensor_tunedb::{nearest, TuneDb, TuneKey, TuneRecord};

use crate::optimize::{optimize, OptimizeOptions, Task};

/// Derives the database key identifying a tuning task.
///
/// - `op` is the operator family: the graph name up to the first `_`
///   (`"gemm"`, `"c2d"`, …), so shape variants of one operator share a
///   namespace and can warm-start each other.
/// - `shape` is the anchor op's spatial extents, then its reduce
///   extents, then the recorded attribute values (stride, padding, …),
///   then the compute-op count (which separates fused variants that
///   share a name prefix and anchor shape).
/// - `target` is the device model name.
pub fn task_key(graph: &Graph, device: &Device) -> TuneKey {
    let op = graph.name.split('_').next().unwrap_or("op");
    let anchor = graph.anchor_op();
    let mut shape: Vec<i64> = anchor.spatial.iter().map(|a| a.extent).collect();
    shape.extend(anchor.reduce.iter().map(|a| a.extent));
    shape.extend(graph.attrs.iter().map(|(_, v)| *v));
    shape.push(graph.compute_ops().count() as i64);
    TuneKey::new(op, shape, device.name())
}

/// The outcome of one tuning run, as the server stores and serves it.
#[derive(Debug, Clone, PartialEq)]
pub struct Tuned {
    /// Canonical integer encoding of the chosen schedule configuration.
    pub config: Vec<i64>,
    /// Modeled execution time of that schedule, seconds.
    pub seconds: f64,
}

/// The tuning engine behind a [`SessionServer`].
///
/// The default engine ([`OptimizeRunner`]) runs the real
/// [`optimize`] flow; tests substitute counting or failing runners to
/// prove exactly-once evaluation and fault isolation.
pub trait TuneRunner: Send + Sync {
    /// Tunes one task. An `Err` fails only the requests for this key;
    /// the server and its other sessions keep running.
    fn tune(&self, task: &Task, opts: &OptimizeOptions) -> Result<Tuned, String>;
}

/// The default [`TuneRunner`]: full FlexTensor optimization.
#[derive(Debug, Clone, Copy, Default)]
pub struct OptimizeRunner;

impl TuneRunner for OptimizeRunner {
    fn tune(&self, task: &Task, opts: &OptimizeOptions) -> Result<Tuned, String> {
        let r = optimize(task, opts).map_err(|e| e.to_string())?;
        Ok(Tuned {
            config: r.config.encode(),
            seconds: r.cost.seconds,
        })
    }
}

/// Options controlling a [`SessionServer`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Tuning worker threads (min 1). Results and statistics are
    /// identical for every value; only wall-clock changes.
    pub workers: usize,
    /// Base optimization options applied to every fresh tune (seed,
    /// trials, method). Warm-start seeds are layered on per request.
    /// Leave `search.telemetry` unset on multi-worker servers: a single
    /// per-search sink would interleave events from concurrent tunes.
    pub base: OptimizeOptions,
    /// Provenance string stored with every database record (e.g. a VCS
    /// revision).
    pub commit: String,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            workers: 2,
            base: OptimizeOptions::quick(),
            commit: "dev".to_string(),
        }
    }
}

/// Per-request overrides layered on [`ServeOptions::base`] by
/// [`Session::submit_with`]. The default (`SubmitOptions::default()`)
/// reproduces [`Session::submit`] exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubmitOptions {
    /// Override the fresh-tune trial budget for this request (`None`
    /// keeps `base.search.trials`). The stored database record carries
    /// the effective value.
    pub trials: Option<usize>,
    /// Re-tune a snapshot-present key instead of serving it as a
    /// [`ServeSource::Hit`], warm-starting the search from the key's
    /// *own* stored best configuration. Because the stored best joins
    /// the search history as a seed, the refined result is never worse
    /// than the stored one; the database keeps the better of the two.
    /// Statistics count a refine as a miss plus a warm start. Keys
    /// absent from the snapshot are unaffected. Duplicate in-flight
    /// keys still coalesce.
    pub refine: bool,
    /// Embeds this request's search in a larger trial budget
    /// (forwarded to `SearchOptions::anneal_window`): the Q-method's
    /// ε-anneal tracks `(prior + trial) / total` instead of restarting
    /// per search. Used by round-based dispatchers that split one
    /// budget across warm-started re-tunes.
    pub anneal_window: Option<(usize, usize)>,
}

/// How a request's result was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeSource {
    /// Served directly from the database snapshot; no search ran.
    Hit,
    /// A search ran for this request (the first for its key).
    Fresh {
        /// Whether the search was seeded from a nearest-shape
        /// neighbor's stored configuration.
        warm_started: bool,
    },
    /// Deduplicated onto an in-flight or already-completed request for
    /// the same key.
    Coalesced,
}

/// The answer to one tuning request.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeResult {
    /// The task's database key.
    pub key: TuneKey,
    /// Canonical encoding of the chosen schedule.
    pub config: Vec<i64>,
    /// Modeled execution time, seconds.
    pub seconds: f64,
    /// How the result was produced.
    pub source: ServeSource,
    /// Wall-clock seconds from submit until the server acted on the
    /// request (for coalesced requests: until the primary result was
    /// available). Excluded from determinism guarantees.
    pub queue_wait_s: f64,
}

/// A failed tuning request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError(pub String);

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tuning request failed: {}", self.0)
    }
}

impl std::error::Error for ServeError {}

/// Per-session counters. All fields except `queue_wait_s` are
/// deterministic for a fixed submission order, regardless of worker
/// count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SessionStats {
    /// Requests submitted.
    pub submitted: usize,
    /// Requests answered successfully.
    pub completed: usize,
    /// Requests that failed (the tune for their key errored).
    pub failed: usize,
    /// Requests answered from the database snapshot.
    pub hits: usize,
    /// Requests that triggered a fresh search.
    pub misses: usize,
    /// Fresh searches that were warm-started from a neighbor.
    pub warm_starts: usize,
    /// Requests deduplicated onto another request's search.
    pub coalesced: usize,
    /// Total queue wait, seconds (wall clock; not deterministic).
    pub queue_wait_s: f64,
}

/// Whole-server aggregate of [`SessionStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Total requests submitted across all sessions.
    pub requests: usize,
    /// Requests answered successfully.
    pub completed: usize,
    /// Requests that failed.
    pub failed: usize,
    /// Snapshot hits.
    pub hits: usize,
    /// Fresh searches run.
    pub misses: usize,
    /// Fresh searches that were warm-started.
    pub warm_starts: usize,
    /// Deduplicated requests.
    pub coalesced: usize,
}

/// Submit-time classification (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Hit,
    Fresh,
    Coalesced,
}

type Outcome = Result<(Vec<i64>, f64), String>;

struct Job {
    session: usize,
    key: TuneKey,
    graph: Graph,
    device: Device,
    class: Class,
    /// Neighbor (or, for refines, own-best) config chosen at submit
    /// time (Fresh only).
    warm: Option<Vec<i64>>,
    /// Per-request overrides recorded at submit time.
    sub: SubmitOptions,
    tx: mpsc::Sender<Result<ServeResult, ServeError>>,
    enqueued: Instant,
}

struct SessionEntry {
    name: String,
    stats: SessionStats,
}

struct State {
    queues: Vec<VecDeque<Job>>,
    rr: usize,
    shutdown: bool,
    /// Keys whose tune finished this run, with their outcome.
    done: HashMap<TuneKey, Outcome>,
    /// Coalesced jobs parked until their key lands in `done`.
    waiters: HashMap<TuneKey, Vec<Job>>,
    /// Non-snapshot keys already claimed by a Fresh request.
    claimed: HashSet<TuneKey>,
    sessions: Vec<SessionEntry>,
}

struct Inner {
    db: Arc<TuneDb>,
    snapshot: BTreeMap<TuneKey, TuneRecord>,
    snapshot_keys: Vec<TuneKey>,
    runner: Arc<dyn TuneRunner>,
    opts: ServeOptions,
    state: Mutex<State>,
    cv: Condvar,
}

/// A concurrent tuning server over a shared [`TuneDb`].
///
/// ```
/// use std::sync::Arc;
/// use flextensor::serve::{task_key, ServeOptions, SessionServer};
/// use flextensor_ir::ops;
/// use flextensor_sim::spec::{v100, Device};
/// use flextensor_tunedb::{testutil, TuneDb};
///
/// let db = Arc::new(TuneDb::open(testutil::temp_dir("serve-doc")).unwrap().0);
/// let server = SessionServer::new(Arc::clone(&db), ServeOptions::default());
/// let session = server.session("docs");
/// let ticket = session.submit(ops::gemm(64, 64, 64), Device::Gpu(v100()));
/// let result = ticket.wait().unwrap();
/// assert!(result.seconds > 0.0);
/// assert_eq!(result.key, task_key(&ops::gemm(64, 64, 64), &Device::Gpu(v100())));
/// drop(server); // drains workers; the record is now persisted
/// assert_eq!(db.len(), 1);
/// ```
pub struct SessionServer {
    inner: Arc<Inner>,
    handles: Vec<JoinHandle<()>>,
}

/// A named client of a [`SessionServer`]; created by
/// [`SessionServer::session`].
pub struct Session<'a> {
    server: &'a SessionServer,
    id: usize,
}

/// A pending request handle; redeem with [`Ticket::wait`].
pub struct Ticket {
    rx: mpsc::Receiver<Result<ServeResult, ServeError>>,
}

impl Ticket {
    /// Blocks until the request is answered.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] if the tune for this request's key failed,
    /// or if the server was torn down before answering.
    pub fn wait(self) -> Result<ServeResult, ServeError> {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(ServeError("server shut down before answering".to_string())))
    }
}

impl SessionServer {
    /// Starts a server with the default [`OptimizeRunner`].
    pub fn new(db: Arc<TuneDb>, opts: ServeOptions) -> SessionServer {
        SessionServer::with_runner(db, opts, Arc::new(OptimizeRunner))
    }

    /// Starts a server with a custom tuning engine.
    pub fn with_runner(
        db: Arc<TuneDb>,
        opts: ServeOptions,
        runner: Arc<dyn TuneRunner>,
    ) -> SessionServer {
        let snapshot = db.snapshot();
        let snapshot_keys: Vec<TuneKey> = snapshot.keys().cloned().collect();
        let workers = opts.workers.max(1);
        let inner = Arc::new(Inner {
            db,
            snapshot,
            snapshot_keys,
            runner,
            opts,
            state: Mutex::new(State {
                queues: Vec::new(),
                rr: 0,
                shutdown: false,
                done: HashMap::new(),
                waiters: HashMap::new(),
                claimed: HashSet::new(),
                sessions: Vec::new(),
            }),
            cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("tune-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn tuning worker")
            })
            .collect();
        SessionServer { inner, handles }
    }

    /// Registers a named session. Sessions are cheap; statistics are
    /// reported per session in registration order.
    pub fn session(&self, name: &str) -> Session<'_> {
        let mut st = self.lock();
        let id = st.sessions.len();
        st.sessions.push(SessionEntry {
            name: name.to_string(),
            stats: SessionStats::default(),
        });
        st.queues.push(VecDeque::new());
        Session { server: self, id }
    }

    /// Per-session statistics, in registration order.
    pub fn session_stats(&self) -> Vec<(String, SessionStats)> {
        self.lock()
            .sessions
            .iter()
            .map(|s| (s.name.clone(), s.stats.clone()))
            .collect()
    }

    /// Whole-server aggregate statistics.
    pub fn stats(&self) -> ServerStats {
        let st = self.lock();
        let mut agg = ServerStats::default();
        for s in &st.sessions {
            agg.requests += s.stats.submitted;
            agg.completed += s.stats.completed;
            agg.failed += s.stats.failed;
            agg.hits += s.stats.hits;
            agg.misses += s.stats.misses;
            agg.warm_starts += s.stats.warm_starts;
            agg.coalesced += s.stats.coalesced;
        }
        agg
    }

    /// Emits one [`TraceEvent::DbStats`] for the database plus one
    /// [`TraceEvent::SessionStats`] per session (registration order).
    /// After [`strip_wall_clock`](flextensor_telemetry::TraceEvent::strip_wall_clock)
    /// the emitted events are byte-deterministic for a fixed submission
    /// order.
    pub fn emit_stats(&self, telemetry: &Telemetry) {
        let db_stats = self.inner.db.stats();
        let agg = self.stats();
        telemetry.emit(TraceEvent::DbStats {
            records: self.inner.db.len(),
            hits: agg.hits,
            misses: agg.misses,
            warm_starts: agg.warm_starts,
            puts: db_stats.puts,
            dropped: db_stats.lines_dropped,
        });
        for (name, s) in self.session_stats() {
            telemetry.emit(TraceEvent::SessionStats {
                session: name,
                submitted: s.submitted,
                completed: s.completed,
                failed: s.failed,
                hits: s.hits,
                misses: s.misses,
                warm_starts: s.warm_starts,
                coalesced: s.coalesced,
                queue_wait_s: s.queue_wait_s,
            });
        }
    }

    /// The database snapshot the server classifies against.
    pub fn snapshot_len(&self) -> usize {
        self.inner.snapshot.len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.inner.state.lock().expect("serve state poisoned")
    }
}

impl Drop for SessionServer {
    /// Drains every queued request, then stops the workers. Outstanding
    /// [`Ticket`]s are all answered before this returns.
    fn drop(&mut self) {
        {
            let mut st = self.lock();
            st.shutdown = true;
        }
        self.inner.cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Session<'_> {
    /// Submits a tuning request; returns immediately with a [`Ticket`].
    pub fn submit(&self, graph: Graph, device: Device) -> Ticket {
        self.submit_with(graph, device, SubmitOptions::default())
    }

    /// Submits a tuning request with per-request overrides (trial
    /// budget, refine mode, anneal window); returns immediately with a
    /// [`Ticket`]. See [`SubmitOptions`].
    pub fn submit_with(&self, graph: Graph, device: Device, sub: SubmitOptions) -> Ticket {
        let inner = &self.server.inner;
        let key = task_key(&graph, &device);
        let (tx, rx) = mpsc::channel();
        {
            let mut st = self.server.lock();
            st.sessions[self.id].stats.submitted += 1;
            let in_snapshot = inner.snapshot.contains_key(&key);
            let (class, warm) = if in_snapshot && !sub.refine {
                st.sessions[self.id].stats.hits += 1;
                (Class::Hit, None)
            } else if st.claimed.contains(&key) {
                st.sessions[self.id].stats.coalesced += 1;
                (Class::Coalesced, None)
            } else {
                st.claimed.insert(key.clone());
                st.sessions[self.id].stats.misses += 1;
                // Warm-start from the snapshot, never the live index:
                // concurrent puts must not change what any request sees.
                // A refine of a snapshot key seeds from its own stored
                // best; anything else from the nearest-shape neighbor.
                let warm = if in_snapshot {
                    Some(inner.snapshot[&key].config.clone())
                } else {
                    nearest(&key, &inner.snapshot_keys)
                        .map(|(k, _)| inner.snapshot[k].config.clone())
                };
                if warm.is_some() {
                    st.sessions[self.id].stats.warm_starts += 1;
                }
                (Class::Fresh, warm)
            };
            st.queues[self.id].push_back(Job {
                session: self.id,
                key,
                graph,
                device,
                class,
                warm,
                sub,
                tx,
                enqueued: Instant::now(),
            });
        }
        inner.cv.notify_all();
        Ticket { rx }
    }

    /// The session's registration index (stable for its lifetime).
    pub fn id(&self) -> usize {
        self.id
    }
}

/// Round-robin over per-session queues: resume from the queue after the
/// last one served and take the first non-empty queue.
fn take_next(st: &mut State) -> Option<Job> {
    let n = st.queues.len();
    for off in 0..n {
        let q = (st.rr + off) % n;
        if let Some(job) = st.queues[q].pop_front() {
            st.rr = (q + 1) % n;
            return Some(job);
        }
    }
    None
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut st = inner.state.lock().expect("serve state poisoned");
            loop {
                if let Some(job) = take_next(&mut st) {
                    break job;
                }
                if st.shutdown {
                    return;
                }
                st = inner.cv.wait(st).expect("serve state poisoned");
            }
        };
        process(inner, job);
    }
}

fn fulfill(st: &mut State, job: &Job, outcome: &Outcome, source: ServeSource, wait_s: f64) {
    let stats = &mut st.sessions[job.session].stats;
    stats.queue_wait_s += wait_s;
    let msg = match outcome {
        Ok((config, seconds)) => {
            stats.completed += 1;
            Ok(ServeResult {
                key: job.key.clone(),
                config: config.clone(),
                seconds: *seconds,
                source,
                queue_wait_s: wait_s,
            })
        }
        Err(e) => {
            stats.failed += 1;
            Err(ServeError(e.clone()))
        }
    };
    // A dropped Ticket just discards the answer.
    let _ = job.tx.send(msg);
}

fn process(inner: &Inner, job: Job) {
    let wait_s = job.enqueued.elapsed().as_secs_f64();
    match job.class {
        Class::Hit => {
            let rec = &inner.snapshot[&job.key];
            let outcome = Ok((rec.config.clone(), rec.seconds));
            let mut st = inner.state.lock().expect("serve state poisoned");
            fulfill(&mut st, &job, &outcome, ServeSource::Hit, wait_s);
        }
        Class::Coalesced => {
            let mut st = inner.state.lock().expect("serve state poisoned");
            if let Some(outcome) = st.done.get(&job.key).cloned() {
                fulfill(&mut st, &job, &outcome, ServeSource::Coalesced, wait_s);
            } else {
                // Primary tune still in flight: park; the finishing
                // worker fulfills us.
                st.waiters.entry(job.key.clone()).or_default().push(job);
            }
        }
        Class::Fresh => {
            let warm_started = job.warm.is_some();
            let mut opts = inner.opts.base.clone();
            if let Some(config) = &job.warm {
                opts = opts.with_warm_start(vec![config.clone()]);
            }
            if let Some(trials) = job.sub.trials {
                opts.search.trials = trials;
            }
            if job.sub.anneal_window.is_some() {
                opts.search.anneal_window = job.sub.anneal_window;
            }
            let task = Task::new(job.graph.clone(), job.device.clone());
            let tuned = inner.runner.tune(&task, &opts);
            let outcome: Outcome = match tuned {
                Ok(t) => {
                    // Persist before answering so a crash after the
                    // answer never loses the record. A failed append
                    // leaves the in-memory answer valid; the key is
                    // simply re-tuned by a future server.
                    let _ = inner.db.put(TuneRecord {
                        key: job.key.clone(),
                        config: t.config.clone(),
                        seconds: t.seconds,
                        seed: opts.search.seed,
                        trials: opts.search.trials,
                        commit: inner.opts.commit.clone(),
                    });
                    Ok((t.config, t.seconds))
                }
                Err(e) => Err(e),
            };
            let mut st = inner.state.lock().expect("serve state poisoned");
            st.done.insert(job.key.clone(), outcome.clone());
            let waiters = st.waiters.remove(&job.key).unwrap_or_default();
            fulfill(
                &mut st,
                &job,
                &outcome,
                ServeSource::Fresh { warm_started },
                wait_s,
            );
            for w in waiters {
                let w_wait = w.enqueued.elapsed().as_secs_f64();
                fulfill(&mut st, &w, &outcome, ServeSource::Coalesced, w_wait);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextensor_ir::ops;
    use flextensor_sim::spec::{v100, xeon_e5_2699_v4};
    use flextensor_tunedb::testutil;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A runner that records every tuned key in order and returns a
    /// deterministic fake result.
    struct RecordingRunner {
        calls: Mutex<Vec<TuneKey>>,
    }

    impl TuneRunner for RecordingRunner {
        fn tune(&self, task: &Task, _opts: &OptimizeOptions) -> Result<Tuned, String> {
            let key = task_key(&task.graph, &task.device);
            self.calls.lock().unwrap().push(key);
            Ok(Tuned {
                config: vec![task.graph.flops() as i64],
                seconds: 1.0,
            })
        }
    }

    fn open_db(tag: &str) -> Arc<TuneDb> {
        Arc::new(TuneDb::open(testutil::temp_dir(tag)).unwrap().0)
    }

    #[test]
    fn task_key_separates_ops_shapes_and_targets() {
        let gemm_a = task_key(&ops::gemm(64, 64, 64), &Device::Gpu(v100()));
        let gemm_b = task_key(&ops::gemm(64, 64, 128), &Device::Gpu(v100()));
        let gemm_cpu = task_key(&ops::gemm(64, 64, 64), &Device::Cpu(xeon_e5_2699_v4()));
        assert_eq!(gemm_a.op, "gemm");
        assert_ne!(gemm_a, gemm_b);
        assert_ne!(gemm_a, gemm_cpu);
        assert_eq!(
            gemm_a,
            task_key(&ops::gemm(64, 64, 64), &Device::Gpu(v100()))
        );
        let conv = task_key(
            &ops::conv2d(ops::ConvParams::same(1, 16, 16, 3), 14, 14),
            &Device::Gpu(v100()),
        );
        assert_eq!(conv.op, "c2d");
    }

    #[test]
    fn round_robin_alternates_between_sessions() {
        let runner = Arc::new(RecordingRunner {
            calls: Mutex::new(Vec::new()),
        });
        let db = open_db("serve-rr");
        let server = SessionServer::with_runner(
            Arc::clone(&db),
            ServeOptions {
                workers: 1,
                ..ServeOptions::default()
            },
            Arc::clone(&runner) as Arc<dyn TuneRunner>,
        );
        let a = server.session("a");
        let b = server.session("b");
        // Distinct keys per session so every job is Fresh. One worker,
        // so jobs are processed strictly in take_next order.
        let sizes_a = [16, 32, 48];
        let sizes_b = [64, 80, 96];
        let mut tickets = Vec::new();
        {
            // Hold the lock open? No — submissions are fast enough; the
            // single worker drains in round-robin order as long as all
            // jobs are enqueued before it gets the lock. Submit all six
            // first, then wait.
            for (sa, sb) in sizes_a.iter().zip(sizes_b.iter()) {
                tickets.push(a.submit(ops::gemm(*sa, *sa, *sa), Device::Gpu(v100())));
                tickets.push(b.submit(ops::gemm(*sb, *sb, *sb), Device::Gpu(v100())));
            }
        }
        for t in tickets {
            t.wait().unwrap();
        }
        let calls = runner.calls.lock().unwrap();
        assert_eq!(calls.len(), 6);
        // Fairness: within any prefix, the two sessions' counts differ
        // by at most one (strict alternation when both queues are
        // non-empty).
        let mut na = 0usize;
        let mut nb = 0usize;
        for k in calls.iter() {
            if sizes_a.iter().any(|s| k.shape[0] == *s) {
                na += 1;
            } else {
                nb += 1;
            }
            assert!(na.abs_diff(nb) <= 1, "unfair prefix: a={na} b={nb}");
        }
    }

    #[test]
    fn duplicate_keys_are_coalesced_onto_one_tune() {
        struct CountingRunner(AtomicUsize);
        impl TuneRunner for CountingRunner {
            fn tune(&self, task: &Task, _opts: &OptimizeOptions) -> Result<Tuned, String> {
                self.0.fetch_add(1, Ordering::SeqCst);
                Ok(Tuned {
                    config: vec![task.graph.flops() as i64],
                    seconds: 2.5,
                })
            }
        }
        let runner = Arc::new(CountingRunner(AtomicUsize::new(0)));
        let db = open_db("serve-dedup");
        let server = SessionServer::with_runner(
            Arc::clone(&db),
            ServeOptions {
                workers: 4,
                ..ServeOptions::default()
            },
            Arc::clone(&runner) as Arc<dyn TuneRunner>,
        );
        let sessions: Vec<Session<'_>> = (0..4).map(|i| server.session(&format!("s{i}"))).collect();
        let tickets: Vec<Ticket> = sessions
            .iter()
            .map(|s| s.submit(ops::gemm(128, 128, 128), Device::Gpu(v100())))
            .collect();
        let results: Vec<ServeResult> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        assert_eq!(runner.0.load(Ordering::SeqCst), 1, "tuned more than once");
        for r in &results {
            assert_eq!(r.seconds, 2.5);
            assert_eq!(r.config, results[0].config);
        }
        let fresh = results
            .iter()
            .filter(|r| matches!(r.source, ServeSource::Fresh { .. }))
            .count();
        let coalesced = results
            .iter()
            .filter(|r| r.source == ServeSource::Coalesced)
            .count();
        assert_eq!((fresh, coalesced), (1, 3));
        let agg = server.stats();
        assert_eq!(agg.requests, 4);
        assert_eq!(agg.misses, 1);
        assert_eq!(agg.coalesced, 3);
        assert_eq!(agg.completed, 4);
        drop(server);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn snapshot_keys_are_served_as_hits_without_tuning() {
        struct PanicRunner;
        impl TuneRunner for PanicRunner {
            fn tune(&self, _task: &Task, _opts: &OptimizeOptions) -> Result<Tuned, String> {
                Err("should never run".to_string())
            }
        }
        let db = open_db("serve-hit");
        let g = ops::gemm(64, 64, 64);
        let key = task_key(&g, &Device::Gpu(v100()));
        db.put(TuneRecord {
            key: key.clone(),
            config: vec![7, 7, 7],
            seconds: 0.5,
            seed: 1,
            trials: 0,
            commit: "seeded".to_string(),
        })
        .unwrap();
        let server = SessionServer::with_runner(db, ServeOptions::default(), Arc::new(PanicRunner));
        let s = server.session("reader");
        let r = s.submit(g, Device::Gpu(v100())).wait().unwrap();
        assert_eq!(r.source, ServeSource::Hit);
        assert_eq!(r.config, vec![7, 7, 7]);
        assert_eq!(r.seconds, 0.5);
        assert_eq!(server.stats().hits, 1);
        assert_eq!(server.stats().misses, 0);
    }

    #[test]
    fn fresh_keys_warm_start_from_the_snapshot_neighbor() {
        let runner = Arc::new(RecordingRunner {
            calls: Mutex::new(Vec::new()),
        });
        let db = open_db("serve-warm");
        let seed_g = ops::gemm(64, 64, 64);
        db.put(TuneRecord {
            key: task_key(&seed_g, &Device::Gpu(v100())),
            config: vec![1, 2, 3],
            seconds: 0.9,
            seed: 1,
            trials: 0,
            commit: "seeded".to_string(),
        })
        .unwrap();
        let server = SessionServer::with_runner(
            Arc::clone(&db),
            ServeOptions::default(),
            Arc::clone(&runner) as Arc<dyn TuneRunner>,
        );
        let s = server.session("warm");
        let r = s
            .submit(ops::gemm(128, 128, 128), Device::Gpu(v100()))
            .wait()
            .unwrap();
        assert_eq!(r.source, ServeSource::Fresh { warm_started: true });
        assert_eq!(server.stats().warm_starts, 1);
        // A different op family gets no neighbor.
        let r2 = s
            .submit(ops::gemv(256, 256), Device::Gpu(v100()))
            .wait()
            .unwrap();
        assert_eq!(
            r2.source,
            ServeSource::Fresh {
                warm_started: false
            }
        );
    }

    #[test]
    fn refine_retunes_snapshot_keys_from_their_own_best() {
        /// One captured tune call: trials, warm-start seeds, anneal window.
        type SpiedCall = (usize, Vec<Vec<i64>>, Option<(usize, usize)>);
        /// Captures the effective options of every tune call.
        struct SpyRunner {
            calls: Mutex<Vec<SpiedCall>>,
        }
        impl TuneRunner for SpyRunner {
            fn tune(&self, _task: &Task, opts: &OptimizeOptions) -> Result<Tuned, String> {
                self.calls.lock().unwrap().push((
                    opts.search.trials,
                    opts.search.warm_start.clone(),
                    opts.search.anneal_window,
                ));
                Ok(Tuned {
                    config: vec![9],
                    seconds: 0.25,
                })
            }
        }
        let db = open_db("serve-refine");
        let g = ops::gemm(64, 64, 64);
        let key = task_key(&g, &Device::Gpu(v100()));
        db.put(TuneRecord {
            key: key.clone(),
            config: vec![7, 7, 7],
            seconds: 0.5,
            seed: 1,
            trials: 0,
            commit: "seeded".to_string(),
        })
        .unwrap();
        let runner = Arc::new(SpyRunner {
            calls: Mutex::new(Vec::new()),
        });
        let server = SessionServer::with_runner(
            Arc::clone(&db),
            ServeOptions::default(),
            Arc::clone(&runner) as Arc<dyn TuneRunner>,
        );
        let s = server.session("refiner");
        let sub = SubmitOptions {
            trials: Some(5),
            refine: true,
            anneal_window: Some((10, 40)),
        };
        let r = s
            .submit_with(g.clone(), Device::Gpu(v100()), sub)
            .wait()
            .unwrap();
        // A refine is a warm-started fresh tune, not a hit.
        assert_eq!(r.source, ServeSource::Fresh { warm_started: true });
        assert_eq!(r.seconds, 0.25);
        let stats = server.stats();
        assert_eq!((stats.hits, stats.misses, stats.warm_starts), (0, 1, 1));
        // Duplicate refines coalesce like any in-flight key.
        let r2 = s
            .submit_with(g.clone(), Device::Gpu(v100()), sub)
            .wait()
            .unwrap();
        assert_eq!(r2.source, ServeSource::Coalesced);
        let calls = runner.calls.lock().unwrap();
        assert_eq!(calls.len(), 1, "refine must tune exactly once");
        let (trials, warm, window) = &calls[0];
        assert_eq!(*trials, 5, "per-request trial override applies");
        assert_eq!(warm.as_slice(), [vec![7, 7, 7]], "seeded from own best");
        assert_eq!(*window, Some((10, 40)));
        // Without refine, the same key is still a snapshot hit.
        let r3 = s.submit(g, Device::Gpu(v100())).wait().unwrap();
        assert_eq!(r3.source, ServeSource::Hit);
        assert_eq!(r3.config, vec![7, 7, 7]);
        drop(server);
        // The index keeps the better record (the refined 0.25 s one).
        assert_eq!(db.peek(&key).unwrap().seconds, 0.25);
    }

    #[test]
    fn default_submit_options_reproduce_submit() {
        let runner = Arc::new(RecordingRunner {
            calls: Mutex::new(Vec::new()),
        });
        let db = open_db("serve-subopts");
        let server = SessionServer::with_runner(
            Arc::clone(&db),
            ServeOptions::default(),
            Arc::clone(&runner) as Arc<dyn TuneRunner>,
        );
        let s = server.session("defaults");
        let a = s
            .submit(ops::gemm(32, 32, 32), Device::Gpu(v100()))
            .wait()
            .unwrap();
        let b = s
            .submit_with(
                ops::gemv(64, 64),
                Device::Gpu(v100()),
                SubmitOptions::default(),
            )
            .wait()
            .unwrap();
        assert!(matches!(a.source, ServeSource::Fresh { .. }));
        assert!(matches!(b.source, ServeSource::Fresh { .. }));
        assert_eq!(server.stats().misses, 2);
    }

    #[test]
    fn emit_stats_produces_db_and_session_events() {
        use flextensor_telemetry::{MemorySink, Telemetry};
        let runner = Arc::new(RecordingRunner {
            calls: Mutex::new(Vec::new()),
        });
        let db = open_db("serve-emit");
        let server = SessionServer::with_runner(
            Arc::clone(&db),
            ServeOptions::default(),
            Arc::clone(&runner) as Arc<dyn TuneRunner>,
        );
        let a = server.session("alpha");
        let b = server.session("beta");
        a.submit(ops::gemm(32, 32, 32), Device::Gpu(v100()))
            .wait()
            .unwrap();
        b.submit(ops::gemm(32, 32, 32), Device::Gpu(v100()))
            .wait()
            .unwrap();
        let sink = Arc::new(MemorySink::default());
        let telemetry = Telemetry::new(sink.clone());
        server.emit_stats(&telemetry);
        let events = sink.events();
        assert_eq!(events.len(), 3);
        match &events[0] {
            TraceEvent::DbStats {
                records, misses, ..
            } => {
                assert_eq!(*records, 1);
                assert_eq!(*misses, 1);
            }
            other => panic!("expected DbStats, got {other:?}"),
        }
        match &events[1] {
            TraceEvent::SessionStats {
                session, submitted, ..
            } => {
                assert_eq!(session, "alpha");
                assert_eq!(*submitted, 1);
            }
            other => panic!("expected SessionStats, got {other:?}"),
        }
    }

    #[test]
    fn real_optimize_runner_round_trips_through_the_db() {
        let db = open_db("serve-real");
        let g = ops::gemm(64, 64, 64);
        {
            let server = SessionServer::new(Arc::clone(&db), ServeOptions::default());
            let s = server.session("first");
            let r = s.submit(g.clone(), Device::Gpu(v100())).wait().unwrap();
            assert!(matches!(r.source, ServeSource::Fresh { .. }));
            assert!(r.seconds > 0.0);
        }
        // A second server over the same directory serves the key as a hit.
        let (db2, report) = TuneDb::open(db.dir()).unwrap();
        assert_eq!(report.lines_dropped, 0);
        let server = SessionServer::new(Arc::new(db2), ServeOptions::default());
        let s = server.session("second");
        let r = s.submit(g, Device::Gpu(v100())).wait().unwrap();
        assert_eq!(r.source, ServeSource::Hit);
    }
}
