//! Property tests for the chunked dense kernels: the optimized 8-lane
//! [`dot`] must match the scalar specification [`dot_spec`] **bit-for-bit**
//! at every length — full chunks, ragged tails (`len % 8 != 0`), short
//! inputs (`len < 8`), and the empty product — and the chunked [`axpy`]
//! must equal the naive element-wise loop exactly (no cross-element
//! accumulation, so chunking is pure loop shaping).

use flextensor_nn::{axpy, dot, dot_spec, DOT_LANES};
use proptest::prelude::*;

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6f64..1e6, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `dot ≡ dot_spec` bit-for-bit at arbitrary lengths, covering
    /// `len % 8 != 0`, `len < 8`, and multi-chunk inputs.
    #[test]
    fn dot_matches_spec_at_any_length(
        len in 0usize..200,
        seed in any::<u64>(),
    ) {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 2_000_001) as f64 / 1000.0 - 1000.0
        };
        let w: Vec<f64> = (0..len).map(|_| next()).collect();
        let x: Vec<f64> = (0..len).map(|_| next()).collect();
        prop_assert_eq!(dot(&w, &x).to_bits(), dot_spec(&w, &x).to_bits());
    }

    /// `axpy` equals the naive element-wise loop exactly at any length.
    #[test]
    fn axpy_matches_naive_loop(
        a in -100.0f64..100.0,
        x in finite_vec(37),
        y in finite_vec(37),
        len in 0usize..=37,
    ) {
        let x = &x[..len];
        let mut chunked = y[..len].to_vec();
        let mut naive = y[..len].to_vec();
        axpy(a, x, &mut chunked);
        for (yi, xi) in naive.iter_mut().zip(x) {
            *yi += a * xi;
        }
        let cb: Vec<u64> = chunked.iter().map(|v| v.to_bits()).collect();
        let nb: Vec<u64> = naive.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(cb, nb);
    }
}

/// Exhaustive sweep of every length around the chunk boundaries: 0..=3
/// chunks plus each possible tail.
#[test]
fn dot_matches_spec_exhaustive_boundary_lengths() {
    for len in 0..=(3 * DOT_LANES + 7) {
        let w: Vec<f64> = (0..len).map(|i| (i as f64 * 0.37).sin() * 3.0).collect();
        let x: Vec<f64> = (0..len).map(|i| (i as f64 * 0.73).cos() * 5.0).collect();
        assert_eq!(
            dot(&w, &x).to_bits(),
            dot_spec(&w, &x).to_bits(),
            "len {len}"
        );
    }
}

/// The documented pairwise combine really is the order used: check an
/// input crafted so any other association changes the result.
#[test]
fn spec_defines_the_documented_lane_combine() {
    // One full chunk + 3-wide tail; values with wildly different
    // magnitudes make f64 addition order observable.
    let w = vec![1e16, 1.0, -1e16, 1.0, 1e8, 1.0, -1e8, 1.0, 0.5, 0.25, 2.0];
    let x = vec![1.0; 11];
    let lanes: [f64; 8] = [1e16, 1.0, -1e16, 1.0, 1e8, 1.0, -1e8, 1.0];
    let mut expect: f64 = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
    for t in [0.5, 0.25, 2.0] {
        expect += t;
    }
    assert_eq!(dot_spec(&w, &x).to_bits(), expect.to_bits());
    assert_eq!(dot(&w, &x).to_bits(), expect.to_bits());
}

/// Zero-length inputs are the all-tail/all-empty corner: both kernels
/// return exactly 0.0 and axpy is a no-op.
#[test]
fn empty_inputs() {
    assert_eq!(dot(&[], &[]).to_bits(), 0.0f64.to_bits());
    assert_eq!(dot_spec(&[], &[]).to_bits(), 0.0f64.to_bits());
    let mut y: [f64; 0] = [];
    axpy(3.0, &[], &mut y);
}
