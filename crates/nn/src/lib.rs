//! # flextensor-nn
//!
//! A minimal dense neural network — exactly what the Q-learning back-end of
//! FlexTensor needs (§5.1): fully-connected layers with ReLU activations,
//! mean-squared-error loss, the AdaDelta optimizer (Zeiler, 2012), Xavier
//! initialization, and cheap whole-network cloning for the target network
//! of Mnih et al.'s stabilized Q-learning.
//!
//! Everything is implemented from scratch on `Vec<f64>` — no BLAS, no
//! autograd — because the Q-network is tiny (four layers over a few dozen
//! features) and exploration calls it millions of times.
//!
//! # Examples
//!
//! ```
//! use flextensor_nn::{Mlp, AdaDelta, TrainScratch};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! // 4 fully-connected layers (the paper's Q-network shape).
//! let mut net = Mlp::new(&[8, 32, 32, 4], &mut rng);
//! let mut opt = AdaDelta::new(net.num_params());
//! let mut scratch = TrainScratch::new();
//! let x = vec![0.5; 8];
//! let y = vec![1.0, 0.0, 0.0, 0.0];
//! for _ in 0..200 {
//!     net.train_batch_with(&[&x], &[&y], &mut opt, &mut scratch);
//! }
//! let out = net.forward(&x);
//! assert!((out[0] - 1.0).abs() < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod network;

use rand::Rng;

/// One fully-connected layer: `y = W·x + b`.
#[derive(Debug, Clone, PartialEq)]
struct Linear {
    inputs: usize,
    outputs: usize,
    /// Row-major `outputs × inputs`.
    w: Vec<f64>,
    b: Vec<f64>,
}

impl Linear {
    fn new(inputs: usize, outputs: usize, rng: &mut impl Rng) -> Linear {
        // Xavier/Glorot uniform initialization.
        let bound = (6.0 / (inputs + outputs) as f64).sqrt();
        let w = (0..inputs * outputs)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Linear {
            inputs,
            outputs,
            w,
            b: vec![0.0; outputs],
        }
    }

    fn forward(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for o in 0..self.outputs {
            let row = &self.w[o * self.inputs..(o + 1) * self.inputs];
            out.push(self.b[o] + dot(row, x));
        }
    }

    fn num_params(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

/// Fixed chunk width of the dense kernels ([`dot`] / [`axpy`]): eight
/// independent f64 lanes, matching one AVX-512 register or two AVX2
/// registers' worth of accumulators.
pub const DOT_LANES: usize = 8;

/// Specified accumulation order of [`dot`] — the scalar reference the
/// chunked kernel must match bit-for-bit at every length.
///
/// Definition: split `w`/`x` at the largest multiple of [`DOT_LANES`].
/// Over the full chunks, lane `j` accumulates the products at positions
/// `≡ j (mod 8)` in index order. The eight lanes combine pairwise as
/// `((l0 + l1) + (l2 + l3)) + ((l4 + l5) + (l6 + l7))`, then the ragged
/// tail folds in left to right. Any length is covered: `len < 8` is all
/// tail, `len % 8 != 0` exercises both parts, `len == 0` returns `0.0`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot_spec(w: &[f64], x: &[f64]) -> f64 {
    assert_eq!(w.len(), x.len(), "dot over mismatched lengths");
    let n = w.len();
    let full = n - n % DOT_LANES;
    let mut lanes = [0.0f64; DOT_LANES];
    let mut i = 0;
    while i < full {
        for (j, lane) in lanes.iter_mut().enumerate() {
            *lane += w[i + j] * x[i + j];
        }
        i += DOT_LANES;
    }
    let mut acc = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
    for k in full..n {
        acc += w[k] * x[k];
    }
    acc
}

/// Dot product over eight independent accumulator lanes.
///
/// Breaking the single serial dependency chain into eight lets the
/// compiler keep the loop in SIMD registers (and overlaps the scalar FMAs
/// even where it cannot). The accumulation order is *defined* — see
/// [`dot_spec`], which this function matches bit-for-bit at any length
/// (enforced by the chunked-kernel property tests) — so results are
/// deterministic across builds. They are *not* bit-identical to a plain
/// serial fold or to the previous four-lane kernel (floating-point
/// addition is non-associative), which is why the committed trace
/// fixtures and probe CSVs were regenerated when this landed.
pub fn dot(w: &[f64], x: &[f64]) -> f64 {
    debug_assert_eq!(w.len(), x.len());
    let split = w.len() - w.len() % DOT_LANES;
    let (w8, wt) = w.split_at(split);
    let (x8, xt) = x.split_at(split);
    let mut lanes = [0.0f64; DOT_LANES];
    for (wc, xc) in w8.chunks_exact(DOT_LANES).zip(x8.chunks_exact(DOT_LANES)) {
        for (j, lane) in lanes.iter_mut().enumerate() {
            *lane += wc[j] * xc[j];
        }
    }
    let mut acc = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
    for (wi, xi) in wt.iter().zip(xt) {
        acc += wi * xi;
    }
    acc
}

/// Chunked in-place scaled add: `y[i] += a * x[i]` for every `i`, swept in
/// [`DOT_LANES`]-wide chunks with an explicit ragged tail.
///
/// Each element updates independently — there is no cross-element
/// accumulation — so the chunking is pure loop shaping and the result is
/// exactly the naive element-wise loop at any length. Used by the backprop
/// inner loops (gradient-row updates and delta propagation).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy over mismatched lengths");
    let split = x.len() - x.len() % DOT_LANES;
    let (x8, xt) = x.split_at(split);
    let (y8, yt) = y.split_at_mut(split);
    for (yc, xc) in y8
        .chunks_exact_mut(DOT_LANES)
        .zip(x8.chunks_exact(DOT_LANES))
    {
        for (j, yj) in yc.iter_mut().enumerate() {
            *yj += a * xc[j];
        }
    }
    for (yi, xi) in yt.iter_mut().zip(xt) {
        *yi += a * xi;
    }
}

/// Reusable ping-pong activation buffers for allocation-free inference
/// ([`Mlp::forward_into`] / [`Mlp::forward_batch`]).
///
/// The exploration hot loop scores thousands of states per trial; holding
/// one `MlpScratch` per agent turns every forward pass after the first
/// into a zero-allocation operation. Buffer reuse never changes the math:
/// each layer writes every element of its output before anything reads
/// it, so results are bit-identical to [`Mlp::forward`].
#[derive(Debug, Clone, Default)]
pub struct MlpScratch {
    a: Vec<f64>,
    b: Vec<f64>,
}

impl MlpScratch {
    /// Fresh (empty) scratch; buffers grow to the widest layer on first
    /// use and are reused afterwards.
    pub fn new() -> MlpScratch {
        MlpScratch::default()
    }
}

/// Reusable buffers for [`Mlp::train_batch_with`]: the gradient
/// accumulator, per-layer activations, and the two backprop delta
/// buffers. Reusing them across training rounds removes every per-round
/// heap allocation; all buffers are fully overwritten (or explicitly
/// zeroed) before use, so training is bit-identical to
/// [`Mlp::train_batch`].
#[derive(Debug, Clone, Default)]
pub struct TrainScratch {
    grads: Vec<f64>,
    acts: Vec<Vec<f64>>,
    delta: Vec<f64>,
    prev: Vec<f64>,
}

impl TrainScratch {
    /// Fresh (empty) scratch; buffers size themselves on first use.
    pub fn new() -> TrainScratch {
        TrainScratch::default()
    }
}

/// A multilayer perceptron: linear layers with ReLU between them (linear
/// output layer).
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Builds an MLP with the given layer widths; `dims = [in, h1, ..., out]`
    /// yields `dims.len() - 1` fully-connected layers.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given or any width is zero.
    pub fn new(dims: &[usize], rng: &mut impl Rng) -> Mlp {
        assert!(dims.len() >= 2, "need at least input and output widths");
        assert!(dims.iter().all(|&d| d > 0), "layer widths must be positive");
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng))
            .collect();
        Mlp { layers }
    }

    /// Input feature width.
    pub fn input_dim(&self) -> usize {
        self.layers.first().map_or(0, |l| l.inputs)
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.layers.last().map_or(0, |l| l.outputs)
    }

    /// Total trainable parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Linear::num_params).sum()
    }

    /// Runs the network on one input.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from [`Mlp::input_dim`].
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut scratch = MlpScratch::new();
        let mut out = Vec::new();
        self.forward_into(x, &mut scratch, &mut out);
        out
    }

    /// Runs the layer stack on `x` inside `scratch`, leaving the output in
    /// `scratch.a` and returning it. The shared core of every inference
    /// entry point — one implementation, bit-identical results.
    fn run_layers<'s>(&self, x: &[f64], scratch: &'s mut MlpScratch) -> &'s [f64] {
        assert_eq!(x.len(), self.input_dim(), "input width mismatch");
        let MlpScratch { a, b } = scratch;
        a.clear();
        a.extend_from_slice(x);
        for (i, layer) in self.layers.iter().enumerate() {
            layer.forward(a, b);
            if i + 1 < self.layers.len() {
                for v in b.iter_mut() {
                    *v = v.max(0.0); // ReLU
                }
            }
            std::mem::swap(a, b);
        }
        a
    }

    /// Runs the network on one input into a caller-provided buffer using
    /// preallocated ping-pong activation scratch — zero heap allocation
    /// once the buffers are warm, bit-identical to [`Mlp::forward`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from [`Mlp::input_dim`].
    pub fn forward_into(&self, x: &[f64], scratch: &mut MlpScratch, out: &mut Vec<f64>) {
        let result = self.run_layers(x, scratch);
        out.clear();
        out.extend_from_slice(result);
    }

    /// Runs the network on a batch of inputs, concatenating the outputs
    /// into `out` (`xs.len() × output_dim`, row-major). One call scores
    /// e.g. every candidate direction of a schedule point with a single
    /// warm scratch and output buffer.
    ///
    /// # Panics
    ///
    /// Panics if any input's width differs from [`Mlp::input_dim`].
    pub fn forward_batch(&self, xs: &[&[f64]], scratch: &mut MlpScratch, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(xs.len() * self.output_dim());
        for x in xs {
            let result = self.run_layers(x, scratch);
            out.extend_from_slice(result);
        }
    }

    /// One optimization step on a batch under MSE loss; returns the batch
    /// loss before the update. Convenience wrapper over
    /// [`Mlp::train_batch_with`] with throwaway scratch.
    ///
    /// Deprecated for hot paths: this allocates a fresh [`TrainScratch`]
    /// (and two slice-reference vectors) on every call. Loops that train
    /// repeatedly — the Q-learning replay loop, benchmarks — must hold a
    /// [`TrainScratch`] and call [`Mlp::train_batch_with`] directly; this
    /// wrapper stays for one-off use and tests.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty, shapes mismatch, or `opt` was created
    /// for a different parameter count.
    #[deprecated(
        since = "0.1.0",
        note = "allocates per call; hot loops should hold a TrainScratch and use train_batch_with"
    )]
    pub fn train_batch(&mut self, xs: &[Vec<f64>], ys: &[Vec<f64>], opt: &mut AdaDelta) -> f64 {
        let xr: Vec<&[f64]> = xs.iter().map(Vec::as_slice).collect();
        let yr: Vec<&[f64]> = ys.iter().map(Vec::as_slice).collect();
        self.train_batch_with(&xr, &yr, opt, &mut TrainScratch::new())
    }

    /// One optimization step on a batch under MSE loss using reusable
    /// scratch buffers (no per-round heap allocation once warm); returns
    /// the batch loss before the update. Bit-identical to
    /// [`Mlp::train_batch`].
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty, shapes mismatch, or `opt` was created
    /// for a different parameter count.
    pub fn train_batch_with(
        &mut self,
        xs: &[&[f64]],
        ys: &[&[f64]],
        opt: &mut AdaDelta,
        scratch: &mut TrainScratch,
    ) -> f64 {
        assert!(!xs.is_empty() && xs.len() == ys.len(), "bad batch");
        assert_eq!(opt.len(), self.num_params(), "optimizer size mismatch");
        let TrainScratch {
            grads,
            acts,
            delta,
            prev,
        } = scratch;
        grads.clear();
        grads.resize(self.num_params(), 0.0);
        if acts.len() != self.layers.len() + 1 {
            acts.resize(self.layers.len() + 1, Vec::new());
        }
        let mut loss = 0.0;
        for (x, y) in xs.iter().zip(ys) {
            assert_eq!(y.len(), self.output_dim(), "target width mismatch");
            // Forward pass retaining activations per layer (for backprop).
            assert_eq!(x.len(), self.input_dim(), "input width mismatch");
            acts[0].clear();
            acts[0].extend_from_slice(x);
            for (i, layer) in self.layers.iter().enumerate() {
                let (head, tail) = acts.split_at_mut(i + 1);
                layer.forward(&head[i], &mut tail[0]);
                if i + 1 < self.layers.len() {
                    for v in tail[0].iter_mut() {
                        *v = v.max(0.0);
                    }
                }
            }
            // dL/dout for MSE (mean over outputs and batch).
            let out = acts.last().expect("at least the input activation");
            let scale = 1.0 / (xs.len() * y.len()) as f64;
            delta.clear();
            for (o, t) in out.iter().zip(*y) {
                loss += (o - t) * (o - t) * scale;
                delta.push(2.0 * (o - t) * scale);
            }
            // Backprop through layers.
            let mut offset = self.num_params();
            for (li, layer) in self.layers.iter().enumerate().rev() {
                offset -= layer.num_params();
                let input = &acts[li];
                let (gw, gb) =
                    grads[offset..offset + layer.num_params()].split_at_mut(layer.w.len());
                for o in 0..layer.outputs {
                    gb[o] += delta[o];
                    let row = &mut gw[o * layer.inputs..(o + 1) * layer.inputs];
                    axpy(delta[o], input, row);
                }
                if li > 0 {
                    // Propagate delta through W and the ReLU derivative at
                    // the previous activation.
                    prev.clear();
                    prev.resize(layer.inputs, 0.0);
                    for (d, row) in delta.iter().zip(layer.w.chunks(layer.inputs)) {
                        axpy(*d, row, prev);
                    }
                    for (p, a) in prev.iter_mut().zip(&acts[li]) {
                        if *a <= 0.0 {
                            *p = 0.0;
                        }
                    }
                    std::mem::swap(delta, prev);
                }
            }
        }
        // Apply AdaDelta updates.
        let mut offset = 0;
        for layer in &mut self.layers {
            for w in layer.w.iter_mut().chain(layer.b.iter_mut()) {
                *w += opt.step(offset, grads[offset]);
                offset += 1;
            }
        }
        loss
    }

    /// Copies all parameters from another network of identical shape (the
    /// target-network update of stabilized Q-learning).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn copy_params_from(&mut self, other: &Mlp) {
        assert_eq!(self.num_params(), other.num_params(), "shape mismatch");
        for (a, b) in self.layers.iter_mut().zip(&other.layers) {
            a.w.copy_from_slice(&b.w);
            a.b.copy_from_slice(&b.b);
        }
    }
}

/// The AdaDelta optimizer (Zeiler, 2012): per-parameter adaptive learning
/// rates with no global learning-rate hyperparameter — the optimizer the
/// paper trains its Q-network with.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaDelta {
    rho: f64,
    eps: f64,
    acc_grad: Vec<f64>,
    acc_update: Vec<f64>,
}

impl AdaDelta {
    /// Creates optimizer state for `n` parameters with the standard
    /// hyperparameters (ρ = 0.95, ε = 1e-6).
    pub fn new(n: usize) -> AdaDelta {
        AdaDelta {
            rho: 0.95,
            eps: 1e-6,
            acc_grad: vec![0.0; n],
            acc_update: vec![0.0; n],
        }
    }

    /// Number of parameters tracked.
    pub fn len(&self) -> usize {
        self.acc_grad.len()
    }

    /// Whether the optimizer tracks zero parameters.
    pub fn is_empty(&self) -> bool {
        self.acc_grad.is_empty()
    }

    /// Computes the update for parameter `i` given its gradient, updating
    /// internal state. Returns the delta to *add* to the parameter.
    pub fn step(&mut self, i: usize, grad: f64) -> f64 {
        let g2 = &mut self.acc_grad[i];
        *g2 = self.rho * *g2 + (1.0 - self.rho) * grad * grad;
        let update = -((self.acc_update[i] + self.eps).sqrt() / (*g2 + self.eps).sqrt()) * grad;
        let u2 = &mut self.acc_update[i];
        *u2 = self.rho * *u2 + (1.0 - self.rho) * update * update;
        update
    }
}

#[cfg(test)]
// The tests deliberately exercise the deprecated convenience wrapper —
// it must stay bit-identical to `train_batch_with`.
#[allow(deprecated)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn shapes_and_param_counts() {
        let net = Mlp::new(&[10, 20, 20, 3], &mut rng(0));
        assert_eq!(net.input_dim(), 10);
        assert_eq!(net.output_dim(), 3);
        assert_eq!(net.num_params(), 10 * 20 + 20 + 20 * 20 + 20 + 20 * 3 + 3);
        assert_eq!(net.forward(&[0.1; 10]).len(), 3);
    }

    #[test]
    fn deterministic_init() {
        let a = Mlp::new(&[4, 8, 2], &mut rng(7));
        let b = Mlp::new(&[4, 8, 2], &mut rng(7));
        assert_eq!(a, b);
        let c = Mlp::new(&[4, 8, 2], &mut rng(8));
        assert_ne!(a, c);
    }

    #[test]
    fn loss_decreases_when_fitting_a_linear_map() {
        let mut net = Mlp::new(&[3, 16, 16, 1], &mut rng(1));
        let mut opt = AdaDelta::new(net.num_params());
        let xs: Vec<Vec<f64>> = (0..32)
            .map(|i| {
                let t = i as f64 / 32.0;
                vec![t, 1.0 - t, t * t]
            })
            .collect();
        let ys: Vec<Vec<f64>> = xs
            .iter()
            .map(|x| vec![2.0 * x[0] - x[1] + 0.5 * x[2]])
            .collect();
        let first = net.train_batch(&xs, &ys, &mut opt);
        let mut last = first;
        for _ in 0..500 {
            last = net.train_batch(&xs, &ys, &mut opt);
        }
        assert!(
            last < first * 0.1,
            "loss did not decrease: {first} -> {last}"
        );
    }

    #[test]
    fn fits_xor_like_nonlinearity() {
        let mut net = Mlp::new(&[2, 16, 16, 1], &mut rng(3));
        let mut opt = AdaDelta::new(net.num_params());
        let xs = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let ys = vec![vec![0.0], vec![1.0], vec![1.0], vec![0.0]];
        for _ in 0..3000 {
            net.train_batch(&xs, &ys, &mut opt);
        }
        for (x, y) in xs.iter().zip(&ys) {
            let p = net.forward(x)[0];
            assert!((p - y[0]).abs() < 0.3, "xor({x:?}) = {p}, want {}", y[0]);
        }
    }

    #[test]
    fn forward_into_is_bit_identical_to_forward() {
        let net = Mlp::new(&[6, 24, 24, 4], &mut rng(11));
        let mut scratch = MlpScratch::new();
        let mut out = Vec::new();
        let mut r = rng(12);
        for _ in 0..16 {
            let x: Vec<f64> = (0..6).map(|_| r.gen_range(-2.0..2.0)).collect();
            net.forward_into(&x, &mut scratch, &mut out);
            assert_eq!(out, net.forward(&x)); // exact: identical op order
        }
    }

    #[test]
    fn forward_batch_concatenates_individual_outputs() {
        let net = Mlp::new(&[5, 16, 3], &mut rng(13));
        let mut r = rng(14);
        let xs: Vec<Vec<f64>> = (0..7)
            .map(|_| (0..5).map(|_| r.gen_range(-1.0..1.0)).collect())
            .collect();
        let refs: Vec<&[f64]> = xs.iter().map(Vec::as_slice).collect();
        let mut scratch = MlpScratch::new();
        let mut out = Vec::new();
        net.forward_batch(&refs, &mut scratch, &mut out);
        assert_eq!(out.len(), xs.len() * net.output_dim());
        for (i, x) in xs.iter().enumerate() {
            let row = &out[i * net.output_dim()..(i + 1) * net.output_dim()];
            assert_eq!(row, net.forward(x).as_slice());
        }
    }

    #[test]
    fn train_batch_with_is_bit_identical_to_train_batch() {
        let mut a = Mlp::new(&[3, 12, 12, 2], &mut rng(15));
        let mut b = a.clone();
        let mut opt_a = AdaDelta::new(a.num_params());
        let mut opt_b = AdaDelta::new(b.num_params());
        let mut scratch = TrainScratch::new();
        let mut r = rng(16);
        for _ in 0..20 {
            let xs: Vec<Vec<f64>> = (0..4)
                .map(|_| (0..3).map(|_| r.gen_range(-1.0..1.0)).collect())
                .collect();
            let ys: Vec<Vec<f64>> = (0..4)
                .map(|_| (0..2).map(|_| r.gen_range(-1.0..1.0)).collect())
                .collect();
            let loss_a = a.train_batch(&xs, &ys, &mut opt_a);
            let xr: Vec<&[f64]> = xs.iter().map(Vec::as_slice).collect();
            let yr: Vec<&[f64]> = ys.iter().map(Vec::as_slice).collect();
            let loss_b = b.train_batch_with(&xr, &yr, &mut opt_b, &mut scratch);
            assert_eq!(loss_a, loss_b); // exact: identical op order
            assert_eq!(a, b);
            assert_eq!(opt_a, opt_b);
        }
    }

    #[test]
    fn target_network_copy() {
        let mut a = Mlp::new(&[4, 8, 2], &mut rng(4));
        let b = Mlp::new(&[4, 8, 2], &mut rng(5));
        assert_ne!(a, b);
        a.copy_params_from(&b);
        assert_eq!(a, b);
    }

    #[test]
    fn adadelta_moves_against_gradient() {
        let mut opt = AdaDelta::new(1);
        let d = opt.step(0, 1.0);
        assert!(d < 0.0);
        let d2 = opt.step(0, -1.0);
        assert!(d2 > 0.0);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn forward_checks_width() {
        let net = Mlp::new(&[4, 8, 2], &mut rng(0));
        net.forward(&[0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "optimizer size mismatch")]
    fn train_checks_optimizer() {
        let mut net = Mlp::new(&[2, 4, 1], &mut rng(0));
        let mut opt = AdaDelta::new(3);
        net.train_batch(&[vec![0.0, 0.0]], &[vec![0.0]], &mut opt);
    }
}
