//! Multi-op network definitions and their export to `flextensor-ir`
//! mini-graphs.
//!
//! A [`Network`] is an ordered list of layer *occurrences* — deliberately
//! not pre-deduplicated. Real networks repeat layers (ShuffleNet stages,
//! YOLO's stacked 3×3 convolutions), and discovering that repetition is
//! the job of the graph-level scheduler (`flextensor-graph`), which
//! collapses occurrences by structural hash into weighted tuning tasks.
//! [`Network::export`] therefore emits one labelled mini-graph per
//! occurrence, in network order, and nothing else.
//!
//! Two reference topologies are provided: [`shufflenet_like`] (grouped
//! 1×1 + depthwise 3×3 units, heavy repetition within stages) and
//! [`yolo_tiny`] (a stride-2 convolution backbone with repeated 3×3
//! blocks). Both are scaled down from their namesakes so modeled tuning
//! over every distinct layer stays fast enough for tests and CI.

use flextensor_ir::graph::Graph;
use flextensor_ir::ops::{self, fuse_epilogue, ConvParams, Epilogue};

/// One network layer's operator, fully parameterized (batch included).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LayerOp {
    /// Dense 2-D convolution over an `height × width` input.
    Conv2d {
        /// Convolution parameters (batch, channels, kernel, stride, …).
        params: ConvParams,
        /// Input spatial height.
        height: i64,
        /// Input spatial width.
        width: i64,
    },
    /// Grouped 2-D convolution (`params.groups > 1`).
    GroupConv2d {
        /// Convolution parameters; `groups` must divide both channel
        /// counts.
        params: ConvParams,
        /// Input spatial height.
        height: i64,
        /// Input spatial width.
        width: i64,
    },
    /// Depthwise 2-D convolution: one filter bank per input channel.
    DepthwiseConv2d {
        /// Batch size.
        batch: i64,
        /// Input channels (= groups).
        channels: i64,
        /// Output channels per input channel.
        multiplier: i64,
        /// Input spatial height.
        height: i64,
        /// Input spatial width.
        width: i64,
        /// Kernel size.
        kernel: i64,
        /// Stride.
        stride: i64,
        /// Zero padding.
        padding: i64,
    },
    /// Fully-connected layer as a matrix multiply: `[n, k] × [k, m]`.
    Gemm {
        /// Rows of the left operand (typically the batch size).
        n: i64,
        /// Columns of the result (output features).
        m: i64,
        /// Contraction extent (input features).
        k: i64,
    },
}

impl LayerOp {
    /// Builds the operator's mini-graph (without any epilogue).
    pub fn graph(&self) -> Graph {
        match *self {
            LayerOp::Conv2d {
                params,
                height,
                width,
            } => ops::conv2d(params, height, width),
            LayerOp::GroupConv2d {
                params,
                height,
                width,
            } => ops::group_conv2d(params, height, width),
            LayerOp::DepthwiseConv2d {
                batch,
                channels,
                multiplier,
                height,
                width,
                kernel,
                stride,
                padding,
            } => ops::depthwise_conv2d(
                batch, channels, multiplier, height, width, kernel, stride, padding,
            ),
            LayerOp::Gemm { n, m, k } => ops::gemm(n, m, k),
        }
    }
}

/// One layer occurrence: an operator plus the element-wise epilogue fused
/// into it at writeback (§6.6's sub-graph fusion).
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    /// Position label, unique within the network (e.g. `"stage1.u0.dw"`).
    pub label: String,
    /// The operator.
    pub op: LayerOp,
    /// Fused epilogue, if any.
    pub epilogue: Option<Epilogue>,
}

impl Layer {
    /// Builds the (possibly fused) mini-graph of this occurrence.
    pub fn graph(&self) -> Graph {
        let g = self.op.graph();
        match self.epilogue {
            Some(e) => fuse_epilogue(g, e),
            None => g,
        }
    }
}

/// An ordered multi-op network: the input to graph-level scheduling.
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    /// Network name (used in telemetry and reports).
    pub name: String,
    /// Layer occurrences in execution order, repetitions included.
    pub layers: Vec<Layer>,
}

impl Network {
    /// Number of layer occurrences (before any dedup).
    pub fn occurrences(&self) -> usize {
        self.layers.len()
    }

    /// Exports one labelled mini-graph per occurrence, in network order.
    pub fn export(&self) -> Vec<(String, Graph)> {
        self.layers
            .iter()
            .map(|l| (l.label.clone(), l.graph()))
            .collect()
    }

    /// Total floating-point operations of one forward pass.
    pub fn flops(&self) -> u64 {
        self.layers.iter().map(|l| l.graph().flops()).sum()
    }
}

fn conv(label: &str, params: ConvParams, height: i64, width: i64) -> Layer {
    Layer {
        label: label.to_string(),
        op: LayerOp::Conv2d {
            params,
            height,
            width,
        },
        epilogue: Some(Epilogue::Relu),
    }
}

/// A scaled-down ShuffleNet-style network: a stride-2 stem convolution,
/// a first stage of three identical units (grouped 1×1 → depthwise 3×3 →
/// grouped 1×1), a stride-2 downsample into doubled channels, a second
/// stage of two identical units, and a classifier matmul.
///
/// 19 operator occurrences collapse into 8 distinct tuning tasks — the
/// repetition profile graph-level scheduling exists to exploit.
pub fn shufflenet_like(batch: i64) -> Network {
    let groups = 4;
    let mut layers = Vec::new();
    // Stem: 8 → 16 channels, 32×32 → 16×16.
    layers.push(conv(
        "stem",
        ConvParams::same(batch, 8, 16, 3).with_stride(2),
        32,
        32,
    ));
    let gconv = |label: &str, ch_in: i64, ch_out: i64, hw: i64| Layer {
        label: label.to_string(),
        op: LayerOp::GroupConv2d {
            params: ConvParams::same(batch, ch_in, ch_out, 1).with_groups(groups),
            height: hw,
            width: hw,
        },
        epilogue: Some(Epilogue::Relu),
    };
    let dwconv = |label: &str, ch: i64, hw: i64, stride: i64| Layer {
        label: label.to_string(),
        op: LayerOp::DepthwiseConv2d {
            batch,
            channels: ch,
            multiplier: 1,
            height: hw,
            width: hw,
            kernel: 3,
            stride,
            padding: 1,
        },
        epilogue: None,
    };
    // Stage 1: three identical units at 16 channels, 16×16.
    for u in 0..3 {
        layers.push(gconv(&format!("s1.u{u}.gc1"), 16, 16, 16));
        layers.push(dwconv(&format!("s1.u{u}.dw"), 16, 16, 1));
        layers.push(gconv(&format!("s1.u{u}.gc2"), 16, 16, 16));
    }
    // Downsample: stride-2 depthwise, then 16 → 32 channels.
    layers.push(dwconv("down.dw", 16, 16, 2));
    layers.push(gconv("down.gc", 16, 32, 8));
    // Stage 2: two identical units at 32 channels, 8×8.
    for u in 0..2 {
        layers.push(gconv(&format!("s2.u{u}.gc1"), 32, 32, 8));
        layers.push(dwconv(&format!("s2.u{u}.dw"), 32, 8, 1));
        layers.push(gconv(&format!("s2.u{u}.gc2"), 32, 32, 8));
    }
    // Classifier: global pool (free) + fully connected 32 → 16.
    layers.push(Layer {
        label: "fc".to_string(),
        op: LayerOp::Gemm {
            n: batch,
            m: 16,
            k: 32,
        },
        epilogue: None,
    });
    Network {
        name: format!("shufflenet_like_b{batch}"),
        layers,
    }
}

/// A scaled-down YOLO/tiny-style backbone: stride-2 3×3 convolutions
/// doubling channels, with repeated same-shape 3×3 blocks in the middle
/// (the duplicates YOLO-v1's Table 4 counts), finished by a detector
/// matmul. Every convolution fuses YOLO's leaky-ReLU (α = 0.1).
///
/// 8 occurrences collapse into 6 distinct tuning tasks.
pub fn yolo_tiny(batch: i64) -> Network {
    let leaky = |mut l: Layer| {
        l.epilogue = Some(Epilogue::LeakyRelu(0.1));
        l
    };
    let mut layers = Vec::new();
    layers.push(leaky(conv(
        "c0",
        ConvParams::same(batch, 8, 16, 3).with_stride(2),
        32,
        32,
    )));
    layers.push(leaky(conv(
        "c1",
        ConvParams::same(batch, 16, 32, 3).with_stride(2),
        16,
        16,
    )));
    // Two identical 3×3 blocks at 32 channels, 8×8.
    layers.push(leaky(conv("c2a", ConvParams::same(batch, 32, 32, 3), 8, 8)));
    layers.push(leaky(conv("c2b", ConvParams::same(batch, 32, 32, 3), 8, 8)));
    layers.push(leaky(conv(
        "c3",
        ConvParams::same(batch, 32, 64, 3).with_stride(2),
        8,
        8,
    )));
    // Two identical 3×3 blocks at 64 channels, 4×4.
    layers.push(leaky(conv("c4a", ConvParams::same(batch, 64, 64, 3), 4, 4)));
    layers.push(leaky(conv("c4b", ConvParams::same(batch, 64, 64, 3), 4, 4)));
    // Detector head: flattened 4×4×64 → 32 outputs.
    layers.push(Layer {
        label: "det".to_string(),
        op: LayerOp::Gemm {
            n: batch,
            m: 32,
            k: 1024,
        },
        epilogue: None,
    });
    Network {
        name: format!("yolo_tiny_b{batch}"),
        layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_emits_one_graph_per_occurrence_in_order() {
        let net = shufflenet_like(1);
        let graphs = net.export();
        assert_eq!(graphs.len(), net.occurrences());
        assert_eq!(graphs.len(), 19);
        assert_eq!(graphs[0].0, "stem");
        assert_eq!(graphs.last().unwrap().0, "fc");
        // Labels are unique.
        let mut labels: Vec<&str> = graphs.iter().map(|(l, _)| l.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), graphs.len());
    }

    #[test]
    fn repeated_layers_export_structurally_equal_graphs() {
        let net = shufflenet_like(1);
        let graphs = net.export();
        let find = |label: &str| {
            &graphs
                .iter()
                .find(|(l, _)| l == label)
                .unwrap_or_else(|| panic!("layer {label}"))
                .1
        };
        // Same unit position across stage-1 repetitions: identical graphs
        // up to the label (which export keeps outside the graph).
        assert_eq!(find("s1.u0.dw"), find("s1.u2.dw"));
        assert_eq!(find("s1.u0.gc1"), find("s1.u1.gc2"));
        // Different stages differ.
        assert_ne!(find("s1.u0.dw"), find("s2.u0.dw"));
    }

    #[test]
    fn spatial_dims_chain_through_the_networks() {
        // Each layer's output extent must equal the next conv layer's
        // input extent (the constructors thread these by hand).
        for net in [shufflenet_like(2), yolo_tiny(2)] {
            let mut prev_out: Option<i64> = None;
            for layer in &net.layers {
                let (in_hw, out_hw) = match layer.op {
                    LayerOp::Conv2d { params, height, .. }
                    | LayerOp::GroupConv2d { params, height, .. } => {
                        (height, params.out_size(height))
                    }
                    LayerOp::DepthwiseConv2d {
                        height,
                        kernel,
                        stride,
                        padding,
                        ..
                    } => (height, (height + 2 * padding - kernel) / stride + 1),
                    LayerOp::Gemm { .. } => continue,
                };
                if let Some(p) = prev_out {
                    assert_eq!(in_hw, p, "{}: {}", net.name, layer.label);
                }
                prev_out = Some(out_hw);
            }
        }
    }

    #[test]
    fn yolo_tiny_has_duplicate_blocks() {
        let graphs = yolo_tiny(1).export();
        assert_eq!(graphs.len(), 8);
        let g = |l: &str| &graphs.iter().find(|(x, _)| x == l).unwrap().1;
        assert_eq!(g("c2a"), g("c2b"));
        assert_eq!(g("c4a"), g("c4b"));
        assert_ne!(g("c2a"), g("c4a"));
    }

    #[test]
    fn flops_sum_over_occurrences() {
        let net = yolo_tiny(1);
        let manual: u64 = net.export().iter().map(|(_, g)| g.flops()).sum();
        assert_eq!(net.flops(), manual);
    }
}
