//! End-of-search region certification sweep.
//!
//! After a region-gated search finishes, [`certify`] partitions the
//! factor space around the incumbent's discrete coordinates into boxes
//! ([`flextensor_analyze::Region`]s), asks
//! [`flextensor_analyze::analyze_region`] for a verdict on each, and
//! branch-and-bounds: a region whose certified lower bound exceeds the
//! incumbent's cost is *certified pruned* — no member can beat the best
//! found — a statically-illegal region is *certified illegal*, and
//! anything else splits along its widest factor range until degenerate
//! or the region budget runs out.
//!
//! The sweep performs **zero** concrete evaluations and never touches
//! the search history, so it is result-preserving by construction: it
//! only produces the [`RegionSweep`] counters reported through
//! [`TraceEvent::RegionStats`](flextensor_telemetry::TraceEvent) and
//! [`SearchResult::region_sweep`](crate::methods::SearchResult).
//! Every step is deterministic — stack order, split axis choice, and
//! split point are pure functions of the inputs.

use flextensor_analyze::{analyze_region, FlagChoice, Region, RegionVerdict};
use flextensor_ir::graph::Graph;
use flextensor_schedule::config::{NodeConfig, TargetKind};
use flextensor_schedule::template::LoweredTemplate;
use flextensor_sim::model::Evaluator;

/// Default cap on the number of regions [`certify`] examines.
pub const DEFAULT_SWEEP_REGIONS: usize = 4096;

/// Counters from one certification sweep. All fields are deterministic
/// functions of (graph, evaluator, incumbent, incumbent cost, cap).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegionSweep {
    /// Regions analyzed (popped and given a verdict).
    pub examined: usize,
    /// Regions proven empty of valid schedules.
    pub certified_illegal: usize,
    /// Regions whose certified lower bound exceeds the incumbent cost:
    /// no member can beat the best found.
    pub certified_pruned: usize,
    /// Regions left open: bound inconclusive and nothing left to split,
    /// or unexamined when the budget ran out. The incumbent's own region
    /// always stays open (its bound cannot exceed its own cost), so this
    /// is at least 1 unless the sweep result was truncated mid-split.
    pub open: usize,
    /// The region budget ran out before the stack drained; `open`
    /// includes every region still enqueued.
    pub truncated: bool,
}

/// Per-(axis, level) factor boxes awaiting a verdict.
type Ranges = Vec<Vec<(i64, i64)>>;

/// The flag choices a sweep rooted at `incumbent` covers: both values
/// where the schedule space varies the flag (`unroll`, `inline_data`
/// always; `cache_shared` on GPU), the incumbent's value elsewhere.
fn sweep_flags(target: TargetKind, incumbent: &NodeConfig) -> [FlagChoice; 4] {
    [
        FlagChoice::Both,                       // unroll
        FlagChoice::Fixed(incumbent.vectorize), // vectorize
        if target == TargetKind::Gpu {
            FlagChoice::Both
        } else {
            FlagChoice::Fixed(incumbent.cache_shared)
        },
        FlagChoice::Both, // inline_data
    ]
}

/// The root region of a sweep around `incumbent`: `[1, extent]` on every
/// split level of every axis, flags per the sweep policy (doc on
/// [`certify`]), discrete coordinates the incumbent's. The incumbent is
/// a member by construction. `None` only if the incumbent's split shape
/// does not match the template's root op.
pub fn root_region(tpl: &LoweredTemplate, incumbent: &NodeConfig) -> Option<Region> {
    let root = tpl.root();
    let full = |axes: &[flextensor_ir::graph::Axis], splits: &[Vec<i64>]| -> Ranges {
        axes.iter()
            .zip(splits)
            .map(|(axis, row)| row.iter().map(|_| (1i64, axis.extent.max(1))).collect())
            .collect()
    };
    let [unroll, vectorize, cache_shared, inline_data] = sweep_flags(tpl.target(), incumbent);
    Region::from_ranges(
        incumbent.clone(),
        full(&root.spatial, &incumbent.spatial_splits),
        full(&root.reduce, &incumbent.reduce_splits),
        unroll,
        vectorize,
        cache_shared,
        inline_data,
    )
    .ok()
}

/// Certifies the factor space around `incumbent` against
/// `incumbent_seconds`, examining at most `max_regions` regions
/// (0 is treated as [`DEFAULT_SWEEP_REGIONS`]).
///
/// The root region spans `[1, extent]` on every split level of every
/// axis. Flags cover both values where the schedule space varies them
/// (`unroll`, `inline_data` always; `cache_shared` on GPU) and pin the
/// incumbent's value elsewhere, so the sweep certifies the incumbent's
/// slice of the space. Discrete coordinates (reorder, fusion, FPGA
/// partition/pipeline) are the incumbent's.
pub fn certify(
    graph: &Graph,
    evaluator: &Evaluator,
    incumbent: &NodeConfig,
    incumbent_seconds: f64,
    max_regions: usize,
) -> RegionSweep {
    let max_regions = if max_regions == 0 {
        DEFAULT_SWEEP_REGIONS
    } else {
        max_regions
    };
    let tpl = LoweredTemplate::new(graph, evaluator.target());
    let [unroll, vectorize, cache_shared, inline_data] = sweep_flags(evaluator.target(), incumbent);
    let make = |spatial: Ranges, reduce: Ranges| -> Option<Region> {
        Region::from_ranges(
            incumbent.clone(),
            spatial,
            reduce,
            unroll,
            vectorize,
            cache_shared,
            inline_data,
        )
        .ok()
    };

    let mut sweep = RegionSweep::default();
    let Some(root) = root_region(&tpl, incumbent) else {
        return sweep;
    };
    let mut stack: Vec<(Ranges, Ranges)> = vec![(
        root.spatial_ranges().to_vec(),
        root.reduce_ranges().to_vec(),
    )];

    while let Some((spatial, reduce)) = stack.pop() {
        if sweep.examined == max_regions {
            sweep.truncated = true;
            sweep.open += 1 + stack.len();
            break;
        }
        sweep.examined += 1;
        let Some(region) = make(spatial.clone(), reduce.clone()) else {
            // Malformed box (cannot happen for ranges derived from the
            // incumbent's own split shape); treat as open, never pruned.
            sweep.open += 1;
            continue;
        };
        match analyze_region(&tpl, &region, evaluator) {
            RegionVerdict::Illegal(_) => sweep.certified_illegal += 1,
            RegionVerdict::Bounded { lo, .. } if lo > incumbent_seconds => {
                sweep.certified_pruned += 1
            }
            RegionVerdict::Bounded { .. } => match widest_range(&spatial, &reduce) {
                None => sweep.open += 1,
                Some((kind, axis, level)) => {
                    let (lo, hi) = if kind == 0 {
                        spatial[axis][level]
                    } else {
                        reduce[axis][level]
                    };
                    let mid = geometric_mid(lo, hi);
                    for half in [(lo, mid), (mid + 1, hi)] {
                        let (mut s, mut r) = (spatial.clone(), reduce.clone());
                        if kind == 0 {
                            s[axis][level] = half;
                        } else {
                            r[axis][level] = half;
                        }
                        stack.push((s, r));
                    }
                }
            },
        }
    }
    sweep
}

/// The non-degenerate range with the largest `hi / lo` ratio, scanning
/// spatial then reduce ranges in (axis, level) order; strict comparison
/// keeps the first maximum, so the choice is deterministic. `None` when
/// every range is a single factor.
fn widest_range(spatial: &Ranges, reduce: &Ranges) -> Option<(u8, usize, usize)> {
    let mut best: Option<((u8, usize, usize), f64)> = None;
    for (kind, ranges) in [(0u8, spatial), (1u8, reduce)] {
        for (axis, row) in ranges.iter().enumerate() {
            for (level, &(lo, hi)) in row.iter().enumerate() {
                if hi > lo {
                    let ratio = hi as f64 / lo as f64;
                    if best.is_none_or(|(_, r)| ratio > r) {
                        best = Some(((kind, axis, level), ratio));
                    }
                }
            }
        }
    }
    best.map(|(k, _)| k)
}

/// Geometric midpoint of `[lo, hi]`, clamped so both halves are
/// non-empty. Splitting geometrically keeps the `hi/lo` ratio of the
/// halves balanced, which is what drives the interval bounds.
fn geometric_mid(lo: i64, hi: i64) -> i64 {
    let m = ((lo as f64) * (hi as f64)).sqrt().floor() as i64;
    m.clamp(lo, hi - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextensor_ir::ops;
    use flextensor_sim::spec::{v100, Device};

    #[test]
    fn midpoint_and_widest_range_are_deterministic() {
        assert_eq!(geometric_mid(1, 256), 16);
        assert_eq!(geometric_mid(1, 2), 1);
        assert_eq!(geometric_mid(7, 8), 7);
        let spatial = vec![vec![(1, 4), (1, 64)]];
        let reduce = vec![vec![(1, 64)]];
        // First maximum in scan order wins ties: spatial before reduce.
        assert_eq!(widest_range(&spatial, &reduce), Some((0, 0, 1)));
        let point = vec![vec![(2, 2)]];
        assert_eq!(widest_range(&point, &point.clone()), None);
    }

    #[test]
    fn sweep_counters_are_consistent_and_deterministic() {
        let g = ops::gemm(64, 64, 64);
        let ev = Evaluator::new(Device::Gpu(v100()));
        let cfg = crate::space::Space::new(&g, ev.target()).start_point();
        let seconds = 1e-3;
        let a = certify(&g, &ev, &cfg, seconds, 512);
        let b = certify(&g, &ev, &cfg, seconds, 512);
        assert!(a.examined > 0);
        assert!(a.examined <= 512, "{a:?}");
        assert!(
            a.certified_illegal > 0,
            "a gemm factor box that wide certainly contains illegal slices: {a:?}"
        );
        assert!(a.open >= 1, "the incumbent's own region stays open: {a:?}");
        assert_eq!(a, b, "sweep must be deterministic");
    }

    #[test]
    fn bound_exceeding_incumbent_prunes_without_splitting() {
        // An impossibly good incumbent: the root region's certified lower
        // bound already exceeds it, so branch-and-bound stops at one
        // region with zero splits.
        let g = ops::gemm(64, 64, 64);
        let ev = Evaluator::new(Device::Gpu(v100()));
        let cfg = crate::space::Space::new(&g, ev.target()).start_point();
        let s = certify(&g, &ev, &cfg, 1e-15, 512);
        assert_eq!(s.examined, 1, "{s:?}");
        assert_eq!(s.certified_pruned, 1, "{s:?}");
        assert!(!s.truncated, "{s:?}");
    }

    #[test]
    fn truncation_counts_pending_regions_as_open() {
        // An unbeatable incumbent: no bound ever exceeds it, so every
        // bounded region splits until the budget runs out.
        let g = ops::gemm(256, 256, 256);
        let ev = Evaluator::new(Device::Gpu(v100()));
        let cfg = crate::space::Space::new(&g, ev.target()).start_point();
        let s = certify(&g, &ev, &cfg, 1e9, 8);
        assert!(s.truncated, "{s:?}");
        assert_eq!(s.examined, 8, "{s:?}");
        assert_eq!(s.certified_pruned, 0, "{s:?}");
        assert!(s.open >= 1, "{s:?}");
    }
}
